/// Quickstart: the library in five minutes.
///
///  1. Encode values as stochastic numbers with different RNG sources.
///  2. See correlation make-or-break an SC operation (paper Table I).
///  3. Fix it with the paper's correlation manipulating circuits.
///  4. Use the improved operators (sync-max / desync saturating add).
///  5. Price the hardware with the cost model.
///  6. Let the planner do all of it: registry programs + backends.
///  7. (opt-in) Watch it run: SC_TRACE / SC_METRICS telemetry.
///
/// Build & run:  ./examples/quickstart
/// With a trace: SC_TRACE=trace.json ./examples/quickstart
///               (open trace.json in https://ui.perfetto.dev)

#include <cstdio>
#include <memory>

#include "arith/multiply.hpp"
#include "bitstream/correlation.hpp"
#include "convert/sng.hpp"
#include "core/decorrelator.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "obs/telemetry.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"

using namespace sc;

int main() {
  constexpr std::size_t kN = 256;  // stream length -> 8-bit precision

  // --- 1. encode two values ------------------------------------------------
  // A stochastic number generator is a comparator fed by a random source.
  convert::Sng sng_a(std::make_unique<rng::VanDerCorput>(8));
  convert::Sng sng_b(std::make_unique<rng::Halton>(8, 3));

  const Bitstream a = sng_a.generate_value(0.5, kN);   // pA = 0.5
  const Bitstream b = sng_b.generate_value(0.75, kN);  // pB = 0.75
  std::printf("a encodes %.3f, b encodes %.3f, SCC(a,b) = %+.3f\n", a.value(),
              b.value(), scc(a, b));

  // --- 2. correlation makes or breaks SC arithmetic ------------------------
  // AND multiplies *only* for uncorrelated operands (paper Table I).
  std::printf("AND(a, b)              = %.3f (expect 0.375 = 0.5 * 0.75)\n",
              arith::multiply(a, b).value());

  // Same values from one shared source: SCC = +1 and AND computes min.
  convert::Sng shared1(std::make_unique<rng::Lfsr>(8, 1));
  convert::Sng shared2(std::make_unique<rng::Lfsr>(8, 1));
  const Bitstream c = shared1.generate_value(0.5, kN);
  const Bitstream d = shared2.generate_value(0.75, kN);
  std::printf("same-RNG pair: SCC = %+.3f, AND = %.3f (min, not product!)\n",
              scc(c, d), arith::multiply(c, d).value());

  // --- 3. fix it in-stream with a decorrelator ------------------------------
  core::Decorrelator decorrelator(8, std::make_unique<rng::Lfsr>(8, 19),
                                  std::make_unique<rng::Lfsr>(8, 37));
  const StreamPair decorrelated = core::apply(decorrelator, c, d);
  std::printf("after decorrelator: SCC = %+.3f, AND = %.3f (product again)\n",
              scc(decorrelated.x, decorrelated.y),
              arith::multiply(decorrelated.x, decorrelated.y).value());

  // ...or induce positive correlation with a synchronizer.
  core::Synchronizer synchronizer;
  const StreamPair synced = core::apply(synchronizer, a, b);
  std::printf("after synchronizer: SCC(a', b') = %+.3f\n",
              scc(synced.x, synced.y));

  // --- 4. the paper's improved operators ------------------------------------
  std::printf("sync_max(a, b)          = %.3f (expect 0.750)\n",
              core::sync_max(a, b).value());
  std::printf("sync_min(a, b)          = %.3f (expect 0.500)\n",
              core::sync_min(a, b).value());
  std::printf("desync_saturating_add   = %.3f (expect 1.000 saturated)\n",
              core::desync_saturating_add(a, b).value());

  // --- 5. what does the hardware cost? --------------------------------------
  const hw::CostReport sync_cost = hw::evaluate(hw::sync_max_netlist(1));
  const hw::CostReport ca_cost = hw::evaluate(hw::ca_max_netlist());
  std::printf(
      "\nhardware: sync-max %.1f um2 / %.2f uW vs CA-max %.1f um2 / %.2f uW\n"
      "(the paper's point: accurate max at a fraction of the CA cost)\n",
      sync_cost.area_um2, sync_cost.power_uw, ca_cost.area_um2,
      ca_cost.power_uw);

  // --- 6. or let the planner insert the circuits for you -------------------
  // Build the computation as a registry program; the planner reads each
  // operator's correlation requirement from the registry and inserts the
  // right manipulating circuit; any backend executes the plan bit-true.
  graph::GraphBuilder builder;
  const graph::Value x = builder.input("x", 0.5, /*rng_group=*/0);
  const graph::Value y = builder.input("y", 0.75, 0);  // shared RNG!
  builder.output(builder.op("multiply", {x, y}), "product");
  const graph::Program program = builder.build();

  const graph::ProgramPlan plan =
      graph::plan_program(program, graph::Strategy::kManipulation);
  const graph::ExecutionResult run =
      graph::make_backend(graph::BackendKind::kKernel)->run(program, plan, {});
  std::printf(
      "\nplanner: inserted %zu %s -> product = %.3f (exact %.3f)\n"
      "(see examples/auto_insertion.cpp for the full program API)\n",
      plan.inserted_units,
      plan.inserted_units == 1 ? "decorrelator" : "fixes", run.values[0],
      run.exact[0]);

  // --- 7. observability (opt-in) -------------------------------------------
  // With SC_TRACE and/or SC_METRICS set, every run above was recorded into
  // the process-wide telemetry context: spans for the planner and backends,
  // counters for bits processed and RNG draws.  Without the env vars this
  // block (and all instrumentation) is inert.
  if (obs::Telemetry* telemetry = obs::Telemetry::from_env()) {
    telemetry->flush();
    std::printf("\ntelemetry: %zu metrics recorded",
                telemetry->snapshot().counters.size());
    if (!telemetry->config().trace_path.empty()) {
      std::printf("; trace at %s (open in https://ui.perfetto.dev)",
                  telemetry->config().trace_path.c_str());
    }
    std::printf("\n%s", telemetry->snapshot().to_table().c_str());
  }
  return 0;
}
