/// Example: an application the paper enables but does not build - a full
/// SC 3x3 median filter whose compare-exchange elements are the paper's
/// synchronizer-based min/max (one synchronizer feeds both the AND-min and
/// the OR-max of each exchange).  Demonstrates composing the improved
/// operators into a 25-element sorting network.
///
/// Usage:
///   ./examples/median_filter              # synthetic noisy scene
///   ./examples/median_filter input.pgm    # your own image

#include <cstdio>
#include <random>
#include <string>

#include "img/image.hpp"
#include "img/kernels.hpp"
#include "img/median.hpp"

using namespace sc::img;

namespace {

// Image dumps are qualitative aids; a failed write should warn, not abort.
void save_or_warn(const sc::img::Image& image, const std::string& path) {
  if (!image.save_pgm(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Image clean;
  if (argc > 1) {
    std::string error;
    clean = Image::load_pgm(argv[1], &error);
    if (clean.empty()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], error.c_str());
      return 1;
    }
  } else {
    clean = Image::blobs(32, 32, 77);
  }

  // Add salt & pepper noise - the workload median filters exist for.
  Image noisy = clean;
  std::mt19937 gen(99);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t y = 0; y < noisy.height(); ++y) {
    for (std::size_t x = 0; x < noisy.width(); ++x) {
      const double c = coin(gen);
      if (c < 0.04) noisy.at(x, y) = 1.0;
      if (c > 0.96) noisy.at(x, y) = 0.0;
    }
  }

  const Image reference = median3x3(noisy);

  MedianConfig config;
  config.stream_length = 256;
  config.sync_depth = 1;
  const Image sc_filtered = sc_median_filter(noisy, config);

  std::printf("3x3 median filter via sync-min/max sorting network\n");
  std::printf("  image:                 %zux%zu\n", noisy.width(),
              noisy.height());
  std::printf("  noisy vs clean:        mean |err| = %.4f\n",
              mean_abs_error(noisy, clean));
  std::printf("  float median vs clean: mean |err| = %.4f\n",
              mean_abs_error(reference, clean));
  std::printf("  SC median vs float:    mean |err| = %.4f\n",
              mean_abs_error(sc_filtered, reference));
  std::printf("  SC median vs clean:    mean |err| = %.4f\n",
              mean_abs_error(sc_filtered, clean));

  save_or_warn(noisy, "/tmp/median_noisy.pgm");
  save_or_warn(reference, "/tmp/median_float.pgm");
  save_or_warn(sc_filtered, "/tmp/median_sc.pgm");
  std::printf(
      "\nwrote /tmp/median_{noisy,float,sc}.pgm\n"
      "25 compare-exchanges x (1 synchronizer + AND + OR) per pixel: the\n"
      "whole datapath is gates plus 2-flop FSMs - no binary conversion\n"
      "anywhere inside the network.\n");
  return 0;
}
