/// Example: correlation-aware dataflow construction with automatic
/// insertion of the paper's manipulating circuits.
///
/// Builds the expression  e = |a*b - c|  (a multiply feeding a subtractor),
/// lets the planner discover that (1) the multiply's operands share an RNG
/// and need a decorrelator, and (2) the subtractor's operands have shared
/// ancestry and need a synchronizer - then executes the graph bit-true
/// under each strategy and prices the inserted hardware.

#include <cstdio>

#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "hw/cost.hpp"

using namespace sc::graph;

int main() {
  // --- build |a*b - c| with a deliberately lazy RNG budget -----------------
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.8, /*rng_group=*/0);
  const NodeId b = g.add_input("b", 0.6, 0);  // shares a's RNG (cheap!)
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  const NodeId e = g.add_op(OpKind::kSubtractAbs, ab, c);
  g.mark_output(e);

  std::printf("expression: e = |a*b - c|, a=0.8 b=0.6 c=0.3\n");
  std::printf("exact value: %.4f\n\n", g.exact_value(e));

  for (Strategy strategy :
       {Strategy::kNone, Strategy::kRegeneration, Strategy::kManipulation}) {
    const Plan plan = plan_insertions(g, strategy);
    const ExecutionResult result = execute(g, plan);
    const sc::hw::CostReport cost = sc::hw::evaluate(plan.overhead);

    std::printf("strategy %-16s -> e = %.4f (|err| = %.4f), inserted %zu "
                "units, %6.1f um2, %5.2f uW\n",
                to_string(strategy).c_str(), result.values[0],
                result.abs_errors[0], plan.inserted_units, cost.area_um2,
                cost.power_uw);
    for (const PlannedFix& fix : plan.fixes) {
      if (fix.fix == FixKind::kNone) continue;
      std::printf("    node %u (%s): operands %s, requirement %s -> insert "
                  "%s\n",
                  fix.op_node, to_string(fix.op).c_str(),
                  to_string(fix.relation).c_str(),
                  to_string(fix.requirement).c_str(),
                  to_string(fix.fix).c_str());
    }
  }

  std::printf(
      "\nwithout fixes the same-RNG multiply computes min(a,b) and the\n"
      "subtractor sees the wrong correlation; the manipulation plan fixes\n"
      "both in-stream at a fraction of regeneration's power.\n");
  return 0;
}
