/// Example: registry programs with automatic insertion of the paper's
/// manipulating circuits, executed on pluggable backends.
///
/// Builds  e = |a*b - c|  with the fluent GraphBuilder (a multiply feeding
/// a subtractor, plus a Bernstein polynomial of the result fed three
/// copies of one stream), lets the planner discover every correlation
/// mismatch — the multiply's shared-RNG operands, the subtractor's
/// computation-induced ancestry, the Bernstein unit's copy pairs — then
/// executes the program bit-true under each strategy on each backend and
/// prices the inserted hardware.  The planner knows nothing about any of
/// these operators beyond their registry definitions.

#include <cstdio>

#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "hw/cost.hpp"
#include "opt/optimize.hpp"

using namespace sc::graph;

int main() {
  // --- build with a deliberately lazy RNG budget ---------------------------
  GraphBuilder b;
  const Value a = b.input("a", 0.8, /*rng_group=*/0);
  const Value v = b.input("b", 0.6, 0);  // shares a's RNG (cheap!)
  const Value c = b.input("c", 0.3, 1);
  const Value e = b.op("subtract", {b.op("multiply", {a, v}), c});
  const Value poly = b.op("bernstein-x2-3", {e, e, e});  // needs 3 indep copies
  b.output(e, "edge").output(poly, "edge^2");
  const Program program = b.build();

  std::printf("program: edge = |a*b - c|, edge^2 via Bernstein; a=0.8 b=0.6 "
              "c=0.3\n");
  std::printf("exact: edge = %.4f, edge^2 = %.4f\n\n",
              program.exact_value(program.find("edge")),
              program.exact_value(program.find("edge^2")));

  const auto backend = make_backend(BackendKind::kKernel);
  for (Strategy strategy :
       {Strategy::kNone, Strategy::kRegeneration, Strategy::kManipulation}) {
    const ProgramPlan plan = plan_program(program, strategy);
    const ExecutionResult result = backend->run(program, plan, {});
    const sc::hw::CostReport cost = sc::hw::evaluate(plan.overhead);

    std::printf("strategy %-16s -> edge = %.4f  edge^2 = %.4f (mean |err| = "
                "%.4f), inserted %zu units, %7.1f um2, %5.2f uW\n",
                to_string(strategy).c_str(), result.values[0],
                result.values[1], result.mean_abs_error, plan.inserted_units,
                cost.area_um2, cost.power_uw);
    for (const PairFix& fix : plan.fixes) {
      if (fix.fix == FixKind::kNone) continue;
      std::printf("    node %u (%s) operands (%u, %u): %s, requires %s -> "
                  "insert %s\n",
                  fix.op_node, program.node(fix.op_node).name.c_str(),
                  fix.operand_a, fix.operand_b,
                  to_string(fix.relation).c_str(),
                  to_string(fix.requirement).c_str(),
                  to_string(fix.fix).c_str());
    }
  }

  // --- the same program, three interchangeable backends --------------------
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  std::printf("\nbackends (same plan, bit-identical by construction):\n");
  for (BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const auto be = make_backend(kind);
    const ExecutionResult r = be->run(program, plan, {});
    std::printf("  %-10s edge = %.4f, edge^2 = %.4f\n", be->name().c_str(),
                r.values[0], r.values[1]);
  }

  // --- the optimizer front -------------------------------------------------
  // The Bernstein unit's three copies of `e` are a same-source group: the
  // planner's pairwise insertion charges 3 decorrelators, the optimizer's
  // chain pass (paper §III-C) needs only 2 single-buffer links.  Passing
  // ExecConfig::optimize = true runs the same rewrite inside any backend.
  const sc::opt::OptResult optimized = sc::opt::optimize(program, plan);
  std::printf("\noptimizer (opt::optimize, or ExecConfig::optimize = true):\n"
              "%s\n",
              optimized.summary().c_str());
  ExecConfig optimizing;
  optimizing.optimize = true;
  const ExecutionResult opt_run = backend->run(program, plan, optimizing);
  std::printf("  optimized run: edge = %.4f, edge^2 = %.4f (mean |err| = "
              "%.4f), %zu corrections instead of %zu\n",
              opt_run.values[0], opt_run.values[1], opt_run.mean_abs_error,
              optimized.plan.inserted_units, plan.inserted_units);

  std::printf(
      "\nwithout fixes the same-RNG multiply computes min(a,b), the\n"
      "subtractor sees the wrong correlation, and the Bernstein popcount\n"
      "collapses; the manipulation plan fixes all of it in-stream at a\n"
      "fraction of regeneration's power, and the optimizer prunes the\n"
      "insertions themselves.\n");
  return 0;
}
