/// Example: the paper's §IV Gaussian-blur + Roberts-cross accelerator on a
/// user image (PGM) or a synthetic scene, comparing the three correlation
/// management strategies and writing all outputs as PGM files.
///
/// Usage:
///   ./examples/image_pipeline                 # 48x48 synthetic scene
///   ./examples/image_pipeline input.pgm       # your own grayscale image
///   ./examples/image_pipeline input.pgm out/  # choose output directory

#include <cstdio>
#include <string>

#include "img/image.hpp"
#include "img/kernels.hpp"
#include "img/sc_pipeline.hpp"

using namespace sc::img;

namespace {

// Image dumps are qualitative aids; a failed write should warn, not abort.
void save_or_warn(const sc::img::Image& image, const std::string& path) {
  if (!image.save_pgm(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Image input;
  if (argc > 1) {
    std::string error;
    input = Image::load_pgm(argv[1], &error);
    if (input.empty()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], error.c_str());
      return 1;
    }
    std::printf("loaded %s (%zux%zu)\n", argv[1], input.width(),
                input.height());
  } else {
    input = Image::synthetic_scene(48, 48, 2026);
    std::printf("using 48x48 synthetic scene (pass a .pgm path to override)\n");
  }
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp";

  PipelineConfig config;  // N = 256, 10x10 tiles, depth-2 synchronizers

  std::printf("\n%-22s %12s %14s %10s\n", "design", "area (um2)",
              "energy (nJ/f)", "abs error");
  std::printf("%-22s %12s %14s %10s\n", "floating point", "-", "-", "0.000");

  const Image reference = reference_pipeline(input);
  save_or_warn(reference, out_dir + "/pipeline_float.pgm");

  for (Variant variant : {Variant::kNoManipulation, Variant::kRegeneration,
                          Variant::kSynchronizer}) {
    const PipelineResult result = run_pipeline(input, variant, config);
    std::printf("%-22s %12.0f %14.1f %10.3f\n", to_string(variant).c_str(),
                result.cost.report.area_um2, result.cost.energy_nj_frame,
                result.error);
    std::string name = out_dir + "/pipeline_";
    switch (variant) {
      case Variant::kNoManipulation:
        name += "none.pgm";
        break;
      case Variant::kRegeneration:
        name += "regen.pgm";
        break;
      case Variant::kSynchronizer:
        name += "sync.pgm";
        break;
    }
    save_or_warn(result.output, name);
  }

  save_or_warn(input, out_dir + "/pipeline_input.pgm");
  std::printf(
      "\nwrote pipeline_{input,float,none,regen,sync}.pgm to %s\n"
      "look at pipeline_none.pgm: without correlation manipulation the\n"
      "XOR edge detector fires everywhere; the synchronizer restores the\n"
      "clean edge map at a fraction of regeneration's energy.\n",
      out_dir.c_str());
  return 0;
}
