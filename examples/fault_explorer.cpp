/// \file fault_explorer.cpp
/// Tour of the fault-injection subsystem (src/fault/):
///
///  1. attach error models to named stream edges of a registry program and
///     watch accuracy and correlation degrade,
///  2. corrupt a planned fix circuit's FSM state mid-stream and measure how
///     long the output takes to recover,
///  3. run the full resilience sweep (the ReCo1 experiment).
///
/// Every fault decision derives from (plan seed, edge name, bit index), so
/// rerunning this binary — on any backend — reproduces the exact same
/// corrupted bits.

#include <cstdio>

#include "bitstream/correlation.hpp"
#include "fault/fault.hpp"
#include "fault/sweep.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

using namespace sc;

int main() {
  // --- 1. edge faults on a planned program ---------------------------------
  // Shared-trace max: the paper's correlation-dependent circuit (OR gate
  // computes max only while SCC = +1).  Bit flips erode that correlation.
  graph::GraphBuilder b;
  const graph::Value x = b.input("x", 0.7, 0);
  const graph::Value y = b.input("y", 0.45, 0);  // same RNG group: SCC = +1
  b.output(b.op("max", {x, y}), "out");
  const graph::Program program = b.build();
  const graph::ProgramPlan plan =
      plan_program(program, graph::Strategy::kManipulation);

  const auto backend = graph::make_backend(graph::BackendKind::kKernel);
  graph::ExecConfig config;
  config.stream_length = 4096;
  config.width = 12;

  std::printf("max(0.7, 0.45) on a shared trace, i.i.d. flips on both "
              "inputs:\n");
  std::printf("  %-8s %-12s %-12s %-12s\n", "rate", "input SCC", "|err|",
              "flipped bits");
  for (const double rate : {0.0, 0.01, 0.05, 0.1}) {
    fault::FaultPlan faults;
    faults.edges.push_back({"x", fault::ErrorKind::kBitFlip, rate});
    faults.edges.push_back(
        {"y", fault::ErrorKind::kBitFlip, rate, 16, /*salt=*/1});
    config.fault_plan = rate == 0.0 ? nullptr : &faults;
    const graph::ExecutionResult result = backend->run(program, plan, config);

    // Count the actually flipped bits by re-deriving the error process —
    // the same hashes the backends used.
    std::size_t flipped = 0;
    for (const fault::EdgeFault& fault : faults.edges) {
      if (rate == 0.0) break;
      const std::uint64_t key = fault::fault_key(faults.seed, fault.edge,
                                                 fault.kind, fault.salt);
      for (std::size_t i = 0; i < config.stream_length; ++i) {
        if (fault::draw_at(key, i, fault.rate)) ++flipped;
      }
    }
    const double input_scc = scc(result.streams[program.find("x")],
                                 result.streams[program.find("y")]);
    std::printf("  %-8.3f %-12.3f %-12.4f %zu\n", rate, input_scc,
                result.abs_errors[0], flipped);
  }

  // --- 2. FSM state corruption ---------------------------------------------
  // Independent inputs give max a planned synchronizer; wipe its credit
  // register mid-stream (an SEU) and diff against the clean run.
  graph::GraphBuilder b2;
  const graph::Value u = b2.input("u", 0.7, 0);
  const graph::Value v = b2.input("v", 0.45, 1);
  b2.output(b2.op("max", {u, v}), "out");
  const graph::Program resync = b2.build();
  const graph::ProgramPlan resync_plan =
      plan_program(resync, graph::Strategy::kManipulation);

  config.fault_plan = nullptr;
  const graph::ExecutionResult clean = backend->run(resync, resync_plan,
                                                    config);
  fault::FaultPlan seu;
  seu.fsms.push_back({"out", /*first=*/2048, /*period=*/0, /*lane=*/-1});
  config.fault_plan = &seu;
  const graph::ExecutionResult hit = backend->run(resync, resync_plan, config);

  const graph::NodeId out = resync.outputs()[0];
  std::size_t disturbed = 0, last = 0;
  for (std::size_t i = 0; i < clean.streams[out].size(); ++i) {
    if (clean.streams[out].get(i) != hit.streams[out].get(i)) {
      ++disturbed;
      last = i;
    }
  }
  std::printf("\nsynchronizer credit wiped at cycle 2048: %zu output bits "
              "disturbed, recovered after %zu cycles\n",
              disturbed, disturbed == 0 ? 0 : last - 2048 + 1);

  // --- 3. the full sweep ---------------------------------------------------
  std::printf("\nfull resilience sweep (fault::sweep, mean function-error "
              "inflation over rates >= 0.01):\n");
  fault::SweepConfig sweep_config;
  const fault::SweepReport report = fault::sweep(sweep_config);
  for (const auto& [circuit, regime] :
       {std::pair<const char*, const char*>{"max", "correlated"},
        {"min", "correlated"},
        {"multiply", "decorrelated"},
        {"max", "resynchronized"}}) {
    std::printf("  %-10s %-14s %+.4f\n", circuit, regime,
                report.mean_inflation(circuit, regime));
  }
  std::printf("ReCo1 ordering (decorrelated degrades most gracefully): %s\n",
              report.reco1_ordering_holds() ? "holds" : "violated");
  return 0;
}
