/// Example: interactive-style correlation explorer.  Given two values and
/// an RNG configuration, shows the generated streams, their SCC, what every
/// basic SC gate computes on them, and what each correlation manipulating
/// circuit does to the pair.
///
/// Usage:
///   ./examples/correlation_explorer               # defaults 0.5 0.75
///   ./examples/correlation_explorer 0.3 0.6       # custom values
///   ./examples/correlation_explorer 0.3 0.6 lfsr  # same-LFSR sources

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "arith/gates.hpp"
#include "bitstream/correlation.hpp"
#include "convert/sng.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/isolator.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"

using namespace sc;

namespace {

void describe_pair(const char* label, const Bitstream& x, const Bitstream& y) {
  std::printf("%-18s pX=%.3f pY=%.3f SCC=%+.3f | AND=%.3f OR=%.3f XOR=%.3f\n",
              label, x.value(), y.value(), scc(x, y),
              arith::and_gate(x, y).value(), arith::or_gate(x, y).value(),
              arith::xor_gate(x, y).value());
}

}  // namespace

int main(int argc, char** argv) {
  const double px = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double py = argc > 2 ? std::atof(argv[2]) : 0.75;
  const bool same_lfsr = argc > 3 && std::strcmp(argv[3], "lfsr") == 0;
  constexpr std::size_t kN = 256;

  std::printf("=== correlation explorer: pX=%.3f pY=%.3f (%s sources) ===\n\n",
              px, py, same_lfsr ? "same-LFSR" : "VDC x Halton-3");

  Bitstream x, y;
  if (same_lfsr) {
    convert::Sng gen_x(std::make_unique<rng::Lfsr>(8, 1));
    convert::Sng gen_y(std::make_unique<rng::Lfsr>(8, 1));
    x = gen_x.generate_value(px, kN);
    y = gen_y.generate_value(py, kN);
  } else {
    convert::Sng gen_x(std::make_unique<rng::VanDerCorput>(8));
    convert::Sng gen_y(std::make_unique<rng::Halton>(8, 3));
    x = gen_x.generate_value(px, kN);
    y = gen_y.generate_value(py, kN);
  }

  std::printf("first 64 bits:\n  X: %s...\n  Y: %s...\n\n",
              x.to_string().substr(0, 64).c_str(),
              y.to_string().substr(0, 64).c_str());

  std::printf("reference functions of the gates:\n"
              "  product=%.3f  min=%.3f  max=%.3f  |diff|=%.3f  sat-sum=%.3f\n\n",
              px * py, std::min(px, py), std::max(px, py),
              std::abs(px - py), std::min(1.0, px + py));

  describe_pair("as generated:", x, y);

  {
    core::Synchronizer sync;
    const auto out = core::apply(sync, x, y);
    describe_pair("synchronized:", out.x, out.y);
  }
  {
    core::Desynchronizer desync;
    const auto out = core::apply(desync, x, y);
    describe_pair("desynchronized:", out.x, out.y);
  }
  {
    core::Decorrelator dec(8, std::make_unique<rng::Lfsr>(8, 19),
                           std::make_unique<rng::Lfsr>(8, 37));
    const auto out = core::apply(dec, x, y);
    describe_pair("decorrelated:", out.x, out.y);
  }
  {
    core::IsolatorPair iso(1);
    const auto out = core::apply(iso, x, y);
    describe_pair("isolator (d=1):", out.x, out.y);
  }
  {
    core::TrackingForecastMemory::Config config;
    core::TfmPair tfm(config, std::make_unique<rng::Lfsr>(8, 31),
                      std::make_unique<rng::Lfsr>(8, 47));
    const auto out = core::apply(tfm, x, y);
    describe_pair("TFM pair:", out.x, out.y);
  }

  std::printf(
      "\nread the AND/OR/XOR columns against the reference line: at SCC=+1\n"
      "AND=min, OR=max, XOR=|diff|; at SCC=-1 OR saturates; at SCC=0\n"
      "AND=product (paper Table I / Fig. 2).\n");
  return 0;
}
