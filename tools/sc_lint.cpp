/// \file sc_lint.cpp
/// Static-analysis CLI over stochastic-computing programs.
///
/// Plans each input program (graph::plan_program) and runs the full
/// src/analysis/ pass — seed provenance + collisions, correlation
/// dataflow, redundancy, fragility — printing human-readable diagnostics
/// or the machine JSON schema checked by tools/validate_lint.py.
///
/// Inputs are .sct files (analysis::parse_program; see
/// src/analysis/text_format.hpp for the grammar) and/or built-in builder
/// examples (--example, --list-examples).
///
/// Exit status: 0 clean or warnings only, 1 when any source has
/// error-class findings (requirement-violation, exact seed-collision),
/// 2 on usage errors, 3 when any source fails to parse (in --json mode
/// the failure is reported as a machine-readable parse_error object and
/// the remaining sources are still linted).

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/text_format.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "opt/optimize.hpp"

namespace {

using sc::analysis::AnalyzerConfig;
using sc::graph::GraphBuilder;
using sc::graph::Program;
using sc::graph::Strategy;
using sc::graph::Value;

struct Options {
  std::vector<std::string> files;
  std::vector<std::string> examples;
  bool json = false;
  bool optimize = false;
  Strategy strategy = Strategy::kManipulation;
  AnalyzerConfig analyzer;
};

constexpr const char* kUsage = R"(usage: sc_lint [options] [program.sct ...]

Statically verifies stochastic-computing programs: correlation
requirements at every gate, RNG/seed provenance and collisions,
redundant correction circuits, decorrelator-chain fragility.

options:
  --example <name>       lint a built-in example program (repeatable)
  --list-examples        list built-in example names and exit
  --json                 machine-readable output (schema: validate_lint.py)
  --strategy <s>         planner strategy: manipulation (default),
                         regeneration, none
  --optimize             run the opt:: pipeline first and lint the result
  --seed <n>             base seed of the derivation scheme (default 3)
  --width <n>            SNG comparator width (default 8)
  --length <n>           stream length in bits (default 256)
  --sync-depth <n>       inserted (de)synchronizer depth (default 2)
  --shuffle-depth <n>    inserted decorrelator depth (default 8)
  --target-rmse <x>      requested per-output RMSE: emits
                         insufficient-stream-length when the predicted
                         error bound at --length exceeds it (default off)
  -h, --help             this text

exit status: 0 clean / warnings only, 1 error-class findings, 2 usage
errors, 3 parse failure (reported as a parse_error object in --json).
)";

// ------------------------------------------------------ builder examples

Program example_fig2_multiply() {
  GraphBuilder builder;
  const Value x = builder.input("x", 0.8, 0);
  const Value y = builder.input("y", 0.6, 0);
  builder.output(builder.op("multiply", {x, y}), "prod");
  return builder.build();
}

Program example_bernstein_shared() {
  GraphBuilder builder;
  const Value x = builder.input("x", 0.7, 0);
  builder.output(builder.op("bernstein-x2-3", {x, x, x}), "poly");
  return builder.build();
}

Program example_roberts_cross() {
  GraphBuilder builder;
  const Value p00 = builder.input("p00", 0.9, 0);
  const Value p01 = builder.input("p01", 0.7, 0);
  const Value p10 = builder.input("p10", 0.4, 0);
  const Value p11 = builder.input("p11", 0.2, 0);
  builder.output(builder.op("roberts-cross", {p00, p01, p10, p11}), "edge");
  return builder.build();
}

Program example_scaled_add() {
  GraphBuilder builder;
  const Value a = builder.input("a", 0.3, 0);
  const Value b = builder.input("b", 0.5, 1);
  builder.output(builder.op("scaled-add", {a, b}), "sum");
  return builder.build();
}

const std::map<std::string, Program (*)()>& examples() {
  static const std::map<std::string, Program (*)()> table = {
      {"fig2-multiply", &example_fig2_multiply},
      {"bernstein-shared", &example_bernstein_shared},
      {"roberts-cross", &example_roberts_cross},
      {"scaled-add", &example_scaled_add},
  };
  return table;
}

// --------------------------------------------------------------- options

bool parse_unsigned(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t consumed = 0;
    out = std::stoull(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

int parse_options(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        std::cerr << "sc_lint: " << arg << " needs an argument\n";
        return false;
      }
      out = argv[++i];
      return true;
    };
    const auto next_unsigned = [&](std::uint64_t& out) {
      std::string text;
      if (!next(text)) return false;
      if (!parse_unsigned(text, out)) {
        std::cerr << "sc_lint: malformed number '" << text << "'\n";
        return false;
      }
      return true;
    };
    std::uint64_t number = 0;
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-examples") {
      for (const auto& [name, make] : examples()) {
        (void)make;
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--example") {
      std::string name;
      if (!next(name)) return 2;
      if (examples().count(name) == 0) {
        std::cerr << "sc_lint: unknown example '" << name
                  << "' (see --list-examples)\n";
        return 2;
      }
      options.examples.push_back(name);
    } else if (arg == "--strategy") {
      std::string name;
      if (!next(name)) return 2;
      if (name == "manipulation") {
        options.strategy = Strategy::kManipulation;
      } else if (name == "regeneration") {
        options.strategy = Strategy::kRegeneration;
      } else if (name == "none") {
        options.strategy = Strategy::kNone;
      } else {
        std::cerr << "sc_lint: unknown strategy '" << name << "'\n";
        return 2;
      }
    } else if (arg == "--seed") {
      if (!next_unsigned(number)) return 2;
      options.analyzer.seed = static_cast<std::uint32_t>(number);
    } else if (arg == "--width") {
      if (!next_unsigned(number)) return 2;
      options.analyzer.width = static_cast<unsigned>(number);
    } else if (arg == "--length") {
      if (!next_unsigned(number)) return 2;
      options.analyzer.stream_length = static_cast<std::size_t>(number);
    } else if (arg == "--sync-depth") {
      if (!next_unsigned(number)) return 2;
      options.analyzer.sync_depth = static_cast<unsigned>(number);
    } else if (arg == "--shuffle-depth") {
      if (!next_unsigned(number)) return 2;
      options.analyzer.shuffle_depth = static_cast<std::size_t>(number);
    } else if (arg == "--target-rmse") {
      std::string text;
      if (!next(text)) return 2;
      double rmse = 0.0;
      if (!parse_double(text, rmse) || rmse < 0.0) {
        std::cerr << "sc_lint: malformed RMSE '" << text << "'\n";
        return 2;
      }
      options.analyzer.target_rmse = rmse;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sc_lint: unknown option '" << arg << "'\n"
                << kUsage;
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.examples.empty()) {
    std::cerr << "sc_lint: no inputs (give .sct files or --example)\n"
              << kUsage;
    return 2;
  }
  return -1;  // keep going
}

// ------------------------------------------------------------------ lint

/// Lints one named program; returns its report.
sc::analysis::AnalysisReport lint(const Program& program,
                                  const Options& options) {
  sc::graph::PlannerConfig planner_config;
  planner_config.sync_depth = options.analyzer.sync_depth;
  planner_config.shuffle_depth = options.analyzer.shuffle_depth;
  planner_config.width = options.analyzer.width;
  sc::graph::ProgramPlan plan =
      sc::graph::plan_program(program, options.strategy, planner_config);
  if (!options.optimize) {
    return sc::analysis::analyze(program, plan, options.analyzer);
  }
  sc::opt::OptConfig opt_config;
  opt_config.planner = planner_config;
  opt_config.width = options.analyzer.width;
  opt_config.dead_fix_elimination = true;
  const sc::opt::OptResult optimized =
      sc::opt::optimize(program, plan, opt_config);
  return sc::analysis::analyze(optimized.program, optimized.plan,
                               options.analyzer);
}

/// Minimal JSON string escaping for parse_error messages (the analyzer's
/// own to_json never emits user-controlled text; parser messages quote
/// the offending source line, which may hold anything).
std::string json_escape(const std::string& text) {
  std::ostringstream out;
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  const int early = parse_options(argc, argv, options);
  if (early >= 0) return early;

  std::vector<std::pair<std::string, Program>> sources;
  // path -> parse failure message; reported in-band (--json) or on
  // stderr, with a distinct exit status so CI can tell "correct program
  // with findings" (1) apart from "not a program at all" (3).
  std::vector<std::pair<std::string, std::string>> parse_failures;
  for (const std::string& name : options.examples) {
    sources.emplace_back("example:" + name, examples().at(name)());
  }
  for (const std::string& path : options.files) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "sc_lint: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    try {
      sources.emplace_back(path, sc::analysis::parse_program(text.str()));
    } catch (const std::invalid_argument& error) {
      parse_failures.emplace_back(path, error.what());
      if (!options.json) {
        std::cerr << "sc_lint: " << path << ": " << error.what() << "\n";
      }
    }
  }

  bool errors = false;
  std::ostringstream json;
  json << "[";
  bool first = true;
  for (const auto& [path, message] : parse_failures) {
    if (!options.json) continue;
    if (!first) json << ",";
    first = false;
    json << "\n{\n  \"source\": \"" << json_escape(path)
         << "\",\n  \"parse_error\": {\n    \"message\": \""
         << json_escape(message) << "\"\n  }\n}";
  }
  for (const auto& [name, program] : sources) {
    const sc::analysis::AnalysisReport report = lint(program, options);
    errors = errors || report.has_errors();
    if (options.json) {
      if (!first) json << ",";
      first = false;
      json << "\n" << report.to_json(name);
    } else {
      std::cout << "== " << name << " ==\n" << report.to_text() << "\n";
    }
  }
  if (options.json) {
    json << "\n]";
    std::cout << json.str() << "\n";
  }
  if (!parse_failures.empty()) return 3;
  return errors ? 1 : 0;
}
