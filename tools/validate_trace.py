#!/usr/bin/env python3
"""CI validator for the telemetry subsystem's on-disk artifacts.

Usage:
    validate_trace.py --trace trace.json [--metrics metrics.json]

Checks, in order:
  1. the trace file is well-formed JSON with the Chrome trace-event shape
     (an object with a "traceEvents" array),
  2. every event carries the required fields (name, ph, ts, pid, tid),
     complete events ("ph": "X") additionally a non-negative dur, counter
     events ("ph": "C") a numeric args payload,
  3. timestamps are monotonically non-decreasing in file order (the tracer
     serializes sorted by ts, so an out-of-order event means the writer
     broke), and no timestamp is negative,
  4. if --metrics is given, the metrics snapshot has the registry schema:
     top-level counters/gauges/histograms objects, integer counter values,
     gauges with value/max, histograms with count/sum/buckets.

Exits nonzero with a message on the first violation; prints a one-line
summary on success.  Stdlib only — safe for any CI image with python3.
"""

import argparse
import json
import sys


def fail(message):
    print("validate_trace: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail("%s: not readable as JSON: %s" % (path, err))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("%s: missing top-level 'traceEvents' array" % path)
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("%s: 'traceEvents' must be a non-empty array" % path)

    required = ("name", "ph", "ts", "pid", "tid")
    last_ts = -1.0
    phases = {}
    for index, event in enumerate(events):
        where = "%s: event %d" % (path, index)
        if not isinstance(event, dict):
            fail(where + ": not an object")
        for field in required:
            if field not in event:
                fail(where + ": missing required field '%s'" % field)
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(where + ": 'ts' must be a non-negative number, got %r" % ts)
        if ts < last_ts:
            fail(where + ": timestamps not monotonic (%s after %s)"
                 % (ts, last_ts))
        last_ts = ts
        ph = event["ph"]
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(where + ": complete event needs non-negative 'dur'")
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                fail(where + ": counter event needs numeric 'args'")
    return len(events), phases


def validate_metrics(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail("%s: not readable as JSON: %s" % (path, err))

    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail("%s: missing top-level '%s' object" % (path, section))
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail("%s: counter %s must be a non-negative integer, got %r"
                 % (path, name, value))
    for name, gauge in doc["gauges"].items():
        if not isinstance(gauge, dict) or "value" not in gauge \
                or "max" not in gauge:
            fail("%s: gauge %s must carry 'value' and 'max'" % (path, name))
    for name, hist in doc["histograms"].items():
        for field in ("count", "sum", "buckets"):
            if field not in hist:
                fail("%s: histogram %s missing '%s'" % (path, name, field))
        if not isinstance(hist["buckets"], dict):
            fail("%s: histogram %s 'buckets' must be an object" % (path, name))
    return (len(doc["counters"]), len(doc["gauges"]), len(doc["histograms"]))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", required=True,
                        help="Chrome trace-event JSON written via SC_TRACE")
    parser.add_argument("--metrics",
                        help="metrics snapshot JSON written via SC_METRICS")
    options = parser.parse_args()

    count, phases = validate_trace(options.trace)
    summary = "validate_trace: OK: %s: %d events (%s)" % (
        options.trace, count,
        ", ".join("%s=%d" % kv for kv in sorted(phases.items())))
    if options.metrics:
        counters, gauges, histograms = validate_metrics(options.metrics)
        summary += "; %s: %d counters, %d gauges, %d histograms" % (
            options.metrics, counters, gauges, histograms)
    print(summary)


if __name__ == "__main__":
    main()
