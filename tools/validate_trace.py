#!/usr/bin/env python3
"""CI validator for the telemetry subsystem's on-disk artifacts.

Usage:
    validate_trace.py --trace trace.json [--metrics metrics.json]
        [--collapsed profile.collapsed] [--prometheus metrics.prom]

Checks, in order:
  1. the trace file is well-formed JSON with the Chrome trace-event shape
     (an object with a "traceEvents" array),
  2. every event carries the required fields (name, ph, ts, pid, tid),
     complete events ("ph": "X") additionally a non-negative dur, counter
     events ("ph": "C") a numeric args payload,
  3. timestamps are monotonically non-decreasing in file order (the tracer
     serializes sorted by ts, so an out-of-order event means the writer
     broke), and no timestamp is negative,
  4. if --metrics is given, the metrics snapshot has the registry schema:
     top-level counters/gauges/histograms objects, integer counter values,
     gauges with value/max, histograms with count/sum/buckets,
  5. if --collapsed is given, the profiler output (SC_PROFILE) is valid
     collapsed-stack: every line is "frame(;frame)* <positive integer>",
     flamegraph.pl-consumable, and stack prefixes are consistent (a line
     "a;b;c N" implies frames a and a;b exist as paths),
  6. if --prometheus is given, the exposition parses: sample lines are
     `name{labels} value` with grammar-legal metric names, every # TYPE
     kind is known, and histogram _bucket series are cumulative with the
     +Inf bucket equal to _count.

Exits nonzero with a message on the first violation; prints a one-line
summary on success.  Stdlib only — safe for any CI image with python3.
"""

import argparse
import json
import sys


def fail(message):
    print("validate_trace: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail("%s: not readable as JSON: %s" % (path, err))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("%s: missing top-level 'traceEvents' array" % path)
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("%s: 'traceEvents' must be a non-empty array" % path)

    required = ("name", "ph", "ts", "pid", "tid")
    last_ts = -1.0
    phases = {}
    for index, event in enumerate(events):
        where = "%s: event %d" % (path, index)
        if not isinstance(event, dict):
            fail(where + ": not an object")
        for field in required:
            if field not in event:
                fail(where + ": missing required field '%s'" % field)
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(where + ": 'ts' must be a non-negative number, got %r" % ts)
        if ts < last_ts:
            fail(where + ": timestamps not monotonic (%s after %s)"
                 % (ts, last_ts))
        last_ts = ts
        ph = event["ph"]
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(where + ": complete event needs non-negative 'dur'")
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                fail(where + ": counter event needs numeric 'args'")
    return len(events), phases


def validate_metrics(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail("%s: not readable as JSON: %s" % (path, err))

    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail("%s: missing top-level '%s' object" % (path, section))
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail("%s: counter %s must be a non-negative integer, got %r"
                 % (path, name, value))
    for name, gauge in doc["gauges"].items():
        if not isinstance(gauge, dict) or "value" not in gauge \
                or "max" not in gauge:
            fail("%s: gauge %s must carry 'value' and 'max'" % (path, name))
    for name, hist in doc["histograms"].items():
        for field in ("count", "sum", "buckets"):
            if field not in hist:
                fail("%s: histogram %s missing '%s'" % (path, name, field))
        if not isinstance(hist["buckets"], dict):
            fail("%s: histogram %s 'buckets' must be an object" % (path, name))
    return (len(doc["counters"]), len(doc["gauges"]), len(doc["histograms"]))


def validate_collapsed(path):
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail("%s: not readable: %s" % (path, err))
    if not lines:
        fail("%s: empty collapsed-stack profile" % path)

    paths = set()
    for index, line in enumerate(lines):
        where = "%s: line %d" % (path, index + 1)
        space = line.rfind(" ")
        if space <= 0:
            fail(where + ": expected 'frame(;frame)* value', got %r" % line)
        stack, value = line[:space], line[space + 1:]
        if not value.isdigit() or int(value) <= 0:
            fail(where + ": value must be a positive integer, got %r" % value)
        frames = stack.split(";")
        if any(not frame for frame in frames):
            fail(where + ": empty frame in %r" % stack)
        paths.add(stack)

    # Prefix consistency: interior nodes with zero exclusive time are
    # legitimately absent, but a path must never contradict itself (the
    # same stack emitted twice would double-count in flamegraph.pl).
    if len(paths) != len(lines):
        fail("%s: duplicate stack lines" % path)
    return len(lines)


def validate_prometheus(path):
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail("%s: not readable: %s" % (path, err))
    if not lines:
        fail("%s: empty exposition" % path)

    def name_ok(name):
        if not name:
            return False
        first, rest = name[0], name[1:]
        alpha = first.isalpha() or first in "_:"
        return alpha and all(c.isalnum() or c in "_:" for c in rest)

    samples = 0
    buckets = {}  # series name -> [(le, cumulative)]
    counts = {}
    for index, line in enumerate(lines):
        where = "%s: line %d" % (path, index + 1)
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                fail(where + ": malformed TYPE comment: %r" % line)
            continue
        if line.startswith("#"):
            fail(where + ": unknown comment: %r" % line)
        space = line.rfind(" ")
        if space <= 0:
            fail(where + ": expected 'name value': %r" % line)
        series, value = line[:space], line[space + 1:]
        label_start = series.find("{")
        name = series if label_start < 0 else series[:label_start]
        if label_start >= 0 and not series.endswith("}"):
            fail(where + ": unterminated label block: %r" % line)
        if not name_ok(name):
            fail(where + ": illegal metric name %r" % name)
        try:
            number = float(value)
        except ValueError:
            fail(where + ": unparsable value %r" % value)
        samples += 1
        if name.endswith("_bucket"):
            le_at = series.find('le="')
            if le_at < 0:
                fail(where + ": _bucket sample without an le label")
            le = series[le_at + 4:series.find('"', le_at + 4)]
            buckets.setdefault(name, []).append((le, number))
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = number

    for name, series in buckets.items():
        base = name[:-len("_bucket")]
        cumulative = -1.0
        for le, number in series:
            if number < cumulative:
                fail("%s: %s buckets not cumulative at le=%s"
                     % (path, name, le))
            cumulative = number
        if series[-1][0] != "+Inf":
            fail("%s: %s missing +Inf bucket" % (path, name))
        if base in counts and series[-1][1] != counts[base]:
            fail("%s: %s +Inf bucket %s != _count %s"
                 % (path, name, series[-1][1], counts[base]))
    return samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", required=True,
                        help="Chrome trace-event JSON written via SC_TRACE")
    parser.add_argument("--metrics",
                        help="metrics snapshot JSON written via SC_METRICS")
    parser.add_argument("--collapsed",
                        help="collapsed-stack profile written via SC_PROFILE")
    parser.add_argument("--prometheus",
                        help="Prometheus exposition (obs::write_prometheus)")
    options = parser.parse_args()

    count, phases = validate_trace(options.trace)
    summary = "validate_trace: OK: %s: %d events (%s)" % (
        options.trace, count,
        ", ".join("%s=%d" % kv for kv in sorted(phases.items())))
    if options.metrics:
        counters, gauges, histograms = validate_metrics(options.metrics)
        summary += "; %s: %d counters, %d gauges, %d histograms" % (
            options.metrics, counters, gauges, histograms)
    if options.collapsed:
        summary += "; %s: %d stacks" % (options.collapsed,
                                        validate_collapsed(options.collapsed))
    if options.prometheus:
        summary += "; %s: %d samples" % (
            options.prometheus, validate_prometheus(options.prometheus))
    print(summary)


if __name__ == "__main__":
    main()
