#!/usr/bin/env python3
"""CI validator for sc_lint's --json output.

Usage:
    sc_lint --json program.sct | validate_lint.py
    validate_lint.py --file lint.json

Checks, in order:
  1. the input is well-formed JSON: one report object or an array of them,
  2. every report carries source (string), summary (errors/warnings/notes
     as non-negative integers), fragility and error_bound (non-negative
     numbers), diagnostics (array), pairs (array) — or is a parse-failure
     object {source, parse_error: {message}} (sc_lint exit status 3),
  3. every diagnostic has a known stable id, a severity in
     {error, warning, note}, an integer node (or -1), and a non-empty
     message; severities are consistent with the id's documented class,
  4. every pair prediction names its op_node / operand slots, a known
     requirement and fix kind, SCC classes from the lattice, and a boolean
     satisfied,
  5. the summary counts equal the diagnostics actually listed,
  6. with --expect expectations.json, the *set* of diagnostic ids per
     source matches the expectation table exactly.  The table maps the
     source basename to a list of ids (["parse-error"] for sources that
     must fail to parse); every table entry must be seen in the input.

Exits nonzero with a message on the first violation; prints a one-line
summary on success.  Stdlib only — safe for any CI image with python3.
"""

import argparse
import json
import os
import sys

# Stable diagnostic ids (analyzer.hpp) -> allowed severities.  Ids are
# append-only; seed-collision is an error for exact/bit-identical aliases
# and a warning for structurally related masked ones.
DIAGNOSTIC_IDS = {
    "requirement-violation": {"error"},
    "seed-collision": {"error", "warning"},
    "redundant-fix": {"warning"},
    "chain-reconvergence": {"warning"},
    "dead-rng": {"warning"},
    "dead-value": {"note"},
    "constant-foldable": {"note"},
    # Accuracy-model family (analysis/error_model.hpp).
    "precision-loss": {"warning"},
    "saturation-risk": {"warning"},
    "correlation-bias": {"warning"},
    "insufficient-stream-length": {"warning"},
    "chain-unrecoverable": {"warning"},
}

REQUIREMENTS = {"agnostic", "uncorrelated", "positive", "negative"}
FIX_KINDS = {
    "none",
    "synchronizer",
    "desynchronizer",
    "decorrelator",
    "decorrelator-chain",
    "regen-distinct",
    "regen-shared",
    "regen-complementary",
}
SCC_CLASSES = {"correlated", "independent", "anticorrelated", "unknown"}


def fail(message):
    print("validate_lint: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def validate_diagnostic(where, diag):
    expect(isinstance(diag, dict), where + ": diagnostic is not an object")
    for key in ("id", "severity", "node", "message"):
        expect(key in diag, where + ": diagnostic missing '%s'" % key)
    expect(diag["id"] in DIAGNOSTIC_IDS,
           where + ": unknown diagnostic id '%s'" % diag["id"])
    expect(diag["severity"] in DIAGNOSTIC_IDS[diag["id"]],
           where + ": id '%s' must not be severity '%s'"
           % (diag["id"], diag["severity"]))
    expect(isinstance(diag["node"], int) and diag["node"] >= -1,
           where + ": node must be an integer >= -1")
    expect(isinstance(diag["message"], str) and diag["message"],
           where + ": empty diagnostic message")


def validate_pair(where, pair):
    expect(isinstance(pair, dict), where + ": pair is not an object")
    for key in ("op_node", "operand_a", "operand_b", "requirement", "fix",
                "operands", "at_gate", "satisfied"):
        expect(key in pair, where + ": pair missing '%s'" % key)
    for key in ("op_node", "operand_a", "operand_b"):
        expect(isinstance(pair[key], int) and pair[key] >= 0,
               where + ": %s must be a non-negative integer" % key)
    expect(pair["requirement"] in REQUIREMENTS,
           where + ": unknown requirement '%s'" % pair["requirement"])
    expect(pair["fix"] in FIX_KINDS,
           where + ": unknown fix kind '%s'" % pair["fix"])
    for key in ("operands", "at_gate"):
        expect(pair[key] in SCC_CLASSES,
               where + ": unknown SCC class '%s'" % pair[key])
    expect(isinstance(pair["satisfied"], bool),
           where + ": satisfied must be a boolean")


def validate_parse_error(where, report):
    error = report["parse_error"]
    expect(isinstance(error, dict), where + ": parse_error is not an object")
    expect(isinstance(error.get("message"), str) and error["message"],
           where + ": parse_error.message must be a non-empty string")
    for key in ("summary", "diagnostics", "pairs"):
        expect(key not in report,
               where + ": parse-failure report must not carry '%s'" % key)


def validate_report(index, report):
    where = "report[%d]" % index
    expect(isinstance(report, dict), where + ": not an object")
    expect(isinstance(report.get("source"), str),
           where + ": source not a string")
    where = "report[%d] (%s)" % (index, report["source"] or "unnamed")
    if "parse_error" in report:
        validate_parse_error(where, report)
        return 0, 0
    for key in ("summary", "fragility", "error_bound", "diagnostics",
                "pairs"):
        expect(key in report, where + ": missing '%s'" % key)

    summary = report["summary"]
    expect(isinstance(summary, dict), where + ": summary not an object")
    for key in ("errors", "warnings", "notes"):
        expect(isinstance(summary.get(key), int) and summary[key] >= 0,
               where + ": summary.%s must be a non-negative integer" % key)
    for key in ("fragility", "error_bound"):
        expect(isinstance(report[key], (int, float)) and report[key] >= 0,
               where + ": %s must be a non-negative number" % key)

    expect(isinstance(report["diagnostics"], list),
           where + ": diagnostics not an array")
    counted = {"error": 0, "warning": 0, "note": 0}
    for diag in report["diagnostics"]:
        validate_diagnostic(where, diag)
        counted[diag["severity"]] += 1
    expect(counted == {"error": summary["errors"],
                       "warning": summary["warnings"],
                       "note": summary["notes"]},
           where + ": summary counts disagree with listed diagnostics")

    expect(isinstance(report["pairs"], list), where + ": pairs not an array")
    for pair in report["pairs"]:
        validate_pair(where, pair)
    return len(report["diagnostics"]), len(report["pairs"])


def check_expectations(reports, path):
    try:
        with open(path) as handle:
            table = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail("--expect file is not readable as JSON: %s" % err)
    expect(isinstance(table, dict), "--expect file must map source -> ids")
    seen = {}
    for report in reports:
        name = os.path.basename(report["source"])
        if "parse_error" in report:
            seen[name] = {"parse-error"}
        else:
            seen[name] = {diag["id"] for diag in report["diagnostics"]}
    for name, ids in sorted(table.items()):
        expect(name in seen, "--expect: source '%s' missing from input"
               % name)
        expected = set(ids)
        expect(seen[name] == expected,
               "--expect: source '%s' emitted %s, expected %s"
               % (name, sorted(seen[name]) or "[]", sorted(expected) or "[]"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", help="read JSON from a file, not stdin")
    parser.add_argument("--expect", metavar="TABLE",
                        help="JSON table of source basename -> expected "
                             "diagnostic-id list (exact set match)")
    options = parser.parse_args()
    try:
        if options.file:
            with open(options.file) as handle:
                doc = json.load(handle)
        else:
            doc = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as err:
        fail("input is not readable as JSON: %s" % err)

    reports = doc if isinstance(doc, list) else [doc]
    expect(len(reports) > 0, "no reports in input")
    diagnostics = pairs = 0
    for index, report in enumerate(reports):
        d, p = validate_report(index, report)
        diagnostics += d
        pairs += p
    if options.expect:
        check_expectations(reports, options.expect)
    print("validate_lint: OK: %d report(s), %d diagnostic(s), %d pair(s)"
          % (len(reports), diagnostics, pairs))


if __name__ == "__main__":
    main()
