#!/usr/bin/env python3
"""CI validator for sc_lint's --json output.

Usage:
    sc_lint --json program.sct | validate_lint.py
    validate_lint.py --file lint.json

Checks, in order:
  1. the input is well-formed JSON: one report object or an array of them,
  2. every report carries source (string), summary (errors/warnings/notes
     as non-negative integers), fragility (non-negative number),
     diagnostics (array), pairs (array),
  3. every diagnostic has a known stable id, a severity in
     {error, warning, note}, an integer node (or -1), and a non-empty
     message; severities are consistent with the id's documented class,
  4. every pair prediction names its op_node / operand slots, a known
     requirement and fix kind, SCC classes from the lattice, and a boolean
     satisfied,
  5. the summary counts equal the diagnostics actually listed.

Exits nonzero with a message on the first violation; prints a one-line
summary on success.  Stdlib only — safe for any CI image with python3.
"""

import argparse
import json
import sys

# Stable diagnostic ids (analyzer.hpp) -> allowed severities.  Ids are
# append-only; seed-collision is an error for exact/bit-identical aliases
# and a warning for structurally related masked ones.
DIAGNOSTIC_IDS = {
    "requirement-violation": {"error"},
    "seed-collision": {"error", "warning"},
    "redundant-fix": {"warning"},
    "chain-reconvergence": {"warning"},
    "dead-rng": {"warning"},
    "dead-value": {"note"},
    "constant-foldable": {"note"},
}

REQUIREMENTS = {"agnostic", "uncorrelated", "positive", "negative"}
FIX_KINDS = {
    "none",
    "synchronizer",
    "desynchronizer",
    "decorrelator",
    "decorrelator-chain",
    "regen-distinct",
    "regen-shared",
    "regen-complementary",
}
SCC_CLASSES = {"correlated", "independent", "anticorrelated", "unknown"}


def fail(message):
    print("validate_lint: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def validate_diagnostic(where, diag):
    expect(isinstance(diag, dict), where + ": diagnostic is not an object")
    for key in ("id", "severity", "node", "message"):
        expect(key in diag, where + ": diagnostic missing '%s'" % key)
    expect(diag["id"] in DIAGNOSTIC_IDS,
           where + ": unknown diagnostic id '%s'" % diag["id"])
    expect(diag["severity"] in DIAGNOSTIC_IDS[diag["id"]],
           where + ": id '%s' must not be severity '%s'"
           % (diag["id"], diag["severity"]))
    expect(isinstance(diag["node"], int) and diag["node"] >= -1,
           where + ": node must be an integer >= -1")
    expect(isinstance(diag["message"], str) and diag["message"],
           where + ": empty diagnostic message")


def validate_pair(where, pair):
    expect(isinstance(pair, dict), where + ": pair is not an object")
    for key in ("op_node", "operand_a", "operand_b", "requirement", "fix",
                "operands", "at_gate", "satisfied"):
        expect(key in pair, where + ": pair missing '%s'" % key)
    for key in ("op_node", "operand_a", "operand_b"):
        expect(isinstance(pair[key], int) and pair[key] >= 0,
               where + ": %s must be a non-negative integer" % key)
    expect(pair["requirement"] in REQUIREMENTS,
           where + ": unknown requirement '%s'" % pair["requirement"])
    expect(pair["fix"] in FIX_KINDS,
           where + ": unknown fix kind '%s'" % pair["fix"])
    for key in ("operands", "at_gate"):
        expect(pair[key] in SCC_CLASSES,
               where + ": unknown SCC class '%s'" % pair[key])
    expect(isinstance(pair["satisfied"], bool),
           where + ": satisfied must be a boolean")


def validate_report(index, report):
    where = "report[%d]" % index
    expect(isinstance(report, dict), where + ": not an object")
    for key in ("source", "summary", "fragility", "diagnostics", "pairs"):
        expect(key in report, where + ": missing '%s'" % key)
    expect(isinstance(report["source"], str), where + ": source not a string")
    where = "report[%d] (%s)" % (index, report["source"] or "unnamed")

    summary = report["summary"]
    expect(isinstance(summary, dict), where + ": summary not an object")
    for key in ("errors", "warnings", "notes"):
        expect(isinstance(summary.get(key), int) and summary[key] >= 0,
               where + ": summary.%s must be a non-negative integer" % key)
    expect(isinstance(report["fragility"], (int, float))
           and report["fragility"] >= 0,
           where + ": fragility must be a non-negative number")

    expect(isinstance(report["diagnostics"], list),
           where + ": diagnostics not an array")
    counted = {"error": 0, "warning": 0, "note": 0}
    for diag in report["diagnostics"]:
        validate_diagnostic(where, diag)
        counted[diag["severity"]] += 1
    expect(counted == {"error": summary["errors"],
                       "warning": summary["warnings"],
                       "note": summary["notes"]},
           where + ": summary counts disagree with listed diagnostics")

    expect(isinstance(report["pairs"], list), where + ": pairs not an array")
    for pair in report["pairs"]:
        validate_pair(where, pair)
    return len(report["diagnostics"]), len(report["pairs"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", help="read JSON from a file, not stdin")
    options = parser.parse_args()
    try:
        if options.file:
            with open(options.file) as handle:
                doc = json.load(handle)
        else:
            doc = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as err:
        fail("input is not readable as JSON: %s" % err)

    reports = doc if isinstance(doc, list) else [doc]
    expect(len(reports) > 0, "no reports in input")
    diagnostics = pairs = 0
    for index, report in enumerate(reports):
        d, p = validate_report(index, report)
        diagnostics += d
        pairs += p
    print("validate_lint: OK: %d report(s), %d diagnostic(s), %d pair(s)"
          % (len(reports), diagnostics, pairs))


if __name__ == "__main__":
    main()
