#!/usr/bin/env python3
"""Gate a fresh sc-bench-v1 run against committed baselines.

bench_compare.py is the regression half of the bench harness
(bench/bench_harness.hpp): bench_runner writes a combined run document,
the repo commits per-bench baselines (BENCH_*.json), and this script
diffs them case by case with per-kind, per-case tolerances:

  throughput  relative tolerance, widened by the run's own noise floor
              (3 x MAD/median of either side) — and "warn" severity by
              default, because wall-clock numbers from a 1-hw-thread CI
              host are weather, not signal;
  percent     absolute tolerance in percentage points (telemetry
              overhead_pct rows — hard fail: these are the contract the
              observability layer makes);
  value       deterministic numbers (modeled area, error bounds) with a
              tiny relative epsilon — hard fail;
  exact       integer contracts (bit-identity flags, correction counts)
              — any drift is a hard fail.

Cases are only compared when their "config" strings match (a --quick run
shrinks workloads, so its throughput rows legitimately differ from
full-size baselines; config-independent contracts still gate).  A case
present in the baseline but missing from the run — or carrying a
different unit/kind — is schema drift and hard-fails regardless of
severity.

Exit status: 0 = clean (warnings allowed), 1 = at least one hard
failure, 2 = usage/IO error.

Usage:
  bench_compare.py --run run.json --baseline BENCH_kernels.json \
      [--baseline ...] [--tolerance-table tools/bench_tolerances.json] \
      [--fail-on-warn] [--self-test]

--self-test injects a synthetic regression into a copy of the baseline
and asserts the gate catches it (CI runs this so the comparator itself
is under test).
"""

import argparse
import copy
import json
import sys

DEFAULT_TOLERANCES = {
    # Relative tolerance for throughput cases (fraction of baseline).
    "throughput_rel": 0.35,
    # Absolute tolerance for percent cases, in percentage points.
    "percent_abs": 3.0,
    # Relative epsilon for deterministic value cases.
    "value_rel": 1e-6,
    # Per-case-name overrides: {"name": {"rel": .., "abs": ..,
    # "severity": "warn"|"fail"|"skip"}}.
    "cases": {},
}


def load_json(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def case_index(doc, path):
    if doc.get("schema") != "sc-bench-v1":
        print(f"error: {path} is not an sc-bench-v1 document "
              f"(schema={doc.get('schema')!r}); regenerate it with the "
              "harness benches", file=sys.stderr)
        sys.exit(2)
    index = {}
    for case in doc.get("cases", []):
        index[case["name"]] = case
    return index


def noise_floor(case):
    """3 x MAD/median of a throughput case: its own measured noise."""
    median = case.get("median_seconds", 0.0)
    mad = case.get("mad_seconds", 0.0)
    if median and median > 0.0:
        return 3.0 * mad / median
    return 0.0


class Gate:
    def __init__(self, tolerances, fail_on_warn=False):
        self.tol = tolerances
        self.fail_on_warn = fail_on_warn
        self.failures = 0
        self.warnings = 0
        self.compared = 0
        self.skipped = 0

    def report(self, level, name, message):
        if level == "fail":
            self.failures += 1
            print(f"FAIL  {name}: {message}")
        elif level == "warn":
            self.warnings += 1
            if self.fail_on_warn:
                self.failures += 1
            print(f"warn  {name}: {message}")
        else:
            print(f"ok    {name}: {message}")

    def compare_case(self, base, run):
        name = base["name"]
        override = self.tol.get("cases", {}).get(name, {})
        severity = override.get("severity", base.get("severity", "fail"))
        if severity == "skip":
            self.skipped += 1
            return
        if run is None:
            # Missing case = schema drift: the suite silently lost
            # coverage, which no severity downgrade should hide.
            self.report("fail", name, "missing from run (schema drift)")
            return
        for key in ("unit", "kind"):
            if base.get(key) != run.get(key):
                self.report(
                    "fail", name,
                    f"{key} changed {base.get(key)!r} -> {run.get(key)!r} "
                    "(schema drift)")
                return
        if base.get("config", "") != run.get("config", ""):
            self.skipped += 1
            print(f"skip  {name}: config {run.get('config')!r} != baseline "
                  f"{base.get('config')!r} (not comparable)")
            return

        kind = base.get("kind", "value")
        bval, rval = base["value"], run["value"]
        self.compared += 1

        if kind == "exact":
            if bval != rval:
                self.report("fail", name, f"exact value {bval} -> {rval}")
            else:
                self.report("ok", name, f"{bval}")
            return

        if kind == "percent":
            tol = override.get("abs", self.tol["percent_abs"])
            delta = rval - bval
            worse = delta > tol if not base.get("higher_is_better", False) \
                else -delta > tol
            if worse:
                self.report(severity, name,
                            f"{bval:+.2f}pp -> {rval:+.2f}pp "
                            f"(tolerance {tol}pp)")
            else:
                self.report("ok", name, f"{bval:+.2f}pp -> {rval:+.2f}pp")
            return

        if kind == "value":
            tol = override.get("rel", self.tol["value_rel"])
            denom = max(abs(bval), 1e-300)
            if abs(rval - bval) / denom > tol:
                self.report(severity, name,
                            f"{bval:.6g} -> {rval:.6g} (rel tol {tol})")
            else:
                self.report("ok", name, f"{bval:.6g}")
            return

        # throughput: relative check, widened by both sides' noise floors.
        tol = override.get("rel", self.tol["throughput_rel"])
        tol += noise_floor(base) + noise_floor(run)
        higher_better = base.get("higher_is_better", True)
        if bval == 0:
            self.report("warn", name, "baseline value is 0; cannot compare")
            return
        change = (rval - bval) / abs(bval)
        regressed = change < -tol if higher_better else change > tol
        msg = (f"{bval:.6g} -> {rval:.6g} {base.get('unit', '')} "
               f"({change * 100.0:+.1f}%, tolerance {tol * 100.0:.0f}%)")
        if regressed:
            self.report(severity, name, msg)
        else:
            self.report("ok", name, msg)


def run_gate(run_doc, baseline_docs, tolerances, fail_on_warn):
    run_cases = case_index(run_doc, "--run")
    gate = Gate(tolerances, fail_on_warn)
    for path, doc in baseline_docs:
        print(f"--- baseline {path}")
        for name, base in case_index(doc, path).items():
            gate.compare_case(base, run_cases.get(name))
    print(f"\ncompared {gate.compared} cases, {gate.skipped} skipped, "
          f"{gate.warnings} warnings, {gate.failures} failures")
    return 1 if gate.failures else 0


def self_test(run_doc, baseline_docs, tolerances):
    """The comparator must catch an injected regression and pass a
    self-comparison — otherwise the gate is decorative."""
    # 1. A document compared against itself is clean.
    clean = run_gate(run_doc, [("self", run_doc)], tolerances, False)
    if clean != 0:
        print("self-test: FAILED (self-comparison not clean)")
        return 1
    # 2. One injected regression per hard-failing kind must be caught
    #    (throughput is warn-severity by design, so it is checked via
    #    --fail-on-warn instead).
    broken = copy.deepcopy(run_doc)
    done = set()
    for case in broken.get("cases", []):
        kind = case.get("kind")
        if kind in done:
            continue
        if kind == "exact":
            case["value"] += 1
        elif kind == "percent":
            sign = 1.0 if not case.get("higher_is_better", False) else -1.0
            case["value"] += sign * 50.0
        elif kind == "value":
            case["value"] = case["value"] * 1.5 + 1.0
        elif kind == "throughput":
            sign = -1.0 if case.get("higher_is_better", True) else 1.0
            case["value"] *= (1.0 + sign * 0.95)
        else:
            continue
        done.add(kind)
    if not done:
        print("self-test: FAILED (no cases to inject into)")
        return 1
    print(f"\nself-test: injected regressions into kinds: {sorted(done)}")
    caught = run_gate(broken, [("injected", run_doc)], tolerances,
                      fail_on_warn=True)
    if caught == 0:
        print("self-test: FAILED (injected regression not caught)")
        return 1
    print("self-test: OK (clean pass + injected regressions caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run", required=True,
                        help="combined sc-bench-v1 JSON from bench_runner")
    parser.add_argument("--baseline", action="append", default=[],
                        help="committed BENCH_*.json (repeatable)")
    parser.add_argument("--tolerance-table",
                        help="JSON overriding the default tolerances")
    parser.add_argument("--fail-on-warn", action="store_true",
                        help="treat warn-severity misses as failures")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches injected regressions")
    args = parser.parse_args()

    tolerances = dict(DEFAULT_TOLERANCES)
    if args.tolerance_table:
        table = load_json(args.tolerance_table)
        tolerances.update(table)

    run_doc = load_json(args.run)
    if args.self_test:
        sys.exit(self_test(run_doc, None, tolerances))

    if not args.baseline:
        print("error: need at least one --baseline (or --self-test)",
              file=sys.stderr)
        sys.exit(2)
    baselines = [(path, load_json(path)) for path in args.baseline]
    sys.exit(run_gate(run_doc, baselines, tolerances, args.fail_on_warn))


if __name__ == "__main__":
    main()
