/// \file bench_runner.cpp
/// One command for the whole perf suite: runs the five harness benches
/// (kernel_fsm, graph_executor, engine_throughput, obs_overhead,
/// opt_savings) as sibling binaries, collects their sc-bench-v1 JSON, and
/// merges every case into one combined document for
/// tools/bench_compare.py.
///
/// The runner is what CI invokes: `bench_runner --quick --json run.json`
/// then `bench_compare.py --run run.json --baseline BENCH_*.json`.  Each
/// bench still self-checks its own contracts (bit-identity, optimizer
/// acceptance bars) and a nonzero child exit fails the runner, so the
/// combined JSON only ever exists for runs whose correctness gates all
/// passed.
///
/// Usage: bench_runner [--json PATH] [--reps N] [--warmup N] [--quick]
///        [--only SUBSTR] [--keep]
///   --only SUBSTR  run only benches whose name contains SUBSTR
///   --keep         keep the per-bench JSON files next to the combined one

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_harness.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts the members of the top-level "cases" array from an
/// sc-bench-v1 document written by bench_harness.hpp (whose layout this
/// repo controls: one case object per line, array closed by "\n  ]").
std::string extract_cases(const std::string& doc) {
  const std::string open = "\"cases\": [\n";
  const std::size_t begin = doc.find(open);
  const std::size_t end = doc.rfind("\n  ]");
  if (begin == std::string::npos || end == std::string::npos ||
      end < begin + open.size()) {
    return "";
  }
  return doc.substr(begin + open.size(), end - begin - open.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string only;
  std::string forwarded;  // flags every child receives
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      forwarded += " --quick";
    } else if ((std::strcmp(argv[i], "--reps") == 0 ||
                std::strcmp(argv[i], "--warmup") == 0) &&
               i + 1 < argc) {
      forwarded += std::string(" ") + argv[i] + " " + argv[i + 1];
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--only SUBSTR] [--keep]\n",
                   argv[0]);
      return 2;
    }
  }

  // Sibling binaries live in the runner's own directory.
  std::string dir(argv[0]);
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "./" : dir.substr(0, slash + 1);

  const std::vector<std::string> benches = {
      "bench_kernel_fsm", "bench_graph_executor", "bench_engine_throughput",
      "bench_obs_overhead", "bench_opt_savings",
  };

  std::vector<std::pair<std::string, std::string>> collected;  // name, json
  for (const std::string& bench : benches) {
    if (!only.empty() && bench.find(only) == std::string::npos) continue;
    const std::string out_path =
        (json_path.empty() ? std::string("sc_") : json_path + ".") + bench +
        ".json";
    const std::string command =
        "\"" + dir + bench + "\"" + forwarded + " --json \"" + out_path +
        "\"";
    std::printf("=== %s\n", command.c_str());
    std::fflush(stdout);
    const int status = std::system(command.c_str());
    if (status != 0) {
      std::fprintf(stderr, "FAIL: %s exited with status %d\n", bench.c_str(),
                   status);
      return 1;
    }
    collected.emplace_back(bench, read_file(out_path));
    if (!keep) std::remove(out_path.c_str());
  }
  if (collected.empty()) {
    std::fprintf(stderr, "no bench matched --only '%s'\n", only.c_str());
    return 2;
  }

  if (!json_path.empty()) {
    std::string cases;
    std::string names;
    for (std::size_t i = 0; i < collected.size(); ++i) {
      const std::string chunk = extract_cases(collected[i].second);
      if (chunk.empty()) {
        std::fprintf(stderr, "FAIL: %s wrote no parsable cases\n",
                     collected[i].first.c_str());
        return 1;
      }
      if (!cases.empty()) cases += ",\n";
      cases += chunk;
      names += (i == 0 ? "\"" : ", \"") + collected[i].first + "\"";
    }
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"schema\": \"sc-bench-v1\",\n  \"bench\": \"combined\",\n"
        << "  \"host\": " << sc::bench::host_json() << ",\n"
        << "  \"options\": {\"forwarded\": \""
        << (forwarded.empty() ? "" : forwarded.c_str() + 1) << "\"},\n"
        << "  \"meta\": {\"benches\": [" << names << "]},\n"
        << "  \"cases\": [\n" << cases << "\n  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu benches)\n", json_path.c_str(),
                collected.size());
  }
  return 0;
}
