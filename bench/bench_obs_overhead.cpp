/// \file bench_obs_overhead.cpp
/// Cost of the telemetry subsystem (src/obs/) on the graph executor.
///
/// The same 16-copy fan-out workload as bench_graph_executor runs on each
/// backend under four telemetry modes:
///
///   off      ExecConfig::telemetry = nullptr — the disabled path the rest
///            of the library pays by default (one pointer test per site),
///   metrics  a Telemetry with tracing disabled — atomic counter/gauge/
///            histogram updates only,
///   trace    tracing enabled — spans with clock reads into the bounded
///            trace ring, plus a stream-health probe pair,
///   profile  tracing enabled AND the call-tree profiler (profiler.hpp)
///            aggregating the ring inside the timed region — the cost of
///            always-on profiling, snapshot included.
///
/// Every enabled run's outputs are verified bit-identical to the disabled
/// run's on the same backend (telemetry neutrality), and the JSON records
/// per-mode throughput and overhead so the repo can gate "telemetry off
/// costs nothing" across PRs (BENCH_obs.json).
///
/// Harness bench (bench_harness.hpp) — overheads are computed from
/// median-of-reps times, and the reps are timed ROUND-ROBIN across the
/// four modes (off, metrics, trace, profile, off, ...) so clock-frequency
/// drift and allocator warmup hit every mode equally; that plus warmup is
/// what keeps the recorded overheads non-negative (the old
/// best-of-3-no-warmup loop recorded negative overheads whenever the
/// "off" rep landed on a cold cache).  Cases:
/// obs/<backend>/<mode> (throughput), obs/<backend>/<mode>/overhead_pct
/// (percent, hard-fail), obs/<backend>/<mode>/identical (exact).
///
/// Usage: bench_obs_overhead [--json PATH] [--reps N] [--warmup N]
///        [--quick] [--bits LOG2]
/// Note: --quick does NOT shrink --bits here — overhead percentages are
/// config-dependent and must stay comparable to the committed baseline.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "img/sc_pipeline.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace {

/// Same shape as bench_graph_executor's workload: the §IV window program
/// fanned over 16 pixel copies plus the wider operator set.
sc::graph::Program bench_program() {
  using namespace sc::graph;
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  const Program window = sc::img::window_program(pixels);

  GraphBuilder b;
  std::vector<Value> args;
  for (unsigned i = 0; i < 16; ++i) {
    args.push_back(b.input("p" + std::to_string(i), pixels[i], i % 4));
  }
  const Value edge = b.append(window, args)[0];
  const Value x = b.input("x", 0.62, 4);
  const Value y = b.input("y", 0.35, 4);
  const Value prod = b.op("multiply", {x, y});
  const Value quot = b.op("divide", {y, x});
  const Value bip = b.op("multiply-bipolar", {prod, b.constant(0.8)});
  const Value nl = b.op("stanh-8", {b.op("scaled-add", {quot, bip})});
  const Value poly = b.op("bernstein-x2-3", {nl, nl, nl});
  b.output(b.op("saturating-add", {poly, edge}), "out");
  b.output(edge, "edge");
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc::graph;

  sc::bench::HarnessOptions options;
  std::vector<std::string> rest;
  if (!sc::bench::parse_harness_options(argc, argv, &options, &rest)) return 2;
  unsigned log2_bits = 16;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--bits" && i + 1 < rest.size()) {
      log2_bits = static_cast<unsigned>(std::atoi(rest[++i].c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--bits LOG2]\n",
                   argv[0]);
      return 2;
    }
  }

  const Program program = bench_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const std::size_t stream_bits = std::size_t{1} << log2_bits;
  const double node_bits = static_cast<double>(stream_bits) *
                           static_cast<double>(program.node_count());
  const std::string case_config = "bits=" + std::to_string(log2_bits);

  sc::bench::Harness harness("obs_overhead", options);
  harness.set_meta("stream_bits", static_cast<std::uint64_t>(stream_bits));
  harness.set_meta("node_count",
                   static_cast<std::uint64_t>(program.node_count()));

  std::printf(
      "telemetry overhead bench: %zu nodes, 2^%u bits, median of %u reps\n\n",
      program.node_count(), log2_bits, harness.options().reps);

  sc::engine::Session session({0});
  std::vector<std::unique_ptr<ExecutorBackend>> backends;
  backends.push_back(make_backend(BackendKind::kReference));
  backends.push_back(make_backend(BackendKind::kKernel));
  backends.push_back(make_engine_backend(session));

  const std::array<const char*, 4> modes = {"off", "metrics", "trace",
                                            "profile"};
  bool all_identical = true;

  // Steady-state warmup: one untimed run per backend before any timing
  // ramps the CPU governor and pages the code in.  Without it, the very
  // first timed case ("off" — the denominator of every overhead on that
  // backend) absorbs the cold start and the overheads go negative.
  {
    ExecConfig warm;
    warm.stream_length = stream_bits;
    warm.width = 16;
    for (const auto& backend : backends) {
      (void)backend->run(program, plan, warm);
    }
  }

  for (const auto& backend : backends) {
    // One context and config per mode, built up front: the reps are then
    // timed ROUND-ROBIN across the modes (off, metrics, trace, profile,
    // off, ...) so clock-frequency drift and allocator warmup hit every
    // mode equally — timing each mode's reps in a contiguous block biases
    // whichever mode ran first (historically "off", the denominator of
    // every overhead, which is how negative overheads get recorded).
    struct ModeRun {
      const char* mode;
      std::unique_ptr<sc::obs::Telemetry> telemetry;
      ExecConfig config;
      bool profiled = false;
      std::vector<double> rep_seconds;
      ExecutionResult last;
      std::size_t profile_spans = 0;
    };
    std::vector<ModeRun> runs;
    for (const char* mode : modes) {
      ModeRun run;
      run.mode = mode;
      // A fresh context per mode keeps instrument state from accumulating
      // across modes; probes exercise the live-tap path under "trace" and
      // "profile".
      if (std::strcmp(mode, "metrics") == 0) {
        sc::obs::TelemetryConfig tconfig;
        tconfig.tracing = false;
        run.telemetry = std::make_unique<sc::obs::Telemetry>(tconfig);
      } else if (std::strcmp(mode, "off") != 0) {
        run.telemetry = std::make_unique<sc::obs::Telemetry>();
        run.telemetry->add_probe({"out", "edge", 4096});
      }
      run.profiled = std::strcmp(mode, "profile") == 0;
      run.config.stream_length = stream_bits;
      run.config.width = 16;
      run.config.telemetry = run.telemetry.get();
      run.rep_seconds.reserve(harness.options().reps);
      runs.push_back(std::move(run));
    }

    const auto exec = [&](ModeRun& run) {
      run.last = backend->run(program, plan, run.config);
      if (run.profiled) {
        // The profiled mode pays for aggregation too: always-on profiling
        // means someone folds the ring into a call tree.
        const sc::obs::Profile profile =
            sc::obs::build_profile(*run.telemetry->tracer());
        run.profile_spans = profile.span_count;
      }
    };
    using Clock = std::chrono::steady_clock;
    for (unsigned w = 0; w < harness.options().warmup; ++w) {
      for (ModeRun& run : runs) exec(run);
    }
    for (unsigned r = 0; r < harness.options().reps; ++r) {
      for (ModeRun& run : runs) {
        const auto start = Clock::now();
        exec(run);
        run.rep_seconds.push_back(
            std::chrono::duration<double>(Clock::now() - start).count());
      }
    }

    double off_median = 0.0;
    for (ModeRun& run : runs) {
      const std::string case_name =
          "obs/" + backend->name() + "/" + run.mode;
      const double median_s =
          harness.submit_case(case_name, "node_mbit_per_s", node_bits, 1e6,
                              std::move(run.rep_seconds), case_config);

      bool identical = true;
      if (off_median == 0.0) {
        off_median = median_s;
      } else {
        for (std::size_t s = 0; s < runs[0].last.streams.size(); ++s) {
          if (run.last.streams[s] != runs[0].last.streams[s]) {
            identical = false;
            all_identical = false;
            break;
          }
        }
      }
      harness.exact_case(case_name + "/identical", identical ? 1 : 0);

      double overhead_pct = 0.0;
      if (run.telemetry != nullptr && off_median > 0.0) {
        overhead_pct = (median_s - off_median) / off_median * 100.0;
        // Metrics/trace overheads are genuinely sub-1% — below this
        // host's rep-to-rep noise — so the raw difference of two medians
        // can come out slightly negative.  A deficit inside the combined
        // noise floor (3 scaled MADs of either case) is statistically
        // zero and recorded as such; a deficit BEYOND the floor would
        // mean telemetry reliably speeds up execution, which is a bug
        // worth seeing, so it is recorded as measured.
        const sc::bench::CaseResult* off_case =
            harness.find("obs/" + backend->name() + "/off");
        const sc::bench::CaseResult* mode_case = harness.find(case_name);
        const double floor_pct =
            3.0 * 1.4826 *
            (off_case->seconds.mad + mode_case->seconds.mad) / off_median *
            100.0;
        if (overhead_pct < 0.0 && -overhead_pct <= floor_pct) {
          overhead_pct = 0.0;
        }
        harness.percent_case(case_name + "/overhead_pct", overhead_pct,
                             /*higher_is_better=*/false, case_config);
      }
      std::printf("  %-10s %-8s %8.3f ms   %8.1f node-Mbit/s   "
                  "overhead %+6.2f%%   identical=%s%s\n",
                  backend->name().c_str(), run.mode, median_s * 1e3,
                  node_bits / median_s / 1e6, overhead_pct,
                  identical ? "yes" : "NO",
                  run.profiled ? (" (" + std::to_string(run.profile_spans) +
                                  " spans profiled)").c_str()
                               : "");
    }
    std::printf("\n");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: telemetry changed execution results\n");
  }
  if (!harness.write_json()) return 1;
  return all_identical ? 0 : 1;
}
