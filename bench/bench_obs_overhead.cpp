/// \file bench_obs_overhead.cpp
/// Cost of the telemetry subsystem (src/obs/) on the graph executor.
///
/// The same 16-copy fan-out workload as bench_graph_executor runs on each
/// backend under three telemetry modes:
///
///   off      ExecConfig::telemetry = nullptr — the disabled path the rest
///            of the library pays by default (one pointer test per site),
///   metrics  a Telemetry with tracing disabled — atomic counter/gauge/
///            histogram updates only,
///   trace    tracing enabled — spans with clock reads and a mutex-guarded
///            event buffer, plus a stream-health probe pair.
///
/// Every enabled run's outputs are verified bit-identical to the disabled
/// run's on the same backend (telemetry neutrality), and the JSON records
/// per-mode throughput so the repo can gate "telemetry off costs nothing"
/// across PRs (BENCH_obs.json).
///
/// Usage: bench_obs_overhead [--json PATH] [--bits LOG2] [--reps N]

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "img/sc_pipeline.hpp"
#include "obs/telemetry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Same shape as bench_graph_executor's workload: the §IV window program
/// fanned over 16 pixel copies plus the wider operator set.
sc::graph::Program bench_program() {
  using namespace sc::graph;
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  const Program window = sc::img::window_program(pixels);

  GraphBuilder b;
  std::vector<Value> args;
  for (unsigned i = 0; i < 16; ++i) {
    args.push_back(b.input("p" + std::to_string(i), pixels[i], i % 4));
  }
  const Value edge = b.append(window, args)[0];
  const Value x = b.input("x", 0.62, 4);
  const Value y = b.input("y", 0.35, 4);
  const Value prod = b.op("multiply", {x, y});
  const Value quot = b.op("divide", {y, x});
  const Value bip = b.op("multiply-bipolar", {prod, b.constant(0.8)});
  const Value nl = b.op("stanh-8", {b.op("scaled-add", {quot, bip})});
  const Value poly = b.op("bernstein-x2-3", {nl, nl, nl});
  b.output(b.op("saturating-add", {poly, edge}), "out");
  b.output(edge, "edge");
  return b.build();
}

struct ModeResult {
  std::string mode;
  double seconds = 0.0;
  double node_mbit_per_s = 0.0;
  double overhead_pct = 0.0;  ///< vs the same backend's "off" mode
  bool identical = true;      ///< outputs match the "off" run bit-for-bit
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sc::graph;

  std::string json_path;
  unsigned log2_bits = 16;
  unsigned reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--bits LOG2] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }

  const Program program = bench_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const std::size_t stream_bits = std::size_t{1} << log2_bits;
  const double node_bits = static_cast<double>(stream_bits) *
                           static_cast<double>(program.node_count());

  std::printf("telemetry overhead bench: %zu nodes, 2^%u bits, %u reps\n\n",
              program.node_count(), log2_bits, reps);

  sc::engine::Session session({0});
  std::vector<std::unique_ptr<ExecutorBackend>> backends;
  backends.push_back(make_backend(BackendKind::kReference));
  backends.push_back(make_backend(BackendKind::kKernel));
  backends.push_back(make_engine_backend(session));

  const std::array<const char*, 3> modes = {"off", "metrics", "trace"};
  bool all_identical = true;
  bool gate_ok = true;
  // results[backend][mode]
  std::vector<std::vector<ModeResult>> results;

  for (const auto& backend : backends) {
    results.emplace_back();
    ExecutionResult baseline;
    for (const char* mode : modes) {
      // A fresh context per mode keeps instrument state from accumulating
      // across modes; probes exercise the live-tap path under "trace".
      std::unique_ptr<sc::obs::Telemetry> telemetry;
      if (std::strcmp(mode, "metrics") == 0) {
        sc::obs::TelemetryConfig tconfig;
        tconfig.tracing = false;
        telemetry = std::make_unique<sc::obs::Telemetry>(tconfig);
      } else if (std::strcmp(mode, "trace") == 0) {
        telemetry = std::make_unique<sc::obs::Telemetry>();
        telemetry->add_probe({"out", "edge", 4096});
      }

      ExecConfig config;
      config.stream_length = stream_bits;
      config.width = 16;
      config.telemetry = telemetry.get();

      ModeResult r;
      r.mode = mode;
      ExecutionResult last;
      double best = 1e300;
      for (unsigned rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        last = backend->run(program, plan, config);
        best = std::min(best, seconds_since(start));
      }
      r.seconds = best;
      r.node_mbit_per_s = node_bits / best / 1e6;
      if (baseline.streams.empty()) {
        baseline = last;
      } else {
        for (std::size_t s = 0; s < baseline.streams.size(); ++s) {
          if (last.streams[s] != baseline.streams[s]) {
            r.identical = false;
            all_identical = false;
            break;
          }
        }
        const double off_s = results.back().front().seconds;
        r.overhead_pct = (best - off_s) / off_s * 100.0;
      }
      std::printf("  %-10s %-8s %8.3f ms   %8.1f node-Mbit/s   "
                  "overhead %+6.2f%%   identical=%s\n",
                  backend->name().c_str(), r.mode.c_str(), best * 1e3,
                  r.node_mbit_per_s, r.overhead_pct,
                  r.identical ? "yes" : "NO");
      results.back().push_back(std::move(r));
    }
    std::printf("\n");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: telemetry changed execution results\n");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"host\": " << sc::bench::host_json()
        << ",\n  \"stream_bits\": " << stream_bits
        << ",\n  \"node_count\": " << program.node_count()
        << ",\n  \"reps\": " << reps << ",\n  \"backends\": [\n";
    for (std::size_t b = 0; b < backends.size(); ++b) {
      out << "    {\"name\": \"" << backends[b]->name() << "\", \"modes\": [\n";
      for (std::size_t m = 0; m < results[b].size(); ++m) {
        const ModeResult& r = results[b][m];
        out << "      {\"mode\": \"" << r.mode
            << "\", \"node_mbit_per_s\": " << r.node_mbit_per_s
            << ", \"overhead_pct\": " << r.overhead_pct
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (m + 1 < results[b].size() ? "," : "") << "\n";
      }
      out << "    ]}" << (b + 1 < backends.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical && gate_ok ? 0 : 1;
}
