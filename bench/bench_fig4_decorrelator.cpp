/// Characterizes the Fig. 4 decorrelator: output SCC and bias versus
/// shuffle-buffer depth, serial composition, downstream multiply accuracy,
/// and hardware cost - the decorrelator's full design space.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/metrics.hpp"
#include "core/decorrelator.hpp"
#include "core/pair_transform.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "rng/lfsr.hpp"

using namespace sc;
using bench::cell;

namespace {

struct DepthResult {
  double out_scc = 0.0;
  double bias = 0.0;
  double multiply_error = 0.0;
};

DepthResult run_depth(std::size_t depth, std::size_t stages) {
  ErrorStats out_scc, bias, mul_err;
  for (std::uint32_t lx = 8; lx <= 248; lx += 8) {
    for (std::uint32_t ly = 8; ly <= 248; ly += 8) {
      // Same-LFSR pair: maximally positively correlated inputs.
      const Bitstream x = bench::stream(bench::lfsr_spec(1), lx);
      const Bitstream y = bench::stream(bench::lfsr_spec(1), ly);
      sc::StreamPair current{x, y};
      for (std::size_t s = 0; s < stages; ++s) {
        core::Decorrelator dec(
            depth,
            std::make_unique<rng::Lfsr>(8, static_cast<std::uint32_t>(19 + 2 * s)),
            std::make_unique<rng::Lfsr>(8, static_cast<std::uint32_t>(37 + 2 * s)));
        current = core::apply(dec, current.x, current.y);
      }
      if (scc_defined(current.x, current.y)) {
        out_scc.add(scc(current.x, current.y));
      }
      bias.add(current.x.value() - x.value());
      bias.add(current.y.value() - y.value());
      mul_err.add(std::abs((current.x & current.y).value() -
                           (lx / 256.0) * (ly / 256.0)));
    }
  }
  return {out_scc.mean(), bias.mean(), mul_err.mean_abs()};
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 4: decorrelator design space (same-LFSR input pairs, "
      "input SCC ~ +0.99) ===\n\n");

  std::printf("Depth sweep (single stage):\n\n");
  bench::Table depth_table({"Depth D", "Out SCC", "Bias", "AND-mult err",
                            "Area um2", "Power uW"},
                           {8, 8, 8, 12, 9, 9});
  depth_table.print_header();
  for (std::size_t depth : {2u, 4u, 8u, 16u, 32u}) {
    const DepthResult r = run_depth(depth, 1);
    const hw::CostReport cost = hw::evaluate(hw::decorrelator_netlist(depth));
    depth_table.print_row({bench::cell_int(static_cast<std::int64_t>(depth)),
                           cell(r.out_scc), cell(r.bias),
                           cell(r.multiply_error), cell(cost.area_um2, 1),
                           cell(cost.power_uw, 2)});
  }
  depth_table.print_rule();

  std::printf("\nSerial composition at D = 4 (paper §III-C):\n\n");
  bench::Table stage_table({"Stages", "Out SCC", "Bias", "AND-mult err"},
                           {7, 8, 8, 12});
  stage_table.print_header();
  for (std::size_t stages : {1u, 2u, 3u, 4u}) {
    const DepthResult r = run_depth(4, stages);
    stage_table.print_row({bench::cell_int(static_cast<std::int64_t>(stages)),
                           cell(r.out_scc), cell(r.bias),
                           cell(r.multiply_error)});
  }
  stage_table.print_rule();

  std::printf(
      "\nWithout decorrelation an AND of these same-RNG streams computes\n"
      "min(pX,pY) instead of the product (Table I); the depth-4 single-stage\n"
      "decorrelator already recovers multiplication to a few LSBs.\n");
  return 0;
}
