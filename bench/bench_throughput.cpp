/// Google-benchmark microbenchmarks: simulation throughput of every
/// circuit in the library across stream lengths.  These measure *this
/// implementation's* software speed (bits simulated per second), which is
/// what determines how large a design-space sweep the repository can run.

#include <benchmark/benchmark.h>

#include <memory>

#include "arith/add.hpp"
#include "arith/minmax.hpp"
#include "bench_util.hpp"
#include "bitstream/correlation.hpp"
#include "convert/regenerator.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"
#include "rng/lfsr.hpp"

using namespace sc;

namespace {

Bitstream input_x(std::size_t n) {
  return bench::stream(bench::vdc_spec(), 100, n);
}
Bitstream input_y(std::size_t n) {
  return bench::stream(bench::halton3_spec(), 180, n);
}

void BM_SngGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::stream(bench::lfsr_spec(), 128, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SngGeneration)->Arg(256)->Arg(1024)->Arg(4096);

void BM_WordParallelAnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) benchmark::DoNotOptimize(x & y);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WordParallelAnd)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SccComputation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) benchmark::DoNotOptimize(scc(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SccComputation)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Synchronizer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) {
    core::Synchronizer sync({static_cast<unsigned>(state.range(1)), false});
    benchmark::DoNotOptimize(core::apply(sync, x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Synchronizer)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({4096, 1})
    ->Args({4096, 8});

void BM_Desynchronizer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) {
    core::Desynchronizer desync;
    benchmark::DoNotOptimize(core::apply(desync, x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Desynchronizer)->Arg(256)->Arg(4096);

void BM_Decorrelator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) {
    core::Decorrelator dec(static_cast<std::size_t>(state.range(1)),
                           std::make_unique<rng::Lfsr>(8, 19),
                           std::make_unique<rng::Lfsr>(8, 37));
    benchmark::DoNotOptimize(core::apply(dec, x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Decorrelator)->Args({256, 4})->Args({256, 32})->Args({4096, 4});

void BM_Tfm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  core::TrackingForecastMemory::Config config;
  for (auto _ : state) {
    core::TfmPair tfm(config, std::make_unique<rng::Lfsr>(8, 31),
                      std::make_unique<rng::Lfsr>(8, 47));
    benchmark::DoNotOptimize(core::apply(tfm, x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Tfm)->Arg(256)->Arg(4096);

void BM_SyncMax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) benchmark::DoNotOptimize(core::sync_max(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SyncMax)->Arg(256)->Arg(4096);

void BM_CaMax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n), y = input_y(n);
  for (auto _ : state) benchmark::DoNotOptimize(arith::ca_max(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CaMax)->Arg(256)->Arg(4096);

void BM_Regeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bitstream x = input_x(n);
  for (auto _ : state) {
    rng::Lfsr source(8, 41);
    benchmark::DoNotOptimize(convert::regenerate(x, source));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Regeneration)->Arg(256)->Arg(4096);

void BM_PipelineTile(benchmark::State& state) {
  const img::Image scene = img::Image::synthetic_scene(10, 10, 5);
  const auto variant = static_cast<img::Variant>(state.range(0));
  img::PipelineConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::run_pipeline(scene, variant, config));
  }
}
BENCHMARK(BM_PipelineTile)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
