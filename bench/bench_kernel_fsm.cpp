/// \file bench_kernel_fsm.cpp
/// Bit-serial vs table-driven throughput of the correlation circuits.
///
/// Runs each FSM (synchronizer, desynchronizer, decorrelator, TFM pair)
/// over the same chunked long-stream workload twice — once with
/// KernelPolicy::kSerial (one virtual step() per cycle, the reference
/// path) and once with KernelPolicy::kAuto (the src/kernel/ table-driven
/// word-parallel path) — and reports Mbit/s per circuit, the speedup, and
/// whether the two runs produced identical overlap statistics (they must:
/// the kernels are bit-identical by construction and by test).
///
/// Harness bench (bench_harness.hpp): median-of-reps timing with warmup,
/// sc-bench-v1 JSON.  Cases: kernel_fsm/<circuit>/{serial,kernel}
/// (throughput, Mbit/s) and kernel_fsm/<circuit>/identical (exact — the
/// bit-identity contract the regression gate hard-fails on).
///
/// Usage: bench_kernel_fsm [--json PATH] [--reps N] [--warmup N]
///        [--quick] [--bits LOG2]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "engine/chunked_stream.hpp"
#include "rng/lfsr.hpp"

namespace {

using sc::engine::KernelPolicy;

/// One chunked run of `make_transform()` over pre-materialized input
/// streams (so the measurement isolates FSM throughput; input generation
/// is identical for both policies and would only compress the ratio).
/// `counts` receives the joint overlap statistics for the identity check
/// between policies.
void run_once(const std::function<std::unique_ptr<sc::core::PairTransform>()>&
                  make_transform,
              const sc::Bitstream& x, const sc::Bitstream& y,
              KernelPolicy policy, sc::OverlapCounts* counts) {
  using namespace sc;
  engine::BitstreamChunkSource sx(x);
  engine::BitstreamChunkSource sy(y);
  const std::unique_ptr<core::PairTransform> transform = make_transform();
  engine::PairStatsSink sink;
  engine::run_chunked_pair(sx, sy, transform.get(), sink,
                           engine::kDefaultChunkBits, policy);
  *counts = sink.counts();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;

  bench::HarnessOptions options;
  std::vector<std::string> rest;
  if (!bench::parse_harness_options(argc, argv, &options, &rest)) return 2;
  unsigned log2_bits = options.quick ? 20 : 23;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--bits" && i + 1 < rest.size()) {
      log2_bits = static_cast<unsigned>(std::atoi(rest[++i].c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--bits LOG2 (6..32)]\n",
                   argv[0]);
      return 2;
    }
  }
  if (log2_bits < 6 || log2_bits > 32) return 2;
  const std::size_t bits = std::size_t{1} << log2_bits;
  const std::string config = "bits=" + std::to_string(log2_bits);

  const std::vector<
      std::pair<std::string,
                std::function<std::unique_ptr<core::PairTransform>()>>>
      circuits = {
          {"synchronizer",
           [] {
             return std::make_unique<core::Synchronizer>(
                 core::Synchronizer::Config{2, true, 0});
           }},
          {"desynchronizer",
           [] {
             return std::make_unique<core::Desynchronizer>(
                 core::Desynchronizer::Config{2, false, true});
           }},
          {"decorrelator",
           [] {
             return std::make_unique<core::Decorrelator>(
                 8, std::make_unique<rng::Lfsr>(16, 0xBEEF),
                 std::make_unique<rng::Lfsr>(16, 0xCAFE, 5));
           }},
          {"tfm",
           [] {
             return std::make_unique<core::TfmPair>(
                 core::TrackingForecastMemory::Config{8, 3, 0.5},
                 std::make_unique<rng::Lfsr>(8, 0x1D),
                 std::make_unique<rng::Lfsr>(8, 0x2E));
           }},
      };

  // Input pair materialized once: a correlated comparator-SNG pair, the
  // workload the correlation circuits exist to manipulate.
  sc::Bitstream input_x;
  sc::Bitstream input_y;
  {
    engine::SngChunkSource sx(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                              bits);
    engine::SngChunkSource sy(std::make_unique<rng::Lfsr>(16, 0xACE1, 5),
                              40000, bits);
    engine::CollectPairSink collect;
    engine::run_chunked_pair(sx, sy, nullptr, collect);
    input_x = collect.stream_x();
    input_y = collect.stream_y();
  }

  bench::Harness harness("kernel_fsm", options);
  harness.set_meta("bits_per_circuit", static_cast<std::uint64_t>(bits));
  harness.set_meta("chunk_bits",
                   static_cast<std::uint64_t>(engine::kDefaultChunkBits));

  std::printf("kernel FSM bench: 2^%u bits per circuit, median of %u reps\n\n",
              log2_bits, harness.options().reps);
  std::printf("  %-16s %-14s %-14s %-9s %s\n", "circuit", "serial Mbit/s",
              "kernel Mbit/s", "speedup", "identical");

  bool all_identical = true;
  for (const auto& [name, make_transform] : circuits) {
    sc::OverlapCounts serial_counts;
    sc::OverlapCounts kernel_counts;
    const double serial_s = harness.time_case(
        "kernel_fsm/" + name + "/serial", "mbit_per_s",
        static_cast<double>(bits), 1e6,
        [&] {
          run_once(make_transform, input_x, input_y, KernelPolicy::kSerial,
                   &serial_counts);
        },
        config);
    const double kernel_s = harness.time_case(
        "kernel_fsm/" + name + "/kernel", "mbit_per_s",
        static_cast<double>(bits), 1e6,
        [&] {
          run_once(make_transform, input_x, input_y, KernelPolicy::kAuto,
                   &kernel_counts);
        },
        config);
    const bool identical = serial_counts.a == kernel_counts.a &&
                           serial_counts.b == kernel_counts.b &&
                           serial_counts.c == kernel_counts.c &&
                           serial_counts.d == kernel_counts.d;
    // Bit-identity is config-independent: a --quick run still gates it.
    harness.exact_case("kernel_fsm/" + name + "/identical", identical ? 1 : 0);
    all_identical = all_identical && identical;
    std::printf("  %-16s %-14.2f %-14.2f %-9.2f %s\n", name.c_str(),
                bits / serial_s / 1e6, bits / kernel_s / 1e6,
                serial_s / kernel_s, identical ? "yes" : "NO (BUG)");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: kernel path diverged from the bit-serial FSMs\n");
    return 1;
  }
  if (!harness.write_json()) return 1;
  return 0;
}
