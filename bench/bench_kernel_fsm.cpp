/// \file bench_kernel_fsm.cpp
/// Bit-serial vs table-driven throughput of the correlation circuits.
///
/// Runs each FSM (synchronizer, desynchronizer, decorrelator, TFM pair)
/// over the same chunked long-stream workload twice — once with
/// KernelPolicy::kSerial (one virtual step() per cycle, the reference
/// path) and once with KernelPolicy::kAuto (the src/kernel/ table-driven
/// word-parallel path) — and reports Mbit/s per circuit, the speedup, and
/// whether the two runs produced identical overlap statistics (they must:
/// the kernels are bit-identical by construction and by test).
///
/// Usage: bench_kernel_fsm [--json PATH] [--bits LOG2] [--reps N]
/// With --json the results are written as a machine-readable baseline
/// (BENCH_kernels.json in this repo tracks the perf trajectory across PRs).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "engine/chunked_stream.hpp"
#include "rng/lfsr.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using sc::engine::KernelPolicy;

struct CircuitResult {
  std::string name;
  std::size_t bits = 0;
  double serial_seconds = 0.0;
  double kernel_seconds = 0.0;
  bool identical = true;

  double serial_mbit_per_s() const { return bits / serial_seconds / 1e6; }
  double kernel_mbit_per_s() const { return bits / kernel_seconds / 1e6; }
  double speedup() const { return serial_seconds / kernel_seconds; }
};

/// One timed chunked run of `make_transform()` over pre-materialized input
/// streams (so the measurement isolates FSM throughput; input generation
/// is identical for both policies and would only compress the ratio).
/// Returns elapsed seconds; `counts` receives the joint overlap statistics
/// for the identity check between policies.
double run_once(const std::function<std::unique_ptr<sc::core::PairTransform>()>&
                    make_transform,
                const sc::Bitstream& x, const sc::Bitstream& y,
                KernelPolicy policy, sc::OverlapCounts* counts) {
  using namespace sc;
  engine::BitstreamChunkSource sx(x);
  engine::BitstreamChunkSource sy(y);
  const std::unique_ptr<core::PairTransform> transform = make_transform();
  engine::PairStatsSink sink;
  const auto start = Clock::now();
  engine::run_chunked_pair(sx, sy, transform.get(), sink,
                           engine::kDefaultChunkBits, policy);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  *counts = sink.counts();
  return seconds;
}

CircuitResult bench_circuit(
    const std::string& name,
    const std::function<std::unique_ptr<sc::core::PairTransform>()>&
        make_transform,
    const sc::Bitstream& x, const sc::Bitstream& y, unsigned reps) {
  CircuitResult r;
  r.name = name;
  r.bits = x.size();
  sc::OverlapCounts serial_counts;
  sc::OverlapCounts kernel_counts;
  // Keep the fastest of `reps` runs per policy (steady-state timing).
  for (unsigned i = 0; i < reps; ++i) {
    const double s =
        run_once(make_transform, x, y, KernelPolicy::kSerial, &serial_counts);
    if (i == 0 || s < r.serial_seconds) r.serial_seconds = s;
    const double k =
        run_once(make_transform, x, y, KernelPolicy::kAuto, &kernel_counts);
    if (i == 0 || k < r.kernel_seconds) r.kernel_seconds = k;
  }
  r.identical = serial_counts.a == kernel_counts.a &&
                serial_counts.b == kernel_counts.b &&
                serial_counts.c == kernel_counts.c &&
                serial_counts.d == kernel_counts.d;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;

  std::string json_path;
  unsigned log2_bits = 23;
  unsigned reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--bits LOG2] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (log2_bits < 6 || log2_bits > 32 || reps == 0) {
    std::fprintf(stderr,
                 "usage: %s [--json PATH] [--bits LOG2 (6..32)] "
                 "[--reps N (>= 1)]\n",
                 argv[0]);
    return 2;
  }
  const std::size_t bits = std::size_t{1} << log2_bits;

  const std::vector<
      std::pair<std::string,
                std::function<std::unique_ptr<core::PairTransform>()>>>
      circuits = {
          {"synchronizer",
           [] {
             return std::make_unique<core::Synchronizer>(
                 core::Synchronizer::Config{2, true, 0});
           }},
          {"desynchronizer",
           [] {
             return std::make_unique<core::Desynchronizer>(
                 core::Desynchronizer::Config{2, false, true});
           }},
          {"decorrelator",
           [] {
             return std::make_unique<core::Decorrelator>(
                 8, std::make_unique<rng::Lfsr>(16, 0xBEEF),
                 std::make_unique<rng::Lfsr>(16, 0xCAFE, 5));
           }},
          {"tfm",
           [] {
             return std::make_unique<core::TfmPair>(
                 core::TrackingForecastMemory::Config{8, 3, 0.5},
                 std::make_unique<rng::Lfsr>(8, 0x1D),
                 std::make_unique<rng::Lfsr>(8, 0x2E));
           }},
      };

  // Input pair materialized once: a correlated comparator-SNG pair, the
  // workload the correlation circuits exist to manipulate.
  sc::Bitstream input_x;
  sc::Bitstream input_y;
  {
    engine::SngChunkSource sx(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                              bits);
    engine::SngChunkSource sy(std::make_unique<rng::Lfsr>(16, 0xACE1, 5),
                              40000, bits);
    engine::CollectPairSink collect;
    engine::run_chunked_pair(sx, sy, nullptr, collect);
    input_x = collect.stream_x();
    input_y = collect.stream_y();
  }

  std::printf("kernel FSM bench: 2^%u bits per circuit, best of %u reps\n\n",
              log2_bits, reps);
  std::printf("  %-16s %-14s %-14s %-9s %s\n", "circuit", "serial Mbit/s",
              "kernel Mbit/s", "speedup", "identical");

  std::vector<CircuitResult> results;
  bool all_identical = true;
  for (const auto& [name, make_transform] : circuits) {
    const CircuitResult r =
        bench_circuit(name, make_transform, input_x, input_y, reps);
    std::printf("  %-16s %-14.2f %-14.2f %-9.2f %s\n", r.name.c_str(),
                r.serial_mbit_per_s(), r.kernel_mbit_per_s(), r.speedup(),
                r.identical ? "yes" : "NO (BUG)");
    all_identical = all_identical && r.identical;
    results.push_back(r);
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: kernel path diverged from the bit-serial FSMs\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"host\": " << sc::bench::host_json()
        << ",\n  \"bits_per_circuit\": " << bits
        << ",\n  \"chunk_bits\": " << engine::kDefaultChunkBits
        << ",\n  \"reps\": " << reps << ",\n  \"circuits\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CircuitResult& r = results[i];
      out << "    {\"name\": \"" << r.name
          << "\", \"serial_mbit_per_s\": " << r.serial_mbit_per_s()
          << ", \"kernel_mbit_per_s\": " << r.kernel_mbit_per_s()
          << ", \"speedup\": " << r.speedup()
          << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
