/// \file bench_opt_savings.cpp
/// Optimizer savings baseline: corrections saved, modeled-area delta, and
/// optimize-time per node on reference workloads.
///
/// Workloads:
///   fanout-16  — one input fanned to all 16 copies of a product operator:
///                the planner's pairwise insertion charges 120
///                decorrelators, the optimizer's chain pass (paper §III-C)
///                rewrites them to 15 single-buffer links.
///   siblings   — a mixed program exercising every pass: a foldable
///                constant subtree, a CSE duplicate, a dead op, and two
///                sibling ops whose synchronizers share one circuit.
///   window     — the §IV image-window program (realistic shape; measures
///                optimize overhead when there is little to rewrite).
///
/// For every workload the optimized program is executed on all three
/// backends and verified bit-identical across them before any number is
/// written; the bench exits nonzero on divergence or if the optimizer
/// fails to lower the modeled area of the fan-out workload.
///
/// Usage: bench_opt_savings [--json PATH] [--bits LOG2] [--reps N]
/// (BENCH_opt.json in this repo tracks the baseline across PRs.)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "img/sc_pipeline.hpp"
#include "opt/optimize.hpp"

// The fan-out fixture is shared with tests/opt_test.cpp so the regression
// test and this bench's CI self-check can never drift apart on the
// workload they validate.
#include "../tests/graph_fixtures.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace sc::graph;
using fixtures::fanout16_program;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Program siblings_program() {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.9, 1);
  const Value z = b.input("z", 0.4, 2);
  const Value c1 = b.constant(0.5);
  const Value c2 = b.constant(0.6);
  const Value folded = b.op("multiply", {c1, c2});     // constant-fold
  const Value xy = b.op("multiply", {x, y});
  const Value xy_dup = b.op("multiply", {x, y});       // CSE duplicate
  const Value diff = b.op("subtract", {xy, z});        // sync (shared...)
  const Value floor = b.op("min", {xy_dup, z});        // ...with this one
  (void)b.op("max", {x, z});                           // dead
  b.output(b.op("scaled-add", {diff, b.op("multiply", {floor, folded})}),
           "out");
  return b.build();
}

Program window_program() {
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  return sc::img::window_program(pixels);
}

struct WorkloadResult {
  std::string name;
  std::size_t nodes = 0;
  std::size_t corrections_before = 0;
  std::size_t corrections_after = 0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  double optimize_us_per_node = 0.0;
  /// Predicted per-output |error| bounds (analysis::plan_error) of the
  /// incoming and optimized plans — the static counterpart of the
  /// measured err_* columns below.
  double error_before = 0.0;
  double error_after = 0.0;
  double err_unoptimized = 0.0;
  double err_optimized = 0.0;
  bool backends_identical = true;

  double area_delta_pct() const {
    return area_before_um2 == 0.0
               ? 0.0
               : 100.0 * (area_after_um2 - area_before_um2) / area_before_um2;
  }
};

WorkloadResult run_workload(const std::string& name, const Program& program,
                            std::size_t stream_length, unsigned reps) {
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);

  sc::opt::OptConfig opt_config;
  opt_config.error_stream_length = stream_length;
  double best = 1e300;
  sc::opt::OptResult optimized;
  for (unsigned rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    optimized = sc::opt::optimize(program, plan, opt_config);
    best = std::min(best, seconds_since(start));
  }

  WorkloadResult result;
  result.name = name;
  result.nodes = program.node_count();
  result.corrections_before = plan.inserted_units;
  result.corrections_after = optimized.plan.inserted_units;
  result.area_before_um2 = optimized.area_before_um2;
  result.area_after_um2 = optimized.area_after_um2;
  result.error_before = optimized.error_before;
  result.error_after = optimized.error_after;
  result.optimize_us_per_node =
      best * 1e6 / static_cast<double>(program.node_count());

  ExecConfig config;
  config.stream_length = stream_length;
  result.err_unoptimized =
      make_backend(BackendKind::kKernel)->run(program, plan, config)
          .mean_abs_error;
  ExecutionResult reference;
  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const ExecutionResult r = make_backend(kind)->run(
        optimized.program, optimized.plan, config);
    if (reference.streams.empty()) {
      reference = r;
      result.err_optimized = r.mean_abs_error;
      continue;
    }
    for (std::size_t s = 0; s < reference.streams.size(); ++s) {
      if (r.streams[s] != reference.streams[s]) {
        result.backends_identical = false;
        break;
      }
    }
  }
  return result;
}

/// One point of the Pareto sweep: the fan-out workload optimized under a
/// caller-declared error budget.  The tight budget must roll the chain
/// rewrite back (area stays, accuracy stays), the loose one must keep it
/// (area drops, predicted + measured error rise), and the unbudgeted run
/// reproduces the legacy area-only gate.
struct ParetoPoint {
  double error_budget = 0.0;  // 0 = unbudgeted (infinity)
  std::size_t corrections = 0;
  double area_um2 = 0.0;
  double predicted_error = 0.0;
  double measured_error = 0.0;
};

std::vector<ParetoPoint> pareto_sweep(const Program& program,
                                      std::size_t stream_length) {
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const double budgets[] = {0.03, 0.10, 0.0};
  std::vector<ParetoPoint> points;
  for (const double budget : budgets) {
    sc::opt::OptConfig config;
    config.error_stream_length = stream_length;
    if (budget > 0.0) config.error_budget = budget;
    const sc::opt::OptResult optimized =
        sc::opt::optimize(program, plan, config);
    ExecConfig exec;
    exec.stream_length = stream_length;
    ParetoPoint point;
    point.error_budget = budget;
    point.corrections = optimized.plan.inserted_units;
    point.area_um2 = optimized.area_after_um2;
    point.predicted_error = optimized.error_after;
    point.measured_error =
        make_backend(BackendKind::kKernel)
            ->run(optimized.program, optimized.plan, exec)
            .mean_abs_error;
    points.push_back(point);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned log2_bits = 12;
  unsigned reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--bits LOG2] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t stream_length = std::size_t{1} << log2_bits;

  std::printf("optimizer savings bench: 2^%u bits, %u reps\n\n", log2_bits,
              reps);
  std::vector<WorkloadResult> results;
  results.push_back(
      run_workload("fanout-16", fanout16_program(), stream_length, reps));
  results.push_back(
      run_workload("siblings", siblings_program(), stream_length, reps));
  results.push_back(
      run_workload("window", window_program(), stream_length, reps));

  bool ok = true;
  for (const WorkloadResult& r : results) {
    std::printf(
        "  %-10s %3zu nodes  corrections %3zu -> %3zu  area %9.1f -> %9.1f "
        "um2 (%+6.1f%%)  opt %6.2f us/node  bound %.4f -> %.4f  |err| %.4f "
        "-> %.4f  identical=%s\n",
        r.name.c_str(), r.nodes, r.corrections_before, r.corrections_after,
        r.area_before_um2, r.area_after_um2, r.area_delta_pct(),
        r.optimize_us_per_node, r.error_before, r.error_after,
        r.err_unoptimized, r.err_optimized,
        r.backends_identical ? "yes" : "NO");
    ok &= r.backends_identical;
  }
  // The acceptance bar: the chain pass must lower the fan-out design's
  // modeled area (15 chain links instead of 120 pairwise decorrelators).
  ok &= results[0].area_after_um2 < results[0].area_before_um2;
  ok &= results[0].corrections_after == 15 &&
        results[0].corrections_before == 120;

  // Pareto sweep over error budgets on the fan-out workload: area vs
  // predicted vs measured accuracy of the multi-objective gate.
  const std::vector<ParetoPoint> pareto =
      pareto_sweep(fanout16_program(), stream_length);
  std::printf("\n  pareto (fanout-16):\n");
  for (const ParetoPoint& p : pareto) {
    std::printf(
        "    error budget %-5s  corrections %3zu  area %9.1f um2  "
        "predicted |error| %.4f  measured %.4f\n",
        p.error_budget > 0.0 ? std::to_string(p.error_budget).substr(0, 4).c_str()
                             : "none",
        p.corrections, p.area_um2, p.predicted_error, p.measured_error);
    // Soundness at every point: the static bound covers the measurement.
    ok &= p.measured_error <= p.predicted_error;
  }
  if (stream_length == 4096) {
    // At the calibrated operating point the 0.03 budget must reject the
    // chain rewrite (pairwise plan survives: 120 corrections, larger
    // area, lower error) and the 0.10 budget must accept it.
    ok &= pareto[0].corrections == 120 && pareto[1].corrections == 15;
    ok &= pareto[0].area_um2 > pareto[1].area_um2;
    ok &= pareto[0].measured_error < pareto[1].measured_error;
    // Unbudgeted behaves like the legacy area-only gate.
    ok &= pareto[2].corrections == pareto[1].corrections;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"host\": " << sc::bench::host_json()
        << ",\n  \"stream_bits\": " << stream_length
        << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      out << "    {\"name\": \"" << r.name << "\", \"nodes\": " << r.nodes
          << ", \"corrections_before\": " << r.corrections_before
          << ", \"corrections_after\": " << r.corrections_after
          << ", \"area_before_um2\": " << r.area_before_um2
          << ", \"area_after_um2\": " << r.area_after_um2
          << ", \"optimize_us_per_node\": " << r.optimize_us_per_node
          << ", \"error_before\": " << r.error_before
          << ", \"error_after\": " << r.error_after
          << ", \"err_unoptimized\": " << r.err_unoptimized
          << ", \"err_optimized\": " << r.err_optimized
          << ", \"backends_identical\": "
          << (r.backends_identical ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"pareto_fanout16\": [\n";
    for (std::size_t i = 0; i < pareto.size(); ++i) {
      const ParetoPoint& p = pareto[i];
      out << "    {\"error_budget\": " << p.error_budget
          << ", \"corrections\": " << p.corrections
          << ", \"area_um2\": " << p.area_um2
          << ", \"predicted_error\": " << p.predicted_error
          << ", \"measured_error\": " << p.measured_error << "}"
          << (i + 1 < pareto.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
