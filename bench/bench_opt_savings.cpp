/// \file bench_opt_savings.cpp
/// Optimizer savings baseline: corrections saved, modeled-area delta, and
/// optimize throughput on reference workloads.
///
/// Workloads:
///   fanout-16  — one input fanned to all 16 copies of a product operator:
///                the planner's pairwise insertion charges 120
///                decorrelators, the optimizer's chain pass (paper §III-C)
///                rewrites them to 15 single-buffer links.
///   siblings   — a mixed program exercising every pass: a foldable
///                constant subtree, a CSE duplicate, a dead op, and two
///                sibling ops whose synchronizers share one circuit.
///   window     — the §IV image-window program (realistic shape; measures
///                optimize overhead when there is little to rewrite).
///
/// For every workload the optimized program is executed on all three
/// backends and verified bit-identical across them before any number is
/// written; the bench exits nonzero on divergence or if the optimizer
/// fails to lower the modeled area of the fan-out workload.
///
/// Harness bench (bench_harness.hpp).  Cases per workload:
/// opt/<name>/optimize (throughput, nodes/s), opt/<name>/corrections_
/// {before,after} (exact — the chain-rewrite contract), opt/<name>/
/// area_{before,after}_um2 and error bounds and measured errors (value —
/// deterministic, tight epsilon), opt/<name>/identical (exact); plus the
/// Pareto sweep opt/pareto/budget_<b>/* value + exact cases.
///
/// Usage: bench_opt_savings [--json PATH] [--reps N] [--warmup N]
///        [--quick] [--bits LOG2]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "img/sc_pipeline.hpp"
#include "opt/optimize.hpp"

// The fan-out fixture is shared with tests/opt_test.cpp so the regression
// test and this bench's CI self-check can never drift apart on the
// workload they validate.
#include "../tests/graph_fixtures.hpp"

namespace {

using namespace sc::graph;
using fixtures::fanout16_program;

Program siblings_program() {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.9, 1);
  const Value z = b.input("z", 0.4, 2);
  const Value c1 = b.constant(0.5);
  const Value c2 = b.constant(0.6);
  const Value folded = b.op("multiply", {c1, c2});     // constant-fold
  const Value xy = b.op("multiply", {x, y});
  const Value xy_dup = b.op("multiply", {x, y});       // CSE duplicate
  const Value diff = b.op("subtract", {xy, z});        // sync (shared...)
  const Value floor = b.op("min", {xy_dup, z});        // ...with this one
  (void)b.op("max", {x, z});                           // dead
  b.output(b.op("scaled-add", {diff, b.op("multiply", {floor, folded})}),
           "out");
  return b.build();
}

Program window_program() {
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  return sc::img::window_program(pixels);
}

struct WorkloadResult {
  std::size_t corrections_before = 0;
  std::size_t corrections_after = 0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  double error_before = 0.0;
  double error_after = 0.0;
  double err_unoptimized = 0.0;
  double err_optimized = 0.0;
  bool backends_identical = true;
};

WorkloadResult run_workload(sc::bench::Harness& harness,
                            const std::string& name, const Program& program,
                            std::size_t stream_length,
                            const std::string& case_config) {
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);

  sc::opt::OptConfig opt_config;
  opt_config.error_stream_length = stream_length;
  sc::opt::OptResult optimized;
  harness.time_case("opt/" + name + "/optimize", "nodes_per_s",
                    static_cast<double>(program.node_count()), 1.0,
                    [&] { optimized = sc::opt::optimize(program, plan,
                                                        opt_config); },
                    case_config);

  WorkloadResult result;
  result.corrections_before = plan.inserted_units;
  result.corrections_after = optimized.plan.inserted_units;
  result.area_before_um2 = optimized.area_before_um2;
  result.area_after_um2 = optimized.area_after_um2;
  result.error_before = optimized.error_before;
  result.error_after = optimized.error_after;

  ExecConfig config;
  config.stream_length = stream_length;
  result.err_unoptimized =
      make_backend(BackendKind::kKernel)->run(program, plan, config)
          .mean_abs_error;
  ExecutionResult reference;
  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const ExecutionResult r = make_backend(kind)->run(
        optimized.program, optimized.plan, config);
    if (reference.streams.empty()) {
      reference = r;
      result.err_optimized = r.mean_abs_error;
      continue;
    }
    for (std::size_t s = 0; s < reference.streams.size(); ++s) {
      if (r.streams[s] != reference.streams[s]) {
        result.backends_identical = false;
        break;
      }
    }
  }

  // Corrections counts are plan contracts (config-independent); areas and
  // errors are deterministic at a fixed stream length.
  harness.exact_case("opt/" + name + "/corrections_before",
                     result.corrections_before);
  harness.exact_case("opt/" + name + "/corrections_after",
                     result.corrections_after);
  harness.exact_case("opt/" + name + "/identical",
                     result.backends_identical ? 1 : 0);
  harness.value_case("opt/" + name + "/area_before_um2", "um2",
                     result.area_before_um2, false, case_config);
  harness.value_case("opt/" + name + "/area_after_um2", "um2",
                     result.area_after_um2, false, case_config);
  harness.value_case("opt/" + name + "/error_bound_after", "abs_error",
                     result.error_after, false, case_config);
  harness.value_case("opt/" + name + "/err_optimized", "abs_error",
                     result.err_optimized, false, case_config);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  sc::bench::HarnessOptions options;
  std::vector<std::string> rest;
  if (!sc::bench::parse_harness_options(argc, argv, &options, &rest)) return 2;
  // The 0.03/0.10 Pareto contract is calibrated at N=4096; --quick keeps
  // it (the workloads are small, the reps cut is the savings).
  unsigned log2_bits = 12;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--bits" && i + 1 < rest.size()) {
      log2_bits = static_cast<unsigned>(std::atoi(rest[++i].c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--bits LOG2]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t stream_length = std::size_t{1} << log2_bits;
  const std::string case_config = "bits=" + std::to_string(log2_bits);

  sc::bench::Harness harness("opt_savings", options);
  harness.set_meta("stream_bits", static_cast<std::uint64_t>(stream_length));

  std::printf("optimizer savings bench: 2^%u bits, median of %u reps\n\n",
              log2_bits, harness.options().reps);

  const std::vector<std::pair<std::string, Program>> workloads = {
      {"fanout-16", fanout16_program()},
      {"siblings", siblings_program()},
      {"window", window_program()},
  };
  std::vector<WorkloadResult> results;
  bool ok = true;
  for (const auto& [name, program] : workloads) {
    const WorkloadResult r =
        run_workload(harness, name, program, stream_length, case_config);
    std::printf(
        "  %-10s %3zu nodes  corrections %3zu -> %3zu  area %9.1f -> %9.1f "
        "um2 (%+6.1f%%)  bound %.4f -> %.4f  |err| %.4f -> %.4f  "
        "identical=%s\n",
        name.c_str(), program.node_count(), r.corrections_before,
        r.corrections_after, r.area_before_um2, r.area_after_um2,
        r.area_before_um2 == 0.0
            ? 0.0
            : 100.0 * (r.area_after_um2 - r.area_before_um2) /
                  r.area_before_um2,
        r.error_before, r.error_after, r.err_unoptimized, r.err_optimized,
        r.backends_identical ? "yes" : "NO");
    ok &= r.backends_identical;
    results.push_back(r);
  }
  // The acceptance bar: the chain pass must lower the fan-out design's
  // modeled area (15 chain links instead of 120 pairwise decorrelators).
  ok &= results[0].area_after_um2 < results[0].area_before_um2;
  ok &= results[0].corrections_after == 15 &&
        results[0].corrections_before == 120;

  // Pareto sweep over error budgets on the fan-out workload: area vs
  // predicted vs measured accuracy of the multi-objective gate.  The
  // tight budget must roll the chain rewrite back, the loose one keep it,
  // and the unbudgeted run reproduces the legacy area-only gate.
  const Program fanout = fanout16_program();
  const ProgramPlan fanout_plan = plan_program(fanout, Strategy::kManipulation);
  const double budgets[] = {0.03, 0.10, 0.0};
  std::vector<std::size_t> pareto_corrections;
  std::vector<double> pareto_measured;
  std::vector<double> pareto_area;
  std::printf("\n  pareto (fanout-16):\n");
  for (const double budget : budgets) {
    sc::opt::OptConfig config;
    config.error_stream_length = stream_length;
    if (budget > 0.0) config.error_budget = budget;
    const sc::opt::OptResult optimized =
        sc::opt::optimize(fanout, fanout_plan, config);
    ExecConfig exec;
    exec.stream_length = stream_length;
    const double measured =
        make_backend(BackendKind::kKernel)
            ->run(optimized.program, optimized.plan, exec)
            .mean_abs_error;
    const std::string tag =
        budget > 0.0 ? std::to_string(budget).substr(0, 4) : "none";
    harness.exact_case("opt/pareto/budget_" + tag + "/corrections",
                       optimized.plan.inserted_units, case_config);
    harness.value_case("opt/pareto/budget_" + tag + "/measured_error",
                       "abs_error", measured, false, case_config);
    std::printf(
        "    error budget %-5s  corrections %3zu  area %9.1f um2  "
        "predicted |error| %.4f  measured %.4f\n",
        tag.c_str(), optimized.plan.inserted_units, optimized.area_after_um2,
        optimized.error_after, measured);
    // Soundness at every point: the static bound covers the measurement.
    ok &= measured <= optimized.error_after;
    pareto_corrections.push_back(optimized.plan.inserted_units);
    pareto_measured.push_back(measured);
    pareto_area.push_back(optimized.area_after_um2);
  }
  if (stream_length == 4096) {
    // At the calibrated operating point the 0.03 budget must reject the
    // chain rewrite (pairwise plan survives: 120 corrections, larger
    // area, lower error) and the 0.10 budget must accept it.
    ok &= pareto_corrections[0] == 120 && pareto_corrections[1] == 15;
    ok &= pareto_area[0] > pareto_area[1];
    ok &= pareto_measured[0] < pareto_measured[1];
    // Unbudgeted behaves like the legacy area-only gate.
    ok &= pareto_corrections[2] == pareto_corrections[1];
  }

  if (!harness.write_json()) return 1;
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
