/// Reproduces the paper's §IV-B overhead analysis: the power/energy of the
/// correlation-manipulation hardware alone (synchronizers vs the S/D + D/S
/// converters of regeneration), the per-unit comparison, and the headline
/// "synchronizer manipulation is 3.0x more energy efficient" claim.

#include <cstdio>

#include "bench_util.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"

using namespace sc;
using namespace sc::img;
using bench::cell;

int main() {
  const Image scene = Image::synthetic_scene(40, 40, 11);
  PipelineConfig config;

  std::printf("=== §IV-B: correlation-manipulation overhead accounting ===\n\n");

  // --- per-unit comparison -------------------------------------------------
  const hw::CostReport sync_unit =
      hw::evaluate(hw::synchronizer_netlist(config.sync_depth));
  const hw::CostReport regen_unit =
      hw::evaluate(hw::regenerator_netlist(config.sng_width));

  bench::Table unit_table({"Unit", "Area um2", "Power uW", "Cells"},
                          {22, 10, 10, 7});
  unit_table.print_header();
  unit_table.print_row(
      {"synchronizer (D=2)", cell(sync_unit.area_um2, 1),
       cell(sync_unit.power_uw, 2),
       bench::cell_int(static_cast<std::int64_t>(
           hw::synchronizer_netlist(config.sync_depth).total_cells()))});
  unit_table.print_row(
      {"regenerator (8-bit)", cell(regen_unit.area_um2, 1),
       cell(regen_unit.power_uw, 2),
       bench::cell_int(static_cast<std::int64_t>(
           hw::regenerator_netlist(config.sng_width).total_cells()))});
  unit_table.print_rule();
  std::printf("per-unit power ratio regen/sync = %.1fx\n\n",
              regen_unit.power_uw / sync_unit.power_uw);

  // --- per-accelerator overhead --------------------------------------------
  const PipelineResult regen =
      run_pipeline(scene, Variant::kRegeneration, config);
  const PipelineResult sync =
      run_pipeline(scene, Variant::kSynchronizer, config);
  const PipelineResult none =
      run_pipeline(scene, Variant::kNoManipulation, config);

  bench::Table table({"Design", "Manip units", "Overhead uW", "Overhead nJ",
                      "Total nJ"},
                     {20, 12, 12, 12, 10});
  table.print_header();
  table.print_row({"SC regeneration",
                   bench::cell_int(static_cast<std::int64_t>(
                       regen.cost.manipulator_units)),
                   cell(regen.cost.overhead_power_uw, 1),
                   cell(regen.cost.overhead_energy_nj, 1),
                   cell(regen.cost.energy_nj_frame, 1)});
  table.print_row({"SC synchronizer",
                   bench::cell_int(static_cast<std::int64_t>(
                       sync.cost.manipulator_units)),
                   cell(sync.cost.overhead_power_uw, 1),
                   cell(sync.cost.overhead_energy_nj, 1),
                   cell(sync.cost.energy_nj_frame, 1)});
  table.print_rule();

  const double overhead_ratio =
      regen.cost.overhead_energy_nj / sync.cost.overhead_energy_nj;
  std::printf(
      "\nHeadline claims:\n"
      "  manipulation-overhead energy ratio regen/sync = %.1fx (paper 3.0x)\n"
      "  synchronizer units / regeneration converters  = %.1fx (paper ~2x)\n"
      "  total frame energy saving sync vs regen       = %.0f%% (paper 24%%)\n"
      "  accuracy cost of the saving: |err_sync - err_regen| = %.3f "
      "(paper: negligible)\n"
      "  both manipulated designs vs no manipulation: error %.3f -> %.3f\n",
      overhead_ratio,
      static_cast<double>(sync.cost.manipulator_units) /
          static_cast<double>(regen.cost.manipulator_units),
      100.0 * (1.0 - sync.cost.energy_nj_frame / regen.cost.energy_nj_frame),
      std::abs(sync.error - regen.error), none.error, sync.error);
  return 0;
}
