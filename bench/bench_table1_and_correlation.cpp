/// Reproduces paper Table I: the function computed by a two-input AND gate
/// under positive, negative, and zero correlation.
///
/// Part 1 replays the paper's literal 8-bit example streams.  Part 2
/// validates the three closed forms (min, saturating difference, product)
/// over an exhaustive value sweep at N = 256 and reports the mean absolute
/// deviation from each closed form.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/metrics.hpp"
#include "bitstream/synthesis.hpp"

using namespace sc;
using bench::cell;

int main() {
  std::printf("=== Table I: SC functions implemented by a 2-input AND gate ===\n\n");

  // --- Part 1: the paper's literal streams -------------------------------
  struct Example {
    const char* label;
    const char* x;
    const char* y;
    const char* function;
  };
  const Example examples[] = {
      {"Positively corr.", "10101010", "10111011", "min(pX, pY)"},
      {"Negatively corr.", "10101010", "11011101", "max(0, pX+pY-1)"},
      {"Uncorrelated", "10101010", "11111100", "pX * pY"},
  };

  bench::Table literal({"Inputs", "X", "Y", "X&Y", "SCC", "Function"},
                       {17, 10, 10, 10, 6, 16});
  literal.print_header();
  for (const Example& e : examples) {
    const Bitstream x = Bitstream::from_string(e.x);
    const Bitstream y = Bitstream::from_string(e.y);
    const Bitstream z = x & y;
    literal.print_row({e.label, e.x + std::string(" (") + cell(x.value(), 2) + ")",
                       e.y + std::string(" (") + cell(y.value(), 2) + ")",
                       z.to_string() + " (" + cell(z.value(), 3) + ")",
                       cell(scc(x, y), 0), e.function});
  }
  literal.print_rule();

  // --- Part 2: exhaustive sweep at N = 256 --------------------------------
  ErrorStats err_pos, err_neg, err_unc;
  for (std::uint32_t lx = 0; lx <= 256; lx += 4) {
    for (std::uint32_t ly = 0; ly <= 256; ly += 4) {
      const double px = lx / 256.0;
      const double py = ly / 256.0;
      const auto pos = make_positively_correlated(lx, ly, 256);
      const auto neg = make_negatively_correlated(lx, ly, 256);
      const auto unc = make_uncorrelated(lx, ly, 256);
      err_pos.add((pos.x & pos.y).value() - std::min(px, py));
      err_neg.add((neg.x & neg.y).value() - std::max(0.0, px + py - 1.0));
      err_unc.add((unc.x & unc.y).value() - px * py);
    }
  }

  std::printf("\nExhaustive sweep, N = 256, %zu (x, y) pairs per regime:\n\n",
              err_pos.count());
  bench::Table sweep({"Regime", "Closed form", "Mean |dev|", "Max |dev|"},
                     {18, 18, 10, 10});
  sweep.print_header();
  sweep.print_row({"SCC = +1", "min(pX, pY)", cell(err_pos.mean_abs(), 6),
                   cell(std::max(-err_pos.min(), err_pos.max()), 6)});
  sweep.print_row({"SCC = -1", "max(0, pX+pY-1)", cell(err_neg.mean_abs(), 6),
                   cell(std::max(-err_neg.min(), err_neg.max()), 6)});
  sweep.print_row({"SCC = 0", "pX * pY", cell(err_unc.mean_abs(), 6),
                   cell(std::max(-err_unc.min(), err_unc.max()), 6)});
  sweep.print_rule();
  std::printf(
      "\nThe +1/-1 regimes realize their closed forms exactly; the SCC = 0\n"
      "regime deviates only by overlap rounding (< 1 LSB = %.6f).\n",
      1.0 / 256.0);
  return 0;
}
