/// Reproduces paper Table III: average absolute error, bias, area, power,
/// and energy for the SC maximum/minimum designs at N = 256:
///   OR max | CA max | sync max | AND min | sync min
///
/// Accuracy: exhaustive sweep over all input value pairs with the paper's
/// RNG configuration (VDC for X, base-3 Halton for Y).  Hardware: the
/// calibrated 65nm-class cost model at the Table III operating point
/// (see hw/cells.hpp for the calibration note).  Paper numbers printed
/// alongside for comparison.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "arith/minmax.hpp"
#include "bench_util.hpp"
#include "bitstream/metrics.hpp"
#include "core/ops.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"

using namespace sc;
using bench::cell;

namespace {

struct Accuracy {
  double abs_error = 0.0;
  double bias = 0.0;
};

Accuracy sweep(const std::function<Bitstream(const Bitstream&, const Bitstream&)>& op,
               bool is_max, std::uint32_t stride) {
  ErrorStats err;
  for (std::uint32_t lx = 0; lx <= 256; lx += stride) {
    for (std::uint32_t ly = 0; ly <= 256; ly += stride) {
      const Bitstream x = bench::stream(bench::vdc_spec(), lx);
      const Bitstream y = bench::stream(bench::halton3_spec(), ly);
      const double exact =
          (is_max ? std::max(lx, ly) : std::min(lx, ly)) / 256.0;
      err.add(op(x, y).value() - exact);
    }
  }
  return {err.mean_abs(), err.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t stride = argc > 1 ? std::atoi(argv[1]) : 1;

  std::printf(
      "=== Table III: SC maximum / minimum designs (N = 256, stride %u) ===\n"
      "accuracy: exhaustive VDC x Halton-3 sweep; hardware: calibrated\n"
      "65nm-class model @ 100 MHz, 2^16-cycle op (paper operating point)\n\n",
      stride);

  struct Design {
    const char* name;
    std::function<Bitstream(const Bitstream&, const Bitstream&)> op;
    bool is_max;
    hw::Netlist netlist;
    double paper_err, paper_bias, paper_area, paper_power, paper_energy;
  };

  const Design designs[] = {
      {"OR Max", [](const Bitstream& x, const Bitstream& y) { return arith::or_max(x, y); },
       true, hw::or_gate_netlist(), 0.087, 0.087, 2.16, 0.26, 165},
      {"CA Max", [](const Bitstream& x, const Bitstream& y) { return arith::ca_max(x, y); },
       true, hw::ca_max_netlist(), 0.006, 0.001, 252.36, 56.7, 36288},
      {"Sync Max", [](const Bitstream& x, const Bitstream& y) { return core::sync_max(x, y); },
       true, hw::sync_max_netlist(1), 0.003, 0.003, 48.6, 4.89, 3130},
      {"AND Min", [](const Bitstream& x, const Bitstream& y) { return arith::and_min(x, y); },
       false, hw::and_gate_netlist(), 0.082, -0.082, 2.16, 0.25, 158},
      {"Sync Min", [](const Bitstream& x, const Bitstream& y) { return core::sync_min(x, y); },
       false, hw::sync_min_netlist(1), 0.005, 0.005, 45.0, 8.38, 5363},
  };

  bench::Table table({"Design", "Abs err", "Bias", "Area um2", "Power uW",
                      "Energy pJ", "paper err/area/energy"},
                     {9, 8, 8, 9, 9, 10, 22});
  table.print_header();

  double sync_energy = 0.0, ca_energy = 0.0;
  double sync_area = 0.0, ca_area = 0.0;
  for (const Design& d : designs) {
    const Accuracy acc = sweep(d.op, d.is_max, stride);
    const hw::CostReport cost = hw::evaluate(d.netlist);
    if (std::string(d.name) == "Sync Max") {
      sync_energy = cost.energy_pj;
      sync_area = cost.area_um2;
    }
    if (std::string(d.name) == "CA Max") {
      ca_energy = cost.energy_pj;
      ca_area = cost.area_um2;
    }
    table.print_row({d.name, cell(acc.abs_error), cell(acc.bias),
                     cell(cost.area_um2, 1), cell(cost.power_uw, 2),
                     cell(cost.energy_pj, 0),
                     cell(d.paper_err) + "/" + cell(d.paper_area, 1) + "/" +
                         cell(d.paper_energy, 0)});
  }
  table.print_rule();

  std::printf(
      "\nHeadline factors (paper: CA max is 5.2x larger and 11.6x more\n"
      "energy-hungry than sync max):\n"
      "  area  ratio CA/sync   = %.1fx\n"
      "  energy ratio CA/sync  = %.1fx\n",
      ca_area / sync_area, ca_energy / sync_energy);

  // Depth ablation appendix: accuracy/cost of sync max vs save depth.
  std::printf("\nSync-max save-depth trade-off (paper §III-D):\n\n");
  bench::Table depth_table({"Depth D", "Abs err", "Area um2", "Power uW"},
                           {8, 9, 9, 9});
  depth_table.print_header();
  for (unsigned depth : {1u, 2u, 4u, 8u}) {
    const Accuracy acc = sweep(
        [depth](const Bitstream& x, const Bitstream& y) {
          return core::sync_max(x, y, {depth, false});
        },
        true, std::max(stride, 4u));
    const hw::CostReport cost = hw::evaluate(hw::sync_max_netlist(depth));
    depth_table.print_row({bench::cell_int(depth), cell(acc.abs_error),
                           cell(cost.area_um2, 1), cell(cost.power_uw, 2)});
  }
  depth_table.print_rule();
  return 0;
}
