/// \file bench_harness.hpp
/// The unified benchmark harness: one methodology and one JSON schema for
/// every throughput-style bench in the repo.
///
/// The 19 ad-hoc bench binaries grew 19 slightly different timing loops —
/// "best of 3" with no warmup, which is how BENCH_obs.json once recorded
/// *negative* telemetry overheads.  This harness pins the methodology:
///
///  * named cases — every number has a stable, slash-separated identity
///    ("kernel_fsm/decorrelator/kernel") the regression gate keys on,
///  * warmup iterations (discarded) before `reps >= 10` timed repetitions,
///  * median + MAD (median absolute deviation) instead of min/mean: the
///    median ignores the occasional descheduled rep, and the MAD is the
///    per-case noise floor tools/bench_compare.py uses as tolerance,
///  * outlier flagging: reps more than 5 scaled MADs off the median are
///    counted (and reported) but never silently discarded,
///  * the host/build stamp (bench_util.hpp) on every file, so numbers
///    from different machines or build types are never compared blindly.
///
/// Schema ("sc-bench-v1"): {"schema", "bench", "host", "options",
/// "meta", "cases": [{"name", "unit", "kind", "value", "higher_is_better",
/// "severity", "config", "median_seconds", "mad_seconds", "reps",
/// "outliers", "rep_seconds"}]}.  Case kinds:
///
///   throughput  timed; value derived from work/median-seconds; compared
///               with a relative tolerance (noise-aware),
///   percent     derived percentage (e.g. telemetry overhead); compared
///               with an absolute tolerance in percentage points,
///   value       deterministic number (modeled area, measured error);
///               compared with a tiny relative epsilon,
///   exact       integer/bool contract (corrections count, bit-identity);
///               any change is a failure.
///
/// `severity` ("warn" | "fail") tells the gate whether a miss fails CI or
/// warns (throughput on the 1-hw-thread CI host is warn-only; overheads
/// and exact contracts hard-fail).  `config` names the knob settings a
/// case depends on ("bits=16"); the gate only compares cases whose config
/// matches the baseline, so a --quick run still gates every
/// config-independent contract.

#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

namespace sc::bench {

struct RepStats {
  double median = 0.0;
  double mad = 0.0;  ///< raw median absolute deviation (same unit as input)
  double min = 0.0;
  double max = 0.0;
  std::size_t outliers = 0;  ///< |x - median| > 5 * 1.4826 * MAD (MAD > 0)
};

inline double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

inline RepStats robust_stats(const std::vector<double>& xs) {
  RepStats s;
  if (xs.empty()) return s;
  s.median = median_of(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (const double x : xs) deviations.push_back(std::fabs(x - s.median));
  s.mad = median_of(deviations);
  if (s.mad > 0.0) {
    // 1.4826 scales the MAD to a Gaussian sigma; 5 sigmas flags genuine
    // disturbances, not tail noise.
    const double cutoff = 5.0 * 1.4826 * s.mad;
    for (const double d : deviations) s.outliers += d > cutoff ? 1 : 0;
  }
  return s;
}

struct CaseResult {
  std::string name;
  std::string unit;           ///< "mbit_per_s", "pct", "count", ...
  std::string kind;           ///< throughput | percent | value | exact
  std::string severity;       ///< warn | fail
  std::string config;         ///< knob settings the value depends on
  bool higher_is_better = true;
  double value = 0.0;
  RepStats seconds;           ///< timed kinds only (all zero otherwise)
  std::vector<double> rep_seconds;
};

struct HarnessOptions {
  unsigned reps = 10;    ///< timed repetitions (the methodology floor)
  unsigned warmup = 2;   ///< discarded warmup repetitions
  bool quick = false;    ///< benches may shrink their workload knobs
  std::string json_path;
};

/// Parses the harness's shared flags out of argv, leaving unrecognized
/// flags for the bench (returns false + usage on malformed input).
/// Shared flags: --json PATH, --reps N, --warmup N, --quick.
inline bool parse_harness_options(int argc, char** argv,
                                  HarnessOptions* options,
                                  std::vector<std::string>* rest) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options->json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      options->reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      options->warmup = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options->quick = true;
      if (options->reps > 5) options->reps = 5;
      if (options->warmup > 1) options->warmup = 1;
    } else {
      rest->push_back(argv[i]);
    }
  }
  return options->reps >= 1;
}

class Harness {
 public:
  Harness(std::string bench_name, HarnessOptions options)
      : bench_name_(std::move(bench_name)), options_(std::move(options)) {}

  const HarnessOptions& options() const { return options_; }

  /// Workload metadata recorded verbatim into the JSON "meta" object
  /// (value must already be valid JSON: numbers as-is, strings quoted).
  void set_meta(const std::string& key, const std::string& json_value) {
    meta_[key] = json_value;
  }
  void set_meta(const std::string& key, std::uint64_t v) {
    meta_[key] = std::to_string(v);
  }

  /// Times fn() `warmup + reps` times; the case value is
  /// work / median_seconds / scale (e.g. work=bits, scale=1e6 ->
  /// Mbit/s).  Returns the median seconds for derived computations.
  double time_case(const std::string& name, const std::string& unit,
                   double work, double scale,
                   const std::function<void()>& fn,
                   const std::string& config = "",
                   const std::string& severity = "warn") {
    using Clock = std::chrono::steady_clock;
    for (unsigned i = 0; i < options_.warmup; ++i) fn();
    std::vector<double> reps;
    reps.reserve(options_.reps);
    for (unsigned i = 0; i < options_.reps; ++i) {
      const auto start = Clock::now();
      fn();
      reps.push_back(std::chrono::duration<double>(Clock::now() - start).count());
    }
    CaseResult result;
    result.name = name;
    result.unit = unit;
    result.kind = "throughput";
    result.severity = severity;
    result.config = config;
    result.seconds = robust_stats(reps);
    result.rep_seconds = std::move(reps);
    result.value = result.seconds.median > 0.0
                       ? work / result.seconds.median / scale
                       : 0.0;
    cases_.push_back(std::move(result));
    return cases_.back().seconds.median;
  }

  /// Records a throughput case from externally-timed repetitions — for
  /// benches that must interleave several cases' reps (round-robin A/B
  /// timing) so clock-frequency drift hits every case equally instead of
  /// biasing whichever case was timed first.  Statistics and JSON are
  /// identical to time_case.  Returns the median seconds.
  double submit_case(const std::string& name, const std::string& unit,
                     double work, double scale, std::vector<double> reps,
                     const std::string& config = "",
                     const std::string& severity = "warn") {
    CaseResult result;
    result.name = name;
    result.unit = unit;
    result.kind = "throughput";
    result.severity = severity;
    result.config = config;
    result.seconds = robust_stats(reps);
    result.rep_seconds = std::move(reps);
    result.value = result.seconds.median > 0.0
                       ? work / result.seconds.median / scale
                       : 0.0;
    cases_.push_back(std::move(result));
    return cases_.back().seconds.median;
  }

  /// Derived percentage (e.g. overhead vs a baseline case): hard-fail by
  /// default — percentages are what the regression gate exists for.
  void percent_case(const std::string& name, double value,
                    bool higher_is_better = false,
                    const std::string& config = "",
                    const std::string& severity = "fail") {
    CaseResult result;
    result.name = name;
    result.unit = "pct";
    result.kind = "percent";
    result.severity = severity;
    result.config = config;
    result.higher_is_better = higher_is_better;
    result.value = value;
    cases_.push_back(std::move(result));
  }

  /// Deterministic numeric result (modeled area, measured error).
  void value_case(const std::string& name, const std::string& unit,
                  double value, bool higher_is_better = false,
                  const std::string& config = "",
                  const std::string& severity = "fail") {
    CaseResult result;
    result.name = name;
    result.unit = unit;
    result.kind = "value";
    result.severity = severity;
    result.config = config;
    result.higher_is_better = higher_is_better;
    result.value = value;
    cases_.push_back(std::move(result));
  }

  /// Integer/bool contract: any drift is schema drift.
  void exact_case(const std::string& name, std::uint64_t value,
                  const std::string& config = "") {
    CaseResult result;
    result.name = name;
    result.unit = "count";
    result.kind = "exact";
    result.severity = "fail";
    result.config = config;
    result.value = static_cast<double>(value);
    cases_.push_back(std::move(result));
  }

  const std::vector<CaseResult>& cases() const { return cases_; }

  [[nodiscard]] const CaseResult* find(const std::string& name) const {
    for (const CaseResult& c : cases_) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }

  /// Writes the sc-bench-v1 document; no-op (returns true) without
  /// --json.  Returns false if the file could not be written.
  bool write_json() const {
    if (options_.json_path.empty()) return true;
    std::ofstream out(options_.json_path, std::ios::trunc);
    if (!out) return false;
    out << to_json();
    std::printf("wrote %s\n", options_.json_path.c_str());
    return out.good();
  }

  [[nodiscard]] std::string to_json() const {
    std::string out;
    out += "{\n  \"schema\": \"sc-bench-v1\",\n  \"bench\": \"" + bench_name_ +
           "\",\n  \"host\": " + host_json() + ",\n  \"options\": {\"reps\": " +
           std::to_string(options_.reps) +
           ", \"warmup\": " + std::to_string(options_.warmup) +
           ", \"quick\": " + (options_.quick ? "true" : "false") + "},\n";
    out += "  \"meta\": {";
    bool first = true;
    for (const auto& [key, value] : meta_) {
      out += first ? "" : ", ";
      out += "\"" + key + "\": " + value;
      first = false;
    }
    out += "},\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      const CaseResult& c = cases_[i];
      char buf[256];
      out += "    {\"name\": \"" + c.name + "\", \"unit\": \"" + c.unit +
             "\", \"kind\": \"" + c.kind + "\", \"severity\": \"" +
             c.severity + "\", \"config\": \"" + c.config + "\"";
      std::snprintf(buf, sizeof(buf),
                    ", \"higher_is_better\": %s, \"value\": %.6g",
                    c.higher_is_better ? "true" : "false", c.value);
      out += buf;
      if (c.kind == "throughput") {
        std::snprintf(buf, sizeof(buf),
                      ", \"median_seconds\": %.6g, \"mad_seconds\": %.6g, "
                      "\"reps\": %zu, \"outliers\": %zu, \"rep_seconds\": [",
                      c.seconds.median, c.seconds.mad, c.rep_seconds.size(),
                      c.seconds.outliers);
        out += buf;
        for (std::size_t r = 0; r < c.rep_seconds.size(); ++r) {
          std::snprintf(buf, sizeof(buf), "%s%.6g", r == 0 ? "" : ", ",
                        c.rep_seconds[r]);
          out += buf;
        }
        out += "]";
      }
      out += "}";
      out += i + 1 < cases_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

 private:
  std::string bench_name_;
  HarnessOptions options_;
  std::map<std::string, std::string> meta_;
  std::vector<CaseResult> cases_;
};

}  // namespace sc::bench
