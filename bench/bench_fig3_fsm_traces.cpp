/// Validates and visualizes the Fig. 3 FSMs: prints the full transition
/// behaviour of the D = 1 synchronizer and desynchronizer on the paper's
/// canonical stimuli, then the SCC trajectory as streams pass through the
/// circuits cycle by cycle.

#include <cstdio>

#include "bench_util.hpp"
#include "bitstream/correlation.hpp"
#include "core/desynchronizer.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"

using namespace sc;
using bench::cell;

namespace {

void trace_pair_transform(const char* title, core::PairTransform& transform,
                          const Bitstream& x, const Bitstream& y) {
  std::printf("%s\n", title);
  std::printf("  X  in: %s (%.3f)\n", x.to_string().c_str(), x.value());
  std::printf("  Y  in: %s (%.3f)\n", y.to_string().c_str(), y.value());
  const auto out = core::apply(transform, x, y);
  std::printf("  X' out: %s (%.3f)\n", out.x.to_string().c_str(),
              out.x.value());
  std::printf("  Y' out: %s (%.3f)\n", out.y.to_string().c_str(),
              out.y.value());
  std::printf("  SCC in = %+.3f -> SCC out = %+.3f, residual saved 1s = %u\n\n",
              scc(x, y), scc(out.x, out.y), transform.saved_ones());
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: synchronizer / desynchronizer FSM traces ===\n\n");

  {
    core::Synchronizer sync;
    trace_pair_transform(
        "Synchronizer (D=1) on interleaved uncorrelated streams:", sync,
        Bitstream::from_string("1010101010101010"),
        Bitstream::from_string("0110011001100110"));
  }
  {
    core::Synchronizer sync;
    trace_pair_transform("Synchronizer on the paper's Table I SCC=0 pair:",
                         sync, Bitstream::from_string("10101010"),
                         Bitstream::from_string("11111100"));
  }
  {
    core::Desynchronizer desync;
    trace_pair_transform(
        "Desynchronizer (D=1) on maximally correlated streams:", desync,
        Bitstream::from_string("1100110011001100"),
        Bitstream::from_string("1100110011001100"));
  }
  {
    core::Desynchronizer desync;
    trace_pair_transform("Desynchronizer on the Table I SCC=+1 pair:", desync,
                         Bitstream::from_string("10101010"),
                         Bitstream::from_string("10111011"));
  }

  // SCC trajectory: prefix SCC after k cycles through each FSM.
  std::printf("Prefix SCC trajectory on VDC x Halton-3 streams (N = 256):\n\n");
  const Bitstream x = bench::stream(bench::vdc_spec(), 128);
  const Bitstream y = bench::stream(bench::halton3_spec(), 128);
  core::Synchronizer sync;
  core::Desynchronizer desync;
  const auto synced = core::apply(sync, x, y);
  const auto desynced = core::apply(desync, x, y);

  bench::Table table({"Prefix", "SCC in", "SCC synced", "SCC desynced"},
                     {7, 8, 10, 12});
  table.print_header();
  for (std::size_t prefix : {16u, 32u, 64u, 128u, 256u}) {
    auto take = [prefix](const Bitstream& s) {
      Bitstream out;
      for (std::size_t i = 0; i < prefix; ++i) out.push_back(s.get(i));
      return out;
    };
    table.print_row({bench::cell_int(static_cast<std::int64_t>(prefix)),
                     cell(scc(take(x), take(y))),
                     cell(scc(take(synced.x), take(synced.y))),
                     cell(scc(take(desynced.x), take(desynced.y)))});
  }
  table.print_rule();
  std::printf(
      "\nBoth FSMs converge within a few tens of cycles and hold their\n"
      "target correlation for the rest of the stream.\n");
  return 0;
}
