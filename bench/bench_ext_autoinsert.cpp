/// Extension benchmark: automatic insertion of correlation manipulating
/// circuits into dataflow graphs (the workflow the paper's §I proposes:
/// "inserted at appropriate points in the computation").
///
/// For several expression graphs the planner runs all three strategies
/// (none / regeneration / manipulation) and the executor measures the
/// resulting accuracy on real bitstreams; the cost model prices the
/// inserted hardware.  This generalizes the paper's Table IV comparison
/// from one pipeline to arbitrary graphs.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "hw/cost.hpp"

using namespace sc;
using namespace sc::graph;
using bench::cell;

namespace {

DataflowGraph product_sum() {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId d = g.add_input("d", 0.8, 1);
  g.mark_output(g.add_op(OpKind::kScaledAdd,
                         g.add_op(OpKind::kMultiply, a, b),
                         g.add_op(OpKind::kMultiply, c, d)));
  return g;
}

DataflowGraph edge_magnitude() {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.7, 0);
  const NodeId b = g.add_input("b", 0.4, 1);
  const NodeId c = g.add_input("c", 0.55, 2);
  const NodeId d = g.add_input("d", 0.25, 3);
  const NodeId gx = g.add_op(OpKind::kSubtractAbs, a, b);
  const NodeId gy = g.add_op(OpKind::kSubtractAbs, c, d);
  g.mark_output(g.add_op(OpKind::kSaturatingAdd, gx, gy));
  return g;
}

DataflowGraph minmax_tree() {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.2, 0);
  const NodeId b = g.add_input("b", 0.9, 1);
  const NodeId c = g.add_input("c", 0.6, 2);
  const NodeId d = g.add_input("d", 0.35, 3);
  const NodeId mx = g.add_op(OpKind::kMax, a, b);
  const NodeId mn = g.add_op(OpKind::kMin, c, d);
  g.mark_output(g.add_op(OpKind::kScaledAdd, mx, mn));
  return g;
}

}  // namespace

int main() {
  std::printf(
      "=== Auto-insertion of correlation manipulators into dataflow graphs "
      "===\n(N = 256; errors are mean |output - exact| over graph "
      "outputs)\n");

  const struct {
    const char* name;
    std::function<DataflowGraph()> build;
  } graphs[] = {
      {"a*b + c*d (2 RNG groups)", product_sum},
      {"sat(|a-b| + |c-d|)", edge_magnitude},
      {"0.5(max(a,b) + min(c,d))", minmax_tree},
  };

  for (const auto& entry : graphs) {
    const DataflowGraph g = entry.build();
    std::printf("\n-- %s --\n\n", entry.name);
    bench::Table table({"Strategy", "Fixes", "Error", "Overhead um2",
                        "Overhead uW", "Unresolved"},
                       {16, 6, 8, 12, 11, 10});
    table.print_header();
    for (Strategy strategy :
         {Strategy::kNone, Strategy::kRegeneration, Strategy::kManipulation}) {
      const Plan plan = plan_insertions(g, strategy);
      const ExecutionResult result = execute(g, plan);
      const hw::CostReport cost = hw::evaluate(plan.overhead);
      table.print_row(
          {to_string(strategy),
           bench::cell_int(static_cast<std::int64_t>(plan.inserted_units)),
           cell(result.mean_abs_error), cell(cost.area_um2, 1),
           cell(cost.power_uw, 2),
           bench::cell_int(static_cast<std::int64_t>(plan.violations.size()))});
    }
    table.print_rule();

    // Per-op fix listing for the manipulation plan.
    const Plan plan = plan_insertions(g, Strategy::kManipulation);
    for (const PlannedFix& fix : plan.fixes) {
      std::printf("  node %-2u %-14s needs %-12s operands %-11s -> %s\n",
                  fix.op_node, to_string(fix.op).c_str(),
                  to_string(fix.requirement).c_str(),
                  to_string(fix.relation).c_str(),
                  to_string(fix.fix).c_str());
    }
  }

  std::printf(
      "\nAcross all graphs: manipulation restores no-manipulation's "
      "accuracy loss\nat a fraction of regeneration's inserted power - the "
      "paper's Table IV\nconclusion, generalized.\n");
  return 0;
}
