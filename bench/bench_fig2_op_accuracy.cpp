/// Reproduces paper Fig. 2's operating-condition matrix: each SC operation
/// evaluated at SCC in {-1, 0, +1}, reporting mean absolute error against
/// its nominal function.  The diagonal of "required correlation" must be
/// near-exact; off-diagonal entries show the failure modes that motivate
/// correlation manipulation.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "arith/add.hpp"
#include "arith/divide.hpp"
#include "arith/gates.hpp"
#include "arith/multiply.hpp"
#include "arith/subtract.hpp"
#include "bench_util.hpp"
#include "bitstream/metrics.hpp"
#include "bitstream/synthesis.hpp"
#include "rng/lfsr.hpp"

using namespace sc;
using bench::cell;

namespace {

/// Mean abs error of an operation over a value sweep at a given SCC regime.
template <typename Op, typename Ref>
double sweep_error(double target_scc, Op op, Ref reference) {
  ErrorStats err;
  for (std::uint32_t lx = 8; lx <= 248; lx += 8) {
    for (std::uint32_t ly = 8; ly <= 248; ly += 8) {
      const auto pair = make_pair_with_scc(lx, ly, bench::kN, target_scc,
                                           0xF00D + lx * 257 + ly);
      const double px = lx / 256.0;
      const double py = ly / 256.0;
      err.add(std::abs(op(pair.x, pair.y).value() - reference(px, py)));
    }
  }
  return err.mean_abs();
}

/// The MUX adder needs an auxiliary select stream; regenerate per pair.
double sweep_error_add(double target_scc) {
  ErrorStats err;
  for (std::uint32_t lx = 8; lx <= 248; lx += 8) {
    for (std::uint32_t ly = 8; ly <= 248; ly += 8) {
      const auto pair = make_pair_with_scc(lx, ly, bench::kN, target_scc,
                                           0xF00D + lx * 257 + ly);
      rng::Lfsr sel(8, 91);
      const Bitstream z = arith::scaled_add(pair.x, pair.y, sel);
      err.add(std::abs(z.value() - 0.5 * (lx + ly) / 256.0));
    }
  }
  return err.mean_abs();
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 2: SC operation accuracy vs operand correlation ===\n"
      "mean |error| over the value grid, N = 256; '*' marks the operand\n"
      "correlation each circuit requires (paper Fig. 2 bottom row)\n\n");

  const double scc_levels[3] = {-1.0, 0.0, 1.0};

  auto row = [&](const char* name, int required,  // index into scc_levels
                 auto op, auto reference) {
    std::vector<std::string> cells = {name};
    for (int i = 0; i < 3; ++i) {
      std::string value = cell(sweep_error(scc_levels[i], op, reference), 4);
      if (i == required) value += " *";
      cells.push_back(value);
    }
    return cells;
  };

  bench::Table table({"Operation", "SCC=-1", "SCC=0", "SCC=+1"},
                     {26, 10, 10, 10});
  table.print_header();

  // (a) scaled add: accurate at every operand correlation (select matters).
  {
    std::vector<std::string> cells = {"(a) add (MUX)"};
    for (double level : scc_levels) {
      cells.push_back(cell(sweep_error_add(level), 4));
    }
    cells[2] += " *";  // nominally quoted with uncorrelated operands
    table.print_row(cells);
  }
  table.print_row(row(
      "(b) saturating add (OR)", 0,
      [](const Bitstream& x, const Bitstream& y) { return x | y; },
      [](double px, double py) { return std::min(1.0, px + py); }));
  table.print_row(row(
      "(c) subtract (XOR)", 2,
      [](const Bitstream& x, const Bitstream& y) { return x ^ y; },
      [](double px, double py) { return std::abs(px - py); }));
  table.print_row(row(
      "(d) multiply (AND)", 1,
      [](const Bitstream& x, const Bitstream& y) { return x & y; },
      [](double px, double py) { return px * py; }));
  table.print_row(row(
      "(e) divide (CORDIV)", 2,
      [](const Bitstream& x, const Bitstream& y) {
        return arith::divide(x, y);
      },
      [](double px, double py) {
        return py <= 0.0 ? 1.0 : std::min(1.0, px / py);
      }));
  table.print_rule();

  // Converters (f)/(g): round-trip exactness with a VDC source.
  std::printf("\n(f)/(g) S/D + D/S round trip with a VDC source: ");
  bool exact = true;
  for (std::uint32_t level = 0; level <= 256; ++level) {
    if (bench::stream(bench::vdc_spec(), level).count_ones() != level) {
      exact = false;
      break;
    }
  }
  std::printf("%s for all 257 levels at N = 256\n", exact ? "EXACT" : "INEXACT");
  return 0;
}
