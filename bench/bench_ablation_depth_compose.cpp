/// Ablation for §III-B: save depth vs serial composition as alternative
/// ways to strengthen induced correlation, including the bias cost of each
/// and the hardware spent.  Uses the LFSR/VDC configuration (the paper's
/// weakest synchronizer row) and a run-structured ramp/LFSR pair where
/// depth matters most.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/metrics.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"

using namespace sc;
using bench::cell;

namespace {

struct Stats {
  double out_scc = 0.0;
  double abs_bias = 0.0;
};

template <typename RunPair>
Stats sweep(const rng::RngSpec& sx, const rng::RngSpec& sy, RunPair run) {
  ErrorStats out_scc, abs_bias;
  for (std::uint32_t lx = 16; lx <= 240; lx += 16) {
    for (std::uint32_t ly = 16; ly <= 240; ly += 16) {
      const Bitstream x = bench::stream(sx, lx);
      const Bitstream y = bench::stream(sy, ly);
      const sc::StreamPair out = run(x, y);
      if (scc_defined(out.x, out.y)) out_scc.add(scc(out.x, out.y));
      abs_bias.add(std::abs(out.x.value() - x.value()));
      abs_bias.add(std::abs(out.y.value() - y.value()));
    }
  }
  return {out_scc.mean(), abs_bias.mean_abs()};
}

}  // namespace

int main() {
  std::printf("=== Ablation: save depth D vs serial composition (§III-B) ===\n");

  const struct {
    const char* name;
    rng::RngSpec sx, sy;
  } configs[] = {
      {"LFSR/VDC (paper's weak row)", bench::lfsr_spec(), bench::vdc_spec()},
      {"Counter/LFSR (long runs)",
       {rng::RngKind::kCounter, 8, 0, 3, 1, 0},
       bench::lfsr_spec(7)},
  };

  for (const auto& cfg : configs) {
    std::printf("\n-- input config: %s --\n\n", cfg.name);

    std::printf("Depth scaling (single FSM):\n");
    bench::Table depth_table(
        {"Depth D", "Out SCC", "Mean |bias|", "Area um2"}, {8, 8, 11, 9});
    depth_table.print_header();
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
      const Stats s = sweep(cfg.sx, cfg.sy, [depth](const Bitstream& x,
                                                    const Bitstream& y) {
        core::Synchronizer sync({depth, false});
        return core::apply(sync, x, y);
      });
      depth_table.print_row(
          {bench::cell_int(depth), cell(s.out_scc), cell(s.abs_bias, 4),
           cell(hw::synchronizer_netlist(depth).area_um2(), 1)});
    }
    depth_table.print_rule();

    std::printf("\nSerial composition of depth-1 stages:\n");
    bench::Table stage_table(
        {"Stages", "Out SCC", "Mean |bias|", "Area um2"}, {7, 8, 11, 9});
    stage_table.print_header();
    for (std::size_t stages : {1u, 2u, 4u, 8u}) {
      const Stats s = sweep(cfg.sx, cfg.sy, [stages](const Bitstream& x,
                                                     const Bitstream& y) {
        return core::compose_synchronizers(x, y, stages);
      });
      stage_table.print_row(
          {bench::cell_int(static_cast<std::int64_t>(stages)), cell(s.out_scc),
           cell(s.abs_bias, 4),
           cell(hw::synchronizer_netlist(1).area_um2() *
                    static_cast<double>(stages),
                1)});
    }
    stage_table.print_rule();
  }

  std::printf(
      "\nTakeaway (paper §III-B): both knobs strengthen correlation with\n"
      "diminishing returns; depth is the cheaper way to absorb long runs,\n"
      "composition reaches maximal correlation but compounds residual bias\n"
      "unless alternate stages are preloaded (done here).\n");
  return 0;
}
