/// Reproduces paper Table IV: the Gaussian-blur -> Roberts-cross SC image
/// accelerator in its three correlation-management configurations, plus
/// the floating-point reference.  Reports area, energy per frame, and mean
/// absolute image error for each design on a synthetic benchmark scene
/// (the paper's claims are relative to the float pipeline on the same
/// image, so scene content only needs realistic structure).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "img/image.hpp"
#include "img/kernels.hpp"
#include "img/sc_pipeline.hpp"

using namespace sc;
using namespace sc::img;
using bench::cell;

namespace {

// Image dumps are qualitative aids; a failed write should warn, not abort.
void save_or_warn(const sc::img::Image& image, const std::string& path) {
  if (!image.save_pgm(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t side =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;

  const Image scene = Image::synthetic_scene(side, side, 11);
  PipelineConfig config;  // N = 256, 10x10 tiles, D = 2 synchronizers

  std::printf(
      "=== Table IV: GB + ED image pipeline (input %zux%zu, N = %zu, "
      "%zux%zu tiles) ===\n\n",
      side, side, config.stream_length, config.tile, config.tile);

  const PipelineResult none =
      run_pipeline(scene, Variant::kNoManipulation, config);
  const PipelineResult regen =
      run_pipeline(scene, Variant::kRegeneration, config);
  const PipelineResult sync =
      run_pipeline(scene, Variant::kSynchronizer, config);

  bench::Table table({"Design", "Area um2", "Energy nJ/frame", "Abs error",
                      "paper area/energy/err"},
                     {20, 10, 15, 10, 22});
  table.print_header();
  table.print_row({"Floating point", "-", "-", cell(0.0), "- / - / 0"});
  table.print_row({to_string(none.variant).c_str(),
                   cell(none.cost.report.area_um2, 0),
                   cell(none.cost.energy_nj_frame, 1), cell(none.error),
                   "24313 / 1383 / 0.076"});
  table.print_row({to_string(regen.variant).c_str(),
                   cell(regen.cost.report.area_um2, 0),
                   cell(regen.cost.energy_nj_frame, 1), cell(regen.error),
                   "34802 / 1971 / 0.019"});
  table.print_row({to_string(sync.variant).c_str(),
                   cell(sync.cost.report.area_um2, 0),
                   cell(sync.cost.energy_nj_frame, 1), cell(sync.error),
                   "36202 / 1505 / 0.020"});
  table.print_rule();

  std::printf(
      "\nHeadline relationships (paper Table IV):\n"
      "  error:  no-manip / regen  = %.1fx   (paper 4.0x)\n"
      "          no-manip / sync   = %.1fx   (paper 3.8x)\n"
      "  energy: sync saves vs regen = %.0f%% (paper 24%%)\n"
      "  area:   regen / no-manip  = %.2fx  (paper 1.43x)\n"
      "          sync  / no-manip  = %.2fx  (paper 1.49x)\n",
      none.error / regen.error, none.error / sync.error,
      100.0 * (1.0 - sync.cost.energy_nj_frame / regen.cost.energy_nj_frame),
      regen.cost.report.area_um2 / none.cost.report.area_um2,
      sync.cost.report.area_um2 / none.cost.report.area_um2);

  // Dump the images so the qualitative "Image Result" row of Table IV can
  // be inspected visually.
  save_or_warn(scene, "/tmp/scorr_input.pgm");
  save_or_warn(none.reference, "/tmp/scorr_float.pgm");
  save_or_warn(none.output, "/tmp/scorr_none.pgm");
  save_or_warn(regen.output, "/tmp/scorr_regen.pgm");
  save_or_warn(sync.output, "/tmp/scorr_sync.pgm");
  std::printf(
      "\nImage results written to /tmp/scorr_{input,float,none,regen,sync}"
      ".pgm\n");
  return 0;
}
