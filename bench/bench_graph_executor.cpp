/// \file bench_graph_executor.cpp
/// Per-backend throughput of the registry program executor.
///
/// One reference program (a mixed workload over the registered operator
/// set: gates, MUX adders, CORDIV divide, FSM functions, a Bernstein unit,
/// and the §IV window stages) is planned under Strategy::kManipulation and
/// executed on each ExecutorBackend.  Throughput is reported as node
/// Mbit/s (stream_length x node_count / wall time — every node's stream
/// advances that many bits), and every backend's outputs are verified
/// bit-identical to the reference backend before any number is written.
///
/// Usage: bench_graph_executor [--json PATH] [--bits LOG2] [--reps N]
/// With --json the results are written as a machine-readable baseline
/// (BENCH_graph.json in this repo tracks the perf trajectory across PRs).

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "img/sc_pipeline.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The reference workload: the §IV window program extended with the wider
/// operator set so every evaluator family is on the clock.
sc::graph::Program bench_program() {
  using namespace sc::graph;
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  const Program window = sc::img::window_program(pixels);

  GraphBuilder b;
  std::vector<Value> args;
  for (unsigned i = 0; i < 16; ++i) {
    args.push_back(b.input("p" + std::to_string(i), pixels[i], i % 4));
  }
  const Value edge = b.append(window, args)[0];
  const Value x = b.input("x", 0.62, 4);
  const Value y = b.input("y", 0.35, 4);  // same group: planner must fix
  const Value prod = b.op("multiply", {x, y});
  const Value quot = b.op("divide", {y, x});
  const Value bip = b.op("multiply-bipolar", {prod, b.constant(0.8)});
  const Value nl = b.op("stanh-8", {b.op("scaled-add", {quot, bip})});
  const Value poly = b.op("bernstein-x2-3", {nl, nl, nl});
  b.output(b.op("saturating-add", {poly, edge}), "out");
  b.output(edge, "edge");
  return b.build();
}

struct BackendResult {
  std::string name;
  double seconds = 0.0;
  double node_mbit_per_s = 0.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sc::graph;

  std::string json_path;
  unsigned log2_bits = 16;
  unsigned reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--bits LOG2] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }

  const Program program = bench_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  ExecConfig config;
  config.stream_length = std::size_t{1} << log2_bits;
  config.width = 16;

  std::printf("graph executor bench: %zu nodes, %zu inserted units, 2^%u "
              "bits, %u reps\n\n",
              program.node_count(), plan.inserted_units, log2_bits, reps);

  sc::engine::Session session({0});
  std::vector<std::unique_ptr<ExecutorBackend>> backends;
  backends.push_back(make_backend(BackendKind::kReference));
  backends.push_back(make_backend(BackendKind::kKernel));
  backends.push_back(make_engine_backend(session));

  const double node_bits = static_cast<double>(config.stream_length) *
                           static_cast<double>(program.node_count());

  std::vector<BackendResult> results;
  ExecutionResult reference;
  for (const auto& backend : backends) {
    BackendResult r;
    r.name = backend->name();
    ExecutionResult last;
    double best = 1e300;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      last = backend->run(program, plan, config);
      best = std::min(best, seconds_since(start));
    }
    r.seconds = best;
    r.node_mbit_per_s = node_bits / best / 1e6;
    if (reference.streams.empty()) {
      reference = last;
    } else {
      for (std::size_t s = 0; s < reference.streams.size(); ++s) {
        if (last.streams[s] != reference.streams[s]) {
          r.identical = false;
          break;
        }
      }
    }
    std::printf("  %-10s %8.3f ms   %8.1f node-Mbit/s   identical=%s\n",
                r.name.c_str(), best * 1e3, r.node_mbit_per_s,
                r.identical ? "yes" : "NO");
    results.push_back(std::move(r));
  }

  bool all_identical = true;
  for (const BackendResult& r : results) all_identical &= r.identical;
  std::printf("\nmean |error| vs exact: %.5f; backends bit-identical: %s\n",
              reference.mean_abs_error, all_identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"host\": " << sc::bench::host_json()
        << ",\n  \"stream_bits\": " << config.stream_length
        << ",\n  \"node_count\": " << program.node_count()
        << ",\n  \"inserted_units\": " << plan.inserted_units
        << ",\n  \"reps\": " << reps << ",\n  \"backends\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const BackendResult& r = results[i];
      out << "    {\"name\": \"" << r.name << "\", \"node_mbit_per_s\": "
          << r.node_mbit_per_s << ", \"identical\": "
          << (r.identical ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
