/// \file bench_graph_executor.cpp
/// Per-backend throughput of the registry program executor.
///
/// One reference program (a mixed workload over the registered operator
/// set: gates, MUX adders, CORDIV divide, FSM functions, a Bernstein unit,
/// and the §IV window stages) is planned under Strategy::kManipulation and
/// executed on each ExecutorBackend.  Throughput is reported as node
/// Mbit/s (stream_length x node_count / wall time — every node's stream
/// advances that many bits), and every backend's outputs are verified
/// bit-identical to the reference backend before any number is written.
///
/// Harness bench (bench_harness.hpp).  Cases: graph_executor/<backend>
/// (throughput, node-Mbit/s) and graph_executor/<backend>/identical
/// (exact — cross-backend bit-identity, config-independent).
///
/// Usage: bench_graph_executor [--json PATH] [--reps N] [--warmup N]
///        [--quick] [--bits LOG2]

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "img/sc_pipeline.hpp"

namespace {

/// The reference workload: the §IV window program extended with the wider
/// operator set so every evaluator family is on the clock.
sc::graph::Program bench_program() {
  using namespace sc::graph;
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) pixels[i] = 0.1 + 0.05 * (i % 10);
  const Program window = sc::img::window_program(pixels);

  GraphBuilder b;
  std::vector<Value> args;
  for (unsigned i = 0; i < 16; ++i) {
    args.push_back(b.input("p" + std::to_string(i), pixels[i], i % 4));
  }
  const Value edge = b.append(window, args)[0];
  const Value x = b.input("x", 0.62, 4);
  const Value y = b.input("y", 0.35, 4);  // same group: planner must fix
  const Value prod = b.op("multiply", {x, y});
  const Value quot = b.op("divide", {y, x});
  const Value bip = b.op("multiply-bipolar", {prod, b.constant(0.8)});
  const Value nl = b.op("stanh-8", {b.op("scaled-add", {quot, bip})});
  const Value poly = b.op("bernstein-x2-3", {nl, nl, nl});
  b.output(b.op("saturating-add", {poly, edge}), "out");
  b.output(edge, "edge");
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc::graph;

  sc::bench::HarnessOptions options;
  std::vector<std::string> rest;
  if (!sc::bench::parse_harness_options(argc, argv, &options, &rest)) return 2;
  unsigned log2_bits = options.quick ? 14 : 16;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--bits" && i + 1 < rest.size()) {
      log2_bits = static_cast<unsigned>(std::atoi(rest[++i].c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--bits LOG2]\n",
                   argv[0]);
      return 2;
    }
  }

  const Program program = bench_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  ExecConfig config;
  config.stream_length = std::size_t{1} << log2_bits;
  config.width = 16;
  const std::string case_config = "bits=" + std::to_string(log2_bits);

  sc::bench::Harness harness("graph_executor", options);
  harness.set_meta("stream_bits",
                   static_cast<std::uint64_t>(config.stream_length));
  harness.set_meta("node_count",
                   static_cast<std::uint64_t>(program.node_count()));
  harness.set_meta("inserted_units",
                   static_cast<std::uint64_t>(plan.inserted_units));

  std::printf("graph executor bench: %zu nodes, %zu inserted units, 2^%u "
              "bits, median of %u reps\n\n",
              program.node_count(), plan.inserted_units, log2_bits,
              harness.options().reps);

  sc::engine::Session session({0});
  std::vector<std::unique_ptr<ExecutorBackend>> backends;
  backends.push_back(make_backend(BackendKind::kReference));
  backends.push_back(make_backend(BackendKind::kKernel));
  backends.push_back(make_engine_backend(session));

  const double node_bits = static_cast<double>(config.stream_length) *
                           static_cast<double>(program.node_count());

  ExecutionResult reference;
  bool all_identical = true;
  for (const auto& backend : backends) {
    ExecutionResult last;
    const double median_s = harness.time_case(
        "graph_executor/" + backend->name(), "node_mbit_per_s", node_bits, 1e6,
        [&] { last = backend->run(program, plan, config); }, case_config);
    bool identical = true;
    if (reference.streams.empty()) {
      reference = last;
    } else {
      for (std::size_t s = 0; s < reference.streams.size(); ++s) {
        if (last.streams[s] != reference.streams[s]) {
          identical = false;
          break;
        }
      }
    }
    harness.exact_case("graph_executor/" + backend->name() + "/identical",
                       identical ? 1 : 0);
    all_identical = all_identical && identical;
    std::printf("  %-10s %8.3f ms   %8.1f node-Mbit/s   identical=%s\n",
                backend->name().c_str(), median_s * 1e3,
                node_bits / median_s / 1e6, identical ? "yes" : "NO");
  }

  std::printf("\nmean |error| vs exact: %.5f; backends bit-identical: %s\n",
              reference.mean_abs_error, all_identical ? "yes" : "NO");

  if (!harness.write_json()) return 1;
  return all_identical ? 0 : 1;
}
