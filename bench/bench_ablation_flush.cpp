/// Ablation for the §III-B flush extension: end-of-stream bias with and
/// without the flush tracker across depths, its accuracy effect on
/// sync-max, and what the tracker hardware costs.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "bitstream/metrics.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"

using namespace sc;
using bench::cell;

namespace {

struct FlushStats {
  double abs_bias = 0.0;
  double max_abs_bias = 0.0;
  double sync_max_err = 0.0;
};

FlushStats sweep(unsigned depth, bool flush) {
  ErrorStats bias, max_err;
  for (std::uint32_t lx = 8; lx <= 248; lx += 8) {
    for (std::uint32_t ly = 8; ly <= 248; ly += 8) {
      const Bitstream x = bench::stream(bench::vdc_spec(), lx);
      const Bitstream y = bench::stream(bench::halton3_spec(), ly);
      core::Synchronizer sync({depth, flush});
      const auto out = core::apply(sync, x, y);
      bias.add(std::abs(out.x.value() - x.value()));
      bias.add(std::abs(out.y.value() - y.value()));
      max_err.add(std::abs(core::sync_max(x, y, {depth, flush}).value() -
                           std::max(lx, ly) / 256.0));
    }
  }
  FlushStats s;
  s.abs_bias = bias.mean_abs();
  s.max_abs_bias = bias.max();
  s.sync_max_err = max_err.mean_abs();
  return s;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: end-of-stream flush (§III-B), VDC x Halton-3, "
      "N = 256 ===\n\n");

  bench::Table table({"Depth D", "Flush", "Mean |bias|", "Max |bias|",
                      "sync-max err", "FSM area um2"},
                     {8, 6, 11, 10, 12, 12});
  table.print_header();
  for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
    for (bool flush : {false, true}) {
      const FlushStats s = sweep(depth, flush);
      table.print_row(
          {bench::cell_int(depth), flush ? "yes" : "no", cell(s.abs_bias, 5),
           cell(s.max_abs_bias, 4), cell(s.sync_max_err, 5),
           cell(hw::synchronizer_netlist(depth, flush).area_um2(), 1)});
    }
    table.print_rule();
  }

  std::printf(
      "\nFlush cuts the stranded-bit bias (worst case D/N) at every depth,\n"
      "at the cost of the offset-tracking hardware - the trade the paper\n"
      "describes as 'tremendously expensive for large save depth D'.\n");
  return 0;
}
