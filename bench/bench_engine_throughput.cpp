/// \file bench_engine_throughput.cpp
/// Throughput of the batched streaming execution engine.
///
/// Three workloads, each swept over worker-thread counts:
///   1. chunked-stream: a maximally correlated pair generated,
///      decorrelated, and reduced chunk-at-a-time (never materialized) —
///      reports Mbit/s and the peak engine-side buffer.
///   2. graph-batch: independent seeded executions of the planner's
///      product-sum graph fanned through BatchRunner — reports jobs/s and
///      verifies bit-identical results against the single-thread run.
///   3. tiled-pipeline: the §IV image accelerator with tiles fanned across
///      the pool — reports tiles/s.
///
/// Harness bench (bench_harness.hpp).  Cases: engine/chunked_stream
/// (throughput) plus engine/chunked_stream/peak_buffer_bits (exact — the
/// constant-memory contract), engine/graph_batch/t<N> (throughput,
/// jobs/s) plus .../identical (exact), engine/tiled_pipeline/t<N>
/// (throughput, tiles/s).
///
/// Usage: bench_engine_throughput [--json PATH] [--reps N] [--warmup N]
///        [--quick] [--threads 1,2,4,8] [--stream-bits LOG2] [--jobs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "core/decorrelator.hpp"
#include "engine/batch.hpp"
#include "engine/chunked_stream.hpp"
#include "engine/session.hpp"
#include "engine/thread_pool.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"
#include "rng/lfsr.hpp"

namespace {

/// Workload 1: one long pair through the chunked decorrelator; returns
/// the run stats for the peak-buffer contract.
sc::engine::ChunkedRunStats run_stream_workload(std::size_t stream_bits,
                                                std::size_t chunk_bits,
                                                double* scc) {
  using namespace sc;
  engine::SngChunkSource sx(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                            stream_bits);
  engine::SngChunkSource sy(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                            stream_bits);
  core::Decorrelator dec(16, std::make_unique<rng::Lfsr>(16, 0xBEEF),
                         std::make_unique<rng::Lfsr>(16, 0xCAFE, 5));
  engine::PairStatsSink sink;
  const engine::ChunkedRunStats stats =
      engine::run_chunked_pair(sx, sy, &dec, sink, chunk_bits);
  *scc = sink.scc();
  return stats;
}

sc::graph::DataflowGraph bench_graph() {
  using namespace sc::graph;
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId d = g.add_input("d", 0.8, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  const NodeId cd = g.add_op(OpKind::kMultiply, c, d);
  g.mark_output(g.add_op(OpKind::kScaledAdd, ab, cd));
  return g;
}

std::vector<unsigned> parse_threads(const char* arg) {
  std::vector<unsigned> out;
  const std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(
        static_cast<unsigned>(std::strtoul(s.c_str() + pos, nullptr, 10)));
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sc::bench::HarnessOptions options;
  std::vector<std::string> rest;
  if (!sc::bench::parse_harness_options(argc, argv, &options, &rest)) return 2;

  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  unsigned log2_bits = options.quick ? 21 : 24;
  std::size_t jobs = options.quick ? 64 : 256;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--threads" && i + 1 < rest.size()) {
      thread_counts = parse_threads(rest[++i].c_str());
    } else if (rest[i] == "--stream-bits" && i + 1 < rest.size()) {
      log2_bits = static_cast<unsigned>(std::atoi(rest[++i].c_str()));
    } else if (rest[i] == "--jobs" && i + 1 < rest.size()) {
      jobs = static_cast<std::size_t>(std::atoll(rest[++i].c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--reps N] [--warmup N] [--quick] "
                   "[--threads 1,2,4] [--stream-bits LOG2] [--jobs N]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = sc::engine::ThreadPool::resolve_threads(0);
  sc::bench::Harness harness("engine_throughput", options);
  harness.set_meta("hardware_threads", static_cast<std::uint64_t>(hw));
  harness.set_meta("jobs", static_cast<std::uint64_t>(jobs));
  harness.set_meta("chunk_bits",
                   static_cast<std::uint64_t>(sc::engine::kDefaultChunkBits));
  std::printf("engine throughput bench (hardware threads: %u, median of %u "
              "reps)\n\n",
              hw, harness.options().reps);

  // --- workload 1: chunked long-stream decorrelation -----------------------
  const std::size_t stream_bits = std::size_t{1} << log2_bits;
  const std::string stream_config = "stream_bits=" + std::to_string(log2_bits);
  sc::engine::ChunkedRunStats stream_stats;
  double scc = 0.0;
  const double stream_s = harness.time_case(
      "engine/chunked_stream", "mbit_per_s", static_cast<double>(stream_bits),
      1e6,
      [&] {
        stream_stats = run_stream_workload(
            stream_bits, sc::engine::kDefaultChunkBits, &scc);
      },
      stream_config);
  // Peak buffer is the engine's constant-memory contract: it depends only
  // on the chunk budget, never on the stream length, so it gates even on
  // --quick runs.
  harness.exact_case("engine/chunked_stream/peak_buffer_bits",
                     stream_stats.peak_buffer_bits,
                     "chunk_bits=" +
                         std::to_string(sc::engine::kDefaultChunkBits));
  std::printf("chunked decorrelator: 2^%u bits in %.3f s = %.2f Mbit/s\n",
              log2_bits, stream_s, stream_bits / stream_s / 1e6);
  std::printf("  peak engine buffer: %zu bits (chunk budget %zu x 2), "
              "output SCC %.4f\n\n",
              stream_stats.peak_buffer_bits, sc::engine::kDefaultChunkBits,
              scc);

  // --- workload 2: graph execution batch -----------------------------------
  const sc::graph::DataflowGraph g = bench_graph();
  const sc::graph::Plan plan =
      sc::graph::plan_insertions(g, sc::graph::Strategy::kManipulation);
  const std::string batch_config = "jobs=" + std::to_string(jobs);

  std::vector<sc::graph::ExecutionResult> baseline;
  bool all_identical = true;
  double batch_base_rate = 0.0;
  std::printf("graph batch (%zu jobs, N=4096):\n", jobs);
  std::printf("  %-8s %-10s %-12s %-10s %s\n", "threads", "seconds", "jobs/s",
              "speedup", "identical");
  for (const unsigned t : thread_counts) {
    sc::engine::Session session({t, sc::engine::kDefaultChunkBits, 42});
    sc::graph::ExecConfig base;
    base.stream_length = 4096;
    const auto configs = sc::graph::seeded_sweep(base, jobs, session);
    std::vector<sc::graph::ExecutionResult> results;
    const double median_s = harness.time_case(
        "engine/graph_batch/t" + std::to_string(session.threads()), "jobs_per_s",
        static_cast<double>(jobs), 1.0,
        [&] { results = sc::graph::execute_batch(g, plan, configs, session); },
        batch_config);
    bool identical = true;
    if (baseline.empty()) {
      baseline = std::move(results);
    } else {
      for (std::size_t j = 0; j < results.size(); ++j) {
        if (results[j].streams != baseline[j].streams) {
          identical = false;
          break;
        }
      }
    }
    harness.exact_case("engine/graph_batch/t" +
                           std::to_string(session.threads()) + "/identical",
                       identical ? 1 : 0, batch_config);
    all_identical = all_identical && identical;
    const double rate = jobs / median_s;
    if (batch_base_rate == 0.0) batch_base_rate = rate;
    std::printf("  %-8u %-10.3f %-12.1f %-10.2f %s\n", session.threads(),
                median_s, rate, rate / batch_base_rate,
                identical ? "yes" : "NO (BUG)");
  }
  std::printf("\n");

  // --- workload 3: tiled image pipeline -------------------------------------
  const sc::img::Image scene = sc::img::Image::synthetic_scene(40, 40, 7);
  std::printf("tiled pipeline (40x40 scene, synchronizer variant):\n");
  std::printf("  %-8s %-10s %-12s %s\n", "threads", "seconds", "tiles/s",
              "mean abs err");
  for (const unsigned t : thread_counts) {
    sc::engine::Session session({t});
    sc::img::PipelineConfig config;
    config.tile = 10;
    // One untimed run fixes the tile count (deterministic for this scene
    // and tile size) so the case value is a true tiles/s.
    sc::img::PipelineResult result = sc::img::run_pipeline_tiled(
        scene, sc::img::Variant::kSynchronizer, config, session);
    const double tiles = static_cast<double>(result.cost.tiles);
    const double median_s = harness.time_case(
        "engine/tiled_pipeline/t" + std::to_string(session.threads()),
        "tiles_per_s", tiles, 1.0,
        [&] {
          result = sc::img::run_pipeline_tiled(
              scene, sc::img::Variant::kSynchronizer, config, session);
        },
        "tile=10");
    std::printf("  %-8u %-10.3f %-12.1f %.4f\n", session.threads(), median_s,
                tiles / median_s, result.error);
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: batch results not thread-count invariant\n");
    return 1;
  }
  if (!harness.write_json()) return 1;
  return 0;
}
