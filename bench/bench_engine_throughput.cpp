/// \file bench_engine_throughput.cpp
/// Throughput of the batched streaming execution engine.
///
/// Three workloads, each swept over worker-thread counts:
///   1. chunked-stream: a 2^24-bit maximally correlated pair generated,
///      decorrelated, and reduced chunk-at-a-time (never materialized) —
///      reports Mbit/s and the peak engine-side buffer.
///   2. graph-batch: independent seeded executions of the planner's
///      product-sum graph fanned through BatchRunner — reports jobs/s and
///      verifies bit-identical results against the single-thread run.
///   3. tiled-pipeline: the §IV image accelerator with tiles fanned across
///      the pool — reports tiles/s.
///
/// Usage: bench_engine_throughput [--json PATH] [--threads 1,2,4,8]
///        [--stream-bits LOG2] [--jobs N]
/// With --json the results are written as a machine-readable baseline
/// (BENCH_engine.json in this repo tracks the perf trajectory across PRs).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/decorrelator.hpp"
#include "engine/batch.hpp"
#include "engine/chunked_stream.hpp"
#include "engine/session.hpp"
#include "engine/thread_pool.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"
#include "rng/lfsr.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StreamResult {
  std::size_t bits = 0;
  std::size_t peak_buffer_bits = 0;
  double seconds = 0.0;
  double scc = 0.0;
  double mbit_per_s() const { return bits / seconds / 1e6; }
};

/// Workload 1: one 2^24-bit pair through the chunked decorrelator.
StreamResult run_stream_workload(std::size_t stream_bits,
                                 std::size_t chunk_bits) {
  using namespace sc;
  StreamResult r;
  engine::SngChunkSource sx(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                            stream_bits);
  engine::SngChunkSource sy(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000,
                            stream_bits);
  core::Decorrelator dec(16, std::make_unique<rng::Lfsr>(16, 0xBEEF),
                         std::make_unique<rng::Lfsr>(16, 0xCAFE, 5));
  engine::PairStatsSink sink;

  const auto start = Clock::now();
  const engine::ChunkedRunStats stats =
      engine::run_chunked_pair(sx, sy, &dec, sink, chunk_bits);
  r.seconds = seconds_since(start);
  r.bits = stats.bits;
  r.peak_buffer_bits = stats.peak_buffer_bits;
  r.scc = sink.scc();
  return r;
}

sc::graph::DataflowGraph bench_graph() {
  using namespace sc::graph;
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId d = g.add_input("d", 0.8, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  const NodeId cd = g.add_op(OpKind::kMultiply, c, d);
  g.mark_output(g.add_op(OpKind::kScaledAdd, ab, cd));
  return g;
}

struct BatchResult {
  unsigned threads = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  bool identical_to_baseline = true;
  double jobs_per_s() const { return jobs / seconds; }
};

/// Workload 2: seeded graph executions, checked bit-identical across
/// thread counts.
BatchResult run_graph_batch(unsigned threads, std::size_t jobs,
                            std::vector<sc::graph::ExecutionResult>* baseline) {
  using namespace sc;
  const graph::DataflowGraph g = bench_graph();
  const graph::Plan plan =
      graph::plan_insertions(g, graph::Strategy::kManipulation);

  engine::Session session({threads, engine::kDefaultChunkBits, 42});
  graph::ExecConfig base;
  base.stream_length = 4096;
  const auto configs = graph::seeded_sweep(base, jobs, session);

  const auto start = Clock::now();
  auto results = graph::execute_batch(g, plan, configs, session);
  BatchResult r;
  r.seconds = seconds_since(start);
  r.threads = session.threads();
  r.jobs = jobs;

  if (baseline->empty()) {
    *baseline = std::move(results);
  } else {
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (results[j].streams != (*baseline)[j].streams) {
        r.identical_to_baseline = false;
        break;
      }
    }
  }
  return r;
}

struct TileResult {
  unsigned threads = 0;
  std::size_t tiles = 0;
  double seconds = 0.0;
  double error = 0.0;
  double tiles_per_s() const { return tiles / seconds; }
};

/// Workload 3: the §IV accelerator with tiles fanned across the pool.
TileResult run_tiled_pipeline(unsigned threads, const sc::img::Image& input) {
  using namespace sc;
  engine::Session session({threads});
  img::PipelineConfig config;
  config.tile = 10;

  const auto start = Clock::now();
  const img::PipelineResult result = img::run_pipeline_tiled(
      input, img::Variant::kSynchronizer, config, session);
  TileResult r;
  r.seconds = seconds_since(start);
  r.threads = session.threads();
  r.tiles = result.cost.tiles;
  r.error = result.error;
  return r;
}

std::vector<unsigned> parse_threads(const char* arg) {
  std::vector<unsigned> out;
  const std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(static_cast<unsigned>(std::strtoul(s.c_str() + pos, nullptr, 10)));
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  unsigned log2_bits = 24;
  std::size_t jobs = 256;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = parse_threads(argv[++i]);
    } else if (std::strcmp(argv[i], "--stream-bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--threads 1,2,4] "
                   "[--stream-bits LOG2] [--jobs N]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = sc::engine::ThreadPool::resolve_threads(0);
  std::printf("engine throughput bench (hardware threads: %u)\n\n", hw);

  // --- workload 1: chunked long-stream decorrelation -----------------------
  const std::size_t stream_bits = std::size_t{1} << log2_bits;
  const StreamResult stream =
      run_stream_workload(stream_bits, sc::engine::kDefaultChunkBits);
  std::printf("chunked decorrelator: 2^%u bits in %.3f s = %.2f Mbit/s\n",
              log2_bits, stream.seconds, stream.mbit_per_s());
  std::printf("  peak engine buffer: %zu bits (chunk budget %zu x 2), "
              "output SCC %.4f\n\n",
              stream.peak_buffer_bits, sc::engine::kDefaultChunkBits,
              stream.scc);

  // --- workload 2: graph execution batch -----------------------------------
  std::vector<sc::graph::ExecutionResult> baseline;
  std::vector<BatchResult> batches;
  std::printf("graph batch (%zu jobs, N=4096):\n", jobs);
  std::printf("  %-8s %-10s %-12s %-10s %s\n", "threads", "seconds", "jobs/s",
              "speedup", "identical");
  double batch_base_rate = 0.0;
  for (const unsigned t : thread_counts) {
    const BatchResult r = run_graph_batch(t, jobs, &baseline);
    if (batch_base_rate == 0.0) batch_base_rate = r.jobs_per_s();
    batches.push_back(r);
    const double speedup =
        batch_base_rate > 0.0 ? r.jobs_per_s() / batch_base_rate : 1.0;
    std::printf("  %-8u %-10.3f %-12.1f %-10.2f %s\n", r.threads, r.seconds,
                r.jobs_per_s(), speedup,
                r.identical_to_baseline ? "yes" : "NO (BUG)");
  }
  std::printf("\n");

  // --- workload 3: tiled image pipeline -------------------------------------
  const sc::img::Image scene = sc::img::Image::synthetic_scene(40, 40, 7);
  std::vector<TileResult> tile_results;
  std::printf("tiled pipeline (40x40 scene, synchronizer variant):\n");
  std::printf("  %-8s %-10s %-12s %s\n", "threads", "seconds", "tiles/s",
              "mean abs err");
  for (const unsigned t : thread_counts) {
    const TileResult r = run_tiled_pipeline(t, scene);
    tile_results.push_back(r);
    std::printf("  %-8u %-10.3f %-12.1f %.4f\n", r.threads, r.seconds,
                r.tiles_per_s(), r.error);
  }

  bool all_identical = true;
  for (const BatchResult& r : batches) {
    all_identical = all_identical && r.identical_to_baseline;
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: batch results not thread-count invariant\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"host\": " << sc::bench::host_json() << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"chunked_stream\": {\n"
        << "    \"bits\": " << stream.bits << ",\n"
        << "    \"chunk_bits\": " << sc::engine::kDefaultChunkBits << ",\n"
        << "    \"peak_buffer_bits\": " << stream.peak_buffer_bits << ",\n"
        << "    \"seconds\": " << stream.seconds << ",\n"
        << "    \"mbit_per_s\": " << stream.mbit_per_s() << ",\n"
        << "    \"output_scc\": " << stream.scc << "\n"
        << "  },\n"
        << "  \"graph_batch\": {\n    \"jobs\": " << jobs
        << ",\n    \"stream_length\": 4096,\n    \"per_thread\": [\n";
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const BatchResult& r = batches[i];
      out << "      {\"threads\": " << r.threads
          << ", \"seconds\": " << r.seconds
          << ", \"jobs_per_s\": " << r.jobs_per_s()
          << ", \"identical\": " << (r.identical_to_baseline ? "true" : "false")
          << "}" << (i + 1 < batches.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n  \"tiled_pipeline\": {\n    \"per_thread\": [\n";
    for (std::size_t i = 0; i < tile_results.size(); ++i) {
      const TileResult& r = tile_results[i];
      out << "      {\"threads\": " << r.threads
          << ", \"seconds\": " << r.seconds
          << ", \"tiles_per_s\": " << r.tiles_per_s() << "}"
          << (i + 1 < tile_results.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
