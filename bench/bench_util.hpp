/// \file bench_util.hpp
/// Shared helpers for the reproduction benches: canonical stream
/// generation from the paper's RNG configurations and fixed-width table
/// printing that mirrors the paper's table layout.

#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "convert/sng.hpp"
#include "rng/factory.hpp"

namespace sc::bench {

inline constexpr unsigned kWidth = 8;   // natural stream length 256
inline constexpr std::size_t kN = 256;  // paper's evaluation length

/// Fresh stream of integer level `level` in [0, 256] from the given spec.
inline Bitstream stream(const rng::RngSpec& spec, std::uint32_t level,
                        std::size_t n = kN) {
  convert::Sng sng(rng::make_rng(spec));
  return sng.generate(level, n);
}

inline rng::RngSpec vdc_spec() {
  return {rng::RngKind::kVanDerCorput, kWidth, 0, 3, 1, 0};
}
inline rng::RngSpec halton3_spec() {
  return {rng::RngKind::kHalton, kWidth, 0, 3, 1, 0};
}
inline rng::RngSpec lfsr_spec(std::uint32_t seed = 1) {
  return {rng::RngKind::kLfsr, kWidth, seed, 3, 1, 0};
}
inline rng::RngSpec sobol_spec(unsigned dimension = 2) {
  return {rng::RngKind::kSobol, kWidth, 0, 3, dimension, 0};
}

/// Minimal fixed-width console table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void print_header() const {
    print_rule();
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], headers_[i].c_str());
    }
    std::printf("|\n");
    print_rule();
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], cells[i].c_str());
    }
    std::printf("|\n");
  }

  void print_rule() const {
    for (int w : widths_) {
      std::printf("+");
      for (int i = 0; i < w + 2; ++i) std::printf("-");
    }
    std::printf("+\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// printf-style float cell.
inline std::string cell(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string cell_int(std::int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

/// Host/build provenance as a JSON object, stamped into every BENCH_*.json
/// baseline: throughput numbers from different machines, compilers, or
/// build types must never be compared blindly, and the trajectory files
/// live in the repo across PRs.
inline std::string host_json() {
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
#if defined(__OPTIMIZE__)
  const char* optimized = "true";
#else
  const char* optimized = "false";
#endif
#if defined(NDEBUG)
  const char* assertions = "false";
#else
  const char* assertions = "true";
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"hardware_threads\": %u, \"compiler\": \"%s\", "
                "\"optimized\": %s, \"assertions\": %s, "
                "\"cxx_standard\": %ld}",
                hw == 0 ? 1u : hw, compiler.c_str(), optimized, assertions,
                static_cast<long>(__cplusplus));
  return buffer;
}

}  // namespace sc::bench
