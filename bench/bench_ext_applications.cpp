/// Extension benchmarks: the paper's circuits inside applications beyond
/// its own case study.
///
///  1. Sobel edge detection - sync-subtract for |gradient| and the desync
///     saturating adder for the magnitude sum (all three Fig. 5 recipes in
///     one kernel).
///  2. ReSC Bernstein function synthesis (gamma correction) - the
///     decorrelator chain as the copy generator, versus independent
///     sources and a broken shared source.
///  3. SC median filter - sync-min/max as sorting-network compare-
///     exchanges.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "func/bernstein.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "img/image.hpp"
#include "img/kernels.hpp"
#include "img/median.hpp"
#include "img/sobel.hpp"
#include "nn/mlp.hpp"

using namespace sc;
using bench::cell;

int main() {
  std::printf("=== Extension applications of the correlation circuits ===\n");

  // --- 1. Sobel ------------------------------------------------------------
  std::printf("\n-- Sobel edge detection (24x24 scene, N = 256) --\n\n");
  const img::Image scene = img::Image::synthetic_scene(24, 24, 17);
  img::SobelConfig with;
  img::SobelConfig without;
  without.manipulate = false;
  const img::SobelResult good = img::run_sc_sobel(scene, with);
  const img::SobelResult bad = img::run_sc_sobel(scene, without);

  bench::Table sobel({"Design", "Abs error", "Manip cells/px",
                      "Manip power uW/px"},
                     {26, 10, 14, 17});
  sobel.print_header();
  sobel.print_row({"bare XOR/OR (no manip)", cell(bad.error),
                   bench::cell_int(0), cell(0.0, 2)});
  sobel.print_row(
      {"sync-sub + desync-satadd", cell(good.error),
       bench::cell_int(
           static_cast<std::int64_t>(good.manipulators.total_cells())),
       cell(hw::evaluate(good.manipulators).power_uw, 2)});
  sobel.print_rule();
  std::printf("error ratio no-manip / manipulated = %.1fx\n",
              bad.error / good.error);

  // --- 2. ReSC gamma correction ---------------------------------------------
  std::printf(
      "\n-- ReSC Bernstein synthesis of gamma = x^2.2 (degree 6, N = 1024) "
      "--\n\n");
  const auto gamma = [](double t) { return std::pow(t, 2.2); };
  const auto coefficients = func::bernstein_coefficients(gamma, 6);

  bench::Table resc({"x", "Bernstein ref", "indep RNGs", "shared RNG",
                     "decorrelator chain"},
                    {5, 13, 11, 11, 18});
  resc.print_header();
  double err_indep = 0.0, err_shared = 0.0, err_chain = 0.0;
  int count = 0;
  for (double x = 0.1; x <= 0.91; x += 0.2) {
    const double expected = func::bernstein_value(coefficients, x);
    func::RescConfig config;
    config.degree = 6;
    config.stream_length = 1024;
    config.strategy = func::CopyStrategy::kIndependentSources;
    const double indep = func::resc_apply(gamma, x, config);
    config.strategy = func::CopyStrategy::kSharedSource;
    const double shared = func::resc_apply(gamma, x, config);
    config.strategy = func::CopyStrategy::kDecorrelatorChain;
    const double chain = func::resc_apply(gamma, x, config);
    err_indep += std::abs(indep - expected);
    err_shared += std::abs(shared - expected);
    err_chain += std::abs(chain - expected);
    ++count;
    resc.print_row({cell(x, 1), cell(expected), cell(indep), cell(shared),
                    cell(chain)});
  }
  resc.print_rule();
  std::printf(
      "mean |error|: independent %.3f, shared %.3f, decorrelator chain %.3f\n"
      "(the chain replaces %d private RNGs with %d shuffle buffers)\n",
      err_indep / count, err_shared / count, err_chain / count, 5, 5);

  // --- 2b. hybrid SC-binary MLP ------------------------------------------------
  std::printf(
      "\n-- hybrid stochastic-binary MLP (XOR net, XNOR+APC MAC, N = 2048) "
      "--\n\n");
  {
    const auto net = nn::xor_network();
    const double cases[4][2] = {{-0.6, -0.7}, {-0.7, 0.6}, {0.6, -0.6},
                                {0.7, 0.6}};
    bench::Table mlp({"RNG strategy", "Mean |out err|", "RNGs needed"},
                     {18, 14, 11});
    mlp.print_header();
    for (auto [strategy, name, rngs] :
         {std::tuple{nn::RngStrategy::kTwoRngs, "two shared RNGs", 2},
          std::tuple{nn::RngStrategy::kSingleRng, "single RNG", 1},
          std::tuple{nn::RngStrategy::kDecorrelated, "RNG + shufflers", 1}}) {
      nn::MlpConfig config;
      config.stream_length = 2048;
      config.strategy = strategy;
      double err = 0.0;
      for (const auto& c : cases) {
        const std::vector<double> x = {c[0], c[1]};
        err += std::abs(nn::forward_sc(net, x, config)[0] -
                        nn::forward_float(net, x)[0]);
      }
      mlp.print_row({name, cell(err / 4.0), bench::cell_int(rngs)});
    }
    mlp.print_rule();
    std::printf(
        "the decorrelator-chain row buys two-RNG accuracy with a single\n"
        "RNG plus per-weight shuffle buffers (paper Fig. 4 in an NN MAC).\n");
  }

  // --- 3. median filter -------------------------------------------------------
  std::printf("\n-- SC median filter via sync-min/max network (12x12) --\n\n");
  const img::Image noisy = img::Image::checkerboard(12, 12, 4);
  const img::Image reference = img::median3x3(noisy);
  img::MedianConfig mconfig;
  const img::Image filtered = img::sc_median_filter(noisy, mconfig);
  std::printf("  mean |error| vs float median: %.4f\n",
              img::mean_abs_error(filtered, reference));
  std::printf("  per-pixel hardware: 25 x (synchronizer + AND + OR) = %.0f "
              "um2\n",
              25.0 * (hw::synchronizer_netlist(1).area_um2() + 2.16 + 2.16));
  return 0;
}
