/// \file bench_fault_resilience.cpp
/// Resilience-under-fault baseline: sweeps injected error rate x circuit x
/// correlation regime (fault::sweep) and prints SCC drift, output error,
/// and FSM-corruption recovery depth, mirroring the ReCo1 observation that
/// correlation-dependent circuits degrade faster under soft errors than
/// decorrelated pipelines.
///
/// Doubles as a CI self-check (exit 1 on failure):
///  * the ReCo1 ordering must hold — decorrelated multiply strictly
///    gentler error inflation than correlated max / min,
///  * all three backends (plus a small-chunk pooled engine session) must
///    produce bit-identical streams under one representative fault plan
///    mixing every error kind.
///
/// --json PATH writes the committed BENCH_fault.json baseline.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "fault/inject.hpp"
#include "fault/sweep.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace {

using namespace sc;
using namespace sc::fault;

/// Every backend (and a boundary-heavy pooled engine) bit-identical under
/// one fault plan that exercises every error kind at once.
bool backends_identical(std::size_t stream_length) {
  graph::GraphBuilder b;
  const graph::Value x = b.input("x", 0.7, 0);
  const graph::Value y = b.input("y", 0.45, 0);   // shared trace
  const graph::Value z = b.input("z", 0.3, 1);
  const graph::Value prod = b.op("multiply", {x, y});  // gets a decorrelator
  const graph::Value m = b.op("max", {prod, z});       // gets a synchronizer
  b.output(m, "out");
  const graph::Program program = b.build();
  const graph::ProgramPlan plan =
      plan_program(program, graph::Strategy::kManipulation);

  FaultPlan faults;
  faults.edges.push_back({"x", ErrorKind::kBitFlip, 0.02, 16, 0});
  faults.edges.push_back({"z", ErrorKind::kBurst, 0.05, 24, 0});
  faults.edges.push_back({"multiply", ErrorKind::kBitFlip, 0.005, 16, 1});
  // "out" is the max node (output() renamed it): wipes its synchronizer.
  faults.fsms.push_back({"out", stream_length / 3, 0, -1});
  validate(faults, program);  // resolve() skips typos silently; fail loudly

  graph::ExecConfig config;
  config.stream_length = stream_length;
  config.width = 12;
  config.fault_plan = &faults;

  const auto reference = graph::make_backend(graph::BackendKind::kReference);
  const graph::ExecutionResult want = reference->run(program, plan, config);

  engine::Session session({2, /*chunk_bits=*/192, 0x5eed});
  std::unique_ptr<graph::ExecutorBackend> candidates[] = {
      graph::make_backend(graph::BackendKind::kKernel),
      graph::make_backend(graph::BackendKind::kEngine),
      graph::make_engine_backend(session),
  };
  for (const auto& candidate : candidates) {
    const graph::ExecutionResult got = candidate->run(program, plan, config);
    for (std::size_t s = 0; s < want.streams.size(); ++s) {
      if (!(want.streams[s] == got.streams[s])) {
        std::fprintf(stderr, "FAULT DIVERGENCE: %s stream %zu\n",
                     candidate->name().c_str(), s);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned log2_bits = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      log2_bits = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--bits LOG2]\n", argv[0]);
      return 2;
    }
  }

  SweepConfig config;
  config.stream_length = std::size_t{1} << log2_bits;
  std::printf("fault resilience sweep: 2^%u bits, i.i.d. flips on both "
              "inputs\n\n",
              log2_bits);
  const SweepReport report = sweep(config);

  // fn-err = |output - f(measured inputs)|: whether the circuit still
  // computes its function on the values it actually received — the
  // column the ReCo1 ordering is judged on (input drift hits every
  // circuit; losing the function is what distinguishes them).
  bench::Table table({"circuit", "regime", "rate", "SCC clean", "SCC fault",
                      "|err| fault", "fn-err clean", "fn-err fault"},
                     {10, 14, 6, 9, 9, 11, 12, 12});
  table.print_header();
  std::string last;
  for (const SweepRow& row : report.rows) {
    if (!last.empty() && last != row.circuit + row.regime) table.print_rule();
    last = row.circuit + row.regime;
    table.print_row({row.circuit, row.regime, bench::cell(row.rate, 3),
                     bench::cell(row.scc_clean), bench::cell(row.scc_faulty),
                     bench::cell(row.err_faulty, 4),
                     bench::cell(row.func_err_clean, 4),
                     bench::cell(row.func_err_faulty, 4)});
  }
  table.print_rule();

  std::printf("\nFSM state corruption at cycle N/2 (recovery depth = cycles "
              "until the output re-agrees with the clean run):\n\n");
  bench::Table recovery({"fix circuit", "host op", "corrupt@", "disturbed",
                         "depth"},
                        {24, 16, 9, 9, 7});
  recovery.print_header();
  for (const RecoveryRow& row : report.recovery) {
    recovery.print_row({row.fix, row.circuit,
                        bench::cell_int(static_cast<std::int64_t>(
                            row.corrupt_cycle)),
                        bench::cell_int(static_cast<std::int64_t>(
                            row.disturbed_bits)),
                        bench::cell_int(static_cast<std::int64_t>(
                            row.recovery_depth))});
  }
  recovery.print_rule();

  const bool ordering = report.reco1_ordering_holds();
  const bool identical = backends_identical(config.stream_length);
  std::printf("\nReCo1 ordering (decorrelated multiply degrades more "
              "gracefully than correlated max/min): %s\n",
              ordering ? "holds" : "VIOLATED");
  std::printf("backends bit-identical under mixed fault plan: %s\n",
              identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"host\": " << sc::bench::host_json()
        << ",\n  \"stream_bits\": " << config.stream_length
        << ",\n  \"reco1_ordering\": " << (ordering ? "true" : "false")
        << ",\n  \"backends_identical\": " << (identical ? "true" : "false")
        << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
      const SweepRow& r = report.rows[i];
      out << "    {\"circuit\": \"" << r.circuit << "\", \"regime\": \""
          << r.regime << "\", \"rate\": " << r.rate
          << ", \"scc_clean\": " << r.scc_clean
          << ", \"scc_faulty\": " << r.scc_faulty
          << ", \"err_clean\": " << r.err_clean
          << ", \"err_faulty\": " << r.err_faulty
          << ", \"func_err_clean\": " << r.func_err_clean
          << ", \"func_err_faulty\": " << r.func_err_faulty << "}"
          << (i + 1 < report.rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"recovery\": [\n";
    for (std::size_t i = 0; i < report.recovery.size(); ++i) {
      const RecoveryRow& r = report.recovery[i];
      out << "    {\"fix\": \"" << r.fix << "\", \"circuit\": \"" << r.circuit
          << "\", \"corrupt_cycle\": " << r.corrupt_cycle
          << ", \"disturbed_bits\": " << r.disturbed_bits
          << ", \"recovery_depth\": " << r.recovery_depth << "}"
          << (i + 1 < report.recovery.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  const bool ok = ordering && identical;
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
