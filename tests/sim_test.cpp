/// Tests for the cycle-level simulator, including the model-vs-model
/// cross-check the paper's methodology calls for: every circuit's element
/// form must be bit-identical to its whole-stream functional form.

#include <gtest/gtest.h>

#include <memory>

#include "arith/add.hpp"
#include "arith/divide.hpp"
#include "arith/minmax.hpp"
#include "core/decorrelator.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"
#include "sim/circuit.hpp"
#include "sim/elements.hpp"
#include "test_util.hpp"

namespace sc::sim {
namespace {

TEST(Circuit, WiresStartLowAndAreSettable) {
  Circuit c;
  const WireId w = c.make_wire("w");
  EXPECT_FALSE(c.value(w));
  c.set_value(w, true);
  EXPECT_TRUE(c.value(w));
  EXPECT_EQ(c.wire_name(w), "w");
  EXPECT_EQ(c.wire_count(), 1u);
}

TEST(Circuit, StepAdvancesCycleCounter) {
  Circuit c;
  c.run(5);
  EXPECT_EQ(c.cycle(), 5u);
  c.reset();
  EXPECT_EQ(c.cycle(), 0u);
}

TEST(Circuit, ElementsEvaluateInInsertionOrder) {
  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId z = c.make_wire();
  c.add<StreamSource>(Bitstream::from_string("1111"), a);
  c.add<NotGate>(a, b);          // b = !a, same cycle
  c.add<Gate2>(Gate2::Kind::kOr, a, b, z);
  c.step();
  EXPECT_TRUE(c.value(a));
  EXPECT_FALSE(c.value(b));
  EXPECT_TRUE(c.value(z));
}

TEST(StreamSource, ReplaysAndPadsWithZero) {
  Circuit c;
  const WireId w = c.make_wire();
  c.add<StreamSource>(Bitstream::from_string("101"), w);
  auto& probe = c.add<ProbeElement>(w);
  c.run(5);
  EXPECT_EQ(probe.trace().to_string(), "10100");
}

TEST(Gate2, AllKindsComputeTruthTables) {
  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId and_w = c.make_wire();
  const WireId or_w = c.make_wire();
  const WireId xor_w = c.make_wire();
  const WireId xnor_w = c.make_wire();
  const WireId nand_w = c.make_wire();
  const WireId nor_w = c.make_wire();
  c.add<Gate2>(Gate2::Kind::kAnd, a, b, and_w);
  c.add<Gate2>(Gate2::Kind::kOr, a, b, or_w);
  c.add<Gate2>(Gate2::Kind::kXor, a, b, xor_w);
  c.add<Gate2>(Gate2::Kind::kXnor, a, b, xnor_w);
  c.add<Gate2>(Gate2::Kind::kNand, a, b, nand_w);
  c.add<Gate2>(Gate2::Kind::kNor, a, b, nor_w);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      c.set_value(a, av != 0);
      c.set_value(b, bv != 0);
      c.step();
      EXPECT_EQ(c.value(and_w), av && bv);
      EXPECT_EQ(c.value(or_w), av || bv);
      EXPECT_EQ(c.value(xor_w), av != bv);
      EXPECT_EQ(c.value(xnor_w), av == bv);
      EXPECT_EQ(c.value(nand_w), !(av && bv));
      EXPECT_EQ(c.value(nor_w), !(av || bv));
    }
  }
}

TEST(Mux2, SelectsBetweenInputs) {
  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId sel = c.make_wire();
  const WireId z = c.make_wire();
  c.add<Mux2>(a, b, sel, z);
  c.set_value(a, true);
  c.set_value(b, false);
  c.set_value(sel, false);
  c.step();
  EXPECT_TRUE(c.value(z));
  c.set_value(sel, true);
  c.step();
  EXPECT_FALSE(c.value(z));
}

TEST(SngElement, MatchesFunctionalSng) {
  Circuit c;
  const WireId w = c.make_wire();
  c.add<SngElement>(std::make_unique<rng::VanDerCorput>(8), 100, w);
  auto& probe = c.add<ProbeElement>(w);
  c.run(256);
  EXPECT_EQ(probe.trace(), test::vdc_stream(100));
}

TEST(CounterElement, MatchesPopcount) {
  Circuit c;
  const WireId w = c.make_wire();
  const Bitstream s = test::vdc_stream(90);
  c.add<StreamSource>(s, w);
  auto& counter = c.add<CounterElement>(w);
  c.run(256);
  EXPECT_EQ(counter.count(), 90u);
  EXPECT_DOUBLE_EQ(counter.value(), 90.0 / 256.0);
}

// --- cross-check: element simulation vs whole-stream functional API ---------

TEST(CrossCheck, SynchronizerElementMatchesFunctionalForm) {
  const Bitstream x = test::vdc_stream(100);
  const Bitstream y = test::halton3_stream(170);

  // Functional form.
  core::Synchronizer reference({2, false});
  const auto expected = core::apply(reference, x, y);

  // Element form.
  Circuit c;
  const WireId in_x = c.make_wire();
  const WireId in_y = c.make_wire();
  const WireId out_x = c.make_wire();
  const WireId out_y = c.make_wire();
  c.add<StreamSource>(x, in_x);
  c.add<StreamSource>(y, in_y);
  c.add<PairTransformElement>(
      std::make_unique<core::Synchronizer>(core::Synchronizer::Config{2, false}),
      in_x, in_y, out_x, out_y);
  auto& probe_x = c.add<ProbeElement>(out_x);
  auto& probe_y = c.add<ProbeElement>(out_y);
  c.run(256);

  EXPECT_EQ(probe_x.trace(), expected.x);
  EXPECT_EQ(probe_y.trace(), expected.y);
}

TEST(CrossCheck, DecorrelatorElementMatchesFunctionalForm) {
  const Bitstream x = test::lfsr_stream(120, 1);
  const Bitstream y = test::lfsr_stream(220, 1);

  core::Decorrelator reference(4, std::make_unique<rng::Lfsr>(8, 19),
                               std::make_unique<rng::Lfsr>(8, 37));
  const auto expected = core::apply(reference, x, y);

  Circuit c;
  const WireId in_x = c.make_wire();
  const WireId in_y = c.make_wire();
  const WireId out_x = c.make_wire();
  const WireId out_y = c.make_wire();
  c.add<StreamSource>(x, in_x);
  c.add<StreamSource>(y, in_y);
  c.add<PairTransformElement>(
      std::make_unique<core::Decorrelator>(4, std::make_unique<rng::Lfsr>(8, 19),
                                           std::make_unique<rng::Lfsr>(8, 37)),
      in_x, in_y, out_x, out_y);
  auto& probe_x = c.add<ProbeElement>(out_x);
  auto& probe_y = c.add<ProbeElement>(out_y);
  c.run(256);

  EXPECT_EQ(probe_x.trace(), expected.x);
  EXPECT_EQ(probe_y.trace(), expected.y);
}

TEST(CrossCheck, ToggleAdderElementMatchesFunctionalForm) {
  const Bitstream x = test::vdc_stream(111);
  const Bitstream y = test::halton3_stream(77);
  const Bitstream expected = arith::toggle_add(x, y);

  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId z = c.make_wire();
  c.add<StreamSource>(x, a);
  c.add<StreamSource>(y, b);
  c.add<ToggleAdderElement>(a, b, z);
  auto& probe = c.add<ProbeElement>(z);
  c.run(256);
  EXPECT_EQ(probe.trace(), expected);
}

TEST(CrossCheck, CordivElementMatchesFunctionalForm) {
  rng::VanDerCorput vdc(8);
  Bitstream x, y;
  for (int i = 0; i < 256; ++i) {
    const std::uint32_t r = vdc.next();
    x.push_back(r < 64);
    y.push_back(r < 192);
  }
  const Bitstream expected = arith::divide(x, y);

  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId z = c.make_wire();
  c.add<StreamSource>(x, a);
  c.add<StreamSource>(y, b);
  c.add<CordivElement>(a, b, z);
  auto& probe = c.add<ProbeElement>(z);
  c.run(256);
  EXPECT_EQ(probe.trace(), expected);
}

TEST(CrossCheck, CaMaxElementMatchesFunctionalForm) {
  const Bitstream x = test::vdc_stream(130);
  const Bitstream y = test::halton3_stream(99);
  const Bitstream expected = arith::ca_max(x, y);

  Circuit c;
  const WireId a = c.make_wire();
  const WireId b = c.make_wire();
  const WireId z = c.make_wire();
  c.add<StreamSource>(x, a);
  c.add<StreamSource>(y, b);
  c.add<CaMaxElement>(a, b, z);
  auto& probe = c.add<ProbeElement>(z);
  c.run(256);
  EXPECT_EQ(probe.trace(), expected);
}

TEST(CrossCheck, FullSyncMaxCircuitMatchesOpsImplementation) {
  // End-to-end: two SNGs -> synchronizer -> OR, entirely in the simulator,
  // against core::sync_max on the same generated streams.
  Circuit c;
  const WireId in_x = c.make_wire("x");
  const WireId in_y = c.make_wire("y");
  const WireId sx = c.make_wire("sync_x");
  const WireId sy = c.make_wire("sync_y");
  const WireId z = c.make_wire("max");
  c.add<SngElement>(std::make_unique<rng::VanDerCorput>(8), 90, in_x);
  c.add<SngElement>(std::make_unique<rng::Halton>(8, 3), 200, in_y);
  c.add<PairTransformElement>(std::make_unique<core::Synchronizer>(),
                              in_x, in_y, sx, sy);
  c.add<Gate2>(Gate2::Kind::kOr, sx, sy, z);
  auto& probe = c.add<ProbeElement>(z);
  c.run(256);

  const Bitstream expected =
      core::sync_max(test::vdc_stream(90), test::halton3_stream(200));
  EXPECT_EQ(probe.trace(), expected);
}

TEST(CircuitReset, ReproducesIdenticalRun) {
  Circuit c;
  const WireId w = c.make_wire();
  c.add<SngElement>(std::make_unique<rng::Lfsr>(8, 5), 120, w);
  auto& probe = c.add<ProbeElement>(w);
  c.run(64);
  const Bitstream first = probe.trace();
  c.reset();
  c.run(64);
  EXPECT_EQ(probe.trace(), first);
}

}  // namespace
}  // namespace sc::sim
