/// \file export_test.cpp
/// The metric export sinks (src/obs/export.hpp): Prometheus text
/// exposition (with an in-test grammar validator), the append-only JSONL
/// time series, label stamping, and the periodic background flusher.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace sc::obs;

/// Minimal Prometheus text-format validator: every line is either a
/// comment or `metric_name{labels} value`, names match the grammar, and
/// every sample of `# TYPE <name> <kind>` follows its comment.
void validate_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream comment(line.substr(7));
      std::string name, kind;
      comment >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    // metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    std::size_t pos = 0;
    auto name_char = [](char c, bool first) {
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      return first ? alpha : (alpha || (c >= '0' && c <= '9'));
    };
    ASSERT_TRUE(name_char(line[0], true)) << line;
    while (pos < line.size() && name_char(line[pos], pos == 0)) ++pos;
    // optional label block
    if (pos < line.size() && line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      ASSERT_NE(close, std::string::npos) << line;
      pos = close + 1;
    }
    ASSERT_LT(pos, line.size()) << line;
    ASSERT_EQ(line[pos], ' ') << line;
    // value parses as a double (or +Inf never appears as a value)
    const std::string value = line.substr(pos + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparsable value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

MetricsRegistry& populated_registry(Telemetry& telemetry) {
  MetricsRegistry& m = telemetry.metrics();
  m.counter("backend.runs").add(7);
  m.counter("engine.chunks").add(1234);
  m.gauge("engine.pool.queue_depth").set(3.5);
  Histogram& h = m.histogram("engine.pool.task_wait_us");
  for (const std::uint64_t v : {0u, 1u, 3u, 9u, 100u, 5000u}) h.observe(v);
  return m;
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("backend.runs"), "sc_backend_runs");
  EXPECT_EQ(prometheus_name("fault.edge.p1.corrupted_bits"),
            "sc_fault_edge_p1_corrupted_bits");
  EXPECT_EQ(prometheus_name("weird-name 2"), "sc_weird_name_2");
}

TEST(Prometheus, ExpositionPassesGrammarValidator) {
  Telemetry telemetry({false});
  populated_registry(telemetry);
  const std::string text = prometheus_text(telemetry.snapshot());
  validate_prometheus(text);
  EXPECT_NE(text.find("# TYPE sc_backend_runs counter"), std::string::npos);
  EXPECT_NE(text.find("sc_backend_runs 7"), std::string::npos);
  EXPECT_NE(text.find("sc_engine_pool_queue_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("sc_engine_pool_queue_depth_max"), std::string::npos);
  EXPECT_NE(text.find("sc_engine_pool_task_wait_us_count 6"),
            std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndBounded) {
  Telemetry telemetry({false});
  populated_registry(telemetry);
  const std::string text = prometheus_text(telemetry.snapshot());

  // Collect the _bucket samples in order; cumulative counts must be
  // non-decreasing and the +Inf bucket must equal _count.
  std::istringstream in(text);
  std::string line;
  std::uint64_t prev = 0;
  std::uint64_t inf_value = 0;
  std::size_t buckets = 0;
  while (std::getline(in, line)) {
    if (line.find("task_wait_us_bucket") == std::string::npos) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t value = std::strtoull(line.c_str() + space + 1,
                                              nullptr, 10);
    EXPECT_GE(value, prev) << line;
    prev = value;
    if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = value;
    ++buckets;
  }
  EXPECT_GE(buckets, 3u);
  EXPECT_EQ(inf_value, 6u);
  // The le="0" bucket holds the single zero observation.
  EXPECT_NE(text.find("le=\"0\"} 1"), std::string::npos);
}

TEST(Prometheus, LabelsStampedOnEverySample) {
  Telemetry telemetry({false});
  populated_registry(telemetry);
  const Labels labels = {{"tenant", "acme"}, {"session", "s1"},
                         {"backend", "engine"}};
  const std::string text = prometheus_text(telemetry.snapshot(), labels);
  validate_prometheus(text);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line[0] == '#') continue;
    EXPECT_NE(line.find("tenant=\"acme\""), std::string::npos) << line;
    EXPECT_NE(line.find("session=\"s1\""), std::string::npos) << line;
  }
  // Histogram le coexists with the user labels in one block.
  EXPECT_NE(text.find("backend=\"engine\",le=\"+Inf\""), std::string::npos);
}

TEST(Jsonl, OneSelfDescribingLinePerInstrument) {
  Telemetry telemetry({false});
  populated_registry(telemetry);
  const Labels labels = {{"tenant", "acme"}};
  const std::string records =
      jsonl_records(telemetry.snapshot(), labels, 1754600000000ull);

  std::istringstream in(records);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"ts_ms\": 1754600000000"), std::string::npos);
    EXPECT_NE(line.find("\"labels\": {\"tenant\": \"acme\"}"),
              std::string::npos);
    ++lines;
  }
  // 2 counters + 1 gauge + 1 histogram.
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(records.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(records.find("\"p99\":"), std::string::npos);
}

TEST(Jsonl, SinkAppendsAndCounts) {
  const std::string path = ::testing::TempDir() + "sc_export_test.jsonl";
  std::remove(path.c_str());
  Telemetry telemetry({false});
  populated_registry(telemetry);

  JsonlSink sink(path, {{"backend", "kernel"}});
  ASSERT_TRUE(sink.append(telemetry.snapshot()));
  ASSERT_TRUE(sink.append(telemetry.snapshot()));
  EXPECT_EQ(sink.lines_written(), 8u);

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 8u) << "append-only: two flushes accumulate";
  std::remove(path.c_str());
}

TEST(PeriodicExporter, FlushesOnCadenceAndOnStop) {
  const std::string prom = ::testing::TempDir() + "sc_export_test.prom";
  const std::string jsonl = ::testing::TempDir() + "sc_export_test_p.jsonl";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());

  Telemetry telemetry({false});
  populated_registry(telemetry);
  ExportConfig config;
  config.prometheus_path = prom;
  config.jsonl_path = jsonl;
  config.labels = {{"tenant", "acme"}};
  config.interval = std::chrono::milliseconds(5);
  {
    PeriodicExporter exporter(telemetry, config);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    exporter.stop();
    const std::uint64_t flushed = exporter.flush_count();
    EXPECT_GE(flushed, 2u) << "periodic flushes plus the stop flush";
    exporter.stop();  // idempotent
    EXPECT_EQ(exporter.flush_count(), flushed);
  }

  std::ifstream prom_in(prom);
  std::ostringstream prom_text;
  prom_text << prom_in.rdbuf();
  validate_prometheus(prom_text.str());
  EXPECT_NE(prom_text.str().find("tenant=\"acme\""), std::string::npos);

  std::ifstream jsonl_in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl_in, line)) ++lines;
  EXPECT_GE(lines, 8u) << "at least two windows of 4 instruments";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());
}

TEST(PeriodicExporter, FlushNowIsSynchronous) {
  Telemetry telemetry({false});
  populated_registry(telemetry);
  const std::string jsonl = ::testing::TempDir() + "sc_export_now.jsonl";
  std::remove(jsonl.c_str());
  ExportConfig config;
  config.jsonl_path = jsonl;
  config.interval = std::chrono::hours(1);  // cadence never fires
  PeriodicExporter exporter(telemetry, config);
  exporter.flush_now();
  EXPECT_GE(exporter.flush_count(), 1u);
  std::ifstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4u);
  exporter.stop();
  std::remove(jsonl.c_str());
}

/// Exporting a tracing-enabled telemetry carries the ring-health counter.
TEST(PeriodicExporter, TraceDropCounterReachesTheExposition) {
  TelemetryConfig tconfig;
  tconfig.trace_capacity = 4;
  Telemetry telemetry(tconfig);
  for (int i = 0; i < 9; ++i) {
    Span s(telemetry.tracer(), "tick", "test");
  }
  const std::string text = prometheus_text(telemetry.snapshot());
  validate_prometheus(text);
  EXPECT_NE(text.find("sc_trace_dropped_events 5"), std::string::npos);
}

}  // namespace
