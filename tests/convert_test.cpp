/// Tests for converters: comparator SNG (D/S), counter S/D, APC, and the
/// regeneration baseline.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "bitstream/correlation.hpp"
#include "convert/apc.hpp"
#include "convert/regenerator.hpp"
#include "convert/sd_converter.hpp"
#include "convert/sng.hpp"
#include "rng/counter_source.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"
#include "test_util.hpp"

namespace sc::convert {
namespace {

TEST(Sng, NaturalLengthIsSourcePeriod) {
  Sng sng(std::make_unique<rng::VanDerCorput>(8));
  EXPECT_EQ(sng.natural_length(), 256u);
}

class SngVdcExactness : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SngVdcExactness, VdcEncodesEveryLevelExactly) {
  // A full-period VDC drive makes the comparator SNG exact for all levels.
  const std::uint32_t level = GetParam();
  Sng sng(std::make_unique<rng::VanDerCorput>(8));
  const Bitstream s = sng.generate(level, 256);
  EXPECT_EQ(s.count_ones(), level);
}

INSTANTIATE_TEST_SUITE_P(Levels, SngVdcExactness,
                         ::testing::Values(0u, 1u, 2u, 17u, 64u, 127u, 128u,
                                           129u, 200u, 255u, 256u));

TEST(Sng, CounterSourceGivesRampStream) {
  Sng sng(std::make_unique<rng::CounterSource>(3));
  const Bitstream s = sng.generate(5, 8);
  EXPECT_EQ(s.to_string(), "11111000");
}

TEST(Sng, LfsrValueAccurateOverFullPeriod) {
  // Over its 255-cycle period the LFSR emits each nonzero value once, so
  // ones(level) = level - 1 for level >= 1 at n = 255 (r < level misses 0).
  Sng sng(std::make_unique<rng::Lfsr>(8, 1));
  const Bitstream s = sng.generate(128, 255);
  EXPECT_EQ(s.count_ones(), 127u);
}

TEST(Sng, HaltonValueCloseForAnyLevel) {
  Sng sng(std::make_unique<rng::Halton>(8, 3));
  for (std::uint32_t level : {32u, 100u, 180u, 256u}) {
    sng.reset();
    const Bitstream s = sng.generate(level, 256);
    EXPECT_NEAR(s.value(), level / 256.0, 4.0 / 256.0) << level;
  }
}

TEST(Sng, GenerateValueQuantizes) {
  Sng sng(std::make_unique<rng::VanDerCorput>(8));
  const Bitstream s = sng.generate_value(0.5, 256);
  EXPECT_EQ(s.count_ones(), 128u);
}

TEST(Sng, Width32SourceProducesNonZeroStreams) {
  // Regression: a 32-bit-wide source has period 2^32, which truncated to 0
  // in a uint32 natural length — every comparator test then failed and
  // generate_value() emitted all-zero streams.
  Sng sng(std::make_unique<rng::Lfsr>(32, 0xDEADBEEF));
  EXPECT_EQ(sng.natural_length(), std::uint64_t{1} << 32);
  const Bitstream ones = sng.generate_value(1.0, 128);
  EXPECT_EQ(ones.count_ones(), 128u);
  const Bitstream half = sng.generate_value(0.5, 1u << 14);
  EXPECT_NEAR(half.value(), 0.5, 0.02);
}

TEST(Sng, SameSourceTwoStreamsPositivelyCorrelated) {
  // Two levels encoded from one shared RNG trace: SCC = +1 (paper §II-B).
  rng::VanDerCorput vdc(8);
  Bitstream x, y;
  for (int i = 0; i < 256; ++i) {
    const std::uint32_t r = vdc.next();
    x.push_back(r < 100);
    y.push_back(r < 200);
  }
  EXPECT_DOUBLE_EQ(scc(x, y), 1.0);
}

TEST(Sng, StepMatchesGenerate) {
  Sng a(std::make_unique<rng::Lfsr>(8, 9));
  Sng b(std::make_unique<rng::Lfsr>(8, 9));
  const Bitstream whole = a.generate(77, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(b.step(77), whole.get(i)) << i;
  }
}

// --- S/D ---------------------------------------------------------------------

TEST(SdConverter, CountsOnes) {
  SdConverter sd;
  const Bitstream s = Bitstream::from_string("1101000101");
  for (std::size_t i = 0; i < s.size(); ++i) sd.step(s.get(i));
  EXPECT_EQ(sd.count(), 5u);
  EXPECT_EQ(sd.cycles(), 10u);
  EXPECT_DOUBLE_EQ(sd.value(), 0.5);
}

TEST(SdConverter, ResetClears) {
  SdConverter sd;
  sd.step(true);
  sd.reset();
  EXPECT_EQ(sd.count(), 0u);
  EXPECT_DOUBLE_EQ(sd.value(), 0.0);
}

TEST(SdConverter, WholeStreamHelper) {
  EXPECT_EQ(to_binary(Bitstream::from_string("11110001")), 5u);
}

TEST(SdConverter, RoundTripWithSng) {
  // D/S then S/D recovers the level exactly with a VDC source.
  Sng sng(std::make_unique<rng::VanDerCorput>(8));
  for (std::uint32_t level : {0u, 3u, 128u, 251u, 256u}) {
    sng.reset();
    EXPECT_EQ(to_binary(sng.generate(level, 256)), level);
  }
}

// --- APC ----------------------------------------------------------------------

TEST(Apc, SumsParallelInputs) {
  Apc apc(3);
  const std::array<bool, 3> cycle1 = {true, true, false};
  const std::array<bool, 3> cycle2 = {false, true, false};
  apc.step(cycle1);
  apc.step(cycle2);
  EXPECT_EQ(apc.sum(), 3u);
  EXPECT_EQ(apc.cycles(), 2u);
  EXPECT_DOUBLE_EQ(apc.mean_value(), 0.5);
}

TEST(Apc, MeanValueExactAtEngineScaleCycleCounts) {
  // The denominator inputs * cycles is formed in floating point; drive a
  // long-stream-sized cycle count and require the exact mean (2/3 here is
  // representable error-free relative to the 2^21-cycle sum).
  Apc apc(3);
  const std::array<bool, 3> cycle = {true, true, false};
  const std::size_t cycles = std::size_t{1} << 21;
  for (std::size_t i = 0; i < cycles; ++i) apc.step(cycle);
  EXPECT_EQ(apc.cycles(), cycles);
  EXPECT_EQ(apc.sum(), 2 * cycles);
  EXPECT_DOUBLE_EQ(apc.mean_value(), 2.0 / 3.0);
}

TEST(Apc, ScaledSumExactAtEngineScaleLengths) {
  const std::size_t n = std::size_t{1} << 21;
  std::vector<Bitstream> streams;
  streams.push_back(Bitstream(n, true));   // 1.0
  streams.push_back(Bitstream(n, false));  // 0.0
  Bitstream half(n);
  for (std::size_t i = 0; i < n; i += 2) half.set(i, true);
  streams.push_back(std::move(half));      // 0.5
  EXPECT_DOUBLE_EQ(apc_scaled_sum(streams), 0.5);
}

TEST(Apc, WholeStreamScaledSumIsExact) {
  // APC addition has no MUX sampling noise: it is the exact mean.
  const std::vector<Bitstream> streams = {
      Bitstream::from_string("11110000"),  // 0.5
      Bitstream::from_string("11000000"),  // 0.25
      Bitstream::from_string("11111100"),  // 0.75
  };
  EXPECT_DOUBLE_EQ(apc_scaled_sum(streams), 0.5);
}

TEST(Apc, EmptyInputsGiveZero) {
  EXPECT_DOUBLE_EQ(apc_scaled_sum({}), 0.0);
  Apc apc(2);
  EXPECT_DOUBLE_EQ(apc.mean_value(), 0.0);
}

// --- regeneration ----------------------------------------------------------------

TEST(Regenerator, PreservesValueWithVdc) {
  const Bitstream input = test::lfsr_stream(100, 1);
  rng::VanDerCorput vdc(8);
  const Bitstream out = regenerate(input, vdc);
  EXPECT_EQ(out.count_ones(), input.count_ones());
  EXPECT_EQ(out.size(), input.size());
}

TEST(Regenerator, ResetsCorrelationBetweenStreams) {
  // Two maximally correlated inputs regenerated with *different* sources
  // become nearly uncorrelated.
  const Bitstream x = test::lfsr_stream(100, 1);
  const Bitstream y = test::lfsr_stream(200, 1);
  ASSERT_GT(scc(x, y), 0.9);
  rng::VanDerCorput vdc(8);
  rng::Halton halton(8, 3);
  const Bitstream xr = regenerate(x, vdc);
  const Bitstream yr = regenerate(y, halton);
  EXPECT_LT(std::abs(scc(xr, yr)), 0.2);
}

TEST(Regenerator, BusCorrelatedSharedRngGivesSccPlusOne) {
  // The paper's regeneration mode: one RNG re-encodes the whole bus, so
  // every pair is maximally positively correlated.
  const std::vector<Bitstream> inputs = {
      test::vdc_stream(60), test::halton3_stream(150), test::lfsr_stream(220)};
  rng::Lfsr shared(8, 41);
  const auto outputs = regenerate_bus_correlated(inputs, shared);
  ASSERT_EQ(outputs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(outputs[i].value(), inputs[i].value(), 2.0 / 256.0);
  }
  EXPECT_DOUBLE_EQ(scc(outputs[0], outputs[1]), 1.0);
  EXPECT_DOUBLE_EQ(scc(outputs[0], outputs[2]), 1.0);
  EXPECT_DOUBLE_EQ(scc(outputs[1], outputs[2]), 1.0);
}

TEST(Regenerator, BusUncorrelatedPerStreamSources) {
  const std::vector<Bitstream> inputs = {test::lfsr_stream(128, 3),
                                         test::lfsr_stream(128, 3)};
  ASSERT_DOUBLE_EQ(scc(inputs[0], inputs[1]), 1.0);
  rng::VanDerCorput vdc(8);
  rng::Halton halton(8, 3);
  const std::vector<rng::RandomSource*> sources = {&vdc, &halton};
  const auto outputs = regenerate_bus_uncorrelated(inputs, sources);
  EXPECT_LT(std::abs(scc(outputs[0], outputs[1])), 0.2);
}

TEST(Regenerator, NonPowerOfTwoLengthRescalesLevel) {
  // 100 ones out of 200 bits -> level 128 of 256 -> value 0.5 preserved.
  Bitstream input(200);
  for (std::size_t i = 0; i < 100; ++i) input.set(i, true);
  rng::VanDerCorput vdc(8);
  const Bitstream out = regenerate(input, vdc);
  EXPECT_NEAR(out.value(), 0.5, 3.0 / 200.0);
}

}  // namespace
}  // namespace sc::convert
