/// Tests for the random-source substrate: LFSR maximal periods, Van der
/// Corput / Halton / Sobol low-discrepancy structure, counter and mt19937
/// sources, clone/reset semantics, and the factory.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"
#include "rng/counter_source.hpp"
#include "rng/factory.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/mt_source.hpp"
#include "rng/sobol.hpp"
#include "rng/van_der_corput.hpp"

namespace sc::rng {
namespace {

// --- LFSR ------------------------------------------------------------------

class LfsrPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriod, IsMaximal) {
  const unsigned width = GetParam();
  Lfsr lfsr(width, 1);
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < period; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.next()).second)
        << "state repeated before full period, width=" << width;
  }
  // After a full period the sequence restarts.
  Lfsr fresh(width, 1);
  EXPECT_EQ(lfsr.next(), fresh.next());
}

INSTANTIATE_TEST_SUITE_P(Widths3To16, LfsrPeriod,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u, 13u, 14u, 15u, 16u));

TEST(Lfsr, NeverEmitsZeroState) {
  Lfsr lfsr(8, 1);
  for (int i = 0; i < 300; ++i) EXPECT_NE(lfsr.next(), 0u);
}

TEST(Lfsr, ZeroSeedRemappedToOne) {
  Lfsr a(8, 0);
  Lfsr b(8, 1);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr, SeedIsMaskedToWidth) {
  Lfsr a(8, 0x101);  // low 8 bits = 0x01
  Lfsr b(8, 0x001);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr, DifferentSeedsGiveShiftedSequences) {
  Lfsr a(8, 1);
  Lfsr b(8, 77);
  std::vector<std::uint32_t> sa, sb;
  for (int i = 0; i < 32; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
  }
  EXPECT_NE(sa, sb);
}

TEST(Lfsr, RotationPermutesOutputBits) {
  Lfsr plain(8, 1, 0);
  Lfsr rotated(8, 1, 3);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t p = plain.next();
    const std::uint32_t r = rotated.next();
    EXPECT_EQ(r, ((p >> 3) | (p << 5)) & 0xFFu);
  }
}

TEST(Lfsr, ResetRestartsSequence) {
  Lfsr lfsr(8, 5);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(lfsr.next());
  lfsr.reset();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lfsr.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Lfsr, ClonePreservesState) {
  Lfsr lfsr(8, 5);
  for (int i = 0; i < 7; ++i) lfsr.next();
  auto copy = lfsr.clone();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(copy->next(), lfsr.next());
}

TEST(Lfsr, FillJumpAheadLanesMatchSerialAndStayPairwiseUncorrelated) {
  // fill()'s block path advances 8 jump-ahead lanes in parallel; lane j
  // emits the subsequence {out[8k + j]}.  Two obligations, audited here
  // because the fault subsystem leans on fill-driven generation
  // (SngChunkSource blocks feed every faulted chunked run, and resilience
  // sweeps compare faulted against clean streams bit-for-bit):
  //  1. the interleaved lanes must reproduce the serial next() sequence
  //     exactly — any lane drift would silently shift faulted bits;
  //  2. the lane-decimated subsequences must carry no structured pairwise
  //     correlation, or per-lane consumers would inherit it.  Thresholded
  //     m-sequence shifts ideally correlate at -1/(2^w - 1); the bound
  //     here leaves sampling slack while still catching a broken leap
  //     table (lockstep lanes hit |SCC| = 1).
  constexpr std::size_t kLanes = 8;       // fill()'s kLeapLanes
  constexpr std::size_t kPerLane = 2048;
  for (const unsigned width : {8u, 12u, 16u}) {
    Lfsr block(width, 0xACE1);
    Lfsr serial(width, 0xACE1);
    std::vector<std::uint32_t> buffer(kLanes * kPerLane);
    block.fill(buffer.data(), buffer.size());
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      ASSERT_EQ(buffer[i], serial.next()) << "width " << width << " i " << i;
    }

    const std::uint32_t level =
        static_cast<std::uint32_t>((std::uint64_t{1} << width) / 2);
    std::vector<sc::Bitstream> lane_bits(kLanes);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      lane_bits[lane] = sc::Bitstream(kPerLane);
      for (std::size_t k = 0; k < kPerLane; ++k) {
        if (buffer[kLanes * k + lane] < level) lane_bits[lane].set(k, true);
      }
    }
    for (std::size_t a = 0; a < kLanes; ++a) {
      for (std::size_t b = a + 1; b < kLanes; ++b) {
        EXPECT_LT(std::abs(sc::scc(lane_bits[a], lane_bits[b])), 0.1)
            << "width " << width << " lanes " << a << " x " << b;
      }
    }
  }
}

TEST(Lfsr, MaximalTapsKnownValues) {
  // Width 8 taps {8,6,5,4} -> 0b10111000.
  EXPECT_EQ(Lfsr::maximal_taps(8), 0xB8u);
  // Width 3 taps {3,2} -> 0b110.
  EXPECT_EQ(Lfsr::maximal_taps(3), 0x6u);
}

// --- Van der Corput ----------------------------------------------------------

TEST(VanDerCorput, ReverseBitsKnownValues) {
  EXPECT_EQ(VanDerCorput::reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(VanDerCorput::reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(VanDerCorput::reverse_bits(0x01, 8), 0x80u);
}

TEST(VanDerCorput, IsPermutationOfFullRange) {
  VanDerCorput vdc(8);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 256; ++i) EXPECT_TRUE(seen.insert(vdc.next()).second);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(VanDerCorput, PrefixesAreBalanced) {
  // Low-discrepancy property: any 2^k-aligned prefix covers each dyadic
  // sub-interval equally; check halves over the first 128 outputs.
  VanDerCorput vdc(8);
  int low = 0;
  for (int i = 0; i < 128; ++i) low += (vdc.next() < 128) ? 1 : 0;
  EXPECT_EQ(low, 64);
}

TEST(VanDerCorput, OffsetShiftsPhase) {
  VanDerCorput a(8, 0);
  VanDerCorput b(8, 1);
  a.next();  // consume t = 0
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- Halton -----------------------------------------------------------------

TEST(Halton, RadicalInverseBase2MatchesBitReversal) {
  for (std::uint64_t t = 0; t < 64; ++t) {
    const double r = Halton::radical_inverse(t, 2);
    const auto scaled = static_cast<std::uint32_t>(r * 64.0);
    EXPECT_EQ(scaled, VanDerCorput::reverse_bits(static_cast<std::uint32_t>(t), 6));
  }
}

TEST(Halton, RadicalInverseBase3KnownValues) {
  EXPECT_DOUBLE_EQ(Halton::radical_inverse(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(Halton::radical_inverse(1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Halton::radical_inverse(2, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Halton::radical_inverse(3, 3), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(Halton::radical_inverse(4, 3), 1.0 / 9.0 + 1.0 / 3.0);
}

TEST(Halton, OutputsCoverRangeUniformly) {
  Halton h(8, 3);
  double sum = 0.0;
  const int samples = 729;  // 3^6 for balance
  for (int i = 0; i < samples; ++i) sum += h.next();
  const double mean = sum / samples;
  EXPECT_NEAR(mean, 127.5, 2.0);
}

TEST(Halton, StaysBelowRange) {
  Halton h(8, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(h.next(), 256u);
}

TEST(Halton, ResetAndCloneSemantics) {
  Halton h(8, 3);
  for (int i = 0; i < 5; ++i) h.next();
  auto copy = h.clone();
  EXPECT_EQ(copy->next(), h.next());
  h.reset();
  Halton fresh(8, 3);
  EXPECT_EQ(h.next(), fresh.next());
}

// --- Sobol ------------------------------------------------------------------

TEST(Sobol, Dimension1IsBitReversalSequence) {
  Sobol sobol(8, 1);
  VanDerCorput vdc(8);
  // Gray-code Sobol dim 1 visits the same set per 2^k block as VDC; check
  // the full 256-block is a permutation and starts at 0.
  std::set<std::uint32_t> seen;
  EXPECT_EQ(sobol.next(), 0u);
  seen.insert(0);
  for (int i = 1; i < 256; ++i) EXPECT_TRUE(seen.insert(sobol.next()).second);
}

class SobolDimension : public ::testing::TestWithParam<unsigned> {};

TEST_P(SobolDimension, FullPeriodIsPermutation) {
  Sobol sobol(8, GetParam());
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(seen.insert(sobol.next()).second) << "dim=" << GetParam();
  }
}

TEST_P(SobolDimension, BalancedHalves) {
  Sobol sobol(8, GetParam());
  int low = 0;
  for (int i = 0; i < 128; ++i) low += (sobol.next() < 128) ? 1 : 0;
  EXPECT_EQ(low, 64) << "dim=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Dims, SobolDimension,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

// --- Counter / MT -------------------------------------------------------------

TEST(CounterSource, WrapsAtRange) {
  CounterSource ctr(3, 6);
  EXPECT_EQ(ctr.next(), 6u);
  EXPECT_EQ(ctr.next(), 7u);
  EXPECT_EQ(ctr.next(), 0u);
}

TEST(CounterSource, ResetRestoresStart) {
  CounterSource ctr(4, 3);
  ctr.next();
  ctr.next();
  ctr.reset();
  EXPECT_EQ(ctr.next(), 3u);
}

TEST(Mt19937Source, MaskedToWidth) {
  Mt19937Source src(6, 99);
  for (int i = 0; i < 200; ++i) EXPECT_LT(src.next(), 64u);
}

TEST(Mt19937Source, SeededReproducibility) {
  Mt19937Source a(16, 5);
  Mt19937Source b(16, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- factory ------------------------------------------------------------------

TEST(Factory, CreatesEveryKind) {
  for (RngKind kind :
       {RngKind::kLfsr, RngKind::kVanDerCorput, RngKind::kHalton,
        RngKind::kSobol, RngKind::kCounter, RngKind::kMt19937}) {
    RngSpec spec;
    spec.kind = kind;
    spec.width = 8;
    auto src = make_rng(spec);
    ASSERT_NE(src, nullptr) << to_string(kind);
    EXPECT_EQ(src->width(), 8u);
    EXPECT_LT(src->next(), 256u);
    EXPECT_FALSE(src->name().empty());
  }
}

TEST(Factory, KindNames) {
  EXPECT_EQ(to_string(RngKind::kLfsr), "LFSR");
  EXPECT_EQ(to_string(RngKind::kVanDerCorput), "VDC");
  EXPECT_EQ(to_string(RngKind::kHalton), "Halton");
  EXPECT_EQ(to_string(RngKind::kSobol), "Sobol");
}

TEST(RandomSourceInterface, NextUnitInUnitInterval) {
  Lfsr lfsr(8, 1);
  for (int i = 0; i < 100; ++i) {
    const double u = lfsr.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// --- fill() == next() equivalence -------------------------------------------

// Every source's block fill() must be sequence-identical to one next() per
// draw, including across fill boundaries that fall at odd offsets (the
// kernel layer issues fills in arbitrary block sizes).
void ExpectFillMatchesNext(const RandomSource& proto, std::size_t total) {
  const auto a = proto.clone();  // fill path
  const auto b = proto.clone();  // serial reference
  std::vector<std::uint32_t> got(total);
  static constexpr std::size_t kSplits[] = {1, 7, 63, 64, 65, 1000, 4096};
  std::size_t done = 0;
  std::size_t s = 0;
  while (done < total) {
    const std::size_t n = std::min(kSplits[s % std::size(kSplits)],
                                   total - done);
    a->fill(got.data() + done, n);
    done += n;
    ++s;
  }
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(got[i], b->next()) << proto.name() << " diverges at draw " << i;
  }
}

TEST(FillEquivalence, AllSourcesMatchSerialNext) {
  ExpectFillMatchesNext(Lfsr(11, 5), 9000);
  ExpectFillMatchesNext(Lfsr(8, 3, 3), 2000);  // rotated output taps
  ExpectFillMatchesNext(CounterSource(9, 17), 3000);
  ExpectFillMatchesNext(Mt19937Source(16, 42), 3000);
  ExpectFillMatchesNext(VanDerCorput(10), 3000);
  ExpectFillMatchesNext(Halton(10, 3), 3000);
  ExpectFillMatchesNext(Sobol(12, 2), 3000);
}

TEST(FillEquivalence, FillResumesMidSequence) {
  // Interleave next() draws with fills: the fill must pick up wherever the
  // serial state is, not assume block-aligned consumption.
  Sobol a(12, 3);
  Sobol b(12, 3);
  std::vector<std::uint32_t> got(100);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(a.next(), b.next());
    a.fill(got.data(), got.size());
    for (std::uint32_t v : got) EXPECT_EQ(v, b.next());
  }
}

// --- RandomSource word API ---------------------------------------------------

// Reference model for the packed word APIs, built from the serial next()
// sequence of a clone.
std::vector<std::uint64_t> PackCompareRef(RandomSource& src, std::size_t nbits,
                                          std::uint64_t level) {
  std::vector<std::uint64_t> words((nbits + 63) / 64, 0);
  for (std::size_t i = 0; i < nbits; ++i) {
    if (src.next() < level) words[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return words;
}

class WordApi : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::unique_ptr<RandomSource> make() const {
    const std::string kind = GetParam();
    if (kind == "lfsr") return std::make_unique<Lfsr>(11, 5);
    if (kind == "lfsr-rot") return std::make_unique<Lfsr>(8, 3, 3);
    if (kind == "counter") return std::make_unique<CounterSource>(9, 100);
    if (kind == "mt") return std::make_unique<Mt19937Source>(16, 7);
    if (kind == "vdc") return std::make_unique<VanDerCorput>(10);
    if (kind == "halton") return std::make_unique<Halton>(10, 3);
    return std::make_unique<Sobol>(12, 2);
  }
};

TEST_P(WordApi, FillCompareMatchesSerialAcrossOddSplits) {
  const auto src = make();
  const auto ref = src->clone();
  const std::uint64_t level = src->range() / 3;
  // Total deliberately exceeds an 11-bit LFSR period (2047) several times
  // so the ring-replay path engages and wraps.
  static constexpr std::size_t kSplits[] = {1, 63, 65, 4096, 7000};
  std::size_t total = 0;
  for (const std::size_t n : kSplits) total += n;
  std::vector<std::uint64_t> got((total + 63) / 64, 0);
  std::size_t done = 0;
  for (const std::size_t n : kSplits) {
    // Word-aligned starts, as the kernel layer guarantees.
    std::vector<std::uint64_t> piece((n + 63) / 64, 0);
    src->fill_compare(piece.data(), n, level);
    for (std::size_t i = 0; i < n; ++i) {
      if ((piece[i / 64] >> (i % 64)) & 1u) {
        got[(done + i) / 64] |= std::uint64_t{1} << ((done + i) % 64);
      }
    }
    done += n;
  }
  EXPECT_EQ(got, PackCompareRef(*ref, total, level));
}

TEST_P(WordApi, FillCompareFullScaleLevelIsAllOnesAndAdvances) {
  const auto src = make();
  const auto ref = src->clone();
  std::vector<std::uint64_t> words(3, 0);
  src->fill_compare(words.data(), 130, src->range());
  EXPECT_EQ(words[0], ~std::uint64_t{0});
  EXPECT_EQ(words[1], ~std::uint64_t{0});
  EXPECT_EQ(words[2], std::uint64_t{3});
  // The sequence must still advance by 130 draws.
  for (int i = 0; i < 130; ++i) ref->next();
  EXPECT_EQ(src->next(), ref->next());
}

TEST_P(WordApi, FillIndicesMatchesSerialModulo) {
  const auto src = make();
  const auto ref = src->clone();
  static constexpr std::uint32_t kBounds[] = {1, 2, 17, 255};
  for (const std::uint32_t bound : kBounds) {
    std::vector<std::uint8_t> got(5000);
    src->fill_indices(got.data(), got.size(), bound);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<std::uint8_t>(ref->next() % bound))
          << "bound=" << bound << " i=" << i;
    }
  }
}

TEST_P(WordApi, FillCompareTraceMatchesSerialSignedCompare) {
  const auto src = make();
  const auto ref = src->clone();
  const std::size_t n = 6000;
  std::vector<std::uint16_t> thresh(n);
  for (std::size_t i = 0; i < n; ++i) {
    thresh[i] = static_cast<std::uint16_t>((i * 37) % 300);
  }
  std::vector<std::uint64_t> words((n + 63) / 64, 0);
  src->fill_compare_trace(words.data(), thresh.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool expect =
        static_cast<std::int32_t>(ref->next()) < static_cast<std::int32_t>(thresh[i]);
    ASSERT_EQ((words[i / 64] >> (i % 64)) & 1u, expect ? 1u : 0u) << "i=" << i;
  }
}

TEST_P(WordApi, WordCallsInterleaveWithSerialDraws) {
  // Mixing next() between word calls must keep the shared sequence position
  // (the LFSR ring replay has to resynchronize its cursor).
  const auto src = make();
  const auto ref = src->clone();
  const std::uint64_t level = src->range() / 2;
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(src->next(), ref->next());
    std::vector<std::uint64_t> words(20, 0);
    src->fill_compare(words.data(), 1237, level);
    EXPECT_EQ(words, PackCompareRef(*ref, 1237, level));
    std::vector<std::uint8_t> idx(301);
    src->fill_indices(idx.data(), idx.size(), 13);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(idx[i], static_cast<std::uint8_t>(ref->next() % 13));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, WordApi,
                         ::testing::Values("lfsr", "lfsr-rot", "counter", "mt",
                                           "vdc", "halton", "sobol"));

TEST(WordApi, LfsrClonePreservesRingPosition) {
  // Drive the LFSR far past its period so the replay ring is built, then
  // clone mid-ring: the copy must continue the identical sequence.
  Lfsr lfsr(8, 5);
  std::vector<std::uint64_t> words(20, 0);
  lfsr.fill_compare(words.data(), 1200, 100);
  const auto copy = lfsr.clone();
  std::vector<std::uint64_t> a(4, 0);
  std::vector<std::uint64_t> b(4, 0);
  lfsr.fill_compare(a.data(), 250, 100);
  copy->fill_compare(b.data(), 250, 100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(lfsr.next(), copy->next());
}

TEST(WordApi, LfsrResetRestartsWordSequence) {
  Lfsr lfsr(9, 7);
  std::vector<std::uint64_t> first(10, 0);
  lfsr.fill_compare(first.data(), 640, 200);
  lfsr.reset();
  std::vector<std::uint64_t> again(10, 0);
  lfsr.fill_compare(again.data(), 640, 200);
  EXPECT_EQ(again, first);
}

}  // namespace
}  // namespace sc::rng
