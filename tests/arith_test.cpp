/// Tests for the SC arithmetic library (paper Fig. 2 + correlation-agnostic
/// baselines): each operation at its required correlation, plus failure
/// modes at the wrong correlation (the errors the paper's circuits fix).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "arith/add.hpp"
#include "arith/divide.hpp"
#include "arith/gates.hpp"
#include "arith/minmax.hpp"
#include "arith/multiply.hpp"
#include "arith/subtract.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"
#include "test_util.hpp"

namespace sc::arith {
namespace {

constexpr double kLsb = 1.0 / 256.0;

// --- gates -------------------------------------------------------------------

TEST(Gates, NamedWrappersMatchOperators) {
  const Bitstream x = Bitstream::from_string("1100");
  const Bitstream y = Bitstream::from_string("1010");
  EXPECT_EQ(and_gate(x, y), x & y);
  EXPECT_EQ(or_gate(x, y), x | y);
  EXPECT_EQ(xor_gate(x, y), x ^ y);
  EXPECT_EQ(xnor_gate(x, y), ~(x ^ y));
  EXPECT_EQ(not_gate(x), ~x);
}

TEST(Gates, MuxSelectsPerBit) {
  const Bitstream x = Bitstream::from_string("1111");
  const Bitstream y = Bitstream::from_string("0000");
  const Bitstream sel = Bitstream::from_string("0101");
  EXPECT_EQ(mux_gate(x, y, sel).to_string(), "1010");
}

// --- multiply ------------------------------------------------------------------

class MultiplySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(MultiplySweep, UncorrelatedVdcHaltonIsAccurate) {
  // The paper's canonical uncorrelated configuration: VDC x Halton-3.
  const auto [lx, ly] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  const Bitstream z = multiply(x, y);
  EXPECT_NEAR(z.value(), (lx / 256.0) * (ly / 256.0), 6 * kLsb);
}

TEST_P(MultiplySweep, PositiveCorrelationBreaksMultiply) {
  // Table I: at SCC = +1 an AND computes min, not the product.
  const auto [lx, ly] = GetParam();
  const auto pair = make_positively_correlated(lx, ly, 256);
  const Bitstream z = multiply(pair.x, pair.y);
  EXPECT_NEAR(z.value(), std::min(lx, ly) / 256.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, MultiplySweep,
    ::testing::Combine(::testing::Values(32u, 64u, 128u, 192u, 224u),
                       ::testing::Values(48u, 96u, 160u, 208u)));

TEST(Multiply, BipolarXnorOnUncorrelatedStreams) {
  // bipolar(x) = 0, bipolar(y) = 0.5 -> product 0: XNOR of uncorrelated
  // streams with px = 0.5, py = 0.75.
  const Bitstream x = test::vdc_stream(128);
  const Bitstream y = test::halton3_stream(192);
  const Bitstream z = multiply_bipolar(x, y);
  EXPECT_NEAR(z.bipolar_value(), x.bipolar_value() * y.bipolar_value(),
              8 * kLsb);
}

TEST(Multiply, ByZeroAndByOne) {
  const Bitstream x = test::vdc_stream(100);
  EXPECT_EQ(multiply(x, Bitstream(256, false)).count_ones(), 0u);
  EXPECT_EQ(multiply(x, Bitstream(256, true)), x);
}

// --- scaled add -----------------------------------------------------------------

class ScaledAddSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(ScaledAddSweep, HalvesSumWithUncorrelatedSelect) {
  const auto [lx, ly] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  rng::Lfsr sel_src(8, 55);
  const Bitstream z = scaled_add(x, y, sel_src);
  EXPECT_NEAR(z.value(), 0.5 * (lx + ly) / 256.0, 10 * kLsb);
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, ScaledAddSweep,
    ::testing::Combine(::testing::Values(0u, 64u, 128u, 255u),
                       ::testing::Values(32u, 128u, 192u, 256u)));

TEST(ScaledAdd, ExplicitSelectStream) {
  const Bitstream x(256, true);
  const Bitstream y(256, false);
  const Bitstream sel = test::vdc_stream(128);
  EXPECT_NEAR(scaled_add(x, y, sel).value(), 0.5, 1e-12);
}

// --- toggle (correlation-agnostic) adder ---------------------------------------

class ToggleAddSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, double>> {
};

TEST_P(ToggleAddSweep, ExactWithinOneLsbAtAnyCorrelation) {
  const auto [lx, ly, target_scc] = GetParam();
  const auto pair = make_pair_with_scc(lx, ly, 256, target_scc);
  const Bitstream z = toggle_add(pair.x, pair.y);
  // ones(z) = a + round_half(b + c): within 1 bit of the exact scaled sum.
  EXPECT_NEAR(z.value(), 0.5 * (lx + ly) / 256.0, kLsb);
}

INSTANTIATE_TEST_SUITE_P(
    ValueAndCorrelationGrid, ToggleAddSweep,
    ::testing::Combine(::testing::Values(32u, 128u, 200u),
                       ::testing::Values(64u, 128u, 224u),
                       ::testing::Values(-1.0, -0.5, 0.0, 0.5, 1.0)));

TEST(ToggleAdder, PerCycleSemantics) {
  ToggleAdder adder;
  // Differing inputs alternate 1, 0, 1, ...
  EXPECT_TRUE(adder.step(true, false));
  EXPECT_FALSE(adder.step(false, true));
  EXPECT_TRUE(adder.step(true, false));
  // Agreement passes through without consuming the toggle.
  EXPECT_TRUE(adder.step(true, true));
  EXPECT_FALSE(adder.step(false, false));
  EXPECT_FALSE(adder.step(false, true));
}

// --- saturating add -------------------------------------------------------------

TEST(SaturatingAdd, ExactAtSccMinusOne) {
  for (std::uint32_t lx : {40u, 100u, 160u}) {
    for (std::uint32_t ly : {60u, 120u, 220u}) {
      const auto pair = make_negatively_correlated(lx, ly, 256);
      const Bitstream z = saturating_add(pair.x, pair.y);
      EXPECT_NEAR(z.value(), std::min(1.0, (lx + ly) / 256.0), 1e-12)
          << lx << "," << ly;
    }
  }
}

TEST(SaturatingAdd, UnderestimatesWithoutNegativeCorrelation) {
  // At SCC = +1 the OR computes max, far below the saturating sum.
  const auto pair = make_positively_correlated(128, 128, 256);
  EXPECT_NEAR(saturating_add(pair.x, pair.y).value(), 0.5, 1e-12);
}

// --- subtract --------------------------------------------------------------------

class SubtractSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(SubtractSweep, AbsoluteDifferenceAtSccPlusOne) {
  const auto [lx, ly] = GetParam();
  const auto pair = make_positively_correlated(lx, ly, 256);
  const Bitstream z = subtract_abs(pair.x, pair.y);
  EXPECT_NEAR(z.value(), std::abs(static_cast<int>(lx) - static_cast<int>(ly)) / 256.0,
              1e-12);
}

TEST_P(SubtractSweep, OverestimatesWhenUncorrelated) {
  const auto [lx, ly] = GetParam();
  if (lx == ly) return;  // difference 0 trivially overestimated; skip
  const auto pair = make_uncorrelated(lx, ly, 256);
  const double exact = std::abs(static_cast<int>(lx) - static_cast<int>(ly)) / 256.0;
  // XOR on independent streams computes px + py - 2 px py >= |px - py|,
  // with equality only when either operand sits at a rail (0 or 1).
  const bool at_rail = lx <= 8 || lx >= 248 || ly <= 8 || ly >= 248;
  if (at_rail) {
    EXPECT_GE(subtract_abs(pair.x, pair.y).value(), exact - 1e-12);
  } else {
    EXPECT_GT(subtract_abs(pair.x, pair.y).value(), exact);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, SubtractSweep,
    ::testing::Combine(::testing::Values(32u, 96u, 160u, 255u),
                       ::testing::Values(16u, 96u, 128u, 240u)));

// --- divide ----------------------------------------------------------------------

class DivideSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(DivideSweep, QuotientWithCorrelatedOperands) {
  const auto [lx, ly] = GetParam();
  if (lx > ly || ly == 0) return;
  // Correlated operands from one shared ramp source (subset property).
  rng::VanDerCorput vdc(8);
  Bitstream x, y;
  for (int i = 0; i < 256; ++i) {
    const std::uint32_t r = vdc.next();
    x.push_back(r < lx);
    y.push_back(r < ly);
  }
  const Bitstream z = divide(x, y);
  // CORDIV's held-bit replay quantizes the quotient estimate; its error
  // floor is a few percent (consistent with ref [6]).
  EXPECT_NEAR(z.value(), static_cast<double>(lx) / ly, 0.09)
      << lx << "/" << ly;
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, DivideSweep,
    ::testing::Combine(::testing::Values(16u, 64u, 128u, 192u),
                       ::testing::Values(128u, 192u, 255u)));

TEST(Cordiv, HoldsLastQuotientBitWhenDenominatorZero) {
  Cordiv div;
  EXPECT_TRUE(div.step(true, true));    // quotient bit 1, held
  EXPECT_TRUE(div.step(false, false));  // y = 0: replay held bit
  EXPECT_FALSE(div.step(false, true));  // quotient bit 0, held
  EXPECT_FALSE(div.step(true, false));  // y = 0: replay held 0
}

// --- min / max baselines -----------------------------------------------------------

TEST(OrMax, ExactAtSccPlusOne) {
  const auto pair = make_positively_correlated(90, 170, 256);
  EXPECT_NEAR(or_max(pair.x, pair.y).value(), 170.0 / 256.0, 1e-12);
}

TEST(OrMax, OvershootsWhenUncorrelated) {
  const auto pair = make_uncorrelated(90, 170, 256);
  EXPECT_GT(or_max(pair.x, pair.y).value(), 170.0 / 256.0);
}

TEST(AndMin, ExactAtSccPlusOne) {
  const auto pair = make_positively_correlated(90, 170, 256);
  EXPECT_NEAR(and_min(pair.x, pair.y).value(), 90.0 / 256.0, 1e-12);
}

TEST(AndMin, UndershootsWhenUncorrelated) {
  const auto pair = make_uncorrelated(90, 170, 256);
  EXPECT_LT(and_min(pair.x, pair.y).value(), 90.0 / 256.0);
}

class CaMinMaxSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, double>> {
};

TEST_P(CaMinMaxSweep, AccurateAtAnyCorrelation) {
  const auto [lx, ly, target_scc] = GetParam();
  const auto pair = make_pair_with_scc(lx, ly, 256, target_scc);
  const double px = lx / 256.0;
  const double py = ly / 256.0;
  EXPECT_NEAR(ca_max(pair.x, pair.y).value(), std::max(px, py), 0.05);
  EXPECT_NEAR(ca_min(pair.x, pair.y).value(), std::min(px, py), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    ValueAndCorrelationGrid, CaMinMaxSweep,
    ::testing::Combine(::testing::Values(48u, 128u, 208u),
                       ::testing::Values(80u, 144u, 240u),
                       ::testing::Values(-1.0, 0.0, 1.0)));

TEST(CaMax, MinPlusMaxConservesOnesPerCycle) {
  // Steering sends each cycle's bits to one output or the other; across
  // min and max units fed identically, ones are conserved.
  const auto pair = make_uncorrelated(100, 180, 256, 99);
  const Bitstream mx = ca_max(pair.x, pair.y);
  const Bitstream mn = ca_min(pair.x, pair.y);
  EXPECT_EQ(mx.count_ones() + mn.count_ones(),
            pair.x.count_ones() + pair.y.count_ones());
}

}  // namespace
}  // namespace sc::arith
