/// Tests for the SCC metric: the paper's Table I examples, the defining
/// boundary cases (+1 / 0 / -1), invariances, and property sweeps.

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "test_util.hpp"

namespace sc {
namespace {

TEST(Overlap, CountsAllFourClasses) {
  const Bitstream x = Bitstream::from_string("1100");
  const Bitstream y = Bitstream::from_string("1010");
  const OverlapCounts k = overlap(x, y);
  EXPECT_EQ(k.a, 1u);  // position 0
  EXPECT_EQ(k.b, 1u);  // position 1
  EXPECT_EQ(k.c, 1u);  // position 2
  EXPECT_EQ(k.d, 1u);  // position 3
  EXPECT_EQ(k.n(), 4u);
}

TEST(Overlap, WorksAcrossWordBoundaries) {
  Bitstream x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.set(i, i % 2 == 0);
    y.set(i, i % 4 == 0);
  }
  const OverlapCounts k = overlap(x, y);
  EXPECT_EQ(k.a, 25u);
  EXPECT_EQ(k.b, 25u);
  EXPECT_EQ(k.c, 0u);
  EXPECT_EQ(k.d, 50u);
}

TEST(Scc, PaperTableIPositivelyCorrelatedPair) {
  // X = 10101010 (0.5), Y = 10111011 (0.75): SCC = +1, AND = min.
  const Bitstream x = Bitstream::from_string("10101010");
  const Bitstream y = Bitstream::from_string("10111011");
  EXPECT_DOUBLE_EQ(scc(x, y), 1.0);
  EXPECT_DOUBLE_EQ((x & y).value(), 0.5);  // min(0.5, 0.75)
}

TEST(Scc, PaperTableINegativelyCorrelatedPair) {
  // X = 10101010 (0.5), Y = 11011101 (0.75): SCC = -1,
  // AND = max(0, x + y - 1) = 0.25.
  const Bitstream x = Bitstream::from_string("10101010");
  const Bitstream y = Bitstream::from_string("11011101");
  EXPECT_DOUBLE_EQ(scc(x, y), -1.0);
  EXPECT_DOUBLE_EQ((x & y).value(), 0.25);
}

TEST(Scc, PaperTableIUncorrelatedPair) {
  // X = 10101010 (0.5), Y = 11111100 (0.75): SCC = 0, AND = product.
  const Bitstream x = Bitstream::from_string("10101010");
  const Bitstream y = Bitstream::from_string("11111100");
  EXPECT_DOUBLE_EQ(scc(x, y), 0.0);
  EXPECT_DOUBLE_EQ((x & y).value(), 0.375);
}

TEST(Scc, IdenticalStreamsAreMaximallyPositive) {
  const Bitstream x = Bitstream::from_string("0110100110010110");
  EXPECT_DOUBLE_EQ(scc(x, x), 1.0);
}

TEST(Scc, ComplementStreamsAreMaximallyNegative) {
  const Bitstream x = Bitstream::from_string("0110100110010110");
  EXPECT_DOUBLE_EQ(scc(x, ~x), -1.0);
}

TEST(Scc, IsSymmetric) {
  const Bitstream x = Bitstream::from_string("0110100110");
  const Bitstream y = Bitstream::from_string("1110000110");
  EXPECT_DOUBLE_EQ(scc(x, y), scc(y, x));
}

TEST(Scc, UndefinedForConstantStreamsReturnsZero) {
  const Bitstream ones(16, true);
  const Bitstream zeros(16, false);
  const Bitstream mixed = Bitstream::from_string("1010101010101010");
  EXPECT_DOUBLE_EQ(scc(ones, mixed), 0.0);
  EXPECT_DOUBLE_EQ(scc(zeros, mixed), 0.0);
  EXPECT_DOUBLE_EQ(scc(ones, zeros), 0.0);
  EXPECT_FALSE(scc_defined(ones, mixed));
  EXPECT_FALSE(scc_defined(zeros, mixed));
  EXPECT_TRUE(scc_defined(mixed, ~mixed));
}

TEST(Scc, ZeroVarianceContractCoversEveryDegenerateShape) {
  // The zero-variance contract (correlation.hpp): constant streams and
  // empty streams return 0 from scc() and pearson(), never divide by zero,
  // and report undefined via scc_defined().
  const Bitstream ones(32, true);
  const Bitstream zeros(32, false);
  const Bitstream empty(0);
  const Bitstream mixed = Bitstream::from_string("10011010");

  // Constant x constant, all four combinations.
  EXPECT_DOUBLE_EQ(scc(ones, ones), 0.0);
  EXPECT_DOUBLE_EQ(scc(zeros, zeros), 0.0);
  EXPECT_DOUBLE_EQ(scc(ones, zeros), 0.0);
  EXPECT_DOUBLE_EQ(scc(zeros, ones), 0.0);
  EXPECT_FALSE(scc_defined(ones, ones));
  EXPECT_FALSE(scc_defined(zeros, zeros));

  // Empty pair: N = 0 is degenerate too.
  EXPECT_DOUBLE_EQ(scc(empty, empty), 0.0);
  EXPECT_FALSE(scc_defined(empty, empty));
  EXPECT_DOUBLE_EQ(pearson(empty, empty), 0.0);

  // Pearson shares the convention for zero-variance operands.
  const Bitstream mixed8_ones(8, true);
  EXPECT_DOUBLE_EQ(pearson(mixed8_ones, mixed), 0.0);
  EXPECT_DOUBLE_EQ(pearson(zeros, zeros), 0.0);

  // Count-level entry point: a degenerate OverlapCounts never divides.
  OverlapCounts constant_counts;
  constant_counts.a = 32;  // X all-1, Y all-1
  EXPECT_FALSE(scc_defined(constant_counts));
  EXPECT_DOUBLE_EQ(scc(constant_counts), 0.0);
}

TEST(Scc, InsensitiveToValueUnlikePearson) {
  // Same maximal overlap structure at different values: SCC stays +1.
  const auto p1 = make_positively_correlated(64, 192, 256);
  const auto p2 = make_positively_correlated(16, 32, 256);
  EXPECT_DOUBLE_EQ(scc(p1.x, p1.y), 1.0);
  EXPECT_DOUBLE_EQ(scc(p2.x, p2.y), 1.0);
  // Pearson differs between the two (it depends on the values).
  EXPECT_NE(pearson(p1.x, p1.y), pearson(p2.x, p2.y));
}

TEST(Pearson, MatchesSignOfScc) {
  const auto pos = make_positively_correlated(100, 150, 256);
  const auto neg = make_negatively_correlated(100, 150, 256);
  EXPECT_GT(pearson(pos.x, pos.y), 0.5);
  EXPECT_LT(pearson(neg.x, neg.y), -0.5);
}

TEST(Pearson, ZeroForConstantStream) {
  EXPECT_DOUBLE_EQ(
      pearson(Bitstream(8, true), Bitstream::from_string("10101100")), 0.0);
}

// --- size-mismatch handling ----------------------------------------------

// overlap() must fail deterministically on mismatched lengths in every
// build mode (the old assert vanished under NDEBUG and the word loop then
// indexed past the shorter vector).
TEST(Overlap, MismatchedSizesThrow) {
  const Bitstream x(128, true);   // 2 words
  const Bitstream y(64, false);   // 1 word
  EXPECT_THROW(overlap(x, y), std::invalid_argument);
  EXPECT_THROW(overlap(y, x), std::invalid_argument);
  EXPECT_THROW(scc(x, y), std::invalid_argument);
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
  EXPECT_THROW(overlap(Bitstream(8, true), Bitstream(4, true)),
               std::invalid_argument);
  EXPECT_THROW(overlap(Bitstream(), Bitstream(1)), std::invalid_argument);
}

// --- property sweep: SCC bounds and independence point -------------------

class SccValueSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(SccValueSweep, BoundedInMinusOnePlusOne) {
  const auto [ones_x, ones_y] = GetParam();
  for (double target : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    const auto pair = make_pair_with_scc(ones_x, ones_y, 256, target);
    const double c = scc(pair.x, pair.y);
    EXPECT_GE(c, -1.0 - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
  }
}

TEST_P(SccValueSweep, ExtremesRealizeMaximalScc) {
  const auto [ones_x, ones_y] = GetParam();
  const auto pos = make_positively_correlated(ones_x, ones_y, 256);
  const auto neg = make_negatively_correlated(ones_x, ones_y, 256);
  EXPECT_DOUBLE_EQ(scc(pos.x, pos.y), 1.0);
  EXPECT_DOUBLE_EQ(scc(neg.x, neg.y), -1.0);
}

TEST_P(SccValueSweep, AndGateRealizesTableIFunctions) {
  const auto [ones_x, ones_y] = GetParam();
  const double px = ones_x / 256.0;
  const double py = ones_y / 256.0;
  const auto pos = make_positively_correlated(ones_x, ones_y, 256);
  const auto neg = make_negatively_correlated(ones_x, ones_y, 256);
  const auto unc = make_uncorrelated(ones_x, ones_y, 256);
  EXPECT_NEAR((pos.x & pos.y).value(), std::min(px, py), 1e-12);
  EXPECT_NEAR((neg.x & neg.y).value(), std::max(0.0, px + py - 1.0), 1e-12);
  // The uncorrelated overlap is the rounded independence point.
  EXPECT_NEAR((unc.x & unc.y).value(), px * py, 0.5 / 256.0);
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, SccValueSweep,
    ::testing::Combine(::testing::Values(16u, 64u, 128u, 200u, 240u),
                       ::testing::Values(32u, 96u, 128u, 192u, 224u)));

}  // namespace
}  // namespace sc
