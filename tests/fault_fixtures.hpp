/// \file fault_fixtures.hpp
/// Reusable differential-conformance fixture for execution backends.
///
/// The contract every ExecutorBackend — current and future — must satisfy:
/// on the same (Program, ProgramPlan, ExecConfig), including any
/// ExecConfig::fault_plan, it produces streams and values bit-identical to
/// the ReferenceBackend.  `conforms()` checks one case and reports a
/// self-contained failure message; `random_fault_plan()` draws a fault
/// campaign over a program's named edges so fuzzers can sweep the whole
/// (program x fault plan x length) space from one logged seed.
///
/// Used by tests/differential_test.cpp (the cross-backend fuzzer) and
/// tests/fault_test.cpp (directed edge cases); a new backend earns its
/// place by passing the same fixture.

#pragma once

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::fault::fixtures {

/// Canonical two-input circuit of the fault suites and the golden
/// corpus: out = op(x = 0.7, y = 0.45), with the inputs on one shared or
/// two independent RNG groups.  (fault::sweep builds the same shape
/// internally; src/ cannot depend on this test header.)
inline graph::Program two_input(const char* op, bool shared_group) {
  graph::GraphBuilder b;
  const graph::Value x = b.input("x", 0.7, 0);
  const graph::Value y = b.input("y", 0.45, shared_group ? 0 : 1);
  b.output(b.op(op, {x, y}), "out");
  return b.build();
}

/// Random fault campaign over `program`'s named values: up to three edge
/// faults (kinds, rates, windows, salts all drawn from `gen`) and up to
/// two FSM faults on op nodes.  Plans are occasionally empty — the
/// fault-free path stays fuzzed too.
inline FaultPlan random_fault_plan(std::mt19937_64& gen,
                                   const graph::Program& program) {
  FaultPlan plan;
  plan.seed = gen();
  std::vector<std::string> names;
  std::vector<std::string> op_names;
  for (graph::NodeId id = 0; id < program.node_count(); ++id) {
    const graph::ProgramNode& node = program.node(id);
    if (node.name.empty()) continue;
    names.push_back(node.name);
    if (node.kind == graph::ProgramNode::Kind::kOp) {
      op_names.push_back(node.name);
    }
  }
  if (names.empty()) return plan;

  static const double kRates[] = {0.001, 0.01, 0.05, 0.2, 0.5, 1.0};
  const std::size_t edge_count = gen() % 4;  // 0..3
  for (std::size_t i = 0; i < edge_count; ++i) {
    EdgeFault fault;
    fault.edge = names[gen() % names.size()];
    fault.kind = static_cast<ErrorKind>(gen() % 4);
    fault.rate = kRates[gen() % (sizeof(kRates) / sizeof(kRates[0]))];
    fault.burst_length = 1 + gen() % 64;
    fault.salt = static_cast<std::uint32_t>(gen());
    if (gen() % 3 == 0) {
      // Transient window somewhere in the first 2^10 bits; windows past
      // the stream end are legal (they simply never fire).
      fault.begin = gen() % 1024;
      fault.end = fault.begin + 1 + gen() % 256;
    }
    plan.edges.push_back(std::move(fault));
  }
  if (!op_names.empty()) {
    const std::size_t fsm_count = gen() % 3;  // 0..2
    for (std::size_t i = 0; i < fsm_count; ++i) {
      FsmFault fault;
      fault.op = op_names[gen() % op_names.size()];
      fault.first = gen() % 512;
      fault.period = (gen() % 2 == 0) ? 0 : 1 + gen() % 128;
      fault.lane = (gen() % 2 == 0) ? -1 : static_cast<std::int32_t>(gen() % 3);
      plan.fsms.push_back(std::move(fault));
    }
  }
  return plan;
}

/// One conformance case against a precomputed reference result — use
/// this form to check several candidates without re-running the
/// reference backend per candidate.
inline ::testing::AssertionResult conforms(
    graph::ExecutorBackend& candidate, const graph::Program& program,
    const graph::ProgramPlan& plan, const graph::ExecConfig& config,
    const graph::ExecutionResult& want) {
  const graph::ExecutionResult got = candidate.run(program, plan, config);
  if (want.streams.size() != got.streams.size()) {
    return ::testing::AssertionFailure()
           << candidate.name() << ": " << got.streams.size()
           << " streams, reference has " << want.streams.size();
  }
  for (std::size_t s = 0; s < want.streams.size(); ++s) {
    if (want.streams[s] == got.streams[s]) continue;
    if (want.streams[s].size() != got.streams[s].size()) {
      return ::testing::AssertionFailure()
             << candidate.name() << ": stream of node " << s << " ('"
             << program.node(s).name << "') has " << got.streams[s].size()
             << " bits, reference has " << want.streams[s].size();
    }
    std::size_t first_diff = 0;
    for (; first_diff < want.streams[s].size(); ++first_diff) {
      if (want.streams[s].get(first_diff) != got.streams[s].get(first_diff))
        break;
    }
    return ::testing::AssertionFailure()
           << candidate.name() << ": stream of node " << s << " ('"
           << program.node(s).name << "') diverges at bit " << first_diff
           << " of " << want.streams[s].size();
  }
  if (want.values.size() != got.values.size()) {
    return ::testing::AssertionFailure()
           << candidate.name() << ": output count mismatch";
  }
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    if (want.values[i] != got.values[i]) {
      return ::testing::AssertionFailure()
             << candidate.name() << ": output " << i << " = " << got.values[i]
             << ", reference " << want.values[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// One conformance case: `candidate` must reproduce the reference
/// backend's streams and values bit-for-bit on (program, plan, config).
inline ::testing::AssertionResult conforms(
    graph::ExecutorBackend& candidate, const graph::Program& program,
    const graph::ProgramPlan& plan, const graph::ExecConfig& config) {
  const auto reference = graph::make_backend(graph::BackendKind::kReference);
  return conforms(candidate, program, plan, config,
                  reference->run(program, plan, config));
}

}  // namespace sc::fault::fixtures
