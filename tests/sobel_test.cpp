/// Tests for the SC Sobel detector: float reference semantics, SC accuracy
/// with manipulation, and the no-manipulation failure mode (the desync
/// saturating adder's application-level payoff).

#include <gtest/gtest.h>

#include "img/image.hpp"
#include "img/sobel.hpp"

namespace sc::img {
namespace {

TEST(SobelReference, ZeroOnConstantImage) {
  const Image flat(8, 8, 0.6);
  EXPECT_LT(max_abs_error(sobel_reference(flat), Image(8, 8, 0.0)), 1e-12);
}

TEST(SobelReference, RespondsToVerticalEdge) {
  Image step(8, 8, 0.1);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 4; x < 8; ++x) step.at(x, y) = 0.9;
  const Image edges = sobel_reference(step);
  // At the edge column the horizontal gradient is |0.9 - 0.1| = 0.8.
  EXPECT_NEAR(edges.at(4, 4), 0.8, 1e-12);
  EXPECT_NEAR(edges.at(1, 4), 0.0, 1e-12);
}

TEST(SobelReference, SaturatesOnSharpCorners) {
  Image corner(8, 8, 0.0);
  for (std::size_t y = 4; y < 8; ++y)
    for (std::size_t x = 4; x < 8; ++x) corner.at(x, y) = 1.0;
  const Image edges = sobel_reference(corner);
  double peak = 0.0;
  for (double p : edges.pixels()) peak = std::max(peak, p);
  EXPECT_DOUBLE_EQ(peak, 1.0);  // |gx| + |gy| clamps at 1
}

TEST(ScSobel, TracksReferenceWithManipulation) {
  const Image scene = Image::synthetic_scene(16, 16, 9);
  SobelConfig config;
  const SobelResult result = run_sc_sobel(scene, config);
  // The |difference|-of-sampled-streams noise floor sits near 0.05 (the
  // same floor as the paper's Roberts ED); manipulation gets us there.
  EXPECT_LT(result.error, 0.06);
}

TEST(ScSobel, NoManipulationIsMuchWorse) {
  const Image scene = Image::synthetic_scene(16, 16, 9);
  SobelConfig with;
  SobelConfig without;
  without.manipulate = false;
  const SobelResult good = run_sc_sobel(scene, with);
  const SobelResult bad = run_sc_sobel(scene, without);
  EXPECT_GT(bad.error, 2.0 * good.error);
}

TEST(ScSobel, OutputDimensionsAndDeterminism) {
  const Image scene = Image::synthetic_scene(9, 7, 4);
  const SobelResult a = run_sc_sobel(scene, SobelConfig{});
  const SobelResult b = run_sc_sobel(scene, SobelConfig{});
  EXPECT_EQ(a.output.width(), 9u);
  EXPECT_EQ(a.output.height(), 7u);
  EXPECT_DOUBLE_EQ(mean_abs_error(a.output, b.output), 0.0);
}

TEST(ScSobel, ManipulatorNetlistAccounted) {
  const Image scene = Image::synthetic_scene(6, 6, 4);
  const SobelResult with = run_sc_sobel(scene, SobelConfig{});
  EXPECT_GT(with.manipulators.total_cells(), 0u);
  SobelConfig off;
  off.manipulate = false;
  const SobelResult without = run_sc_sobel(scene, off);
  EXPECT_EQ(without.manipulators.total_cells(), 0u);
}

TEST(ScSobel, DeeperDesyncImprovesSaturatingSum) {
  // A high-contrast scene saturates many magnitudes; deeper desync depth
  // unpack more coincident 1s and should not hurt.
  const Image scene = Image::checkerboard(12, 12, 3);
  SobelConfig shallow;
  shallow.desync_depth = 1;
  SobelConfig deep;
  deep.desync_depth = 8;
  const double err_shallow = run_sc_sobel(scene, shallow).error;
  const double err_deep = run_sc_sobel(scene, deep).error;
  EXPECT_LE(err_deep, err_shallow + 0.01);
}

}  // namespace
}  // namespace sc::img
