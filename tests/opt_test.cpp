/// Tests for the program-optimizer subsystem (src/opt/): the pass
/// pipeline's cost/safety gate, the five shipped passes, the chain-style
/// decorrelator regression (k-1 circuits for a k-way same-source fan-out,
/// with the pairwise k(k-1)/2 as the documented upper bound), statistical
/// equivalence of optimized programs across all three backends, and exact
/// bit-identity for the dedup-only pipeline.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "graph_fixtures.hpp"
#include "hw/cost.hpp"
#include "opt/optimize.hpp"

namespace sc::opt {
namespace {

using graph::BackendKind;
using graph::ExecConfig;
using graph::ExecutionResult;
using graph::FixKind;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PairFix;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;
using graph::Value;
using graph::make_backend;
using graph::plan_program;
using graph::fixtures::fanout16_program;
using graph::fixtures::random_program;

std::size_t count_active_fixes(const ProgramPlan& plan, FixKind kind) {
  std::size_t count = 0;
  for (const PairFix& fix : plan.fixes) {
    if (fix.fix == kind && fix.shared_with < 0) ++count;
  }
  return count;
}

// --- satellite: chain regression -------------------------------------------

TEST(ChainDecorrelators, SixteenWayFanOutGetsFifteenNotOneHundredTwenty) {
  const Program p = fanout16_program();
  const ProgramPlan pairwise = plan_program(p, Strategy::kManipulation);
  // The planner's conservative pairwise insertion is the documented upper
  // bound: one decorrelator per copy pair, k(k-1)/2 = 120.
  EXPECT_EQ(pairwise.inserted_units, 120u);

  const OptResult optimized = optimize(p, pairwise);
  // The paper's chain: k-1 = 15 circuits decorrelate all 16 copies.
  EXPECT_EQ(optimized.plan.inserted_units, 15u);
  EXPECT_EQ(count_active_fixes(optimized.plan, FixKind::kDecorrelatorChain),
            15u);
  EXPECT_EQ(count_active_fixes(optimized.plan, FixKind::kDecorrelator), 0u);
  EXPECT_EQ(optimized.corrections_saved(), 105u);
  EXPECT_LT(optimized.area_after_um2, optimized.area_before_um2);
  // The cost delta prices the saved cells: strictly negative across the
  // board for a 105-circuit reduction.
  EXPECT_LT(optimized.cost_delta.area_um2, 0.0);
  EXPECT_LT(optimized.cost_delta.power_uw, 0.0);
  EXPECT_LT(optimized.cost_delta.energy_pj, 0.0);
  EXPECT_TRUE(plan_covers(optimized.plan));
  // The program itself is untouched (plan-only rewrite).
  EXPECT_EQ(optimized.program.node_count(), p.node_count());
}

TEST(ChainDecorrelators, ChainedProgramStaysAccurateOnEveryBackend) {
  const Program p = fanout16_program(0.9);  // exact 0.9^16 ~ 0.185
  const ProgramPlan pairwise = plan_program(p, Strategy::kManipulation);
  const ProgramPlan broken = plan_program(p, Strategy::kNone);
  const OptResult optimized = optimize(p, pairwise);

  ExecConfig config;
  config.stream_length = 4096;
  ExecutionResult first;
  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const auto backend = make_backend(kind);
    const ExecutionResult chained =
        backend->run(optimized.program, optimized.plan, config);
    const double unfixed = backend->run(p, broken, config).mean_abs_error;
    // AND of 16 identical copies computes x (= 0.9), exact is ~0.185.
    EXPECT_GT(unfixed, 0.5) << backend->name();
    EXPECT_LT(chained.mean_abs_error, 0.1) << backend->name();
    EXPECT_LT(chained.mean_abs_error, unfixed * 0.3) << backend->name();
    // All backends agree bit-for-bit on the optimized plan.
    if (first.values.empty()) {
      first = chained;
    } else {
      ASSERT_EQ(chained.streams.size(), first.streams.size());
      for (std::size_t s = 0; s < first.streams.size(); ++s) {
        EXPECT_EQ(chained.streams[s], first.streams[s])
            << backend->name() << " stream " << s;
      }
    }
  }
}

// --- individual passes -----------------------------------------------------

TEST(Passes, CseMergesDuplicateRngFreeOps) {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 1);
  const Value m1 = b.op("multiply", {x, y});
  const Value m2 = b.op("multiply", {x, y});
  b.output(b.op("toggle-add", {m1, m2}), "out");
  const Program p = b.build();

  const OptResult o = optimize(p, plan_program(p, Strategy::kManipulation));
  EXPECT_EQ(o.nodes_removed(), 1u);
  EXPECT_EQ(o.program.node_count(), p.node_count() - 1);
  // The duplicate maps onto the survivor, not kInvalidNode: its stream
  // still exists (it IS the survivor's).
  EXPECT_EQ(o.node_map[m2.id], o.node_map[m1.id]);
  EXPECT_LT(o.area_after_um2, o.area_before_um2);
}

TEST(Passes, CseNeverMergesOpsWhosePlannedFixesDrawRng) {
  // Two multiply(x, y) duplicates whose operands share one RNG group:
  // each gets its own decorrelator fix, seeded by its own seed_tag, so
  // the two output streams differ bit-wise — merging them would silently
  // change the second consumer's stream and break the dedup-only
  // pipeline's bit-identity guarantee.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 0);  // same group: decorrelators planned
  const Value m1 = b.op("multiply", {x, y});
  const Value m2 = b.op("multiply", {x, y});
  b.output(b.op("toggle-add", {m1, m2}), "out");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(plan.inserted_units, 2u);  // one decorrelator per duplicate

  const OptResult o = optimize(p, plan, OptConfig::bit_identical());
  EXPECT_EQ(o.program.node_count(), p.node_count());
  EXPECT_EQ(o.nodes_removed(), 0u);

  // And the bit-identity property holds end to end.
  ExecConfig config;
  const auto backend = make_backend(BackendKind::kKernel);
  const ExecutionResult plain = backend->run(p, plan, config);
  const ExecutionResult opt = backend->run(o.program, o.plan, config);
  for (NodeId id = 0; id < p.node_count(); ++id) {
    ASSERT_NE(o.node_map[id], graph::kInvalidNode);
    EXPECT_EQ(plain.streams[id], opt.streams[o.node_map[id]])
        << "node " << id;
  }
  // Sanity: the duplicates really do carry distinct streams (the reason
  // the merge must not happen).
  EXPECT_NE(plain.streams[m1.id], plain.streams[m2.id]);
}

TEST(Passes, CseStaysBitIdenticalWhenAMergeSatisfiesAPositivePair) {
  // Regression: a custom operator mixing a kPositive pair with a
  // kUncorrelated pair.  CSE-merging the duplicates feeding the positive
  // pair makes it provably satisfied (a == b), so the replan drops its
  // synchronizer — and with positional fix lanes the surviving
  // decorrelator would shift from lane 1 to lane 0 and reseed.  Fix
  // seeds are keyed by the operand slot pair precisely so this rewrite
  // stays bit-identical.
  graph::OperatorRegistry reg = graph::OperatorRegistry::with_builtins();
  {
    graph::OperatorDef def;
    def.name = "mixed-3";
    def.arity = 3;
    def.pair_requirement = [](unsigned i, unsigned j) {
      if (i == 0 && j == 1) return graph::Requirement::kPositive;
      if (i == 0 && j == 2) return graph::Requirement::kUncorrelated;
      return graph::Requirement::kAgnostic;
    };
    def.exact = [](sc::span<const double> v) {
      return (v[0] + v[1] + v[2]) / 3.0;
    };
    class MajorityEvaluator final : public graph::OpEvaluator {
     public:
      bool step(const bool* in) override {
        return (in[0] ? 1 : 0) + (in[1] ? 1 : 0) + (in[2] ? 1 : 0) >= 2;
      }
    };
    def.make_evaluator = [](const graph::OpContext&) {
      return std::make_unique<MajorityEvaluator>();
    };
    def.netlist = [](unsigned) {
      return hw::Netlist("mixed-3").add(hw::Cell::kAnd2, 2).add(hw::Cell::kOr2,
                                                                2);
    };
    reg.add(std::move(def));
  }

  GraphBuilder b(reg);
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 1);
  const Value z = b.input("z", 0.5, 0);  // shares x's group -> decorrelator
  const Value m1 = b.op("multiply", {x, y});
  const Value m2 = b.op("multiply", {x, y});  // CSE duplicate (RNG-free)
  b.output(b.op("mixed-3", {m1, m2, z}), "out");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

  const OptResult o = optimize(p, plan, OptConfig::bit_identical());
  EXPECT_EQ(o.nodes_removed(), 1u);  // the duplicate merged

  ExecConfig config;
  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const auto backend = make_backend(kind);
    const ExecutionResult plain = backend->run(p, plan, config);
    const ExecutionResult opt = backend->run(o.program, o.plan, config);
    for (NodeId id = 0; id < p.node_count(); ++id) {
      const NodeId mapped = o.node_map[id];
      if (mapped == graph::kInvalidNode) continue;
      EXPECT_EQ(plain.streams[id], opt.streams[mapped])
          << backend->name() << " node " << id;
    }
  }
}

TEST(Passes, CseNeverMergesOpsWithPrivateRngSlots) {
  // Two scaled-adds over the same operands draw distinct select sequences
  // (seeds keyed by seed_tag), so their streams differ and the CSE key —
  // which includes the RNG-slot seeds — must keep them apart.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 1);
  const Value a1 = b.op("scaled-add", {x, y});
  const Value a2 = b.op("scaled-add", {x, y});
  b.output(b.op("toggle-add", {a1, a2}), "out");
  const Program p = b.build();

  const OptResult o = optimize(p, plan_program(p, Strategy::kManipulation));
  EXPECT_EQ(o.program.node_count(), p.node_count());
  EXPECT_EQ(o.nodes_removed(), 0u);
}

TEST(Passes, ConstantFoldingReplacesConstantSubtreesAndDropsOrphans) {
  GraphBuilder b;
  const Value x = b.input("x", 0.8, 0);
  const Value c1 = b.constant(0.5);
  const Value c2 = b.constant(0.6);
  const Value prod = b.op("multiply", {c1, c2});  // foldable: 0.3
  b.output(b.op("multiply", {x, prod}), "out");
  const Program p = b.build();
  const double exact_before = p.exact_value(p.outputs()[0]);

  const OptResult o = optimize(p, plan_program(p, Strategy::kManipulation));
  // multiply(c1,c2) became a constant; c1 and c2 are orphaned and dropped.
  EXPECT_EQ(o.nodes_removed(), 2u);
  EXPECT_EQ(o.program.node_count(), 3u);  // x, folded const, the multiply
  EXPECT_LT(o.area_after_um2, o.area_before_um2);
  EXPECT_DOUBLE_EQ(o.program.exact_value(o.program.outputs()[0]),
                   exact_before);
  const NodeId folded = o.node_map[prod.id];
  ASSERT_NE(folded, graph::kInvalidNode);
  EXPECT_EQ(o.program.node(folded).kind,
            graph::ProgramNode::Kind::kConstant);
  EXPECT_DOUBLE_EQ(o.program.node(folded).value, 0.3);
}

TEST(Passes, DeadValueEliminationDropsUnreachableNodes) {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 1);
  const Value dead_in = b.input("unused", 0.5, 2);
  const Value dead_op = b.op("multiply", {dead_in, y});
  (void)dead_op;
  b.output(b.op("min", {x, y}), "out");
  const Program p = b.build();

  const OptResult o = optimize(p, plan_program(p, Strategy::kManipulation));
  EXPECT_EQ(o.nodes_removed(), 2u);
  EXPECT_EQ(o.node_map[dead_in.id], graph::kInvalidNode);
  EXPECT_EQ(o.node_map[dead_op.id], graph::kInvalidNode);
  EXPECT_LT(o.area_after_um2, o.area_before_um2);
}

TEST(Passes, CorrectionSharingChargesSiblingSynchronizersOnce) {
  // Two sibling ops read the same (xy, z) pair and each needs SCC = +1:
  // the planner inserts two identical synchronizers; the optimizer fans
  // one circuit out to both consumers.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.9, 1);
  const Value z = b.input("z", 0.4, 2);
  const Value xy = b.op("multiply", {x, y});
  b.output(b.op("subtract", {xy, z}), "diff");
  b.output(b.op("min", {xy, z}), "floor");
  const Program p = b.build();

  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  EXPECT_EQ(plan.inserted_units, 2u);
  const OptResult o = optimize(p, plan);
  EXPECT_EQ(o.plan.inserted_units, 1u);
  EXPECT_EQ(o.corrections_saved(), 1u);
  EXPECT_LT(o.area_after_um2, o.area_before_um2);

  std::size_t shared = 0;
  for (const PairFix& fix : o.plan.fixes) {
    if (fix.shared_with >= 0) {
      ++shared;
      EXPECT_EQ(o.plan.fixes[fix.shared_with].fix, fix.fix);
    }
  }
  EXPECT_EQ(shared, 1u);

  // Sharing is an accounting rewrite: execution is bit-identical to the
  // unshared plan (the mirrored FSM is deterministic on the same inputs).
  ExecConfig config;
  const auto backend = make_backend(BackendKind::kKernel);
  const ExecutionResult unshared = backend->run(p, plan, config);
  const ExecutionResult with_sharing = backend->run(o.program, o.plan, config);
  ASSERT_EQ(unshared.streams.size(), with_sharing.streams.size());
  for (std::size_t s = 0; s < unshared.streams.size(); ++s) {
    EXPECT_EQ(unshared.streams[s], with_sharing.streams[s]) << "stream " << s;
  }
}

TEST(PassManager, CostGateRejectsAreaRaisingRewrites) {
  // multiply(c1, c2) where c1 and c2 are themselves outputs: folding would
  // add a fresh SNG (comparator + LFSR) while removing only an AND gate —
  // the gate must reject it and hand back the untouched program.
  GraphBuilder b;
  const Value c1 = b.constant(0.5, "c1");
  const Value c2 = b.constant(0.6, "c2");
  b.output(b.op("multiply", {c1, c2}), "prod");
  b.output(c1, "c1-out").output(c2, "c2-out");
  const Program p = b.build();

  const OptResult o = optimize(p, plan_program(p, Strategy::kManipulation));
  EXPECT_EQ(o.program.node_count(), p.node_count());
  EXPECT_EQ(o.nodes_removed(), 0u);
  EXPECT_DOUBLE_EQ(o.area_after_um2, o.area_before_um2);
  bool fold_rejected = false;
  for (const PassReport& report : o.reports) {
    if (report.pass == "constant-fold") {
      fold_rejected = report.changed && !report.accepted;
    }
  }
  EXPECT_TRUE(fold_rejected);
}

// --- satellite: optimized == unoptimized, statistically and bit-exactly ----

TEST(OptEquivalence, DedupOnlyPipelineIsBitIdenticalOnRandomPrograms) {
  // CSE + DVE + correction sharing never reseed: every surviving node's
  // stream must match the unoptimized run bit for bit, on every backend.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 gen(5000 + seed);
    const Program p = random_program(gen);
    for (const Strategy strategy :
         {Strategy::kNone, Strategy::kManipulation, Strategy::kRegeneration}) {
      const ProgramPlan plan = plan_program(p, strategy);
      const OptResult o = optimize(p, plan, OptConfig::bit_identical());
      ExecConfig config;
      config.stream_length = 300;
      config.seed = static_cast<std::uint32_t>(11 + seed);
      for (const BackendKind kind : {BackendKind::kReference,
                                     BackendKind::kKernel,
                                     BackendKind::kEngine}) {
        const auto backend = make_backend(kind);
        const ExecutionResult plain = backend->run(p, plan, config);
        const ExecutionResult opt =
            backend->run(o.program, o.plan, config);
        const std::string label = backend->name() + " seed " +
                                  std::to_string(seed) + " " +
                                  graph::to_string(strategy);
        for (NodeId id = 0; id < p.node_count(); ++id) {
          const NodeId mapped = o.node_map[id];
          if (mapped == graph::kInvalidNode) continue;
          EXPECT_EQ(plain.streams[id], opt.streams[mapped])
              << label << " node " << id;
        }
        ASSERT_EQ(plain.values.size(), opt.values.size()) << label;
        for (std::size_t i = 0; i < plain.values.size(); ++i) {
          EXPECT_DOUBLE_EQ(plain.values[i], opt.values[i]) << label;
        }
      }
    }
  }
}

TEST(OptEquivalence, FullPipelineIsStatisticallyEquivalentOnRandomPrograms) {
  // The full pipeline may reseed (fold, chain), so optimized streams can
  // differ — but exact semantics are preserved, all three backends stay
  // bit-identical to each other, and accuracy does not degrade beyond
  // sampling noise.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 gen(9000 + seed);
    const Program p = random_program(gen);
    const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

    ExecConfig config;
    config.stream_length = 2048;
    ExecConfig optimizing = config;
    optimizing.optimize = true;

    const auto reference = make_backend(BackendKind::kReference);
    const ExecutionResult plain = reference->run(p, plan, config);
    const ExecutionResult opt = reference->run(p, plan, optimizing);
    const std::string label = "seed " + std::to_string(seed);

    ASSERT_EQ(opt.values.size(), plain.values.size()) << label;
    for (std::size_t i = 0; i < plain.exact.size(); ++i) {
      EXPECT_DOUBLE_EQ(opt.exact[i], plain.exact[i]) << label;
      // Both runs are stochastic estimates of the same exact value; the
      // optimized one must not be meaningfully worse.
      EXPECT_LT(opt.abs_errors[i], plain.abs_errors[i] + 0.1) << label;
    }
    EXPECT_LT(opt.mean_abs_error, plain.mean_abs_error + 0.05) << label;

    // ExecConfig::optimize front: every backend optimizes identically.
    for (const BackendKind kind :
         {BackendKind::kKernel, BackendKind::kEngine}) {
      const ExecutionResult other = make_backend(kind)->run(p, plan,
                                                            optimizing);
      ASSERT_EQ(other.values.size(), opt.values.size()) << label;
      for (std::size_t i = 0; i < opt.values.size(); ++i) {
        EXPECT_DOUBLE_EQ(other.values[i], opt.values[i])
            << label << " backend " << static_cast<int>(kind);
      }
      ASSERT_EQ(other.streams.size(), opt.streams.size()) << label;
      for (std::size_t s = 0; s < opt.streams.size(); ++s) {
        EXPECT_EQ(other.streams[s], opt.streams[s])
            << label << " stream " << s;
      }
    }
  }
}

TEST(OptEquivalence, ExecConfigOptimizeMapsStreamsBackToCallerIds) {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.4, 1);
  const Value m1 = b.op("multiply", {x, y});
  const Value m2 = b.op("multiply", {x, y});          // CSE-merged
  const Value dead = b.input("dead", 0.5, 2);         // DVE-removed
  b.output(b.op("toggle-add", {m1, m2}), "out");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

  ExecConfig optimizing;
  optimizing.optimize = true;
  const ExecutionResult r =
      make_backend(BackendKind::kKernel)->run(p, plan, optimizing);
  // Streams come back on the caller's ids: the duplicate aliases the
  // survivor, the dead input is empty, outputs keep their original ids.
  ASSERT_EQ(r.streams.size(), p.node_count());
  EXPECT_EQ(r.streams[m1.id], r.streams[m2.id]);
  EXPECT_FALSE(r.streams[m1.id].size() == 0);
  EXPECT_EQ(r.streams[dead.id].size(), 0u);
  ASSERT_EQ(r.output_nodes.size(), 1u);
  EXPECT_EQ(r.output_nodes[0], p.outputs()[0]);

  const ExecutionResult plain =
      make_backend(BackendKind::kKernel)->run(p, plan, {});
  EXPECT_DOUBLE_EQ(r.values[0], plain.values[0]);
}

}  // namespace
}  // namespace sc::opt
