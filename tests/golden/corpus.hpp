/// \file corpus.hpp
/// Committed golden checksums for tests/golden_test.cpp (see README.md
/// alongside this file).  Regenerate with SC_GOLDEN_PRINT=1 ./golden_test
/// ONLY for intentional bit-level changes, and commit the diff with them.

#pragma once

#include <cstdint>

namespace sc::golden {

struct GoldenEntry {
  const char* program;
  const char* backend;
  std::uint64_t checksum;
};

inline constexpr GoldenEntry kGoldenCorpus[] = {
    {"multiply-decor", "reference", 0xB92A1FA276C61A2FULL},
    {"multiply-decor", "kernel", 0xB92A1FA276C61A2FULL},
    {"multiply-decor", "engine", 0xB92A1FA276C61A2FULL},
    {"multiply-decor", "engine-chunked", 0xB92A1FA276C61A2FULL},
    {"max-resync", "reference", 0x8361C4FFACF81366ULL},
    {"max-resync", "kernel", 0x8361C4FFACF81366ULL},
    {"max-resync", "engine", 0x8361C4FFACF81366ULL},
    {"max-resync", "engine-chunked", 0x8361C4FFACF81366ULL},
    {"satadd-desync", "reference", 0x1B9DF166219034C7ULL},
    {"satadd-desync", "kernel", 0x1B9DF166219034C7ULL},
    {"satadd-desync", "engine", 0x1B9DF166219034C7ULL},
    {"satadd-desync", "engine-chunked", 0x1B9DF166219034C7ULL},
    {"bernstein-fan", "reference", 0x7FBF18D2819F2522ULL},
    {"bernstein-fan", "kernel", 0x7FBF18D2819F2522ULL},
    {"bernstein-fan", "engine", 0x7FBF18D2819F2522ULL},
    {"bernstein-fan", "engine-chunked", 0x7FBF18D2819F2522ULL},
    {"divide-sync", "reference", 0x5351598998261CFEULL},
    {"divide-sync", "kernel", 0x5351598998261CFEULL},
    {"divide-sync", "engine", 0x5351598998261CFEULL},
    {"divide-sync", "engine-chunked", 0x5351598998261CFEULL},
    {"regen-shared", "reference", 0xFA84AAC6EE1962F7ULL},
    {"regen-shared", "kernel", 0xFA84AAC6EE1962F7ULL},
    {"regen-shared", "engine", 0xFA84AAC6EE1962F7ULL},
    {"regen-shared", "engine-chunked", 0xFA84AAC6EE1962F7ULL},
    {"faulted-mixed", "reference", 0x8B16076BFAAFD26CULL},
    {"faulted-mixed", "kernel", 0x8B16076BFAAFD26CULL},
    {"faulted-mixed", "engine", 0x8B16076BFAAFD26CULL},
    {"faulted-mixed", "engine-chunked", 0x8B16076BFAAFD26CULL},
    {"optimized-chain", "reference", 0x66CC33AE53FD4AC0ULL},
    {"optimized-chain", "kernel", 0x66CC33AE53FD4AC0ULL},
    {"optimized-chain", "engine", 0x66CC33AE53FD4AC0ULL},
    {"optimized-chain", "engine-chunked", 0x66CC33AE53FD4AC0ULL},
    {"precision-stanh", "reference", 0x288E76DE0EA7689AULL},
    {"precision-stanh", "kernel", 0x288E76DE0EA7689AULL},
    {"precision-stanh", "engine", 0x288E76DE0EA7689AULL},
    {"precision-stanh", "engine-chunked", 0x288E76DE0EA7689AULL},
    {"saturation-or", "reference", 0x408F48D25CEBCBF4ULL},
    {"saturation-or", "kernel", 0x408F48D25CEBCBF4ULL},
    {"saturation-or", "engine", 0x408F48D25CEBCBF4ULL},
    {"saturation-or", "engine-chunked", 0x408F48D25CEBCBF4ULL},
    {"corrbias-xor", "reference", 0xE6D898ED9D56AAA1ULL},
    {"corrbias-xor", "kernel", 0xE6D898ED9D56AAA1ULL},
    {"corrbias-xor", "engine", 0xE6D898ED9D56AAA1ULL},
    {"corrbias-xor", "engine-chunked", 0xE6D898ED9D56AAA1ULL},
    {"shortstream-mul", "reference", 0x53A5DF2CE59CF7FFULL},
    {"shortstream-mul", "kernel", 0x53A5DF2CE59CF7FFULL},
    {"shortstream-mul", "engine", 0x53A5DF2CE59CF7FFULL},
    {"shortstream-mul", "engine-chunked", 0x53A5DF2CE59CF7FFULL},
    {"chain-unrec", "reference", 0xC33DBF229545C306ULL},
    {"chain-unrec", "kernel", 0xC33DBF229545C306ULL},
    {"chain-unrec", "engine", 0xC33DBF229545C306ULL},
    {"chain-unrec", "engine-chunked", 0xC33DBF229545C306ULL},
};

}  // namespace sc::golden
