/// Unit tests for the packed bitstream container: construction, encoding
/// values, word-parallel gates, and the paper's literal examples (Fig. 1,
/// §I/§II-A streams).

#include <gtest/gtest.h>

#include <string>

#include "bitstream/bitstream.hpp"
#include "bitstream/encoding.hpp"

namespace sc {
namespace {

TEST(Bitstream, DefaultIsEmpty) {
  Bitstream s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count_ones(), 0u);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Bitstream, SizedConstructionZeroFill) {
  Bitstream s(100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.count_ones(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(s.get(i));
}

TEST(Bitstream, SizedConstructionOneFill) {
  Bitstream s(100, true);
  EXPECT_EQ(s.count_ones(), 100u);
  EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(Bitstream, OneFillClearsTailBits) {
  // 100 = 64 + 36: the second word's top 28 bits must stay clear so
  // count_ones and word-parallel ops are exact.
  Bitstream s(100, true);
  EXPECT_EQ(s.words().back() >> 36, 0u);
}

TEST(Bitstream, SetAndGetRoundTrip) {
  Bitstream s(130);
  s.set(0, true);
  s.set(64, true);
  s.set(129, true);
  EXPECT_TRUE(s.get(0));
  EXPECT_TRUE(s.get(64));
  EXPECT_TRUE(s.get(129));
  EXPECT_FALSE(s.get(1));
  EXPECT_EQ(s.count_ones(), 3u);
  s.set(64, false);
  EXPECT_FALSE(s.get(64));
  EXPECT_EQ(s.count_ones(), 2u);
}

TEST(Bitstream, PushBackGrowsAcrossWordBoundary) {
  Bitstream s;
  for (int i = 0; i < 70; ++i) s.push_back(i % 2 == 0);
  EXPECT_EQ(s.size(), 70u);
  EXPECT_EQ(s.count_ones(), 35u);
  EXPECT_TRUE(s.get(0));
  EXPECT_FALSE(s.get(69));
  EXPECT_TRUE(s.get(68));
}

TEST(Bitstream, FromStringMatchesPaperIntroExample) {
  // Paper §I: X = 01000100 encodes 0.25.
  const Bitstream x = Bitstream::from_string("01000100");
  EXPECT_EQ(x.size(), 8u);
  EXPECT_DOUBLE_EQ(x.value(), 0.25);
}

TEST(Bitstream, FromStringStopsAtInvalidCharacter) {
  const Bitstream x = Bitstream::from_string("0101 junk");
  EXPECT_EQ(x.size(), 4u);
}

TEST(Bitstream, FromBitsList) {
  const Bitstream x = Bitstream::from_bits({1, 0, 1, 1});
  EXPECT_EQ(x.to_string(), "1011");
}

TEST(Bitstream, ToStringRoundTrip) {
  const std::string pattern = "0110100110010110";
  EXPECT_EQ(Bitstream::from_string(pattern).to_string(), pattern);
}

TEST(Bitstream, UnipolarValueCountsOnes) {
  // Paper §II-A: X = 01100001 has value 3/8.
  EXPECT_DOUBLE_EQ(Bitstream::from_string("01100001").value(), 3.0 / 8.0);
}

TEST(Bitstream, BipolarValueMapsToSignedRange) {
  // Paper §II-A: X = 01100001 has bipolar value -1/4.
  EXPECT_DOUBLE_EQ(Bitstream::from_string("01100001").bipolar_value(), -0.25);
  EXPECT_DOUBLE_EQ(Bitstream(8, true).bipolar_value(), 1.0);
  EXPECT_DOUBLE_EQ(Bitstream(8, false).bipolar_value(), -1.0);
}

TEST(Bitstream, AndImplementsPaperMultiplyExample) {
  // Paper Fig. 1a: X = 01010101 (0.5), Y = 00111111 (0.75) -> 00010101.
  const Bitstream x = Bitstream::from_string("01010101");
  const Bitstream y = Bitstream::from_string("00111111");
  const Bitstream z = x & y;
  EXPECT_EQ(z.to_string(), "00010101");
  EXPECT_DOUBLE_EQ(z.value(), 0.375);
}

TEST(Bitstream, MuxImplementsPaperScaledAddExample) {
  // Paper Fig. 1b: X = 01110111 (0.75), Y = 11000000 (0.25),
  // R = 10100110 (0.5) -> Z = 11010001 (0.5); mux emits Y when R = 1.
  const Bitstream x = Bitstream::from_string("01110111");
  const Bitstream y = Bitstream::from_string("11000000");
  const Bitstream r = Bitstream::from_string("10100110");
  const Bitstream z = Bitstream::mux(x, y, r);
  EXPECT_EQ(z.to_string(), "11010001");
  EXPECT_DOUBLE_EQ(z.value(), 0.5);
}

TEST(Bitstream, OrOfDisjointStreamsAddsValues) {
  const Bitstream x = Bitstream::from_string("10100000");
  const Bitstream y = Bitstream::from_string("01010000");
  EXPECT_DOUBLE_EQ((x | y).value(), 0.5);
}

TEST(Bitstream, XorComputesDifferenceOnNestedStreams) {
  const Bitstream big = Bitstream::from_string("11110000");
  const Bitstream small = Bitstream::from_string("11000000");
  EXPECT_DOUBLE_EQ((big ^ small).value(), 0.25);
}

TEST(Bitstream, NotComplementsValue) {
  const Bitstream x = Bitstream::from_string("11100000");
  const Bitstream nx = ~x;
  EXPECT_DOUBLE_EQ(nx.value(), 1.0 - x.value());
  EXPECT_EQ((~nx), x);
}

TEST(Bitstream, NotKeepsTailClearOnPartialWord) {
  Bitstream x(70);
  const Bitstream nx = ~x;
  EXPECT_EQ(nx.count_ones(), 70u);  // not 128
  EXPECT_DOUBLE_EQ(nx.value(), 1.0);
}

TEST(Bitstream, CompoundAssignmentOperators) {
  Bitstream a = Bitstream::from_string("1100");
  const Bitstream b = Bitstream::from_string("1010");
  a &= b;
  EXPECT_EQ(a.to_string(), "1000");
  a |= b;
  EXPECT_EQ(a.to_string(), "1010");
  a ^= b;
  EXPECT_EQ(a.to_string(), "0000");
}

TEST(Bitstream, EqualityComparesContentAndLength) {
  EXPECT_EQ(Bitstream::from_string("101"), Bitstream::from_string("101"));
  EXPECT_NE(Bitstream::from_string("101"), Bitstream::from_string("100"));
  EXPECT_NE(Bitstream::from_string("101"), Bitstream::from_string("1010"));
}

TEST(Bitstream, RotatedPreservesValue) {
  const Bitstream x = Bitstream::from_string("11010010");
  for (std::size_t k = 0; k <= 8; ++k) {
    EXPECT_EQ(x.rotated(k).count_ones(), x.count_ones()) << "k=" << k;
  }
  EXPECT_EQ(x.rotated(0), x);
  EXPECT_EQ(x.rotated(8), x);
  EXPECT_EQ(x.rotated(3).to_string(), "10010110");
}

TEST(Bitstream, DelayedShiftsBitsAndPads) {
  const Bitstream x = Bitstream::from_string("11010010");
  const Bitstream d = x.delayed(2);
  EXPECT_EQ(d.to_string(), "00110100");
  const Bitstream dp = x.delayed(2, true);
  EXPECT_EQ(dp.to_string(), "11110100");
}

TEST(Bitstream, DelayedBeyondLengthIsAllPad) {
  const Bitstream x = Bitstream::from_string("1111");
  EXPECT_EQ(x.delayed(10).count_ones(), 0u);
  EXPECT_EQ(x.delayed(10, true).count_ones(), 4u);
}

TEST(Bitstream, ClearEmptiesStream) {
  Bitstream x = Bitstream::from_string("1111");
  x.clear();
  EXPECT_TRUE(x.empty());
  x.push_back(true);
  EXPECT_EQ(x.size(), 1u);
  EXPECT_TRUE(x.get(0));
}

TEST(Encoding, UnipolarLevelRoundsToNearest) {
  EXPECT_EQ(unipolar_level(0.0, 256), 0u);
  EXPECT_EQ(unipolar_level(1.0, 256), 256u);
  EXPECT_EQ(unipolar_level(0.5, 256), 128u);
  EXPECT_EQ(unipolar_level(0.501, 256), 128u);
  EXPECT_EQ(unipolar_level(0.502, 256), 129u);
}

TEST(Encoding, UnipolarLevelClampsOutOfRange) {
  EXPECT_EQ(unipolar_level(-0.5, 256), 0u);
  EXPECT_EQ(unipolar_level(1.5, 256), 256u);
}

TEST(Encoding, BipolarLevelMapsSignedValues) {
  EXPECT_EQ(bipolar_level(-1.0, 256), 0u);
  EXPECT_EQ(bipolar_level(0.0, 256), 128u);
  EXPECT_EQ(bipolar_level(1.0, 256), 256u);
}

TEST(Encoding, ValueLevelRoundTrip) {
  for (std::uint32_t level = 0; level <= 256; ++level) {
    EXPECT_EQ(unipolar_level(unipolar_value(level, 256), 256), level);
  }
}

TEST(Encoding, QuantumIsLsbWeight) {
  EXPECT_DOUBLE_EQ(quantum(256), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(quantum(0), 0.0);
}

}  // namespace
}  // namespace sc
