/// Property campaign for the static analyzer: on random registry
/// programs, every SCC-class the correlation dataflow *claims* for a raw
/// operand pair must agree with the SCC measured over real 2^14-bit
/// executions (backends rotate reference / kernel / engine across the
/// campaign), and the analyzer must be differentially complete against
/// the planner — zero error-class false negatives: every violation the
/// planner records is either an analyzer error or a pair the analyzer
/// *proved* satisfied, and those proofs are themselves measured.
///
/// Reproducing a failure: every case logs its 64-bit case seed via
/// SCOPED_TRACE — rerun with SC_ANALYSIS_SEED=<base seed> (and
/// SC_ANALYSIS_CASES if the failing index was past the default budget)
/// to replay the identical campaign.  The default 220 cases are the
/// ISSUE's >= 200 acceptance bar.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>

#include "analysis/analyzer.hpp"
#include "bitstream/correlation.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph_fixtures.hpp"

namespace sc::analysis {
namespace {

using graph::ExecConfig;
using graph::NodeId;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 0);
}

/// Mean Pearson of a claimed-independent node pair over several base
/// seeds.  One seed is not enough: width-8 group traces are phase shifts
/// of one LFSR cycle, and an unlucky phase offset couples two genuinely
/// independent threshold streams up to |pearson| ~ 0.65.  The coupling's
/// sign and size are functions of the seed-derived phases, so it averages
/// out across seeds — while *structural* correlation the analyzer missed
/// (say, x against and(x, y), pearson ~ +0.6 at every seed) persists.
/// Seeds where the claim itself changes (a retry seed can mask-alias the
/// very generators whose disjointness is being tested) are skipped.
double mean_independent_pearson(const graph::Program& program,
                                const ProgramPlan& plan, ExecConfig exec,
                                NodeId a, NodeId b, graph::BackendKind kind) {
  double sum = 0.0;
  int samples = 0;
  for (int trial = 0; trial < 5; ++trial, exec.seed += 0x101u) {
    const AnalysisReport report =
        analyze(program, plan, AnalyzerConfig::from(exec));
    if (report.node_class(a, b) != SccClass::kIndependent) continue;
    const graph::ExecutionResult result =
        graph::make_backend(kind)->run(program, plan, exec);
    if (!sc::scc_defined(result.streams[a], result.streams[b])) continue;
    sum += sc::pearson(result.streams[a], result.streams[b]);
    ++samples;
  }
  return samples == 0 ? 0.0 : sum / samples;
}

/// Class-vs-measurement agreement: claims are one-sided (the analyzer
/// only speaks when it can prove), and each claim is checked with the
/// metric that is well-conditioned for it.  Correlated / anticorrelated
/// proofs are exact (threshold encodings of one trace give SCC = +/-1 by
/// construction), so SCC with a generous 0.5 margin.  Independence is
/// checked with Pearson: SCC normalizes by min(p1,p2) - p1*p2, which
/// collapses for skewed values — two provably independent streams whose
/// rarer 1-set happens to avoid the other's 0-set measure SCC = 1.0
/// exactly — while the Pearson denominator sqrt(p1q1 p2q2) stays bounded.
/// A single-seed Pearson can still exceed 0.5 from LFSR phase coupling,
/// so over-threshold independence claims escalate to the multi-seed mean.
void expect_class_matches(SccClass predicted, const graph::Program& program,
                          const ProgramPlan& plan, const ExecConfig& exec,
                          graph::BackendKind kind,
                          const graph::ExecutionResult& result, NodeId a,
                          NodeId b, const std::string& context) {
  switch (predicted) {
    case SccClass::kCorrelated:
      EXPECT_GT(sc::scc(result.streams[a], result.streams[b]), 0.5)
          << context;
      break;
    case SccClass::kIndependent:
      if (std::abs(sc::pearson(result.streams[a], result.streams[b])) >=
          0.5) {
        EXPECT_LT(
            std::abs(mean_independent_pearson(program, plan, exec, a, b,
                                              kind)),
            0.5)
            << context;
      }
      break;
    case SccClass::kAnticorrelated:
      EXPECT_LT(sc::scc(result.streams[a], result.streams[b]), -0.5)
          << context;
      break;
    case SccClass::kUnknown:
      break;  // no claim, nothing to check
  }
}

TEST(AnalysisProperty, PredictionsMatchMeasurementAndCoverPlanner) {
  const std::uint64_t base_seed = env_u64("SC_ANALYSIS_SEED", 0x5EEDull);
  const std::uint64_t cases = env_u64("SC_ANALYSIS_CASES", 220);
  const Strategy strategies[] = {Strategy::kManipulation,
                                 Strategy::kRegeneration, Strategy::kNone};
  const graph::BackendKind backends[] = {graph::BackendKind::kReference,
                                         graph::BackendKind::kKernel,
                                         graph::BackendKind::kEngine};

  std::size_t claims_checked = 0;
  std::size_t violations_seen = 0;
  for (std::uint64_t index = 0; index < cases; ++index) {
    const std::uint64_t case_seed = base_seed + index;
    SCOPED_TRACE("case " + std::to_string(index) + " seed " +
                 std::to_string(case_seed) + " (SC_ANALYSIS_SEED=" +
                 std::to_string(base_seed) + ")");
    std::mt19937_64 gen(case_seed);

    const Program program = graph::fixtures::random_program(gen, 3 + gen() % 5);
    const Strategy strategy = strategies[index % 3];
    const ProgramPlan plan = graph::plan_program(program, strategy);

    ExecConfig exec;
    exec.stream_length = std::size_t{1} << 14;
    exec.width = 8;
    exec.seed = static_cast<std::uint32_t>(gen());
    const AnalysisReport report =
        analyze(program, plan, AnalyzerConfig::from(exec));

    // --- planner differential: zero error-class false negatives --------
    // Every node the planner recorded as violated must surface as an
    // analyzer requirement-violation error, unless the analyzer proved
    // every examined pair of that node satisfied (its proofs are then
    // held to the measurement below like any other claim).
    std::set<NodeId> error_nodes;
    for (const Diagnostic& diagnostic : report.diagnostics) {
      if (diagnostic.id == "requirement-violation") {
        error_nodes.insert(diagnostic.node);
      }
    }
    for (const NodeId violated : plan.violations) {
      ++violations_seen;
      if (error_nodes.count(violated) != 0) continue;
      bool all_proven = true;
      for (const PairPrediction& pair : report.pairs) {
        if (pair.op_node == violated) all_proven &= pair.satisfied;
      }
      EXPECT_TRUE(all_proven)
          << "planner violation at node " << violated
          << " neither reported nor proven satisfied";
    }

    // --- measured SCC vs predicted class -------------------------------
    const graph::ExecutionResult result =
        graph::make_backend(backends[index % 3])->run(program, plan, exec);
    for (const PairPrediction& pair : report.pairs) {
      const graph::ProgramNode& node = program.node(pair.op_node);
      const NodeId a = node.operands[pair.operand_a];
      const NodeId b = node.operands[pair.operand_b];
      if (pair.operands == SccClass::kUnknown) continue;
      if (!sc::scc_defined(result.streams[a], result.streams[b])) {
        continue;  // degenerate stream (all zeros/ones): SCC undefined
      }
      expect_class_matches(
          pair.operands, program, plan, exec, backends[index % 3], result, a,
          b,
          "pair (" + std::to_string(a) + ", " + std::to_string(b) +
              ") of op node " + std::to_string(pair.op_node) + " claimed " +
              to_string(pair.operands));
      ++claims_checked;
    }
  }
  // The campaign must actually exercise the machinery: the analyzer has
  // to commit to real claims, and the Strategy::kNone third has to
  // produce planner violations to check coverage against.
  EXPECT_GT(claims_checked, cases);
  EXPECT_GT(violations_seen, cases / 10);
}

/// node_class is the public query the sc_lint pair predictions are built
/// from; spot-check its claims over every node pair, not just the pairs
/// operators examine.
TEST(AnalysisProperty, NodeClassClaimsHoldOverAllNodePairs) {
  const std::uint64_t base_seed = env_u64("SC_ANALYSIS_SEED", 0x5EEDull);
  const std::uint64_t cases = env_u64("SC_ANALYSIS_NODE_CASES", 40);
  std::size_t claims_checked = 0;
  for (std::uint64_t index = 0; index < cases; ++index) {
    const std::uint64_t case_seed = base_seed + 0x9000 + index;
    SCOPED_TRACE("case " + std::to_string(index) + " seed " +
                 std::to_string(case_seed));
    std::mt19937_64 gen(case_seed);
    const Program program = graph::fixtures::random_program(gen, 2 + gen() % 4);
    const ProgramPlan plan =
        graph::plan_program(program, Strategy::kManipulation);
    ExecConfig exec;
    exec.stream_length = std::size_t{1} << 14;
    exec.seed = static_cast<std::uint32_t>(gen());
    const AnalysisReport report =
        analyze(program, plan, AnalyzerConfig::from(exec));
    const graph::ExecutionResult result =
        graph::make_backend(graph::BackendKind::kReference)
            ->run(program, plan, exec);
    for (NodeId a = 0; a < program.node_count(); ++a) {
      for (NodeId b = a + 1; b < program.node_count(); ++b) {
        const SccClass predicted = report.node_class(a, b);
        if (predicted == SccClass::kUnknown) continue;
        if (!sc::scc_defined(result.streams[a], result.streams[b])) {
          continue;
        }
        expect_class_matches(predicted, program, plan, exec,
                             graph::BackendKind::kReference, result, a, b,
                             "nodes (" + std::to_string(a) + ", " +
                                 std::to_string(b) + ") claimed " +
                                 to_string(predicted));
        ++claims_checked;
      }
    }
  }
  EXPECT_GT(claims_checked, cases);
}

}  // namespace
}  // namespace sc::analysis
