/// Telemetry subsystem tests (src/obs/): metrics registry semantics,
/// trace span recording and Chrome-JSON shape, stream-health probe math
/// against the library's own scc(), telemetry neutrality on every
/// backend, and the ISSUE acceptance scenario — a 16-input fan-out
/// program under faults + optimizer on a 2-worker session, asserting the
/// snapshot carries queue-depth, buffer-occupancy, backpressure-stall,
/// bits-processed, and fault-injection counters and the trace shows
/// planner/opt/backend spans across more than one thread.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rng/lfsr.hpp"

namespace sc::obs {
namespace {

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.counter");
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.gauge("test.gauge");
  gauge.set(3.5);
  gauge.set(9.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 9.0);

  Histogram& histogram = registry.histogram("test.histogram");
  histogram.observe(0);    // bucket 0
  histogram.observe(1);    // bucket 1
  histogram.observe(3);    // bucket 2: [2, 4)
  histogram.observe(100);  // bucket 7: [64, 128)
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 104u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(2), 1u);
  EXPECT_EQ(histogram.bucket(7), 1u);
}

TEST(Metrics, RegistryReturnsStableInstrumentsAndRejectsKindConflicts) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same.name.twice");
  Counter& b = registry.counter("same.name.twice");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("same.name.twice"), std::logic_error);
  EXPECT_THROW(registry.histogram("same.name.twice"), std::logic_error);
}

TEST(Metrics, SnapshotExportsJsonAndTable) {
  MetricsRegistry registry;
  registry.counter("events.total").add(7);
  registry.gauge("queue.depth").set(3.0);
  registry.histogram("wait.us").observe(12);

  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("events.total"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("queue.depth").first, 3.0);
  EXPECT_EQ(snapshot.histograms.at("wait.us").count, 1u);

  const std::string json = snapshot.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events.total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string table = snapshot.to_table();
  EXPECT_NE(table.find("events.total"), std::string::npos);
  EXPECT_NE(table.find("queue.depth"), std::string::npos);
}

TEST(Metrics, HistogramQuantileResolvesToCoveringBucketMidpoint) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.observe(1000);  // bucket 10
  HistogramSnapshot snap;
  snap.count = histogram.count();
  snap.sum = histogram.sum();
  for (unsigned k = 0; k < Histogram::kBuckets; ++k) {
    snap.buckets.push_back(histogram.bucket(k));
  }
  EXPECT_DOUBLE_EQ(snap.mean(), 1000.0);
  // All mass in [512, 1024): every quantile is that bucket's midpoint.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 768.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 768.0);
}

// ------------------------------------------------------------------- trace

TEST(Trace, SpansRecordCompleteEventsWithArgs) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer", "test");
    outer.arg("n", std::uint64_t{13});
    outer.arg_str("kind", "demo");
    Span inner(&tracer, "inner", "test");
  }
  ASSERT_EQ(tracer.event_count(), 2u);
  const std::vector<TraceEvent> events = tracer.events();
  // Destructor order: inner completes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_GE(events[1].dur_us, events[0].dur_us);  // outer contains inner
  ASSERT_EQ(events[1].args.size(), 2u);
  EXPECT_EQ(events[1].args[0].first, "n");
  EXPECT_EQ(events[1].args[0].second, "13");
  EXPECT_EQ(events[1].args[1].second, "\"demo\"");
}

TEST(Trace, NullTracerSpansAreNoOps) {
  Span span(nullptr, "ignored", "test");
  span.arg("k", std::uint64_t{1});
  // Nothing to assert beyond "does not crash": the span holds no tracer.
}

TEST(Trace, DefaultRingAbsorbsTypicalRunsWithoutDrops) {
  Tracer tracer;
  EXPECT_EQ(tracer.capacity(), kDefaultTraceCapacity);
  for (int i = 0; i < 1000; ++i) {
    Span s(&tracer, "tick", "test");
  }
  EXPECT_EQ(tracer.event_count(), 1000u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  // A saturated ring keeps the newest window and counts what it shed.
  Tracer tiny(16);
  for (int i = 0; i < 100; ++i) {
    Span s(&tiny, "tick", "test");
  }
  EXPECT_EQ(tiny.event_count(), 16u);
  EXPECT_EQ(tiny.dropped_events(), 84u);
  EXPECT_NE(tiny.chrome_trace_json().find("\"traceEvents\""),
            std::string::npos);
}

TEST(Trace, ChromeJsonIsWellFormedAndTimeSorted) {
  Tracer tracer;
  { Span a(&tracer, "first", "test"); }
  { Span b(&tracer, "second", "test"); }
  tracer.counter("series", 42.0);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"first\""), std::string::npos);
  // Events serialize sorted by timestamp: "first" appears before "second".
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
}

// ------------------------------------------------------------------ probes

Bitstream lfsr_stream(std::uint32_t seed, std::size_t n) {
  rng::Lfsr lfsr(8, seed);
  Bitstream bits;
  bits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) bits.push_back((lfsr.next() & 64) != 0);
  return bits;
}

TEST(Probe, WindowedSccMatchesTheLibrarysOwnScc) {
  const std::size_t n = 512, window = 128;
  const Bitstream x = lfsr_stream(17, n);
  const Bitstream y = lfsr_stream(91, n);

  StreamProbe probe({"x", "y", window}, /*pair=*/true, nullptr);
  probe.feed(x, &y, 0, n);
  const ProbeReport report = probe.finish();

  ASSERT_EQ(report.windows.size(), n / window);
  for (std::size_t w = 0; w < report.windows.size(); ++w) {
    Bitstream wx, wy;
    for (std::size_t i = 0; i < window; ++i) {
      wx.push_back(x.get(w * window + i));
      wy.push_back(y.get(w * window + i));
    }
    EXPECT_DOUBLE_EQ(report.windows[w].value_x, wx.value());
    EXPECT_DOUBLE_EQ(report.windows[w].value_y, wy.value());
    EXPECT_DOUBLE_EQ(report.windows[w].scc, scc(wx, wy));
  }
  EXPECT_DOUBLE_EQ(report.running_value_x, x.value());
  EXPECT_DOUBLE_EQ(report.running_scc, scc(x, y));
}

TEST(Probe, ChunkedFeedEqualsWholeStreamFeed) {
  const std::size_t n = 700;  // odd shape: windows straddle chunks
  const Bitstream x = lfsr_stream(33, n);
  const Bitstream y = lfsr_stream(57, n);

  StreamProbe whole({"x", "y", 256}, true, nullptr);
  whole.feed(x, &y, 0, n);
  const ProbeReport want = whole.finish();

  // Feed in uneven chunks, as the engine backend would.
  StreamProbe chunked({"x", "y", 256}, true, nullptr);
  const std::size_t cuts[] = {96, 160, 13, 256, 175};
  std::size_t offset = 0;
  for (std::size_t take : cuts) {
    Bitstream cx, cy;
    for (std::size_t i = 0; i < take; ++i) {
      cx.push_back(x.get(offset + i));
      cy.push_back(y.get(offset + i));
    }
    chunked.feed(cx, &cy, offset, take);
    offset += take;
  }
  ASSERT_EQ(offset, n);
  const ProbeReport got = chunked.finish();

  ASSERT_EQ(got.windows.size(), want.windows.size());
  for (std::size_t w = 0; w < want.windows.size(); ++w) {
    EXPECT_EQ(got.windows[w].begin, want.windows[w].begin);
    EXPECT_EQ(got.windows[w].bits, want.windows[w].bits);
    EXPECT_DOUBLE_EQ(got.windows[w].scc, want.windows[w].scc);
    EXPECT_DOUBLE_EQ(got.windows[w].value_x, want.windows[w].value_x);
  }
  EXPECT_DOUBLE_EQ(got.running_scc, want.running_scc);
}

TEST(Probe, SingleEdgeProbeReportsValuesOnly) {
  const Bitstream x = lfsr_stream(5, 256);
  StreamProbe probe({"x", "", 64}, /*pair=*/false, nullptr);
  probe.feed(x, nullptr, 0, 256);
  const ProbeReport report = probe.finish();
  ASSERT_EQ(report.windows.size(), 4u);
  EXPECT_FALSE(report.windows[0].scc_defined);
  EXPECT_DOUBLE_EQ(report.running_value_x, x.value());
}

// ------------------------------------------------------- telemetry context

TEST(Telemetry, EnvFallbackIsNullWhenUnset) {
  ::unsetenv("SC_TRACE");
  ::unsetenv("SC_METRICS");
  EXPECT_EQ(Telemetry::from_env(), nullptr);
  EXPECT_EQ(fallback(nullptr), nullptr);
  Telemetry telemetry;
  EXPECT_EQ(fallback(&telemetry), &telemetry);
}

TEST(Telemetry, TracingToggleControlsTheTracer) {
  TelemetryConfig config;
  config.tracing = false;
  Telemetry metrics_only(config);
  EXPECT_EQ(metrics_only.tracer(), nullptr);
  EXPECT_EQ(tracer_of(&metrics_only), nullptr);

  Telemetry tracing;
  EXPECT_NE(tracing.tracer(), nullptr);
}

// ------------------------------------------------- neutrality + acceptance

/// 16 grouped inputs reduced by a multiply tree: level 0 has 16 nodes, so
/// the chunked engine backend fans chunk advancement across the pool.
graph::Program fanout_tree_program() {
  using namespace sc::graph;
  GraphBuilder b;
  std::vector<Value> layer;
  for (unsigned i = 0; i < 16; ++i) {
    layer.push_back(
        b.input("p" + std::to_string(i), 0.15 + 0.05 * (i % 10), i % 4));
  }
  while (layer.size() > 1) {
    std::vector<Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.op("scaled-add", {layer[i], layer[i + 1]}));
    }
    layer = std::move(next);
  }
  b.output(layer[0], "out");
  return b.build();
}

TEST(Neutrality, AllBackendsBitIdenticalWithTelemetryAttached) {
  using namespace sc::graph;
  const Program program = fanout_tree_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);

  ExecConfig bare;
  bare.stream_length = 777;
  bare.width = 8;

  Telemetry telemetry;
  telemetry.add_probe({"p0", "out", 128});
  ExecConfig observed = bare;
  observed.telemetry = &telemetry;

  engine::Session bare_session({2, 256, 0x5eed});
  engine::Session observed_session({2, 256, 0x5eed, &telemetry});

  const struct {
    const char* label;
    std::unique_ptr<ExecutorBackend> bare;
    std::unique_ptr<ExecutorBackend> observed;
  } backends[] = {
      {"reference", make_backend(BackendKind::kReference),
       make_backend(BackendKind::kReference)},
      {"kernel", make_backend(BackendKind::kKernel),
       make_backend(BackendKind::kKernel)},
      {"engine", make_engine_backend(bare_session),
       make_engine_backend(observed_session)},
  };
  for (const auto& entry : backends) {
    const ExecutionResult want = entry.bare->run(program, plan, bare);
    const ExecutionResult got = entry.observed->run(program, plan, observed);
    ASSERT_EQ(want.streams.size(), got.streams.size());
    for (std::size_t s = 0; s < want.streams.size(); ++s) {
      EXPECT_EQ(want.streams[s], got.streams[s])
          << entry.label << " stream " << s
          << " changed under observation";
    }
  }
  // The observed runs populated the registry and the probes.
  EXPECT_GE(telemetry.snapshot().counters.at("backend.runs"), 3u);
  EXPECT_FALSE(telemetry.probe_reports().empty());
}

TEST(Neutrality, ProbeObservationIsIdenticalAcrossBackends) {
  using namespace sc::graph;
  const Program program = fanout_tree_program();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);

  const auto probe_run = [&](std::unique_ptr<ExecutorBackend> backend,
                             Telemetry& telemetry) {
    ExecConfig config;
    config.stream_length = 1024;
    config.width = 8;
    config.telemetry = &telemetry;
    backend->run(program, plan, config);
    return telemetry.probe_reports();
  };

  Telemetry ref_telemetry, eng_telemetry;
  ref_telemetry.add_probe({"p3", "out", 256});
  eng_telemetry.add_probe({"p3", "out", 256});

  engine::Session session({2, 256, 0x5eed, &eng_telemetry});
  const std::vector<ProbeReport> ref_reports =
      probe_run(make_backend(BackendKind::kReference), ref_telemetry);
  const std::vector<ProbeReport> eng_reports =
      probe_run(make_engine_backend(session), eng_telemetry);

  // The whole-stream tap and the live chunked tap see the same windows.
  ASSERT_EQ(ref_reports.size(), 1u);
  ASSERT_EQ(eng_reports.size(), 1u);
  ASSERT_EQ(ref_reports[0].windows.size(), eng_reports[0].windows.size());
  for (std::size_t w = 0; w < ref_reports[0].windows.size(); ++w) {
    EXPECT_DOUBLE_EQ(ref_reports[0].windows[w].scc,
                     eng_reports[0].windows[w].scc);
    EXPECT_DOUBLE_EQ(ref_reports[0].windows[w].value_x,
                     eng_reports[0].windows[w].value_x);
  }
}

TEST(Acceptance, FanOutRunEmitsFullMetricsAndMultiThreadTrace) {
  using namespace sc::graph;
  Telemetry telemetry;
  telemetry.add_probe({"p0", "out", 512});

  const Program program = fanout_tree_program();
  PlannerConfig planner_config;
  planner_config.telemetry = &telemetry;
  const ProgramPlan plan =
      plan_program(program, Strategy::kManipulation, planner_config);

  fault::FaultPlan faults;
  faults.seed = 0xFA17;
  faults.edges.push_back({"p1", fault::ErrorKind::kBitFlip, 0.05, 16, 0});

  engine::Session session({2, 512, 0x5eed, &telemetry});
  ExecConfig config;
  config.stream_length = 4096;
  config.width = 8;
  config.optimize = true;
  config.fault_plan = &faults;
  config.telemetry = &telemetry;

  make_engine_backend(session)->run(program, plan, config);

  const MetricsSnapshot snapshot = telemetry.snapshot();
  // The ISSUE's named signals, all from one run:
  EXPECT_NE(snapshot.gauges.count("engine.pool.queue_depth"), 0u);
  EXPECT_NE(snapshot.gauges.count("engine.buffer.peak_bits"), 0u);
  EXPECT_GT(snapshot.gauges.at("engine.buffer.peak_bits").second, 0.0);
  EXPECT_NE(snapshot.counters.count("engine.pool.backpressure_stalls"), 0u);
  EXPECT_NE(snapshot.histograms.count("engine.pool.task_wait_us"), 0u);
  EXPECT_GT(snapshot.counters.at("backend.bits_processed"), 0u);
  EXPECT_GT(snapshot.counters.at("backend.rng_draws"), 0u);
  EXPECT_GT(snapshot.counters.at("fault.corrupted_bits"), 0u);
  EXPECT_GT(snapshot.counters.at("fault.edge.p1.corrupted_bits"), 0u);
  EXPECT_GE(snapshot.counters.at("engine.chunks"), 8u);
  EXPECT_EQ(snapshot.counters.at("engine.stream_bits"), 4096u);
  EXPECT_GE(snapshot.counters.at("planner.plans"), 1u);
  EXPECT_GE(snapshot.counters.at("opt.passes"), 1u);

  // The trace: planner, optimizer, and backend spans, per-chunk activity,
  // and more than one thread on the timeline.
  ASSERT_NE(telemetry.tracer(), nullptr);
  const std::vector<TraceEvent> events = telemetry.tracer()->events();
  std::set<std::string> names;
  std::set<std::uint32_t> tids;
  for (const TraceEvent& event : events) {
    names.insert(event.name);
    tids.insert(event.tid);
  }
  EXPECT_NE(names.count("planner.plan_program"), 0u);
  EXPECT_NE(names.count("opt.optimize"), 0u);
  EXPECT_NE(names.count("backend.run.engine"), 0u);
  EXPECT_NE(names.count("engine.chunk"), 0u);
  EXPECT_GE(tids.size(), 2u) << "per-chunk spans should land on workers";

  // And the serialized trace is Perfetto-shaped.
  const std::string json = telemetry.tracer()->chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("backend.run.engine"), std::string::npos);
}

}  // namespace
}  // namespace sc::obs
