/// Tests for the hardware cost model: netlist algebra, cost evaluation
/// units, structural scaling with design parameters, and the calibrated
/// relative factors the paper reports (Table III ratios, converter
/// overhead orders of magnitude).

#include <gtest/gtest.h>

#include "hw/cells.hpp"
#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "hw/netlist.hpp"

namespace sc::hw {
namespace {

TEST(Cells, LibraryLookupIsConsistent) {
  for (std::size_t i = 0; i < kCellCount; ++i) {
    const CellParams& p = cell_params(static_cast<Cell>(i));
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.area_um2, 0.0);
    EXPECT_GT(p.switch_energy_fj, 0.0);
    EXPECT_GE(p.leakage_uw, 0.0);
  }
}

TEST(Cells, FlipFlopsAreClocked) {
  EXPECT_TRUE(is_clocked(Cell::kDff));
  EXPECT_TRUE(is_clocked(Cell::kDffEn));
  EXPECT_FALSE(is_clocked(Cell::kOr2));
  EXPECT_FALSE(is_clocked(Cell::kFullAdder));
}

TEST(Netlist, AddAndCount) {
  Netlist n("test");
  n.add(Cell::kOr2).add(Cell::kDff, 3);
  EXPECT_EQ(n.count(Cell::kOr2), 1u);
  EXPECT_EQ(n.count(Cell::kDff), 3u);
  EXPECT_EQ(n.count(Cell::kInv), 0u);
  EXPECT_EQ(n.total_cells(), 4u);
}

TEST(Netlist, AdditionMergesCounts) {
  Netlist a;
  a.add(Cell::kAnd2, 2);
  Netlist b;
  b.add(Cell::kAnd2, 3).add(Cell::kDff, 1);
  const Netlist c = a + b;
  EXPECT_EQ(c.count(Cell::kAnd2), 5u);
  EXPECT_EQ(c.count(Cell::kDff), 1u);
}

TEST(Netlist, ScalingMultipliesCounts) {
  Netlist n;
  n.add(Cell::kXor2, 2);
  const Netlist scaled = n * 50;
  EXPECT_EQ(scaled.count(Cell::kXor2), 100u);
}

TEST(Netlist, AreaSumsCellAreas) {
  Netlist n;
  n.add(Cell::kOr2, 2);
  EXPECT_DOUBLE_EQ(n.area_um2(), 2.0 * cell_params(Cell::kOr2).area_um2);
}

TEST(Netlist, ToStringListsCells) {
  Netlist n("thing");
  n.add(Cell::kDff, 2).add(Cell::kOr2, 1);
  const std::string s = n.to_string();
  EXPECT_NE(s.find("thing"), std::string::npos);
  EXPECT_NE(s.find("2xDFF"), std::string::npos);
  EXPECT_NE(s.find("1xOR2"), std::string::npos);
}

TEST(Cost, EnergyEqualsPowerTimesTime) {
  const Netlist n = or_gate_netlist();
  CostConfig config;
  config.clock_hz = 100e6;
  config.cycles = 65536;
  const CostReport r = evaluate(n, config);
  const double seconds = 65536.0 / 100e6;
  EXPECT_NEAR(r.energy_pj, r.power_uw * seconds * 1e6, 1e-9);
  EXPECT_DOUBLE_EQ(r.power_uw, r.leakage_uw + r.dynamic_uw);
}

TEST(Cost, DynamicPowerScalesWithClock) {
  const Netlist n = sync_max_netlist(1);
  CostConfig slow, fast;
  slow.clock_hz = 50e6;
  fast.clock_hz = 200e6;
  EXPECT_NEAR(evaluate(n, fast).dynamic_uw,
              4.0 * evaluate(n, slow).dynamic_uw, 1e-9);
}

TEST(Cost, ActivityScalesCombinationalOnly) {
  Netlist comb;
  comb.add(Cell::kOr2, 10);
  Netlist seq;
  seq.add(Cell::kDff, 10);
  CostConfig low, high;
  low.activity = 0.1;
  high.activity = 0.9;
  EXPECT_LT(evaluate(comb, low).dynamic_uw, evaluate(comb, high).dynamic_uw);
  EXPECT_DOUBLE_EQ(evaluate(seq, low).dynamic_uw,
                   evaluate(seq, high).dynamic_uw);
}

TEST(Cost, ZeroCyclesZeroEnergy) {
  CostConfig config;
  config.cycles = 0;
  EXPECT_DOUBLE_EQ(evaluate(or_gate_netlist(), config).energy_pj, 0.0);
}

// --- design netlists -------------------------------------------------------------

TEST(Designs, StateBitsFormula) {
  EXPECT_EQ(state_bits(1), 1u);
  EXPECT_EQ(state_bits(2), 1u);
  EXPECT_EQ(state_bits(3), 2u);
  EXPECT_EQ(state_bits(4), 2u);
  EXPECT_EQ(state_bits(5), 3u);
  EXPECT_EQ(state_bits(9), 4u);
}

TEST(Designs, OrMaxIsExactlyOneOrGate) {
  // Table III pins OR-max at the area of one OR2 cell (2.16 um^2).
  const Netlist n = or_gate_netlist();
  EXPECT_EQ(n.total_cells(), 1u);
  EXPECT_NEAR(n.area_um2(), 2.16, 1e-9);
}

TEST(Designs, SynchronizerAreaGrowsWithDepth) {
  double prev = 0.0;
  for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
    const double area = synchronizer_netlist(depth).area_um2();
    EXPECT_GT(area, prev);
    prev = area;
  }
}

TEST(Designs, DesynchronizerSlightlyLargerThanSynchronizer) {
  EXPECT_GT(desynchronizer_netlist(1).area_um2(),
            synchronizer_netlist(1).area_um2());
}

TEST(Designs, FlushTrackerAddsSubstantialHardware) {
  // Paper §III-B: flush "can become tremendously expensive".
  const double plain = synchronizer_netlist(4, false).area_um2();
  const double flush = synchronizer_netlist(4, true, 8).area_um2();
  EXPECT_GT(flush, 1.5 * plain);
}

TEST(Designs, SyncMaxVsCaMaxMatchesPaperAreaRatio) {
  // Paper Table III: CA-max is 5.2x larger than sync-max.
  const double sync = sync_max_netlist(1).area_um2();
  const double ca = ca_max_netlist().area_um2();
  EXPECT_NEAR(ca / sync, 5.2, 1.5);
}

TEST(Designs, SyncMaxEnergyVsCaMaxSameDirectionAsPaper) {
  // Paper: 11.6x more energy for CA-max; structural model lands the same
  // direction with at least ~4x.
  const CostReport sync = evaluate(sync_max_netlist(1));
  const CostReport ca = evaluate(ca_max_netlist());
  EXPECT_GT(ca.energy_pj / sync.energy_pj, 4.0);
}

TEST(Designs, SyncMaxNearPaperAbsoluteArea) {
  // Paper: 48.6 um^2/op for the D = 1 synchronizer maximum.
  EXPECT_NEAR(sync_max_netlist(1).area_um2(), 48.6, 10.0);
}

TEST(Designs, OrMaxPowerNearPaperCalibration) {
  // Paper: 0.26 uW at the Table III operating point.
  const CostReport r = evaluate(or_gate_netlist());
  EXPECT_NEAR(r.power_uw, 0.26, 0.08);
}

TEST(Designs, ToggleAdderCostVsMuxAdderMatchesPaperClaims) {
  // Paper §II-B: the CA adder is 5.6x larger and 10.7x more power than the
  // MUX adder; the structural model should land within a factor ~2.
  const CostReport mux = evaluate(mux_adder_netlist());
  const CostReport toggle = evaluate(toggle_adder_netlist());
  EXPECT_GT(toggle.area_um2 / mux.area_um2, 3.0);
  EXPECT_LT(toggle.area_um2 / mux.area_um2, 10.0);
  EXPECT_GT(toggle.power_uw / mux.power_uw, 4.0);
}

TEST(Designs, RegeneratorOrdersOfMagnitudeAboveGates) {
  // Paper §II-B: converters are one to two orders of magnitude more
  // costly than SC arithmetic circuits.
  const CostReport regen = evaluate(regenerator_netlist(8));
  const CostReport gate = evaluate(or_gate_netlist());
  EXPECT_GT(regen.area_um2 / gate.area_um2, 30.0);
  EXPECT_LT(regen.area_um2 / gate.area_um2, 300.0);
  EXPECT_GT(regen.power_uw / gate.power_uw, 10.0);
}

TEST(Designs, RegeneratorSeveralTimesCostlierThanSynchronizer) {
  // The pivotal comparison behind the paper's 3x overhead claim.
  const CostReport regen = evaluate(regenerator_netlist(8));
  const CostReport sync = evaluate(synchronizer_netlist(1));
  EXPECT_GT(regen.power_uw / sync.power_uw, 3.0);
}

TEST(Designs, ShuffleBufferScalesWithDepth) {
  EXPECT_GT(shuffle_buffer_netlist(8).area_um2(),
            shuffle_buffer_netlist(4).area_um2());
  const Netlist d4 = shuffle_buffer_netlist(4);
  EXPECT_EQ(d4.count(Cell::kDffEn), 4u);
}

TEST(Designs, DecorrelatorIsTwoShuffleBuffers) {
  EXPECT_NEAR(decorrelator_netlist(4).area_um2(),
              2.0 * shuffle_buffer_netlist(4).area_um2(), 1e-9);
}

TEST(Designs, TfmLargerThanDecorrelator) {
  // Paper §V: TFMs are larger because they carry binary arithmetic.
  EXPECT_GT(tfm_netlist(8).area_um2(), decorrelator_netlist(4).area_um2());
}

TEST(Designs, IsolatorIsJustFlipFlops) {
  const Netlist n = isolator_netlist(3);
  EXPECT_EQ(n.count(Cell::kDff), 3u);
  EXPECT_EQ(n.total_cells(), 3u);
}

TEST(Designs, SngRngDominatesComparator) {
  const double with_rng = sng_netlist(8, true).area_um2();
  const double shared = sng_netlist(8, false).area_um2();
  EXPECT_GT(with_rng, 2.0 * shared);
}

TEST(Designs, SdConverterScalesWithWidth) {
  EXPECT_GT(sd_converter_netlist(16).area_um2(),
            sd_converter_netlist(8).area_um2());
}

}  // namespace
}  // namespace sc::hw
