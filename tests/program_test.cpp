/// Tests for the operator registry and the registry-program layer: builder
/// validation, named values, constants, n-ary operators, multi-output
/// programs, subgraph composition, exact semantics, per-pair requirements,
/// and planning on operators the planner has no hardcoded knowledge of.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "func/bernstein.hpp"
#include "func/fsm_function.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"

namespace sc::graph {
namespace {

// --- registry -------------------------------------------------------------

TEST(Registry, BuiltinsCoverTheAcceptanceSet) {
  const OperatorRegistry& reg = registry();
  EXPECT_GE(reg.size(), 10u);
  // The Fig. 2 set...
  for (const char* name :
       {"multiply", "scaled-add", "saturating-add", "subtract", "max", "min",
        "divide"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // ...plus operators from outside it (FSM functions, Bernstein, the §IV
  // pipeline stages, bipolar arithmetic).
  for (const char* name :
       {"toggle-add", "multiply-bipolar", "negate-bipolar",
        "scaled-sub-bipolar", "stanh-8", "sexp-8-1", "bernstein-x2-3",
        "gaussian-blur-3x3", "roberts-cross"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
}

TEST(Registry, RequirementsMatchFig2) {
  const OperatorRegistry& reg = registry();
  EXPECT_EQ(reg.find("multiply")->requirement, Requirement::kUncorrelated);
  EXPECT_EQ(reg.find("scaled-add")->requirement, Requirement::kAgnostic);
  EXPECT_EQ(reg.find("saturating-add")->requirement, Requirement::kNegative);
  EXPECT_EQ(reg.find("subtract")->requirement, Requirement::kPositive);
  EXPECT_EQ(reg.find("max")->requirement, Requirement::kPositive);
  EXPECT_EQ(reg.find("min")->requirement, Requirement::kPositive);
  EXPECT_EQ(reg.find("divide")->requirement, Requirement::kPositive);
}

TEST(Registry, PerPairRequirementOverride) {
  const OperatorDef& roberts = *registry().find("roberts-cross");
  // Only the diagonal XOR pairs need positive correlation.
  EXPECT_EQ(roberts.requirement_between(0, 3), Requirement::kPositive);
  EXPECT_EQ(roberts.requirement_between(1, 2), Requirement::kPositive);
  EXPECT_EQ(roberts.requirement_between(0, 1), Requirement::kAgnostic);
  EXPECT_EQ(roberts.requirement_between(2, 3), Requirement::kAgnostic);
}

TEST(Registry, RejectsBadDefinitions) {
  OperatorRegistry reg = OperatorRegistry::with_builtins();
  OperatorDef dup;
  dup.name = "multiply";  // already registered
  dup.exact = [](sc::span<const double> v) { return v[0]; };
  dup.make_evaluator = nullptr;
  EXPECT_THROW(reg.add(dup), std::invalid_argument);

  OperatorDef incomplete;
  incomplete.name = "no-impl";
  EXPECT_THROW(reg.add(incomplete), std::invalid_argument);

  EXPECT_THROW(static_cast<void>(reg.id_of("no-such-operator")),
               std::invalid_argument);
  EXPECT_EQ(reg.find("no-such-operator"), nullptr);
}

TEST(Registry, DuplicateRegistrationIsAHardErrorNamingTheConflict) {
  // A fully *valid* definition under an existing name must still be
  // rejected (RejectsBadDefinitions only covers invalid ones, which trip
  // the completeness checks first), the message must name the conflicting
  // operator, and the registry must be left untouched — no silent
  // shadowing or last-wins.
  OperatorRegistry reg = OperatorRegistry::with_builtins();
  const std::size_t size_before = reg.size();
  const OpId original = reg.id_of("multiply");

  OperatorDef dup;
  dup.name = "multiply";
  dup.arity = 2;
  dup.exact = [](sc::span<const double> v) { return v[0] + v[1]; };
  dup.make_evaluator = [](const OpContext&) -> std::unique_ptr<OpEvaluator> {
    return nullptr;
  };
  try {
    reg.add(std::move(dup));
    FAIL() << "duplicate registration did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("multiply"), std::string::npos)
        << "message does not name the conflicting operator: " << error.what();
  }
  EXPECT_EQ(reg.size(), size_before);
  EXPECT_EQ(reg.id_of("multiply"), original);
  // The surviving definition is the original one, not the rejected dup
  // (which claimed exact = a + b).
  const std::vector<double> operands{0.5, 0.5};
  EXPECT_DOUBLE_EQ(reg.def(original).exact(
                       sc::span<const double>(operands.data(), 2)),
                   0.25);
}

TEST(Registry, CustomRegistrationIsLocal) {
  OperatorRegistry reg = OperatorRegistry::with_builtins();
  const std::size_t builtin_count = reg.size();
  register_bernstein(reg, "bernstein-sqrt-4",
                     [](double t) { return std::sqrt(t); }, 4);
  EXPECT_EQ(reg.size(), builtin_count + 1);
  EXPECT_NE(reg.find("bernstein-sqrt-4"), nullptr);
  // The process-wide registry is untouched.
  EXPECT_EQ(registry().find("bernstein-sqrt-4"), nullptr);
}

// --- builder ---------------------------------------------------------------

TEST(Builder, NamedValuesMultiOutputAndExactSemantics) {
  GraphBuilder b;
  const Value x = b.input("x", 0.6, 0);
  const Value y = b.input("y", 0.7, 1);
  const Value prod = b.op("multiply", {x, y});
  const Value sum = b.op("scaled-add", {x, y});
  b.output(prod, "product").output(sum, "sum");
  const Program p = b.build();

  EXPECT_EQ(p.outputs().size(), 2u);
  ASSERT_NE(p.find("product"), kInvalidNode);
  ASSERT_NE(p.find("sum"), kInvalidNode);
  EXPECT_EQ(p.find("missing"), kInvalidNode);
  EXPECT_DOUBLE_EQ(p.exact_value(p.find("product")), 0.42);
  EXPECT_DOUBLE_EQ(p.exact_value(p.find("sum")), 0.65);
}

TEST(Builder, ExactSemanticsOfExtendedOperators) {
  GraphBuilder b;
  const Value x = b.input("x", 0.3, 0);
  const Value y = b.input("y", 0.6, 1);
  const Value quot = b.op("divide", {x, y});
  const Value bip = b.op("multiply-bipolar", {x, y});
  const Value neg = b.op("negate-bipolar", {x});
  const Value th = b.op("stanh-8", {x});
  const Program p = b.build();

  EXPECT_DOUBLE_EQ(p.exact_value(quot.id), 0.5);  // 0.3 / 0.6
  // (2*0.3-1)(2*0.6-1) = -0.08 -> p = 0.46.
  EXPECT_NEAR(p.exact_value(bip.id), 0.46, 1e-12);
  EXPECT_DOUBLE_EQ(p.exact_value(neg.id), 0.7);
  EXPECT_NEAR(p.exact_value(th.id),
              0.5 * (func::stanh_value(2 * 0.3 - 1, 8) + 1), 1e-12);
}

TEST(Builder, BernsteinExactMatchesPolynomialAtEqualCopies) {
  GraphBuilder b;
  const Value x = b.input("x", 0.4, 0);
  const Value out = b.op("bernstein-x2-3", {x, x, x});
  const Program p = b.build();
  const std::vector<double> coefficients =
      func::bernstein_coefficients([](double t) { return t * t; }, 3);
  const double expected = func::bernstein_value(
      sc::span<const double>(coefficients.data(), coefficients.size()), 0.4);
  EXPECT_NEAR(p.exact_value(out.id), expected, 1e-12);
}

TEST(Builder, ValidatesEagerly) {
  GraphBuilder b;
  const Value x = b.input("x", 0.5, 0);
  EXPECT_THROW(b.op("no-such-operator", {x, x}), std::invalid_argument);
  EXPECT_THROW(b.op("multiply", {x}), std::invalid_argument);  // arity
  EXPECT_THROW(b.input("x", 0.2, 1), std::invalid_argument);   // dup name
  EXPECT_THROW(b.input("c", 0.2, kConstantGroupBase),          // group range
               std::invalid_argument);
}

TEST(Builder, ConstantsAreProvablyIndependent) {
  GraphBuilder b;
  const Value x = b.input("x", 0.5, 0);
  const Value c1 = b.constant(0.25);
  const Value c2 = b.constant(0.25);
  const Program p = b.build();
  EXPECT_EQ(classify(p, c1.id, c2.id), Relation::kIndependent);
  EXPECT_EQ(classify(p, x.id, c1.id), Relation::kIndependent);
  EXPECT_EQ(classify(p, c1.id, c1.id), Relation::kPositive);  // same stream
}

TEST(Builder, SubgraphAppendComposesAndUniquifiesNames) {
  // Reusable block: e = |a*b - c|.
  GraphBuilder sub;
  const Value a = sub.input("a", 0.0, 0);
  const Value bb = sub.input("b", 0.0, 1);
  const Value c = sub.input("c", 0.0, 2);
  sub.output(sub.op("subtract", {sub.op("multiply", {a, bb}), c}), "e");
  const Program block = sub.build();

  GraphBuilder main;
  const Value x = main.input("x", 0.8, 0);
  const Value y = main.input("y", 0.5, 1);
  const Value z = main.input("z", 0.2, 2);
  const auto first = main.append(block, {x, y, z});
  const auto second = main.append(block, {y, z, x});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  main.output(main.op("scaled-add", {first[0], second[0]}), "combined");
  const Program p = main.build();

  // |0.8*0.5 - 0.2| = 0.2 and |0.5*0.2 - 0.8| = 0.7 -> 0.5*(0.2+0.7).
  EXPECT_NEAR(p.exact_value(p.find("combined")), 0.45, 1e-12);
  // Both instances of "e" survive under distinct names.
  EXPECT_NE(p.find("e"), kInvalidNode);
  EXPECT_NE(p.find("e.2"), kInvalidNode);
}

TEST(Builder, OutputNameCollisionsThrow) {
  GraphBuilder b;
  const Value x = b.input("x", 0.5, 0);
  const Value y = b.input("y", 0.6, 1);
  const Value prod = b.op("multiply", {x, y});
  b.output(prod, "out");
  // A second output may not steal an existing value's name...
  EXPECT_THROW(b.output(y, "x"), std::invalid_argument);
  EXPECT_THROW(b.output(y, "out"), std::invalid_argument);
  // ...but re-marking the same value under its own name is fine.
  b.output(prod, "out");
  EXPECT_EQ(b.build().outputs().size(), 2u);
}

TEST(Builder, AppendChecksArityAcrossRegistries) {
  // The same operator name registered with different arities in two
  // registries: append() must refuse to splice rather than execute a
  // 4-ary evaluator on 3 operands.
  OperatorRegistry reg3 = OperatorRegistry::with_builtins();
  OperatorRegistry reg4 = OperatorRegistry::with_builtins();
  register_bernstein(reg3, "poly", [](double t) { return t; }, 3);
  register_bernstein(reg4, "poly", [](double t) { return t; }, 4);

  GraphBuilder sub(reg3);
  const Value a = sub.input("a", 0.5, 0);
  sub.output(sub.op("poly", {a, a, a}));
  const Program block = sub.build();

  GraphBuilder main(reg4);
  const Value x = main.input("x", 0.5, 0);
  EXPECT_THROW(main.append(block, {x}), std::invalid_argument);
}

TEST(Builder, AppendArgumentCountIsChecked) {
  GraphBuilder sub;
  sub.output(sub.op("multiply", {sub.input("a", 0.5, 0),
                                 sub.input("b", 0.5, 1)}));
  const Program block = sub.build();
  GraphBuilder main;
  const Value x = main.input("x", 0.5, 0);
  EXPECT_THROW(main.append(block, {x}), std::invalid_argument);
}

// --- planning over registry programs --------------------------------------

TEST(ProgramPlanner, NAryOperatorGetsPairwiseFixes) {
  // Three copies of one stream into the Bernstein unit: every copy pair is
  // provably positive, the unit needs SCC = 0, so the manipulation plan
  // inserts one decorrelator per pair.
  GraphBuilder b;
  const Value x = b.input("x", 0.4, 0);
  b.output(b.op("bernstein-x2-3", {x, x, x}));
  const Program p = b.build();

  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  EXPECT_TRUE(plan.violations.empty());
  EXPECT_EQ(plan.inserted_units, 3u);  // pairs (0,1), (0,2), (1,2)
  for (const PairFix& fix : plan.fixes) {
    EXPECT_EQ(fix.fix, FixKind::kDecorrelator);
    EXPECT_EQ(fix.relation, Relation::kPositive);
  }
  // Without a strategy the violations are recorded per op.
  const ProgramPlan none = plan_program(p, Strategy::kNone);
  EXPECT_EQ(none.violations.size(), 1u);
}

TEST(ProgramPlanner, RobertsCrossDiagonalsGetSynchronizers) {
  GraphBuilder b;
  const Value p00 = b.input("p00", 0.8, 0);
  const Value p01 = b.input("p01", 0.3, 0);  // shared bank group
  const Value p10 = b.input("p10", 0.5, 1);
  const Value p11 = b.input("p11", 0.4, 1);
  b.output(b.op("roberts-cross", {p00, p01, p10, p11}));
  const Program p = b.build();

  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  // Diagonals (0,3) and (1,2) cross the bank groups -> independent, not
  // positive -> synchronizer each; the agnostic pairs contribute nothing.
  EXPECT_EQ(plan.inserted_units, 2u);
  for (const PairFix& fix : plan.fixes) {
    if (fix.fix == FixKind::kNone) continue;
    EXPECT_EQ(fix.fix, FixKind::kSynchronizer);
    EXPECT_TRUE((fix.operand_a == 0 && fix.operand_b == 3) ||
                (fix.operand_a == 1 && fix.operand_b == 2));
  }
}

TEST(ProgramPlanner, LegacyPlanConversionPreservesShape) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  g.mark_output(g.add_op(OpKind::kMultiply, a, b));
  const Plan legacy = plan_insertions(g, Strategy::kManipulation);
  const ProgramPlan converted = to_program_plan(legacy);
  EXPECT_EQ(converted.inserted_units, legacy.inserted_units);
  ASSERT_EQ(converted.fixes.size(), legacy.fixes.size());
  EXPECT_EQ(converted.fixes[0].fix, FixKind::kDecorrelator);
  EXPECT_EQ(converted.fixes[0].operand_a, 0u);
  EXPECT_EQ(converted.fixes[0].operand_b, 1u);
}

}  // namespace
}  // namespace sc::graph
