/// Tests for the function-synthesis module: Brown-Card FSM functions and
/// the Bernstein/ReSC evaluator, including the decorrelator-chain copy
/// strategy that ties this module back to the paper's contribution.

#include <gtest/gtest.h>

#include <cmath>

#include "bitstream/correlation.hpp"
#include "convert/sng.hpp"
#include "func/bernstein.hpp"
#include "func/fsm_function.hpp"
#include "rng/mt_source.hpp"
#include "test_util.hpp"

namespace sc::func {
namespace {

/// Bernoulli-like stream (the input statistics the Brown-Card FSM analysis
/// assumes; see fsm_function.hpp for why low-discrepancy streams break it).
Bitstream bernoulli_stream(std::uint32_t level, std::size_t n,
                           std::uint32_t seed = 11) {
  convert::Sng sng(std::make_unique<rng::Mt19937Source>(8, seed));
  return sng.generate(level, n);
}

// --- saturating counter -------------------------------------------------------

TEST(SaturatingCounter, StartsMidScaleAndClamps) {
  SaturatingCounter counter(8);
  EXPECT_EQ(counter.state(), 4u);
  for (int i = 0; i < 20; ++i) counter.step(true);
  EXPECT_EQ(counter.state(), 7u);
  for (int i = 0; i < 20; ++i) counter.step(false);
  EXPECT_EQ(counter.state(), 0u);
  counter.reset();
  EXPECT_EQ(counter.state(), 4u);
}

// --- stanh ------------------------------------------------------------------------

class StanhSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StanhSweep, ApproximatesTanh) {
  const std::uint32_t level = GetParam();
  const Bitstream x = bernoulli_stream(level, 8192);
  const unsigned states = 8;
  const Bitstream y = stanh(x, states);
  const double v = 2.0 * (level / 256.0) - 1.0;
  const double expected = std::tanh(states / 2.0 * v);
  EXPECT_NEAR(y.bipolar_value(), expected, 0.12) << "v=" << v;
}

TEST(Stanh, LowDiscrepancyInputBreaksTheFsm) {
  // Documented caveat: a VDC stream at p = 0.5 alternates bits
  // deterministically, pinning the counter at the threshold - the output
  // saturates instead of reading tanh(0) = 0.
  const Bitstream x = test::vdc_stream(128, 2048);
  EXPECT_GT(std::abs(stanh(x, 8).bipolar_value()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Levels, StanhSweep,
                         ::testing::Values(16u, 64u, 96u, 128u, 160u, 192u,
                                           240u));

TEST(Stanh, SaturatesAtRails) {
  EXPECT_GT(stanh(Bitstream(512, true), 8).bipolar_value(), 0.95);
  EXPECT_LT(stanh(Bitstream(512, false), 8).bipolar_value(), -0.95);
}

TEST(Stanh, MoreStatesSteepen) {
  // At a modest positive input, a steeper (more-state) stanh sits closer
  // to +1.
  const Bitstream x = bernoulli_stream(160, 8192);  // v = +0.25
  EXPECT_GT(stanh(x, 16).bipolar_value(), stanh(x, 4).bipolar_value());
}

// --- sexp --------------------------------------------------------------------------

TEST(Sexp, DecaysWithPositiveInput) {
  // p(out) ~ exp(-2 g v) for v > 0.
  const unsigned states = 16;
  const unsigned g = 2;
  for (std::uint32_t level : {144u, 176u, 208u}) {
    const Bitstream x = bernoulli_stream(level, 8192);
    const double v = 2.0 * (level / 256.0) - 1.0;
    const double expected = std::exp(-2.0 * g * v);
    EXPECT_NEAR(sexp(x, states, g).value(), expected, 0.12) << v;
  }
}

TEST(Sexp, NearOneForNegativeInput) {
  const Bitstream x = bernoulli_stream(64, 2048);  // v = -0.5
  EXPECT_GT(sexp(x, 16, 2).value(), 0.9);
}

// --- Bernstein utilities --------------------------------------------------------------

TEST(Bernstein, CoefficientsSampleTheFunction) {
  const auto coefficients =
      bernstein_coefficients([](double t) { return t * t; }, 4);
  ASSERT_EQ(coefficients.size(), 5u);
  EXPECT_DOUBLE_EQ(coefficients[0], 0.0);
  EXPECT_DOUBLE_EQ(coefficients[2], 0.25);
  EXPECT_DOUBLE_EQ(coefficients[4], 1.0);
}

TEST(Bernstein, CoefficientsClampToUnit) {
  const auto coefficients =
      bernstein_coefficients([](double t) { return 2.0 * t - 0.5; }, 2);
  EXPECT_DOUBLE_EQ(coefficients[0], 0.0);   // clamped from -0.5
  EXPECT_DOUBLE_EQ(coefficients[2], 1.0);   // clamped from 1.5
}

TEST(Bernstein, ValueMatchesDeCasteljau) {
  // Linear function: Bernstein form is exact.
  const std::vector<double> linear = {0.2, 0.8};
  EXPECT_NEAR(bernstein_value(linear, 0.25), 0.35, 1e-12);
  // Constant function.
  const std::vector<double> constant = {0.6, 0.6, 0.6};
  EXPECT_NEAR(bernstein_value(constant, 0.7), 0.6, 1e-12);
}

TEST(Bernstein, OperatorConvergesToSmoothFunction) {
  const auto f = [](double t) { return 0.5 + 0.4 * std::sin(3.0 * t); };
  const auto c4 = bernstein_coefficients(f, 4);
  const auto c16 = bernstein_coefficients(f, 16);
  double err4 = 0.0, err16 = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    err4 += std::abs(bernstein_value(c4, x) - f(x));
    err16 += std::abs(bernstein_value(c16, x) - f(x));
  }
  EXPECT_LT(err16, err4);
}

// --- ReSC evaluation -----------------------------------------------------------------

TEST(Resc, EvaluateCountsSelectCoefficientStream) {
  // Two copies all-1: always selects coefficient stream 2.
  std::vector<Bitstream> copies = {Bitstream(8, true), Bitstream(8, true)};
  std::vector<Bitstream> coefficients = {
      Bitstream::from_string("00000000"), Bitstream::from_string("10101010"),
      Bitstream::from_string("11111111")};
  const Bitstream out = resc_evaluate(copies, coefficients);
  EXPECT_EQ(out, Bitstream(8, true));
}

class RescStrategySweep : public ::testing::TestWithParam<double> {};

TEST_P(RescStrategySweep, IndependentCopiesComputeGammaCurve) {
  const double x = GetParam();
  const auto gamma = [](double t) { return std::pow(t, 2.2); };
  RescConfig config;
  config.degree = 6;
  config.stream_length = 1024;
  config.strategy = CopyStrategy::kIndependentSources;
  const double expected =
      bernstein_value(bernstein_coefficients(gamma, 6), x);
  EXPECT_NEAR(resc_apply(gamma, x, config), expected, 0.06) << x;
}

TEST_P(RescStrategySweep, DecorrelatorChainMatchesIndependentSources) {
  const double x = GetParam();
  const auto gamma = [](double t) { return std::pow(t, 2.2); };
  RescConfig config;
  config.degree = 6;
  config.stream_length = 1024;
  const double expected =
      bernstein_value(bernstein_coefficients(gamma, 6), x);

  config.strategy = CopyStrategy::kDecorrelatorChain;
  EXPECT_NEAR(resc_apply(gamma, x, config), expected, 0.08) << x;
}

INSTANTIATE_TEST_SUITE_P(InputGrid, RescStrategySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(Resc, SharedSourceCopiesBreakTheEvaluation) {
  // With one RNG for all copies, the popcount is 0 or n every cycle, so
  // only the extreme coefficient streams get selected - the polynomial
  // collapses to b_0 (1-x) + b_n x.
  const auto gamma = [](double t) { return std::pow(t, 2.2); };
  RescConfig config;
  config.degree = 6;
  config.stream_length = 1024;
  config.strategy = CopyStrategy::kSharedSource;
  const double broken = resc_apply(gamma, 0.5, config);
  const double expected =
      bernstein_value(bernstein_coefficients(gamma, 6), 0.5);
  // Collapsed form at x = 0.5: 0.5 * (b0 + b6) = 0.5 vs expected ~0.22.
  EXPECT_GT(std::abs(broken - expected), 0.15);
}

TEST(Resc, DecorrelatorChainRecoversMostOfTheAccuracy) {
  const auto f = [](double t) { return 0.25 + 0.5 * t * t; };
  RescConfig config;
  config.degree = 4;
  config.stream_length = 1024;

  double err_indep = 0.0, err_shared = 0.0, err_chain = 0.0;
  const auto coefficients = bernstein_coefficients(f, 4);
  for (double x = 0.1; x < 1.0; x += 0.2) {
    const double expected = bernstein_value(coefficients, x);
    config.strategy = CopyStrategy::kIndependentSources;
    err_indep += std::abs(resc_apply(f, x, config) - expected);
    config.strategy = CopyStrategy::kSharedSource;
    err_shared += std::abs(resc_apply(f, x, config) - expected);
    config.strategy = CopyStrategy::kDecorrelatorChain;
    err_chain += std::abs(resc_apply(f, x, config) - expected);
  }
  EXPECT_LT(err_chain, err_shared * 0.5);  // the decorrelator fixes it...
  EXPECT_LT(err_indep, err_shared);        // ...approaching the ideal
}

}  // namespace
}  // namespace sc::func
