/// \file graph_fixtures.hpp
/// Shared registry-program fixtures for the graph/opt test suites and the
/// optimizer bench: the 16-ary product operator + fan-out program behind
/// the chain-decorrelator acceptance criterion, and the random registry
/// program generator used by the differential/property tests.  One
/// definition, so the regression tests and the CI bench self-checks can
/// never drift apart on what workload they validate.

#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "hw/netlist.hpp"

namespace sc::graph::fixtures {

/// Builtins plus a 16-ary product operator (AND across all operands,
/// mutually-uncorrelated requirement) — the widest same-source fan-out a
/// registry allows (kMaxArity), for the chain regression and bench.
inline const OperatorRegistry& wide_registry() {
  static const OperatorRegistry* reg = [] {
    auto* r = new OperatorRegistry(OperatorRegistry::with_builtins());
    OperatorDef def;
    def.name = "product-16";
    def.arity = 16;
    def.requirement = Requirement::kUncorrelated;
    def.exact = [](sc::span<const double> v) {
      double product = 1.0;
      for (double x : v) product *= x;
      return product;
    };
    class AndAll final : public OpEvaluator {
     public:
      bool step(const bool* in) override {
        for (unsigned k = 0; k < 16; ++k) {
          if (!in[k]) return false;
        }
        return true;
      }
    };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<AndAll>();
    };
    def.netlist = [](unsigned) {
      return hw::Netlist("product-16").add(hw::Cell::kAnd2, 15);
    };
    // Accuracy transfer: same AND-tree semantics as the builtin
    // multiply, so the chain-rewrite calibration test gets a bound
    // tighter than the trivial envelope.
    def.error_transfer = error_transfers::nary_and();
    r->add(std::move(def));
    return r;
  }();
  return *reg;
}

/// One input fanned out to all 16 copy slots of product-16: the planner's
/// pairwise insertion charges k(k-1)/2 = 120 decorrelators, the
/// optimizer's chain pass k-1 = 15 links.
inline Program fanout16_program(double x_value = 0.9) {
  GraphBuilder b(wide_registry());
  const Value x = b.input("x", x_value, 0);
  const std::vector<Value> copies(16, x);
  b.output(b.op("product-16", copies), "x^16");
  return b.build();
}

/// Random registry program: a handful of grouped inputs and constants, a
/// random mix of registered operators (unary, binary, and n-ary) over
/// random operands, two outputs.
inline Program random_program(std::mt19937_64& gen, std::size_t op_count = 8) {
  static const char* kOps[] = {
      "multiply",        "scaled-add", "saturating-add",   "subtract",
      "max",             "min",        "divide",           "toggle-add",
      "multiply-bipolar", "negate-bipolar", "scaled-sub-bipolar",
      "stanh-8",         "sexp-8-1",   "bernstein-x2-3"};
  std::uniform_real_distribution<double> unit(0.05, 0.95);
  GraphBuilder b;
  std::vector<Value> values;
  const std::size_t inputs = 3 + gen() % 4;
  for (std::size_t i = 0; i < inputs; ++i) {
    values.push_back(b.input("in" + std::to_string(i), unit(gen),
                             static_cast<unsigned>(gen() % 3)));
  }
  values.push_back(b.constant(unit(gen)));

  const OperatorRegistry& reg = registry();
  for (std::size_t i = 0; i < op_count; ++i) {
    const char* name = kOps[gen() % (sizeof(kOps) / sizeof(kOps[0]))];
    const OperatorDef& def = *reg.find(name);
    std::vector<Value> operands;
    for (unsigned k = 0; k < def.arity; ++k) {
      operands.push_back(values[gen() % values.size()]);
    }
    values.push_back(b.op(name, operands));
  }
  b.output(values.back(), "out");
  b.output(values[values.size() / 2], "mid");
  return b.build();
}

}  // namespace sc::graph::fixtures
