/// End-to-end reproductions of the paper's table shapes with the real RNG
/// configurations (not synthesized correlations): Table II rows for the
/// synchronizer / desynchronizer / decorrelator / isolator / TFM, and the
/// Fig. 2 operating-condition matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "bitstream/correlation.hpp"
#include "bitstream/metrics.hpp"
#include "convert/sng.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/isolator.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "rng/factory.hpp"
#include "test_util.hpp"

namespace sc {
namespace {

using core::PairTransform;

/// Sweep statistics mirroring the Table II columns.
struct SweepResult {
  double input_scc = 0.0;
  double output_scc = 0.0;
  double bias_x = 0.0;
  double bias_y = 0.0;
};

/// Averages input/output SCC and per-stream bias over a value grid, making
/// a fresh transform per pair (hardware reset between operations).
SweepResult sweep(const rng::RngSpec& spec_x, const rng::RngSpec& spec_y,
                  const std::function<std::unique_ptr<PairTransform>()>& make,
                  std::uint32_t stride = 16) {
  ErrorStats in_scc, out_scc, bias_x, bias_y;
  for (std::uint32_t lx = stride; lx < 256; lx += stride) {
    for (std::uint32_t ly = stride; ly < 256; ly += stride) {
      convert::Sng sng_x(rng::make_rng(spec_x));
      convert::Sng sng_y(rng::make_rng(spec_y));
      const Bitstream x = sng_x.generate(lx, test::kN);
      const Bitstream y = sng_y.generate(ly, test::kN);
      auto transform = make();
      const auto out = core::apply(*transform, x, y);
      if (scc_defined(x, y)) in_scc.add(scc(x, y));
      if (scc_defined(out.x, out.y)) out_scc.add(scc(out.x, out.y));
      bias_x.add(out.x.value() - x.value());
      bias_y.add(out.y.value() - y.value());
    }
  }
  return {in_scc.mean(), out_scc.mean(), bias_x.mean(), bias_y.mean()};
}

rng::RngSpec vdc_spec() { return {rng::RngKind::kVanDerCorput, 8, 0, 3, 1, 0}; }
rng::RngSpec halton_spec() { return {rng::RngKind::kHalton, 8, 0, 3, 1, 0}; }
rng::RngSpec lfsr_spec(std::uint32_t seed = 1) {
  return {rng::RngKind::kLfsr, 8, seed, 3, 1, 0};
}

// --- Table II: synchronizer rows ---------------------------------------------

TEST(TableII, SynchronizerVdcHalton) {
  // Paper: input SCC -0.048 -> output 0.996, bias ~ -0.001.
  const auto r = sweep(vdc_spec(), halton_spec(), [] {
    return std::make_unique<core::Synchronizer>();
  });
  EXPECT_LT(std::abs(r.input_scc), 0.15);
  EXPECT_GT(r.output_scc, 0.95);
  EXPECT_LT(std::abs(r.bias_x), 0.01);
  EXPECT_LT(std::abs(r.bias_y), 0.01);
}

TEST(TableII, SynchronizerLfsrVdc) {
  // Paper: input -0.062 -> output 0.903.
  const auto r = sweep(lfsr_spec(), vdc_spec(), [] {
    return std::make_unique<core::Synchronizer>();
  });
  EXPECT_LT(std::abs(r.input_scc), 0.2);
  EXPECT_GT(r.output_scc, 0.85);
  EXPECT_LT(std::abs(r.bias_x), 0.01);
}

TEST(TableII, SynchronizerHaltonHaltonAlreadyCorrelated) {
  // Paper: 0.984 in -> 0.992 out (same RNG on both sides).
  const auto r = sweep(halton_spec(), halton_spec(), [] {
    return std::make_unique<core::Synchronizer>();
  });
  EXPECT_GT(r.input_scc, 0.9);
  EXPECT_GE(r.output_scc, r.input_scc - 0.02);
}

// --- Table II: desynchronizer rows ----------------------------------------------

TEST(TableII, DesynchronizerVdcHalton) {
  // Paper: -0.048 in -> -0.981 out.
  const auto r = sweep(vdc_spec(), halton_spec(), [] {
    return std::make_unique<core::Desynchronizer>();
  });
  EXPECT_LT(r.output_scc, -0.9);
  EXPECT_LT(std::abs(r.bias_x), 0.01);
  EXPECT_LT(std::abs(r.bias_y), 0.01);
}

TEST(TableII, DesynchronizerLfsrVdc) {
  // Paper: -0.062 in -> -0.788 out (weaker on pseudo-random inputs).
  const auto r = sweep(lfsr_spec(), vdc_spec(), [] {
    return std::make_unique<core::Desynchronizer>();
  });
  EXPECT_LT(r.output_scc, -0.6);
}

TEST(TableII, DesynchronizerBreaksPositiveCorrelation) {
  // Paper Halton/Halton: +0.984 in -> -0.930 out.
  const auto r = sweep(halton_spec(), halton_spec(), [] {
    return std::make_unique<core::Desynchronizer>();
  });
  EXPECT_GT(r.input_scc, 0.9);
  EXPECT_LT(r.output_scc, -0.8);
}

// --- Table II: decorrelator rows --------------------------------------------------

TEST(TableII, DecorrelatorLfsrLfsr) {
  // Paper: 0.992 in -> 0.249 out.
  const auto r = sweep(lfsr_spec(1), lfsr_spec(1), [] {
    return std::make_unique<core::Decorrelator>(
        4, std::make_unique<rng::Lfsr>(8, 19), std::make_unique<rng::Lfsr>(8, 37));
  });
  EXPECT_GT(r.input_scc, 0.9);
  EXPECT_LT(std::abs(r.output_scc), 0.4);
  EXPECT_LT(std::abs(r.bias_x), 0.02);
  EXPECT_LT(std::abs(r.bias_y), 0.02);
}

TEST(TableII, DecorrelatorVdcVdc) {
  // Paper: 0.992 in -> 0.168 out.
  const auto r = sweep(vdc_spec(), vdc_spec(), [] {
    return std::make_unique<core::Decorrelator>(
        4, std::make_unique<rng::Lfsr>(8, 19), std::make_unique<rng::Lfsr>(8, 37));
  });
  EXPECT_GT(r.input_scc, 0.9);
  EXPECT_LT(std::abs(r.output_scc), 0.35);
}

// --- Table II: isolator / TFM baselines ---------------------------------------------

TEST(TableII, IsolatorWeakerThanDecorrelator) {
  const auto iso = sweep(lfsr_spec(1), lfsr_spec(1), [] {
    return std::make_unique<core::IsolatorPair>(1);
  });
  const auto dec = sweep(lfsr_spec(1), lfsr_spec(1), [] {
    return std::make_unique<core::Decorrelator>(
        4, std::make_unique<rng::Lfsr>(8, 19), std::make_unique<rng::Lfsr>(8, 37));
  });
  EXPECT_GT(std::abs(iso.output_scc), std::abs(dec.output_scc));
}

TEST(TableII, IsolatorSwingsNegativeOnVdc) {
  // Paper: VDC/VDC isolator insertion lands at -0.637: shifting a
  // low-discrepancy stream by one cycle inverts much of the correlation.
  const auto r = sweep(vdc_spec(), vdc_spec(), [] {
    return std::make_unique<core::IsolatorPair>(1);
  });
  EXPECT_LT(r.output_scc, 0.0);
}

TEST(TableII, TfmDecorrelatesButWithBias) {
  const auto r = sweep(lfsr_spec(1), lfsr_spec(1), [] {
    core::TrackingForecastMemory::Config config;
    config.precision = 8;
    config.shift = 3;
    return std::make_unique<core::TfmPair>(
        config, std::make_unique<rng::Lfsr>(8, 31),
        std::make_unique<rng::Lfsr>(8, 47));
  });
  EXPECT_GT(r.input_scc, 0.9);
  EXPECT_LT(r.output_scc, 0.9);  // reduced, but paper shows only to ~0.65
}

// --- Fig. 2 operating conditions -----------------------------------------------------

TEST(Fig2, EachOperationAccurateAtItsRequiredCorrelation) {
  // multiply @ SCC=0, saturating add @ SCC=-1, subtract @ SCC=+1, on real
  // generator configurations.
  ErrorStats mul_err, sat_err, sub_err;
  for (std::uint32_t lx = 32; lx < 256; lx += 32) {
    for (std::uint32_t ly = 32; ly < 256; ly += 32) {
      const double px = lx / 256.0;
      const double py = ly / 256.0;
      // multiply on VDC x Halton (SCC ~ 0)
      mul_err.add(std::abs((test::vdc_stream(lx) & test::halton3_stream(ly))
                               .value() -
                           px * py));
      // subtract on shared-source pair (SCC = +1)
      {
        rng::VanDerCorput vdc(8);
        Bitstream x, y;
        for (int i = 0; i < 256; ++i) {
          const std::uint32_t r = vdc.next();
          x.push_back(r < lx);
          y.push_back(r < ly);
        }
        sub_err.add(std::abs((x ^ y).value() - std::abs(px - py)));
      }
      // saturating add via desynchronizer (SCC -> -1)
      {
        core::Desynchronizer desync;
        const auto pair = core::apply(desync, test::vdc_stream(lx),
                                      test::halton3_stream(ly));
        sat_err.add(std::abs((pair.x | pair.y).value() -
                             std::min(1.0, px + py)));
      }
    }
  }
  EXPECT_LT(mul_err.mean_abs(), 0.02);
  EXPECT_LT(sub_err.mean_abs(), 0.002);
  EXPECT_LT(sat_err.mean_abs(), 0.02);
}

}  // namespace
}  // namespace sc
