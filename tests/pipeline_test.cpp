/// Integration tests for the §IV SC image pipeline: accuracy ordering,
/// hardware cost ordering, and the paper's headline Table IV relationships.

#include <gtest/gtest.h>

#include "hw/cost.hpp"
#include "hw/designs.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"

namespace sc::img {
namespace {

PipelineConfig small_config() {
  PipelineConfig config;
  config.stream_length = 256;
  config.tile = 10;
  return config;
}

const Image& test_scene() {
  static const Image scene = Image::synthetic_scene(20, 20, 11);
  return scene;
}

TEST(Pipeline, OutputDimensionsMatchInput) {
  const auto result =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  EXPECT_EQ(result.output.width(), 20u);
  EXPECT_EQ(result.output.height(), 20u);
  EXPECT_EQ(result.reference.width(), 20u);
}

TEST(Pipeline, TileCountComputed) {
  const auto result =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  EXPECT_EQ(result.cost.tiles, 4u);  // 20x20 image, 10x10 tiles
}

TEST(Pipeline, NonMultipleImageSizeIsHandled) {
  const Image odd = Image::synthetic_scene(23, 17, 3);
  const auto result =
      run_pipeline(odd, Variant::kSynchronizer, small_config());
  EXPECT_EQ(result.output.width(), 23u);
  EXPECT_EQ(result.output.height(), 17u);
  EXPECT_EQ(result.cost.tiles, 6u);  // 3 x 2 tiles
  EXPECT_LT(result.error, 0.2);
}

TEST(Pipeline, AccuracyOrderingMatchesTableIV) {
  // Paper Table IV: no-manipulation 0.076 >> regeneration 0.019 ~
  // synchronizer 0.020.
  const auto none =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());

  EXPECT_GT(none.error, 1.5 * regen.error);
  EXPECT_GT(none.error, 1.5 * sync.error);
  // Regeneration and synchronizer are the same accuracy class.
  EXPECT_NEAR(regen.error, sync.error, 0.02);
}

TEST(Pipeline, ErrorMagnitudesInPaperRange) {
  const auto none =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  EXPECT_GT(none.error, 0.02);
  EXPECT_LT(none.error, 0.25);
  EXPECT_LT(sync.error, 0.06);
}

TEST(Pipeline, AreaOrderingMatchesTableIV) {
  const auto none =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  EXPECT_LT(none.cost.report.area_um2, sync.cost.report.area_um2);
  EXPECT_LT(none.cost.report.area_um2, regen.cost.report.area_um2);
  // Both manipulating designs stay within ~2x of the base accelerator.
  EXPECT_LT(regen.cost.report.area_um2, 2.5 * none.cost.report.area_um2);
  EXPECT_LT(sync.cost.report.area_um2, 2.0 * none.cost.report.area_um2);
}

TEST(Pipeline, EnergyOrderingMatchesTableIV) {
  // Paper: regeneration 1971 > synchronizer 1505 > none 1383 nJ/frame.
  const auto none =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  EXPECT_GT(regen.cost.energy_nj_frame, sync.cost.energy_nj_frame);
  EXPECT_GT(sync.cost.energy_nj_frame, none.cost.energy_nj_frame);
}

TEST(Pipeline, SynchronizerSavesTotalEnergyVersusRegeneration) {
  // Paper: 24% lower total energy.  Accept anything meaningfully > 10%.
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  const double saving =
      1.0 - sync.cost.energy_nj_frame / regen.cost.energy_nj_frame;
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.60);
}

TEST(Pipeline, ManipulationOverheadRatioNearPaperThreeX) {
  // Paper §IV-B: synchronizer-based manipulation is 3.0x more energy
  // efficient than regeneration-based manipulation.
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  const double ratio =
      regen.cost.overhead_energy_nj / sync.cost.overhead_energy_nj;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(Pipeline, SynchronizerUsesTwiceTheManipulatorUnits) {
  // Paper: "2x more synchronizers than the number of S/D and D/S
  // converters used by regeneration" (200 vs 121 units per tile here).
  const auto regen =
      run_pipeline(test_scene(), Variant::kRegeneration, small_config());
  const auto sync =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  EXPECT_EQ(sync.cost.manipulator_units, 200u);
  EXPECT_EQ(regen.cost.manipulator_units, 121u);
  EXPECT_GT(static_cast<double>(sync.cost.manipulator_units) /
                regen.cost.manipulator_units,
            1.5);
}

TEST(Pipeline, NoManipulationHasZeroOverhead) {
  const auto none =
      run_pipeline(test_scene(), Variant::kNoManipulation, small_config());
  EXPECT_DOUBLE_EQ(none.cost.overhead_energy_nj, 0.0);
  EXPECT_EQ(none.cost.manipulator_units, 0u);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  const auto b =
      run_pipeline(test_scene(), Variant::kSynchronizer, small_config());
  EXPECT_DOUBLE_EQ(mean_abs_error(a.output, b.output), 0.0);
}

TEST(Pipeline, LongerStreamsImproveAccuracy) {
  PipelineConfig short_cfg = small_config();
  short_cfg.stream_length = 64;
  PipelineConfig long_cfg = small_config();
  long_cfg.stream_length = 1024;
  const auto coarse =
      run_pipeline(test_scene(), Variant::kSynchronizer, short_cfg);
  const auto fine =
      run_pipeline(test_scene(), Variant::kSynchronizer, long_cfg);
  EXPECT_LT(fine.error, coarse.error + 0.01);
}

TEST(Pipeline, NetlistLabelsAreDescriptive) {
  EXPECT_EQ(to_string(Variant::kNoManipulation), "SC no-manipulation");
  EXPECT_EQ(to_string(Variant::kRegeneration), "SC regeneration");
  EXPECT_EQ(to_string(Variant::kSynchronizer), "SC synchronizer");
}

TEST(Pipeline, BaseNetlistMatchesStructure) {
  const hw::Netlist base = pipeline_base_netlist(small_config());
  // 100 output S/D counters at 8 bits each contribute 800 plain DFFs.
  EXPECT_GE(base.count(hw::Cell::kDff), 800u);
  // 169 input registers at 8 bits each are enable-flops.
  EXPECT_EQ(base.count(hw::Cell::kDffEn), 169u * 8u);
}

TEST(Pipeline, OverheadNetlistsMatchUnitCounts) {
  const PipelineConfig config = small_config();
  const hw::Netlist sync_overhead =
      pipeline_overhead_netlist(Variant::kSynchronizer, config);
  // 200 synchronizers with state_bits(2D+1) flops each.
  const unsigned bits_per_fsm = hw::state_bits(2 * config.sync_depth + 1);
  EXPECT_EQ(sync_overhead.count(hw::Cell::kDff), 200u * bits_per_fsm);
  const hw::Netlist regen_overhead =
      pipeline_overhead_netlist(Variant::kRegeneration, config);
  // 121 regenerators (16 flops each: counter + hold) + shared 8-bit LFSR.
  EXPECT_EQ(regen_overhead.count(hw::Cell::kDff), 121u * 16u + 8u);
}

}  // namespace
}  // namespace sc::img
