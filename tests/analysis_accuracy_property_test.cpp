/// Soundness campaign for the static accuracy model (error_model.hpp):
/// on random registry programs, the measured per-output |error| of a
/// real execution must never exceed the bound the abstract interpreter
/// predicted — zero unsoundness across >= 200 seed-logged cases with
/// backends rotating reference / kernel / engine and stream lengths
/// rotating 2^10 .. 2^14.  Tightness (measured / bound) is logged so
/// calibration drift is visible without being load-bearing.
///
/// The directed half pins the chain-rewrite calibration: the fanout-16
/// product's predicted bound must cover the measured pairwise -> chain
/// accuracy regression (~0.020 -> ~0.052 at N = 4096) while staying
/// selective enough that the optimizer's Pareto gate rejects the chain
/// under a 0.03 error budget and accepts it under 0.10.
///
/// Reproducing a failure: every case logs its 64-bit case seed via
/// SCOPED_TRACE — rerun with SC_ACCURACY_SEED=<base seed> (and
/// SC_ACCURACY_CASES past the default budget) to replay the campaign.
///
/// Scope caveat: the bounds are seed-agnostic.  They cover SNG
/// quantization, fix residuals, and LFSR phase coupling at campaign
/// scale, but not unlucky exec-seed *generator collisions* (a private
/// MUX select landing on a data stream's effective generator realizes
/// the full Frechet-width deviation).  Those are runtime-seed events a
/// static model cannot price without trivializing every bound — they
/// are flagged by sc_lint's seed-provenance diagnostics instead.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <random>
#include <string>

#include "analysis/error_model.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph_fixtures.hpp"
#include "opt/optimize.hpp"

namespace sc::analysis {
namespace {

using graph::BackendKind;
using graph::ExecConfig;
using graph::ExecutionResult;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 0);
}

TEST(AccuracyProperty, MeasuredErrorWithinPredictedBound) {
  const std::uint64_t base_seed = env_u64("SC_ACCURACY_SEED", 0xACC0ull);
  const std::uint64_t cases = env_u64("SC_ACCURACY_CASES", 210);
  constexpr BackendKind kBackends[] = {
      BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine};
  constexpr std::size_t kLengths[] = {1u << 10, 1u << 12, 1u << 14};
  constexpr Strategy kStrategies[] = {Strategy::kManipulation,
                                      Strategy::kRegeneration,
                                      Strategy::kNone};

  std::size_t checked = 0;
  double tightness_sum = 0.0;
  double tightness_max = 0.0;
  std::size_t trivial_bounds = 0;

  for (std::uint64_t index = 0; index < cases; ++index) {
    const std::uint64_t case_seed = base_seed + index;
    SCOPED_TRACE("case " + std::to_string(index) + " seed " +
                 std::to_string(case_seed) + " (SC_ACCURACY_SEED=" +
                 std::to_string(base_seed) + ")");
    std::mt19937_64 gen(case_seed);
    const Program program = graph::fixtures::random_program(gen);

    ExecConfig exec;
    exec.stream_length = kLengths[index % 3];
    exec.seed = static_cast<std::uint32_t>(gen());
    const Strategy strategy = kStrategies[(index / 3) % 3];
    graph::PlannerConfig planner;
    planner.width = exec.width;
    planner.sync_depth = exec.sync_depth;
    planner.shuffle_depth = exec.shuffle_depth;
    const ProgramPlan plan = plan_program(program, strategy, planner);

    const AccuracyReport predicted =
        plan_accuracy(program, plan, AnalyzerConfig::from(exec));
    ASSERT_EQ(predicted.outputs.size(), program.outputs().size());

    const auto backend = graph::make_backend(kBackends[index % 3]);
    const ExecutionResult result = backend->run(program, plan, exec);
    ASSERT_EQ(result.output_nodes.size(), predicted.outputs.size());

    for (std::size_t k = 0; k < predicted.outputs.size(); ++k) {
      const ErrorBound& bound = predicted.outputs[k];
      ASSERT_EQ(result.output_nodes[k], bound.node);
      const double measured = result.abs_errors[k];
      // The soundness invariant — zero unsoundness tolerated.
      EXPECT_LE(measured, bound.bound + 1e-12)
          << "output '" << bound.name << "': measured |error| " << measured
          << " above predicted bound " << bound.bound << " (bias "
          << bound.bias << ", sigma " << bound.sigma << ")";
      ++checked;
      const double trivial = std::max(bound.exact, 1.0 - bound.exact);
      if (bound.bound >= trivial - 1e-12) ++trivial_bounds;
      if (bound.bound > 0.0) {
        const double ratio = measured / bound.bound;
        tightness_sum += ratio;
        tightness_max = std::max(tightness_max, ratio);
      }
    }
  }

  ASSERT_GE(checked, 2 * 200u);  // two outputs per case, >= 200 cases
  std::printf(
      "[ tightness ] %zu output bounds: mean measured/bound %.3f, max "
      "%.3f, %.1f%% at the trivial envelope\n",
      checked, tightness_sum / static_cast<double>(checked), tightness_max,
      100.0 * static_cast<double>(trivial_bounds) /
          static_cast<double>(checked));
}

TEST(AccuracyCalibration, ChainRewriteBoundTracksMeasuredRegression) {
  const Program program = graph::fixtures::fanout16_program(0.9);
  graph::PlannerConfig planner;
  const ProgramPlan pairwise =
      plan_program(program, Strategy::kManipulation, planner);

  AnalyzerConfig config;
  config.stream_length = 4096;
  const double predicted_pairwise =
      plan_error(program, pairwise, config);

  opt::OptConfig opt_config;
  const opt::OptResult chained = opt::optimize(program, pairwise, opt_config);
  const double predicted_chain =
      plan_error(chained.program, chained.plan, config);

  // The chain rewrite costs accuracy; the model must see that ordering.
  EXPECT_LT(predicted_pairwise, predicted_chain);

  // Both bounds must cover the measured errors on every backend, and the
  // chain bound must sit inside the (0.03, 0.10] window that makes the
  // Pareto gate selective (reject at 0.03, accept at 0.10) while
  // covering the measured ~0.052 regression.
  ExecConfig exec;
  exec.stream_length = 4096;
  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const auto backend = graph::make_backend(kind);
    const double measured_pairwise =
        backend->run(program, pairwise, exec).abs_errors[0];
    const double measured_chain =
        backend->run(chained.program, chained.plan, exec).abs_errors[0];
    EXPECT_LE(measured_pairwise, predicted_pairwise);
    EXPECT_LE(measured_chain, predicted_chain);
    EXPECT_GT(measured_chain, measured_pairwise);
  }
  EXPECT_GT(predicted_chain, 0.03);
  EXPECT_LE(predicted_chain, 0.10);

  // Pareto gate: a 0.03 error budget must roll the chain rewrite back,
  // a 0.10 budget must keep it.
  const auto chain_accepted = [](const opt::OptResult& result) {
    for (const opt::PassReport& report : result.reports) {
      if (report.pass == "chain-decorrelators") return report.accepted;
    }
    return false;
  };
  opt::OptConfig tight = opt_config;
  tight.error_budget = 0.03;
  const opt::OptResult rejected = opt::optimize(program, pairwise, tight);
  EXPECT_FALSE(chain_accepted(rejected));
  EXPECT_EQ(rejected.error_before, rejected.error_after);

  opt::OptConfig loose = opt_config;
  loose.error_budget = 0.10;
  const opt::OptResult accepted = opt::optimize(program, pairwise, loose);
  EXPECT_TRUE(chain_accepted(accepted));
  EXPECT_GT(accepted.error_after, accepted.error_before);

  // The summary reports the error axis beside area and fragility.
  EXPECT_NE(accepted.summary().find("predicted |error|"), std::string::npos);
}

TEST(AccuracyCalibration, MinStreamLengthAnswersTheRmseQuestion) {
  const Program program = graph::fixtures::fanout16_program(0.9);
  graph::PlannerConfig planner;
  const ProgramPlan plan =
      plan_program(program, Strategy::kManipulation, planner);
  AnalyzerConfig config;

  // The stochastic half shrinks with N, so some length reaches 0.06...
  const std::size_t needed = min_stream_length(program, plan, 0.06, config);
  ASSERT_GT(needed, 0u);
  config.stream_length = needed;
  EXPECT_LE(plan_error(program, plan, config), 0.06);

  // ...while a target below the deterministic bias is unreachable at any
  // length.
  EXPECT_EQ(min_stream_length(program, plan, 1e-6, config), 0u);
}

}  // namespace
}  // namespace sc::analysis
