/// Tests for the pluggable execution backends and the seed-derivation
/// scheme: differential bit-identity of Reference / Kernel / Engine on the
/// same seeded Program (including randomly generated registry programs),
/// the planner-as-a-property check, seed distinctness regression, chunked
/// long-stream execution, and end-to-end accuracy through operators the
/// executor has no hardcoded knowledge of.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "graph/seeds.hpp"
#include "graph_fixtures.hpp"
#include "img/sc_pipeline.hpp"

namespace sc::graph {
namespace {

using fixtures::random_program;

/// Mirrors the planner's satisfaction rule for the property test (also
/// exported as graph::requirement_satisfied; kept spelled out here so the
/// property test does not certify the implementation with itself).
bool provably_satisfied(Requirement requirement, Relation relation) {
  switch (requirement) {
    case Requirement::kAgnostic:
      return true;
    case Requirement::kUncorrelated:
      return relation == Relation::kIndependent;
    case Requirement::kPositive:
      return relation == Relation::kPositive;
    case Requirement::kNegative:
      return false;
  }
  return false;
}

void expect_identical(const ExecutionResult& a, const ExecutionResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.streams.size(), b.streams.size()) << label;
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    EXPECT_EQ(a.streams[s], b.streams[s]) << label << " stream " << s;
  }
  ASSERT_EQ(a.values.size(), b.values.size()) << label;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]) << label << " value " << i;
  }
}

// --- satellite: seed derivation --------------------------------------------

TEST(SeedDerivation, AllSeedsOfALargePlanAreDistinct) {
  // Regression for the executor's old ad-hoc offsets (`seed + 2001 + id`
  // vs `seed + 2001 + 2*id`), whose affine families collide across fix
  // kinds and node ids.  Every derived seed of a large plan must be
  // unique.
  std::mt19937_64 gen(7);
  std::vector<Value> dummy;
  GraphBuilder b;
  std::vector<Value> values;
  for (unsigned i = 0; i < 48; ++i) {
    values.push_back(b.input("i" + std::to_string(i), 0.25 + 0.01 * (i % 50),
                             i % 8));
  }
  for (unsigned i = 0; i < 300; ++i) {
    const char* name = (i % 3 == 0) ? "multiply"
                       : (i % 3 == 1) ? "subtract"
                                      : "scaled-add";
    values.push_back(
        b.op(name, {values[gen() % values.size()],
                    values[gen() % values.size()]}));
  }
  b.output(values.back());
  const Program p = b.build();

  for (const Strategy strategy :
       {Strategy::kManipulation, Strategy::kRegeneration}) {
    const ProgramPlan plan = plan_program(p, strategy);
    ASSERT_GT(plan.inserted_units, 50u);
    // derived_seeds returns the 32-bit folds the LFSRs actually consume
    // (the 64-bit mixes are distinct by construction; the fold is where a
    // birthday or 0->1-remap collision could alias two generators).
    const std::vector<std::uint32_t> seeds = derived_seeds(p, plan, {});
    ASSERT_GT(seeds.size(), 100u);
    std::set<std::uint32_t> unique(seeds.begin(), seeds.end());
    EXPECT_EQ(unique.size(), seeds.size())
        << to_string(strategy) << ": " << seeds.size() - unique.size()
        << " colliding derived seeds";
  }

  // The 32-bit fold never returns the absorbing LFSR seed 0.
  for (std::uint32_t node = 0; node < 1000; ++node) {
    for (const auto role : {seeds::Role::kGroupTrace, seeds::Role::kFixAuxA,
                            seeds::Role::kFixAuxB, seeds::Role::kOpPrivate}) {
      EXPECT_NE(seeds::derive_seed32(3, node, role, node % 5), 0u);
    }
  }
}

TEST(SeedDerivation, DistinctRolesAndLanesNeverAlias) {
  // The old bug shape: `2001 + id` (shared regen) meeting `2001 + 2*id`
  // (distinct regen) at id' = 2*id.  In the packed-key scheme the role and
  // lane fields occupy disjoint bits, so cross-family aliasing is
  // impossible by construction.
  std::set<std::uint64_t> seen;
  std::size_t count = 0;
  for (std::uint32_t node = 0; node < 200; ++node) {
    for (unsigned role = 1; role <= 4; ++role) {
      for (std::uint32_t lane = 0; lane < 4; ++lane) {
        seen.insert(seeds::derive_seed(
            42, node, static_cast<seeds::Role>(role), lane));
        ++count;
      }
    }
  }
  EXPECT_EQ(seen.size(), count);
}

// --- satellite: planner property -------------------------------------------

TEST(PlannerProperty, ManipulationLeavesNoProvablyViolatedPair) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    std::mt19937_64 gen(seed);
    const Program p = random_program(gen);
    const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
    EXPECT_TRUE(plan.violations.empty()) << "program seed " << seed;
    for (const PairFix& fix : plan.fixes) {
      if (provably_satisfied(fix.requirement, fix.relation)) continue;
      EXPECT_NE(fix.fix, FixKind::kNone)
          << "program seed " << seed << " node " << fix.op_node << " pair ("
          << fix.operand_a << ", " << fix.operand_b << ") requirement "
          << to_string(fix.requirement) << " left unfixed";
    }
    // And the no-op strategy records exactly the unsatisfied ops.
    const ProgramPlan none = plan_program(p, Strategy::kNone);
    std::set<NodeId> violated(none.violations.begin(), none.violations.end());
    for (const PairFix& fix : none.fixes) {
      if (!provably_satisfied(fix.requirement, fix.relation)) {
        EXPECT_TRUE(violated.count(fix.op_node) == 1)
            << "program seed " << seed;
      }
    }
  }
}

// --- satellite: backend differential ---------------------------------------

TEST(Backends, BitIdenticalOnRandomProgramsUnderEveryStrategy) {
  const auto reference = make_backend(BackendKind::kReference);
  const auto kernel = make_backend(BackendKind::kKernel);
  const auto engine = make_backend(BackendKind::kEngine);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 gen(1000 + seed);
    const Program p = random_program(gen);
    for (const Strategy strategy :
         {Strategy::kNone, Strategy::kManipulation, Strategy::kRegeneration}) {
      const ProgramPlan plan = plan_program(p, strategy);
      ExecConfig config;
      config.stream_length = 300;  // not a word multiple
      config.seed = static_cast<std::uint32_t>(77 + seed);
      const ExecutionResult r = reference->run(p, plan, config);
      const ExecutionResult k = kernel->run(p, plan, config);
      const ExecutionResult e = engine->run(p, plan, config);
      const std::string label =
          "seed " + std::to_string(seed) + " " + to_string(strategy);
      expect_identical(r, k, label + " kernel");
      expect_identical(r, e, label + " engine");
    }
  }
}

TEST(Backends, EngineMatchesKernelAcrossChunkBoundaries) {
  std::mt19937_64 gen(424242);
  const Program p = random_program(gen, 10);
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

  // Tiny session chunks force many boundary crossings (1000 = 7x128 + 104,
  // with a non-word tail); the pooled engine backend must still match the
  // whole-stream kernel path bit for bit.
  engine::Session session({2, /*chunk_bits=*/128, 0x5eed});
  const auto engine_backend = make_engine_backend(session);
  const auto kernel_backend = make_backend(BackendKind::kKernel);

  ExecConfig config;
  config.stream_length = 1000;
  const ExecutionResult chunked = engine_backend->run(p, plan, config);
  const ExecutionResult whole = kernel_backend->run(p, plan, config);
  expect_identical(chunked, whole, "chunked-vs-whole");
  EXPECT_GT(session.stats().chunked_runs, 0u);
  EXPECT_EQ(session.stats().stream_bits, 1000u);
}

TEST(Backends, EngineRunsLongStreamsWithoutMaterializing) {
  GraphBuilder b;
  const Value x = b.input("x", 0.6, 0);
  const Value y = b.input("y", 0.5, 0);  // same group: needs a decorrelator
  const Value z = b.input("z", 0.3, 1);
  b.output(b.op("scaled-add", {b.op("multiply", {x, y}), z}), "out");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

  ExecConfig config;
  config.stream_length = std::size_t{1} << 18;  // 256 Kbit per node
  config.width = 16;  // long runs need a long-period generator (2^16 - 1)
  config.keep_streams = false;
  const ExecutionResult streamed =
      make_backend(BackendKind::kEngine)->run(p, plan, config);
  EXPECT_TRUE(streamed.streams.empty());

  config.keep_streams = true;
  const ExecutionResult whole =
      make_backend(BackendKind::kKernel)->run(p, plan, config);
  ASSERT_EQ(streamed.values.size(), whole.values.size());
  for (std::size_t i = 0; i < whole.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed.values[i], whole.values[i]);
  }
  // A long stream averages the quantization away: 0.5*(0.6*0.5) + 0.15.
  EXPECT_NEAR(streamed.values[0], 0.3, 0.01);
}

// --- acceptance: operators the executor has no hardcoded knowledge of ------

TEST(CustomOperator, PlannedFixedAndExecutedThroughTheRegistry) {
  // A NAND "multiplier" (1 - a*b for uncorrelated operands) registered at
  // test scope: neither the planner nor any backend has ever heard of it,
  // yet the manipulation plan inserts a decorrelator and restores
  // accuracy.
  OperatorRegistry reg = OperatorRegistry::with_builtins();
  OperatorDef def;
  def.name = "nand-complement";
  def.arity = 2;
  def.requirement = Requirement::kUncorrelated;
  def.exact = [](sc::span<const double> v) { return 1.0 - v[0] * v[1]; };
  class NandEvaluator final : public OpEvaluator {
   public:
    bool step(const bool* in) override { return !(in[0] && in[1]); }
  };
  def.make_evaluator = [](const OpContext&) {
    return std::make_unique<NandEvaluator>();
  };
  reg.add(std::move(def));

  GraphBuilder b(reg);
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.5, 0);  // same trace: SCC = +1
  b.output(b.op("nand-complement", {x, y}), "out");
  const Program p = b.build();

  const ProgramPlan broken_plan = plan_program(p, Strategy::kNone);
  const ProgramPlan fixed_plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(fixed_plan.inserted_units, 1u);
  EXPECT_EQ(fixed_plan.fixes[0].fix, FixKind::kDecorrelator);

  for (const BackendKind kind :
       {BackendKind::kReference, BackendKind::kKernel, BackendKind::kEngine}) {
    const auto backend = make_backend(kind);
    const double broken = backend->run(p, broken_plan, {}).mean_abs_error;
    const double fixed = backend->run(p, fixed_plan, {}).mean_abs_error;
    // Same-trace NAND computes 1 - min(a,b) = 0.5, exact is 0.65.
    EXPECT_GT(broken, 0.10) << backend->name();
    EXPECT_LT(fixed, 0.05) << backend->name();
  }
}

TEST(Bernstein, PlannerBuildsTheDecorrelatorChainAutomatically) {
  // Feeding one stream to every copy input reproduces the "shared source"
  // failure of func/bernstein.hpp; the planner's pairwise decorrelators
  // recover the polynomial — the paper's fix, discovered from the
  // registry requirement alone.
  GraphBuilder b;
  const Value x = b.input("x", 0.5, 0);
  b.output(b.op("bernstein-x2-3", {x, x, x}), "fx");
  const Program p = b.build();

  ExecConfig config;
  config.stream_length = 2048;
  const auto backend = make_backend(BackendKind::kKernel);
  const double broken =
      backend->run(p, plan_program(p, Strategy::kNone), config)
          .mean_abs_error;
  const double fixed =
      backend->run(p, plan_program(p, Strategy::kManipulation), config)
          .mean_abs_error;
  EXPECT_GT(broken, 0.1);   // popcount collapses to 0 or n
  EXPECT_LT(fixed, 0.06);   // decorrelated copies track x^2 = 0.25
  EXPECT_LT(fixed, broken * 0.5);
}

TEST(WindowProgram, PipelineStagesComposeAndPlanLikeThePaper) {
  std::array<double, 16> pixels{};
  for (std::size_t i = 0; i < 16; ++i) {
    pixels[i] = (i % 4) * 0.25 + (i / 4) * 0.05;  // a soft gradient
  }
  const Program p = img::window_program(pixels);
  EXPECT_NEAR(p.exact_value(p.find("edge")), img::window_reference(pixels),
              1e-12);

  // The planner rediscovers the paper's Table IV synchronizer variant: the
  // Roberts diagonals see computation-induced correlation (shared blur
  // ancestry) and get a synchronizer each.
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  EXPECT_EQ(plan.inserted_units, 2u);
  for (const PairFix& fix : plan.fixes) {
    if (fix.fix == FixKind::kNone) continue;
    EXPECT_EQ(fix.fix, FixKind::kSynchronizer);
    EXPECT_EQ(fix.relation, Relation::kUnknown);
  }

  ExecConfig config;
  config.stream_length = 4096;
  const auto backend = make_backend(BackendKind::kKernel);
  const double fixed = backend->run(p, plan, config).mean_abs_error;
  const double broken =
      backend->run(p, plan_program(p, Strategy::kNone), config)
          .mean_abs_error;
  EXPECT_LT(fixed, 0.05);
  EXPECT_LE(fixed, broken + 0.01);  // never worse than unmanaged
}

TEST(Backends, FactoryNamesAreStable) {
  EXPECT_EQ(make_backend(BackendKind::kReference)->name(), "reference");
  EXPECT_EQ(make_backend(BackendKind::kKernel)->name(), "kernel");
  EXPECT_EQ(make_backend(BackendKind::kEngine)->name(), "engine");
}

}  // namespace
}  // namespace sc::graph
