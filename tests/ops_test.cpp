/// Tests for the paper's improved operators (Fig. 5): sync-max, sync-min,
/// and the desynchronizer-based saturating adder, including the accuracy
/// comparison against the naive single-gate designs (Table III shape).

#include <gtest/gtest.h>

#include <tuple>

#include "arith/minmax.hpp"
#include "bitstream/metrics.hpp"
#include "bitstream/synthesis.hpp"
#include "convert/sng.hpp"
#include "core/ops.hpp"
#include "rng/counter_source.hpp"
#include "rng/lfsr.hpp"
#include "test_util.hpp"

namespace sc::core {
namespace {

class ImprovedOpsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
 protected:
  double px() const { return std::get<0>(GetParam()) / 256.0; }
  double py() const { return std::get<1>(GetParam()) / 256.0; }
  Bitstream x() const { return test::vdc_stream(std::get<0>(GetParam())); }
  Bitstream y() const { return test::halton3_stream(std::get<1>(GetParam())); }
};

TEST_P(ImprovedOpsSweep, SyncMaxIsAccurateOnUncorrelatedInputs) {
  const Bitstream z = sync_max(x(), y());
  EXPECT_NEAR(z.value(), std::max(px(), py()), 4.0 / 256.0);
}

TEST_P(ImprovedOpsSweep, SyncMinIsAccurateOnUncorrelatedInputs) {
  const Bitstream z = sync_min(x(), y());
  EXPECT_NEAR(z.value(), std::min(px(), py()), 4.0 / 256.0);
}

TEST_P(ImprovedOpsSweep, DesyncSaturatingAddIsAccurate) {
  const Bitstream z = desync_saturating_add(x(), y());
  EXPECT_NEAR(z.value(), std::min(1.0, px() + py()), 6.0 / 256.0);
}

TEST_P(ImprovedOpsSweep, SyncMaxBeatsPlainOrMax) {
  const double exact = std::max(px(), py());
  const double naive = sc::abs_error(arith::or_max(x(), y()), exact);
  const double improved = sc::abs_error(sync_max(x(), y()), exact);
  EXPECT_LE(improved, naive + 1.5 / 256.0);
}

TEST_P(ImprovedOpsSweep, SyncMinBeatsPlainAndMin) {
  // Near the rails the naive AND is already near-exact while the
  // synchronizer can strand one bit, so allow a one-residual-bit epsilon.
  const double exact = std::min(px(), py());
  const double naive = sc::abs_error(arith::and_min(x(), y()), exact);
  const double improved = sc::abs_error(sync_min(x(), y()), exact);
  EXPECT_LE(improved, naive + 1.5 / 256.0);
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, ImprovedOpsSweep,
    ::testing::Combine(::testing::Values(16u, 64u, 112u, 144u, 208u, 248u),
                       ::testing::Values(32u, 80u, 128u, 176u, 232u)));

TEST(SyncMax, DepthStrandingErrorBoundedByDepthOverN) {
  // On fine-grained low-discrepancy inputs the disagreements interleave,
  // so extra depth only strands more bits: the added error stays bounded
  // by D/N (the maximum stranded count per stream).
  for (unsigned depth : {1u, 4u, 16u}) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 16; lx <= 240; lx += 28) {
      for (std::uint32_t ly = 16; ly <= 240; ly += 28) {
        const Bitstream z = sync_max(test::vdc_stream(lx),
                                     test::halton3_stream(ly), {depth, false});
        total += std::abs(z.value() - std::max(lx, ly) / 256.0);
        ++count;
      }
    }
    EXPECT_LE(total / count, depth / 256.0 + 0.005) << "depth " << depth;
  }
}

TEST(SyncMax, FlushReducesDeepDepthStrandingError) {
  // Paper §III-B: the flush extension mitigates stuck saved bits.
  auto average_error = [](unsigned depth, bool flush) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 16; lx <= 240; lx += 28) {
      for (std::uint32_t ly = 16; ly <= 240; ly += 28) {
        const Bitstream z = sync_max(test::vdc_stream(lx),
                                     test::halton3_stream(ly), {depth, flush});
        total += std::abs(z.value() - std::max(lx, ly) / 256.0);
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(average_error(8, true), average_error(8, false));
  EXPECT_LT(average_error(16, true), average_error(16, false));
}

TEST(SyncMax, DepthHelpsClusteredDisagreements) {
  // When disagreements come in long runs - here a ramp (counter-SNG)
  // stream against an LFSR stream - depth 1 saturates immediately and
  // passes unpaired bits; deeper saves absorb the runs (paper §III-B:
  // "more resilient to runs of 1s and 0s").
  auto average_error = [](unsigned depth) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 32; lx <= 224; lx += 48) {
      for (std::uint32_t ly = 48; ly <= 240; ly += 48) {
        convert::Sng ramp(std::make_unique<rng::CounterSource>(8));
        convert::Sng noise(std::make_unique<rng::Lfsr>(8, 7));
        const Bitstream x = ramp.generate(lx, 256);
        const Bitstream y = noise.generate(ly, 256);
        total += std::abs(sync_max(x, y, {depth, false}).value() -
                          std::max(lx, ly) / 256.0);
        ++count;
      }
    }
    return total / count;
  };
  const double d1 = average_error(1);
  const double d4 = average_error(4);
  const double d16 = average_error(16);
  EXPECT_LT(d4, d1);
  EXPECT_LT(d16, d4);
}

TEST(SyncMax, HandlesEqualOperands) {
  const Bitstream z = sync_max(test::vdc_stream(128), test::halton3_stream(128));
  EXPECT_NEAR(z.value(), 0.5, 4.0 / 256.0);
}

TEST(SyncMax, HandlesExtremeOperands) {
  EXPECT_NEAR(sync_max(test::vdc_stream(0), test::halton3_stream(200)).value(),
              200.0 / 256.0, 3.0 / 256.0);
  // An all-ones operand can strand one saved bit (no x = 0 cycle ever
  // arrives to pair it), costing at most D/N.
  EXPECT_NEAR(sync_max(test::vdc_stream(256), test::halton3_stream(100)).value(),
              1.0, 2.0 / 256.0);
}

TEST(SyncMin, HandlesExtremeOperands) {
  EXPECT_NEAR(sync_min(test::vdc_stream(0), test::halton3_stream(200)).value(),
              0.0, 1e-12);
  EXPECT_NEAR(sync_min(test::vdc_stream(256), test::halton3_stream(100)).value(),
              100.0 / 256.0, 3.0 / 256.0);
}

TEST(SyncMinMax, MinPlusMaxEqualsSumOfInputsUpToResidual) {
  // max + min = x + y pointwise; the synchronizer preserves the pair's
  // total ones up to its residual credit, so the identity holds within D.
  for (std::uint32_t lx : {40u, 128u, 230u}) {
    for (std::uint32_t ly : {60u, 128u, 210u}) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      const auto mx = sync_max(x, y);
      const auto mn = sync_min(x, y);
      EXPECT_NEAR(mx.value() + mn.value(), (lx + ly) / 256.0, 2.0 / 256.0);
    }
  }
}

TEST(DesyncSaturatingAdd, SaturatesAtOne) {
  const Bitstream z =
      desync_saturating_add(test::vdc_stream(200), test::halton3_stream(150));
  EXPECT_NEAR(z.value(), 1.0, 3.0 / 256.0);
}

TEST(DesyncSaturatingAdd, BeatsPlainOrOnCorrelatedInputs) {
  // On positively correlated inputs a bare OR computes max instead of the
  // saturating sum; the desynchronizer restores accuracy.
  const Bitstream x = test::lfsr_stream(100, 1);
  const Bitstream y = test::lfsr_stream(120, 1);
  const double exact = std::min(1.0, (100.0 + 120.0) / 256.0);
  const double naive = sc::abs_error(x | y, exact);
  const double improved = sc::abs_error(desync_saturating_add(x, y), exact);
  EXPECT_LT(improved, naive);
}

TEST(ImprovedOps, MeanAbsErrorShapeMatchesTableIII) {
  // Reproduce the Table III ordering on a coarse exhaustive sweep:
  // sync-max ~0.003 << OR-max ~0.087; sync-min ~0.005 << AND-min ~0.082.
  sc::ErrorStats or_err, sync_err, and_err, syncmin_err;
  for (std::uint32_t lx = 0; lx <= 256; lx += 16) {
    for (std::uint32_t ly = 0; ly <= 256; ly += 16) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      const double mx = std::max(lx, ly) / 256.0;
      const double mn = std::min(lx, ly) / 256.0;
      or_err.add(sc::abs_error(arith::or_max(x, y), mx));
      sync_err.add(sc::abs_error(sync_max(x, y), mx));
      and_err.add(sc::abs_error(arith::and_min(x, y), mn));
      syncmin_err.add(sc::abs_error(sync_min(x, y), mn));
    }
  }
  EXPECT_GT(or_err.mean_abs(), 0.04);    // naive OR-max is way off
  EXPECT_LT(sync_err.mean_abs(), 0.01);  // sync-max is near-exact
  EXPECT_GT(and_err.mean_abs(), 0.04);
  EXPECT_LT(syncmin_err.mean_abs(), 0.01);
  EXPECT_LT(sync_err.mean_abs() * 5, or_err.mean_abs());
  EXPECT_LT(syncmin_err.mean_abs() * 5, and_err.mean_abs());
}

TEST(ImprovedOps, SyncMaxMatchesCaMaxAccuracyClass) {
  // Paper: sync-max accuracy ~0.003 vs CA-max ~0.006 - same class, an
  // order below the naive OR design.
  sc::ErrorStats sync_err, ca_err;
  for (std::uint32_t lx = 8; lx <= 248; lx += 20) {
    for (std::uint32_t ly = 8; ly <= 248; ly += 20) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      const double mx = std::max(lx, ly) / 256.0;
      sync_err.add(sc::abs_error(sync_max(x, y), mx));
      ca_err.add(sc::abs_error(arith::ca_max(x, y), mx));
    }
  }
  EXPECT_LT(sync_err.mean_abs(), 0.02);
  EXPECT_LT(ca_err.mean_abs(), 0.02);
}

}  // namespace
}  // namespace sc::core
