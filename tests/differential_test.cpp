/// Cross-backend differential fuzzer: random registry programs x random
/// fault plans x odd lengths and chunk sizes, asserting bit-identity of
/// the reference / kernel / engine backends (default-chunk and small-chunk
/// pooled session) with and without ExecConfig::optimize.
///
/// Reproducing a failure: every case logs its 64-bit case seed via
/// SCOPED_TRACE, so the ctest output names the exact (program, fault plan,
/// length, chunk size) that diverged — rerun with SC_FUZZ_SEED=<base seed>
/// (and SC_FUZZ_CASES if the failing index was past the default budget) to
/// replay the identical campaign.  SC_FUZZ_CASES scales the budget: the CI
/// matrix runs the default 220 cases (the ISSUE's >= 200 acceptance bar),
/// the sanitizer job the same via ctest.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "engine/session.hpp"
#include "fault_fixtures.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph_fixtures.hpp"
#include "obs/telemetry.hpp"

namespace sc::graph {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 0);
}

TEST(DifferentialFuzz, BackendsBitIdenticalUnderRandomFaultPlans) {
  const std::uint64_t base_seed = env_u64("SC_FUZZ_SEED", 0xD1FFull);
  const std::uint64_t cases = env_u64("SC_FUZZ_CASES", 220);
  const Strategy strategies[] = {Strategy::kNone, Strategy::kManipulation,
                                 Strategy::kRegeneration};
  const std::size_t chunk_bits_choices[] = {64, 128, 192, 256};

  std::size_t faulted_cases = 0;
  for (std::uint64_t index = 0; index < cases; ++index) {
    const std::uint64_t case_seed = base_seed + index;
    SCOPED_TRACE("case " + std::to_string(index) + " seed " +
                 std::to_string(case_seed) + " (SC_FUZZ_SEED=" +
                 std::to_string(base_seed) + ")");
    std::mt19937_64 gen(case_seed);

    const Program program = fixtures::random_program(gen, 3 + gen() % 7);
    const ProgramPlan plan =
        plan_program(program, strategies[gen() % 3]);
    const fault::FaultPlan faults =
        fault::fixtures::random_fault_plan(gen, program);
    faulted_cases += !faults.empty();

    ExecConfig config;
    config.stream_length = 1 + gen() % 700;  // odd shapes incl. tiny tails
    config.width = 8;
    config.seed = static_cast<std::uint32_t>(gen());
    config.optimize = index % 2 == 1;  // with and without the optimizer
    config.fault_plan = &faults;

    const std::size_t chunk_bits = chunk_bits_choices[gen() % 4];
    engine::Session session({1 + static_cast<unsigned>(index % 2), chunk_bits,
                             case_seed});
    std::unique_ptr<ExecutorBackend> candidates[] = {
        make_backend(BackendKind::kKernel),
        make_backend(BackendKind::kEngine),
        make_engine_backend(session),
    };
    const ExecutionResult want =
        make_backend(BackendKind::kReference)->run(program, plan, config);
    // A fifth of the campaign runs the candidates under full telemetry
    // (tracing + metrics + a probe) against the *unobserved* reference:
    // observation must be invisible at bit level, fault plans included.
    obs::Telemetry telemetry;
    if (index % 5 == 0) {
      telemetry.add_probe({"x", "", 96});
      config.telemetry = &telemetry;
    }
    for (const auto& candidate : candidates) {
      ASSERT_TRUE(
          fault::fixtures::conforms(*candidate, program, plan, config, want))
          << "stream_length " << config.stream_length << " chunk_bits "
          << chunk_bits << " strategy " << to_string(plan.strategy)
          << " optimize " << config.optimize;
    }
  }
  // The campaign must actually exercise faults (empty plans are allowed
  // per case but cannot dominate).
  EXPECT_GT(faulted_cases, cases / 2);
}

}  // namespace
}  // namespace sc::graph
