/// Tests for the correlation-aware dataflow module: lineage classification,
/// insertion planning under all three strategies, bit-true execution, and
/// the end-to-end accuracy/cost ordering the paper's §IV comparison
/// predicts for any graph.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>

#include "bitstream/correlation.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "hw/cost.hpp"

namespace sc::graph {
namespace {

/// a*b + c*d with inputs drawn from only two RNG groups - multiplies see
/// correlated operands and need decorrelation.
DataflowGraph product_sum_graph() {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, /*rng_group=*/0);
  const NodeId b = g.add_input("b", 0.5, 0);  // same group as a!
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId d = g.add_input("d", 0.8, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  const NodeId cd = g.add_op(OpKind::kMultiply, c, d);
  const NodeId sum = g.add_op(OpKind::kScaledAdd, ab, cd);
  g.mark_output(sum);
  return g;
}

/// |x*y - z| : a subtract that needs positive correlation between two
/// streams with shared ancestry (the "computation-induced" case).
DataflowGraph edge_like_graph() {
  DataflowGraph g;
  const NodeId x = g.add_input("x", 0.7, 0);
  const NodeId y = g.add_input("y", 0.9, 1);
  const NodeId z = g.add_input("z", 0.4, 2);
  const NodeId xy = g.add_op(OpKind::kMultiply, x, y);
  const NodeId diff = g.add_op(OpKind::kSubtractAbs, xy, z);
  g.mark_output(diff);
  return g;
}

TEST(Dataflow, RequirementsMatchFig2) {
  EXPECT_EQ(requirement_of(OpKind::kMultiply), Requirement::kUncorrelated);
  EXPECT_EQ(requirement_of(OpKind::kScaledAdd), Requirement::kAgnostic);
  EXPECT_EQ(requirement_of(OpKind::kSaturatingAdd), Requirement::kNegative);
  EXPECT_EQ(requirement_of(OpKind::kSubtractAbs), Requirement::kPositive);
  EXPECT_EQ(requirement_of(OpKind::kMax), Requirement::kPositive);
  EXPECT_EQ(requirement_of(OpKind::kMin), Requirement::kPositive);
}

TEST(Dataflow, ExactValueSemantics) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.7, 1);
  EXPECT_DOUBLE_EQ(g.exact_value(g.add_op(OpKind::kMultiply, a, b)), 0.42);
  EXPECT_DOUBLE_EQ(g.exact_value(g.add_op(OpKind::kScaledAdd, a, b)), 0.65);
  EXPECT_DOUBLE_EQ(g.exact_value(g.add_op(OpKind::kSaturatingAdd, a, b)),
                   1.0);
  EXPECT_NEAR(g.exact_value(g.add_op(OpKind::kSubtractAbs, a, b)), 0.1,
              1e-12);
  EXPECT_DOUBLE_EQ(g.exact_value(g.add_op(OpKind::kMax, a, b)), 0.7);
  EXPECT_DOUBLE_EQ(g.exact_value(g.add_op(OpKind::kMin, a, b)), 0.6);
}

TEST(Dataflow, OpNodesInTopologicalOrder) {
  const DataflowGraph g = product_sum_graph();
  const auto ops = g.op_nodes();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_LT(ops[0], ops[2]);
}

// --- classification -------------------------------------------------------------

TEST(Classify, SameGroupInputsArePositive) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.5, 0);
  const NodeId b = g.add_input("b", 0.7, 0);
  EXPECT_EQ(classify(g, a, b), Relation::kPositive);
}

TEST(Classify, DifferentGroupInputsAreIndependent) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.5, 0);
  const NodeId b = g.add_input("b", 0.7, 1);
  EXPECT_EQ(classify(g, a, b), Relation::kIndependent);
}

TEST(Classify, SharedAncestryIsUnknown) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.5, 0);
  const NodeId b = g.add_input("b", 0.7, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  EXPECT_EQ(classify(g, ab, a), Relation::kUnknown);
  // A fresh group stays independent of the product.
  const NodeId c = g.add_input("c", 0.2, 2);
  EXPECT_EQ(classify(g, ab, c), Relation::kIndependent);
}

// --- planning --------------------------------------------------------------------

TEST(Planner, NoStrategyRecordsViolations) {
  const Plan plan = plan_insertions(product_sum_graph(), Strategy::kNone);
  // Both multiplies use same-group operands -> 2 violations; the scaled
  // add is agnostic.
  EXPECT_EQ(plan.violations.size(), 2u);
  EXPECT_EQ(plan.inserted_units, 0u);
  EXPECT_EQ(plan.overhead.total_cells(), 0u);
}

TEST(Planner, ManipulationInsertsDecorrelatorsForMultiplies) {
  const Plan plan =
      plan_insertions(product_sum_graph(), Strategy::kManipulation);
  EXPECT_TRUE(plan.violations.empty());
  EXPECT_EQ(plan.inserted_units, 2u);
  const auto ops = product_sum_graph().op_nodes();
  EXPECT_EQ(plan.fix_for(ops[0]), FixKind::kDecorrelator);
  EXPECT_EQ(plan.fix_for(ops[1]), FixKind::kDecorrelator);
  EXPECT_EQ(plan.fix_for(ops[2]), FixKind::kNone);  // scaled add agnostic
}

TEST(Planner, ManipulationInsertsSynchronizerForSubtract) {
  const Plan plan =
      plan_insertions(edge_like_graph(), Strategy::kManipulation);
  const auto ops = edge_like_graph().op_nodes();
  EXPECT_EQ(plan.fix_for(ops[0]), FixKind::kNone);  // multiply: indep groups
  EXPECT_EQ(plan.fix_for(ops[1]), FixKind::kSynchronizer);
}

TEST(Planner, RegenerationStrategyUsesConverters) {
  const Plan plan =
      plan_insertions(edge_like_graph(), Strategy::kRegeneration);
  const auto ops = edge_like_graph().op_nodes();
  EXPECT_EQ(plan.fix_for(ops[1]), FixKind::kRegenerateShared);
}

TEST(Planner, SaturatingAddAlwaysNeedsNegativeFix) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.4, 0);
  const NodeId b = g.add_input("b", 0.3, 1);
  g.mark_output(g.add_op(OpKind::kSaturatingAdd, a, b));
  const Plan manip = plan_insertions(g, Strategy::kManipulation);
  EXPECT_EQ(manip.fixes.back().fix, FixKind::kDesynchronizer);
  const Plan regen = plan_insertions(g, Strategy::kRegeneration);
  EXPECT_EQ(regen.fixes.back().fix, FixKind::kRegenerateComplementary);
}

TEST(Planner, ManipulationIsCheaperThanRegeneration) {
  // The paper's core hardware claim, at the planning level, for any graph.
  for (const DataflowGraph& g : {product_sum_graph(), edge_like_graph()}) {
    const Plan manip = plan_insertions(g, Strategy::kManipulation);
    const Plan regen = plan_insertions(g, Strategy::kRegeneration);
    if (manip.inserted_units == 0) continue;
    const double manip_power = hw::evaluate(manip.overhead).power_uw;
    const double regen_power = hw::evaluate(regen.overhead).power_uw;
    EXPECT_LT(manip_power, regen_power);
  }
}

// --- execution --------------------------------------------------------------------

TEST(Executor, Width32ComparatorsProduceNonZeroStreams) {
  // Regression: the natural length was computed as `1u << width`, which is
  // UB at width 32 and wrapped input levels to 0, silently zeroing every
  // stream in the graph.
  const DataflowGraph g = product_sum_graph();
  ExecConfig config;
  config.width = 32;
  config.stream_length = 512;
  const ExecutionResult result =
      execute(g, plan_insertions(g, Strategy::kManipulation), config);
  for (NodeId id = 0; id < g.node_count(); ++id) {
    if (g.node(id).kind != Node::Kind::kInput) continue;
    EXPECT_NEAR(result.streams[id].value(), g.node(id).value, 0.1)
        << "input node " << id;
  }
}

TEST(Executor, UnfixedGraphComputesWrongValues) {
  const DataflowGraph g = product_sum_graph();
  const Plan plan = plan_insertions(g, Strategy::kNone);
  const ExecutionResult result = execute(g, plan);
  // Same-group multiply computes min instead of product:
  // 0.5(min(.6,.5) + min(.3,.8)) = 0.4 vs exact 0.5*(0.3+0.24) = 0.27.
  EXPECT_GT(result.mean_abs_error, 0.08);
}

TEST(Executor, ManipulationPlanRestoresAccuracy) {
  const DataflowGraph g = product_sum_graph();
  const ExecutionResult fixed =
      execute(g, plan_insertions(g, Strategy::kManipulation));
  EXPECT_LT(fixed.mean_abs_error, 0.05);
}

TEST(Executor, RegenerationPlanRestoresAccuracy) {
  const DataflowGraph g = product_sum_graph();
  const ExecutionResult fixed =
      execute(g, plan_insertions(g, Strategy::kRegeneration));
  EXPECT_LT(fixed.mean_abs_error, 0.05);
}

TEST(Executor, EdgeGraphSubtractNeedsTheSynchronizer) {
  const DataflowGraph g = edge_like_graph();
  const double broken =
      execute(g, plan_insertions(g, Strategy::kNone)).mean_abs_error;
  const double fixed =
      execute(g, plan_insertions(g, Strategy::kManipulation)).mean_abs_error;
  EXPECT_LT(fixed, broken * 0.5);
  EXPECT_LT(fixed, 0.05);
}

TEST(Executor, SaturatingAddViaDesynchronizer) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.55, 0);
  const NodeId b = g.add_input("b", 0.6, 1);
  g.mark_output(g.add_op(OpKind::kSaturatingAdd, a, b));
  const Plan plan = plan_insertions(g, Strategy::kManipulation);
  // Default depth-2 desynchronizer gets close; the LFSR streams' run
  // structure leaves a few paired 1s, and how many depends on the derived
  // trace seeds.  Averaging over several base seeds removes that seed
  // luck, so the bound stays tight without being a lottery ticket.
  double total_error = 0.0;
  const std::uint32_t seeds[] = {3, 5, 7, 11, 13};
  for (const std::uint32_t seed : seeds) {
    ExecConfig config;
    config.seed = seed;
    total_error += std::abs(execute(g, plan, config).values[0] - 1.0);
  }
  EXPECT_LT(total_error / std::size(seeds), 0.06);
  // Depth 8 absorbs the runs and saturates exactly.
  ExecConfig deep;
  deep.sync_depth = 8;
  const ExecutionResult deeper = execute(g, plan, deep);
  EXPECT_NEAR(deeper.values[0], 1.0, 0.01);
}

TEST(Executor, ComplementaryRegenerationProducesNegativeScc) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.4, 0);
  const NodeId b = g.add_input("b", 0.45, 1);
  const NodeId sum = g.add_op(OpKind::kSaturatingAdd, a, b);
  g.mark_output(sum);
  const ExecutionResult fixed =
      execute(g, plan_insertions(g, Strategy::kRegeneration));
  // min(1, 0.85) without saturation: only reachable at SCC ~ -1.
  EXPECT_NEAR(fixed.values[0], 0.85, 0.03);
}

TEST(Executor, SameGroupInputsAreBitIdenticalForEqualValues) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.5, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  g.mark_output(g.add_op(OpKind::kMin, a, b));
  const ExecutionResult result =
      execute(g, plan_insertions(g, Strategy::kNone));
  EXPECT_EQ(result.streams[a], result.streams[b]);
}

TEST(Executor, OutputsAlignWithMarkedNodes) {
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.25, 0);
  const NodeId b = g.add_input("b", 0.5, 1);
  const NodeId prod = g.add_op(OpKind::kMultiply, a, b);
  g.mark_output(prod);
  g.mark_output(a);
  const ExecutionResult result =
      execute(g, plan_insertions(g, Strategy::kNone));
  ASSERT_EQ(result.output_nodes.size(), 2u);
  EXPECT_EQ(result.output_nodes[0], prod);
  EXPECT_NEAR(result.values[1], 0.25, 0.02);
  EXPECT_DOUBLE_EQ(result.exact[0], 0.125);
}

TEST(Executor, DeterministicForFixedSeed) {
  const DataflowGraph g = edge_like_graph();
  const Plan plan = plan_insertions(g, Strategy::kManipulation);
  const ExecutionResult r1 = execute(g, plan);
  const ExecutionResult r2 = execute(g, plan);
  EXPECT_EQ(r1.values, r2.values);
}

TEST(Executor, LegacyShimMatchesBackendOnConvertedProgram) {
  // execute() is now a thin shim over the backend layer; the converted
  // Program run on the explicit backends must be bit-identical to it.
  const DataflowGraph g = product_sum_graph();
  const Plan plan = plan_insertions(g, Strategy::kManipulation);
  const Program program = to_program(g);
  const ProgramPlan program_plan = to_program_plan(plan);

  ExecConfig config;
  const ExecutionResult legacy = execute(g, plan, config);
  const ExecutionResult direct =
      make_backend(BackendKind::kKernel)->run(program, program_plan, config);
  ASSERT_EQ(legacy.streams.size(), direct.streams.size());
  for (std::size_t s = 0; s < legacy.streams.size(); ++s) {
    EXPECT_EQ(legacy.streams[s], direct.streams[s]) << "stream " << s;
  }

  config.use_kernels = false;
  const ExecutionResult legacy_ref = execute(g, plan, config);
  const ExecutionResult direct_ref =
      make_backend(BackendKind::kReference)->run(program, program_plan,
                                                 config);
  for (std::size_t s = 0; s < legacy_ref.streams.size(); ++s) {
    EXPECT_EQ(legacy_ref.streams[s], direct_ref.streams[s]) << "stream " << s;
  }
}

// --- end-to-end strategy comparison (the paper's §IV shape on any graph) ----

TEST(GraphIntegration, StrategyOrderingMatchesPaper) {
  const DataflowGraph g = product_sum_graph();
  const Plan none = plan_insertions(g, Strategy::kNone);
  const Plan manip = plan_insertions(g, Strategy::kManipulation);
  const Plan regen = plan_insertions(g, Strategy::kRegeneration);

  const double err_none = execute(g, none).mean_abs_error;
  const double err_manip = execute(g, manip).mean_abs_error;
  const double err_regen = execute(g, regen).mean_abs_error;

  // Accuracy: both fixes beat no manipulation.
  EXPECT_LT(err_manip, err_none);
  EXPECT_LT(err_regen, err_none);
  // Cost: manipulation is the cheaper fix.
  EXPECT_LT(hw::evaluate(manip.overhead).power_uw,
            hw::evaluate(regen.overhead).power_uw);
}

}  // namespace
}  // namespace sc::graph
