/// Directed tests for the static analyzer (src/analysis/): seed
/// provenance and masked collisions, correlation dataflow verdicts,
/// redundancy and fragility diagnostics, the .sct text format, the
/// ExecConfig::analyze gate, and the optimizer's dead-fix pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/provenance.hpp"
#include "analysis/text_format.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/registry.hpp"
#include "graph/seeds.hpp"
#include "graph_fixtures.hpp"
#include "opt/optimize.hpp"

namespace sc::analysis {
namespace {

using graph::ExecConfig;
using graph::FixKind;
using graph::GraphBuilder;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;
using graph::Value;
using graph::plan_program;

std::size_t count_id(const AnalysisReport& report, const std::string& id) {
  std::size_t n = 0;
  for (const Diagnostic& diagnostic : report.diagnostics) {
    n += diagnostic.id == id;
  }
  return n;
}

/// Smallest group id whose derived trace seed aliases group `base`'s
/// after width-masking (distinct SplitMix64 folds, equal LFSR schedule).
unsigned aliasing_group(unsigned base, std::uint32_t seed, unsigned width) {
  const GeneratorId want = effective_generator(
      graph::seeds::derive_seed32(seed, base, graph::seeds::Role::kGroupTrace),
      width);
  for (unsigned g = base + 1; g < 4096; ++g) {
    const std::uint32_t derived = graph::seeds::derive_seed32(
        seed, g, graph::seeds::Role::kGroupTrace);
    if (effective_generator(derived, width) == want) return g;
  }
  ADD_FAILURE() << "no aliasing group found (width " << width << ")";
  return base;
}

Program two_group_multiply(unsigned group_a, unsigned group_b) {
  GraphBuilder builder;
  const Value a = builder.input("a", 0.8, group_a);
  const Value b = builder.input("b", 0.6, group_b);
  builder.output(builder.op("multiply", {a, b}), "prod");
  return builder.build();
}

Program bernstein_triple() {
  GraphBuilder builder;
  const Value x = builder.input("x", 0.7, 0);
  builder.output(builder.op("bernstein-x2-3", {x, x, x}), "poly");
  return builder.build();
}

// ------------------------------------------------------- seed provenance

TEST(SeedProvenance, MaskedGroupAliasIsASeedCollisionError) {
  AnalyzerConfig config;
  const unsigned alias = aliasing_group(2, config.seed, config.width);
  const Program program = two_group_multiply(2, alias);
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan, config);

  // The planner saw two distinct groups, called the pair independent, and
  // inserted nothing — the analyzer must catch both the alias and the
  // violated multiply.
  EXPECT_TRUE(report.has_errors());
  EXPECT_GE(count_id(report, "seed-collision"), 1u);
  EXPECT_GE(count_id(report, "requirement-violation"), 1u);
  EXPECT_EQ(report.node_class(0, 1), SccClass::kCorrelated);

  // Same program at a base seed where the groups do not alias: clean.
  AnalyzerConfig other = config;
  other.seed = config.seed + 1;
  const GeneratorId a = effective_generator(
      graph::seeds::derive_seed32(other.seed, 2,
                                  graph::seeds::Role::kGroupTrace),
      other.width);
  const GeneratorId b = effective_generator(
      graph::seeds::derive_seed32(other.seed, alias,
                                  graph::seeds::Role::kGroupTrace),
      other.width);
  if (!(a == b)) {
    const AnalysisReport clean = analyze(program, plan, other);
    EXPECT_EQ(count_id(clean, "seed-collision"), 0u);
    EXPECT_FALSE(clean.has_errors());
  }
}

TEST(SeedProvenance, RecordsMatchBackendDerivedSeeds) {
  std::mt19937_64 gen(0xABCDEFull);
  const Program program = graph::fixtures::random_program(gen, 6);
  ExecConfig config;
  config.seed = 77;
  for (const Strategy strategy :
       {Strategy::kNone, Strategy::kManipulation, Strategy::kRegeneration}) {
    const ProgramPlan plan = plan_program(program, strategy);
    const SeedReport report = seed_provenance(program, plan, config);
    const std::vector<std::uint32_t> expected =
        graph::derived_seeds(program, plan, config);
    std::vector<std::uint32_t> got;
    got.reserve(report.records.size());
    for (const SeedRecord& record : report.records) {
      got.push_back(record.seed32);
    }
    // The provenance pass mirrors the backends' enumeration exactly —
    // order included — so a drift in either is caught here.
    EXPECT_EQ(got, expected) << "strategy " << to_string(strategy);
  }
}

TEST(SeedProvenance, ExactCollisionsAreSubsetOfMasked) {
  std::vector<SeedRecord> records(3);
  records[0].seed32 = 0x1234;
  records[0].generator = GeneratorId{0x34, 0};
  records[1].seed32 = 0xFF34;
  records[1].generator = GeneratorId{0x34, 0};
  records[2].seed32 = 0x1234;
  records[2].generator = GeneratorId{0x34, 3};  // rotated: distinct schedule
  const std::vector<SeedCollision> collisions = find_collisions(records);
  ASSERT_EQ(collisions.size(), 1u);
  EXPECT_EQ(collisions[0].first, 0u);
  EXPECT_EQ(collisions[0].second, 1u);
  EXPECT_FALSE(collisions[0].exact);
}

// -------------------------------------------------- correlation verdicts

TEST(Analyzer, UnfixedRequirementViolationIsAnError) {
  const Program program = two_group_multiply(0, 0);
  const ProgramPlan none = plan_program(program, Strategy::kNone);
  const AnalysisReport report = analyze(program, none);
  EXPECT_TRUE(report.has_errors());
  EXPECT_GE(count_id(report, "requirement-violation"), 1u);

  const ProgramPlan fixed = plan_program(program, Strategy::kManipulation);
  const AnalysisReport clean = analyze(program, fixed);
  EXPECT_FALSE(clean.has_errors());
  ASSERT_EQ(clean.pairs.size(), 1u);
  EXPECT_EQ(clean.pairs[0].operands, SccClass::kCorrelated);
  EXPECT_EQ(clean.pairs[0].at_gate, SccClass::kIndependent);
  EXPECT_TRUE(clean.pairs[0].satisfied);
}

TEST(Analyzer, ThresholdPropagationProvesInversion) {
  GraphBuilder builder;
  const Value x = builder.input("x", 0.3, 0);
  const Value n = builder.op("negate-bipolar", {x});
  builder.output(n, "neg");
  const Program program = builder.build();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan);
  // NOT flips the threshold comparison: provably SCC = -1 with its input.
  EXPECT_EQ(report.node_class(x.id, n.id), SccClass::kAnticorrelated);
  EXPECT_EQ(report.node_class(x.id, x.id), SccClass::kCorrelated);
}

TEST(Analyzer, DesynchronizerSatisfiesNegativeRequirement) {
  GraphBuilder builder;
  const Value a = builder.input("a", 0.4, 0);
  const Value b = builder.input("b", 0.7, 0);
  builder.output(builder.op("saturating-add", {a, b}), "sum");
  const Program program = builder.build();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan);
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].requirement, graph::Requirement::kNegative);
  EXPECT_EQ(report.pairs[0].at_gate, SccClass::kAnticorrelated);
  EXPECT_TRUE(report.pairs[0].satisfied);
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyzer, DeadValuesAndConstantSubgraphsAreNotes) {
  GraphBuilder builder;
  const Value x = builder.input("x", 0.5, 0);
  const Value c1 = builder.constant(0.25, "c1");
  const Value c2 = builder.constant(0.75, "c2");
  const Value folded = builder.op("multiply", {c1, c2});  // constant-foldable
  const Value dead = builder.op("scaled-add", {x, c1});   // never output
  (void)dead;
  builder.output(builder.op("multiply", {x, folded}), "out");
  const Program program = builder.build();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan);
  EXPECT_GE(count_id(report, "dead-value"), 1u);
  EXPECT_GE(count_id(report, "constant-foldable"), 1u);
  // The dead scaled-add draws a private MUX-select RNG nobody uses.
  EXPECT_GE(count_id(report, "dead-rng"), 1u);
  EXPECT_FALSE(report.has_errors());
}

// ------------------------------------------------- redundancy & fragility

TEST(Analyzer, PairwiseDecorrelatorsOnSharedTripleAreEachRedundant) {
  const Program program = bernstein_triple();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan);
  // Any two of the three pairwise decorrelators suffice, so each one is
  // individually redundant (counterfactual: removal keeps all pairs met).
  EXPECT_EQ(report.redundant_fixes.size(), 3u);
  EXPECT_EQ(count_id(report, "redundant-fix"), 3u);
  for (const RedundantFix& redundant : report.redundant_fixes) {
    EXPECT_EQ(redundant.without_fix, SccClass::kIndependent);
  }
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyzer, ChainFragilityExceedsSyncBaseline) {
  // 16 mutually-uncorrelated copies of x through a kMaxArity-wide AND;
  // the optimizer's chain pass rewrites the planner's 120 pairwise
  // decorrelators into the paper's 15-link series chain.
  graph::OperatorRegistry registry = graph::OperatorRegistry::with_builtins();
  class AndAll final : public graph::OpEvaluator {
   public:
    explicit AndAll(unsigned arity) : arity_(arity) {}
    bool step(const bool* bits) override {
      bool out = true;
      for (unsigned i = 0; i < arity_; ++i) out = out && bits[i];
      return out;
    }

   private:
    unsigned arity_;
  };
  graph::OperatorDef def;
  def.name = "and-16";
  def.arity = graph::kMaxArity;
  def.requirement = graph::Requirement::kUncorrelated;
  def.exact = [](sc::span<const double> v) {
    double product = 1.0;
    for (const double value : v) product *= value;
    return product;
  };
  def.make_evaluator = [](const graph::OpContext&) {
    return std::make_unique<AndAll>(graph::kMaxArity);
  };
  registry.add(std::move(def));
  GraphBuilder builder(registry);
  const Value x = builder.input("x", 0.6, 0);
  builder.output(builder.op("and-16", std::vector<Value>(16, x)), "poly");
  const Program program = builder.build();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);

  opt::OptConfig opt_config;
  const opt::OptResult optimized = opt::optimize(program, plan, opt_config);
  std::size_t links = 0;
  for (const graph::PairFix& fix : optimized.plan.fixes) {
    links += fix.fix == FixKind::kDecorrelatorChain;
  }
  ASSERT_EQ(links, 15u);

  const AnalysisReport report = analyze(optimized.program, optimized.plan);
  EXPECT_GE(count_id(report, "chain-reconvergence"), 1u);
  double max_blast = 0.0;
  for (const FixFragility& fragility : report.fix_fragility) {
    if (fragility.kind == FixKind::kDecorrelatorChain) {
      max_blast = std::max(max_blast, fragility.blast);
    }
  }
  // The head link's upset poisons every downstream copy.
  EXPECT_EQ(max_blast, 15.0);

  // Baseline: one synchronizer (same-group subtract) — recovers in
  // O(depth) cycles, holds sync_depth counter bits.
  GraphBuilder base_builder;
  const Value a = base_builder.input("a", 0.9, 0);
  const Value b = base_builder.input("b", 0.4, 0);
  base_builder.output(base_builder.op("subtract", {a, b}), "diff");
  const Program base_program = base_builder.build();
  const ProgramPlan base_plan =
      plan_program(base_program, Strategy::kManipulation);
  EXPECT_GT(plan_fragility(optimized.program, optimized.plan),
            plan_fragility(base_program, base_plan));
  // ... and the chain is *more* fragile than it is cheap: the optimizer
  // surfaces both ends of that trade.
  EXPECT_LT(optimized.area_after_um2, optimized.area_before_um2);
}

TEST(Optimizer, ReportsPlanFragilityBeforeAndAfter) {
  const Program program = bernstein_triple();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  opt::OptConfig config;
  const opt::OptResult result = opt::optimize(program, plan, config);
  EXPECT_DOUBLE_EQ(result.fragility_before, plan_fragility(program, plan));
  EXPECT_DOUBLE_EQ(result.fragility_after,
                   plan_fragility(result.program, result.plan));
  // 3 pairwise shuffles -> 2 chain links: less inserted state.
  EXPECT_LT(result.fragility_after, result.fragility_before);
  EXPECT_NE(result.summary().find("fragility"), std::string::npos);
}

TEST(Optimizer, DeadFixPassDropsProvablyRedundantDecorrelators) {
  const Program program = bernstein_triple();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  opt::OptConfig config;
  config.constant_folding = false;
  config.cse = false;
  config.dead_value_elimination = false;
  config.chain_decorrelators = false;  // keep the pairwise triple
  config.correction_sharing = false;
  config.dead_fix_elimination = true;
  const opt::OptResult result = opt::optimize(program, plan, config);
  // Greedy drop with chain-rule re-checking: two of the three go, the
  // third must stay (it is the last shuffle standing).
  EXPECT_EQ(result.corrections_saved(), 2u);
  std::size_t active = 0;
  for (const graph::PairFix& fix : result.plan.fixes) {
    active += fix.fix != FixKind::kNone;
  }
  EXPECT_EQ(active, 1u);
  EXPECT_TRUE(opt::plan_covers(result.plan));
  EXPECT_EQ(result.plan.violations.size(), plan.violations.size());

  // Nothing left to drop — and no violations introduced.
  const AnalysisReport after = analyze(result.program, result.plan);
  EXPECT_FALSE(after.has_errors());
  EXPECT_EQ(after.redundant_fixes.size(), 0u);
}

// ------------------------------------------------------- execution gate

TEST(AnalyzeGate, CleanProgramExecutes) {
  const Program program = two_group_multiply(0, 0);
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  ExecConfig config;
  config.analyze = true;
  const graph::ExecutionResult result =
      graph::make_backend(graph::BackendKind::kReference)
          ->run(program, plan, config);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_NEAR(result.values[0], 0.48, 0.15);
}

TEST(AnalyzeGate, ErrorFindingsAbortTheRun) {
  ExecConfig config;
  config.analyze = true;
  const unsigned alias = aliasing_group(2, config.seed, config.width);
  const Program program = two_group_multiply(2, alias);
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  for (const graph::BackendKind kind :
       {graph::BackendKind::kReference, graph::BackendKind::kKernel,
        graph::BackendKind::kEngine}) {
    EXPECT_THROW(graph::make_backend(kind)->run(program, plan, config),
                 std::runtime_error);
  }
  // Same program, gate off: runs — and really does produce garbage.  The
  // aliased operands are threshold encodings of one trace, so the AND
  // measures min(a, b) = 0.6 instead of a * b = 0.48.
  config.analyze = false;
  const graph::ExecutionResult result =
      graph::make_backend(graph::BackendKind::kReference)
          ->run(program, plan, config);
  EXPECT_NEAR(result.values[0], 0.6, 0.05);
}

// ---------------------------------------------------------- text format

TEST(TextFormat, RoundTripsPrograms) {
  const std::string text =
      "# demo\n"
      "input x 0.9 group=0\n"
      "input y 0.4 group=1\n"
      "const half 0.5\n"
      "op diff subtract x y\n"
      "op blend saturating-add diff half\n"
      "op gain multiply blend y\n"
      "output gain\n"
      "output diff\n";
  const Program program = parse_program(text);
  ASSERT_EQ(program.node_count(), 6u);
  EXPECT_EQ(program.node(3).name, "diff");
  ASSERT_EQ(program.outputs().size(), 2u);

  const Program again = parse_program(serialize_program(program));
  ASSERT_EQ(again.node_count(), program.node_count());
  for (graph::NodeId id = 0; id < program.node_count(); ++id) {
    EXPECT_EQ(again.node(id).kind, program.node(id).kind);
    EXPECT_EQ(again.node(id).name, program.node(id).name);
    EXPECT_EQ(again.node(id).operands, program.node(id).operands);
    EXPECT_DOUBLE_EQ(again.node(id).value, program.node(id).value);
    EXPECT_EQ(again.node(id).rng_group, program.node(id).rng_group);
  }
  EXPECT_EQ(again.outputs(), program.outputs());
}

TEST(TextFormat, RejectsMalformedInputWithLineNumbers) {
  const auto message_of = [](const std::string& text) {
    try {
      parse_program(text);
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("input x 0.5\nop y frobnicate x\noutput y\n")
                .find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("input x 0.5\nop y multiply x\noutput y\n")
                .find("takes 2 operands"),
            std::string::npos);
  EXPECT_NE(message_of("input x zzz\noutput x\n").find("malformed number"),
            std::string::npos);
  EXPECT_NE(message_of("input x 0.5\noutput missing\n").find("undefined"),
            std::string::npos);
  EXPECT_NE(message_of("input x 0.5\n").find("no output"), std::string::npos);
}

// --------------------------------------------------------------- report

TEST(Report, JsonCarriesTheLintSchema) {
  const Program program = bernstein_triple();
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  const AnalysisReport report = analyze(program, plan);
  const std::string json = report.to_json("triple");
  EXPECT_NE(json.find("\"source\": \"triple\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"redundant-fix\""), std::string::npos);
  EXPECT_NE(json.find("\"pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"fragility\""), std::string::npos);
}

}  // namespace
}  // namespace sc::analysis
