/// Tests for the SC median filter extension: sorting-network validity (the
/// 0-1 principle over all 512 binary inputs), SC median accuracy, and the
/// image-level filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "bitstream/synthesis.hpp"
#include "img/kernels.hpp"
#include "img/median.hpp"
#include "test_util.hpp"

namespace sc::img {
namespace {

TEST(MedianNetwork, Has25CompareExchanges) {
  EXPECT_EQ(median9_network().size(), 25u);
  for (const auto& [lo, hi] : median9_network()) {
    EXPECT_GE(lo, 0);
    EXPECT_LT(hi, 9);
    EXPECT_NE(lo, hi);
  }
}

TEST(MedianNetwork, SortsAllBinaryVectorsZeroOnePrinciple) {
  // The 0-1 principle: a comparator network sorts every input iff it sorts
  // every 0/1 input.  Exhaust all 2^9 binary vectors.
  for (unsigned mask = 0; mask < 512; ++mask) {
    std::array<int, 9> lanes;
    for (int i = 0; i < 9; ++i) lanes[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    for (const auto& [lo, hi] : median9_network()) {
      const int a = lanes[static_cast<std::size_t>(lo)];
      const int b = lanes[static_cast<std::size_t>(hi)];
      lanes[static_cast<std::size_t>(lo)] = std::min(a, b);
      lanes[static_cast<std::size_t>(hi)] = std::max(a, b);
    }
    EXPECT_TRUE(std::is_sorted(lanes.begin(), lanes.end())) << "mask=" << mask;
  }
}

TEST(ScMedian9, ExactOnMaximallyCorrelatedInputs) {
  // All nine streams from one shared ramp: compare-exchanges are exact.
  std::array<Bitstream, 9> window;
  const std::array<std::uint32_t, 9> levels = {10,  200, 90, 130, 60,
                                               250, 40,  170, 110};
  for (int k = 0; k < 9; ++k) {
    Bitstream s(256);
    for (std::size_t i = 0; i < 256; ++i) {
      if (i < levels[static_cast<std::size_t>(k)]) s.set(i, true);
    }
    window[static_cast<std::size_t>(k)] = s;
  }
  const Bitstream median = sc_median9(window);
  // True median of the levels is 110.
  EXPECT_NEAR(median.value(), 110.0 / 256.0, 6.0 / 256.0);
}

TEST(ScMedian9, AccurateOnUncorrelatedInputs) {
  std::array<Bitstream, 9> window;
  const std::array<std::uint32_t, 9> levels = {30, 180, 75,  140, 95,
                                               220, 55, 160, 120};
  for (int k = 0; k < 9; ++k) {
    window[static_cast<std::size_t>(k)] = sc::make_stream(
        levels[static_cast<std::size_t>(k)], 256,
        0x1234u + static_cast<std::uint64_t>(k));
  }
  const Bitstream median = sc_median9(window);
  EXPECT_NEAR(median.value(), 120.0 / 256.0, 14.0 / 256.0);
}

TEST(ScMedian9, AllEqualInputs) {
  std::array<Bitstream, 9> window;
  for (int k = 0; k < 9; ++k) {
    window[static_cast<std::size_t>(k)] = test::vdc_stream(128);
  }
  EXPECT_NEAR(sc_median9(window).value(), 0.5, 4.0 / 256.0);
}

TEST(ScMedianFilter, TracksFloatReferenceOnSmoothImage) {
  const Image input = Image::blobs(8, 8, 21);
  const Image reference = median3x3(input);
  MedianConfig config;
  const Image filtered = sc_median_filter(input, config);
  EXPECT_LT(mean_abs_error(filtered, reference), 0.06);
}

TEST(ScMedianFilter, SuppressesImpulseNoiseLikeReference) {
  Image noisy(8, 8, 0.25);
  noisy.at(4, 4) = 1.0;
  const Image filtered = sc_median_filter(noisy, MedianConfig{});
  // The outlier should be rejected toward the background value.
  EXPECT_LT(filtered.at(4, 4), 0.45);
}

TEST(ScMedianFilter, OutputDimensionsMatch) {
  const Image input = Image::gradient(6, 5);
  const Image filtered = sc_median_filter(input, MedianConfig{});
  EXPECT_EQ(filtered.width(), 6u);
  EXPECT_EQ(filtered.height(), 5u);
}

TEST(ScMedianFilter, DeeperSynchronizersDoNotHurt) {
  const Image input = Image::blobs(6, 6, 33);
  const Image reference = median3x3(input);
  MedianConfig shallow;
  shallow.sync_depth = 1;
  MedianConfig deep;
  deep.sync_depth = 4;
  const double err_shallow =
      mean_abs_error(sc_median_filter(input, shallow), reference);
  const double err_deep =
      mean_abs_error(sc_median_filter(input, deep), reference);
  EXPECT_LT(err_deep, err_shallow + 0.03);
}

}  // namespace
}  // namespace sc::img
