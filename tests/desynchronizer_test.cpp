/// Tests for the desynchronizer (paper Fig. 3b): exact D = 1 four-state
/// cycle, value conservation, induced negative correlation, depth
/// generalization, flush, and composition.

#include <gtest/gtest.h>

#include <tuple>

#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "core/desynchronizer.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "test_util.hpp"

namespace sc::core {
namespace {

// --- exact Fig. 3b FSM semantics at D = 1 -----------------------------------

TEST(DesynchronizerFsm, PassesDifferingInputsInEveryState) {
  Desynchronizer desync;
  // S0, then drive into each state and check the X^Y=1 self-loops.
  auto expect_pass = [&](Desynchronizer& d) {
    BitPair out = d.step(true, false);
    EXPECT_TRUE(out.x);
    EXPECT_FALSE(out.y);
    out = d.step(false, true);
    EXPECT_FALSE(out.x);
    EXPECT_TRUE(out.y);
  };
  expect_pass(desync);          // S0
  desync.step(true, true);      // -> S1 (X bit saved)
  expect_pass(desync);
  desync.step(false, false);    // emit -> S3
  expect_pass(desync);
  desync.step(true, true);      // -> S2 (Y bit saved)
  expect_pass(desync);
}

TEST(DesynchronizerFsm, S0SavesXBitOnDoubleOne) {
  Desynchronizer desync;
  const BitPair out = desync.step(true, true);  // S0 --(1,1)/(0,1)--> S1
  EXPECT_FALSE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(desync.saved_x(), 1u);
  EXPECT_EQ(desync.saved_y(), 0u);
}

TEST(DesynchronizerFsm, S1EmitsSavedXBitOnDoubleZero) {
  Desynchronizer desync;
  desync.step(true, true);                        // -> S1
  const BitPair out = desync.step(false, false);  // S1 --(0,0)/(1,0)--> S3
  EXPECT_TRUE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(desync.saved_ones(), 0u);
}

TEST(DesynchronizerFsm, S3SavesYBitOnNextDoubleOne) {
  Desynchronizer desync;
  desync.step(true, true);    // -> S1
  desync.step(false, false);  // -> S3 (empty, donor now Y)
  const BitPair out = desync.step(true, true);  // S3 --(1,1)/(1,0)--> S2
  EXPECT_TRUE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(desync.saved_y(), 1u);
}

TEST(DesynchronizerFsm, S2EmitsSavedYBitOnDoubleZero) {
  Desynchronizer desync;
  desync.step(true, true);    // -> S1
  desync.step(false, false);  // -> S3
  desync.step(true, true);    // -> S2
  const BitPair out = desync.step(false, false);  // S2 --(0,0)/(0,1)--> S0
  EXPECT_FALSE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(desync.saved_ones(), 0u);
}

TEST(DesynchronizerFsm, SaturatedDoubleOnePassesThrough) {
  Desynchronizer desync;  // depth 1
  desync.step(true, true);                      // buffer full
  const BitPair out = desync.step(true, true);  // (1,1) self-loop on S1
  EXPECT_TRUE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(desync.saved_ones(), 1u);
}

TEST(DesynchronizerFsm, EmptyDoubleZeroPassesThrough) {
  Desynchronizer desync;
  const BitPair out = desync.step(false, false);
  EXPECT_FALSE(out.x);
  EXPECT_FALSE(out.y);
}

TEST(DesynchronizerFsm, PreferXFirstConfigSwapsDonor) {
  Desynchronizer desync({1, false, /*prefer_x_first=*/false});
  const BitPair out = desync.step(true, true);  // donor Y: out (1,0)
  EXPECT_TRUE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(desync.saved_y(), 1u);
}

TEST(DesynchronizerFsm, ResetRestoresInitialState) {
  Desynchronizer desync;
  desync.step(true, true);
  desync.reset();
  EXPECT_EQ(desync.saved_ones(), 0u);
  // After reset the donor is X again.
  const BitPair out = desync.step(true, true);
  EXPECT_FALSE(out.x);
  EXPECT_TRUE(out.y);
}

// --- invariants over sweeps ------------------------------------------------------

class DesynchronizerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, unsigned>> {
};

TEST_P(DesynchronizerSweep, ConservesOnesUpToResidualSavedBits) {
  const auto [lx, ly, depth] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  Desynchronizer desync({depth, false});
  const auto out = apply(desync, x, y);
  EXPECT_EQ(out.x.count_ones() + desync.saved_x(), x.count_ones());
  EXPECT_EQ(out.y.count_ones() + desync.saved_y(), y.count_ones());
  EXPECT_LE(desync.saved_ones(), depth);
}

TEST_P(DesynchronizerSweep, LowersSccTowardMinusOne) {
  const auto [lx, ly, depth] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  if (!scc_defined(x, y)) return;
  const double before = scc(x, y);
  Desynchronizer desync({depth, false});
  const auto out = apply(desync, x, y);
  if (!scc_defined(out.x, out.y)) return;
  EXPECT_LE(scc(out.x, out.y), before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ValueDepthGrid, DesynchronizerSweep,
    ::testing::Combine(::testing::Values(32u, 96u, 128u, 192u, 240u),
                       ::testing::Values(16u, 64u, 128u, 176u, 224u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(Desynchronizer, StronglyNegativeOnLowDiscrepancyInputs) {
  // Paper Table II: VDC/Halton inputs reach about -0.98 after one stage.
  Desynchronizer desync;
  const auto out =
      apply(desync, test::vdc_stream(128), test::halton3_stream(128));
  EXPECT_LT(scc(out.x, out.y), -0.85);
}

TEST(Desynchronizer, BreaksPositiveCorrelation) {
  // Paper Table II Halton/Halton row: +0.984 in, about -0.93 out.  A
  // shared low-discrepancy source interleaves its (1,1)/(0,0) cycles
  // tightly, which is what lets a depth-1 FSM unpair most of them
  // (pseudo-random or scrambled agreement patterns cluster instead and
  // need depth or composition).
  const Bitstream x = test::halton3_stream(120);
  const Bitstream y = test::halton3_stream(150);
  ASSERT_GT(scc(x, y), 0.95);
  Desynchronizer desync;
  const auto out = apply(desync, x, y);
  EXPECT_LT(scc(out.x, out.y), -0.5);
}

TEST(Desynchronizer, SaturatingSumsCannotDesynchronize) {
  // px + py > 1 forces overlap; the minimum overlap is px + py - 1 and the
  // desynchronizer must still realize SCC = -1 (overlap at the bound).
  const auto pair = make_positively_correlated(200, 180, 256);
  Desynchronizer desync({4, false});
  const auto out = apply(desync, pair.x, pair.y);
  EXPECT_LT(scc(out.x, out.y), -0.8);
}

TEST(Desynchronizer, DeeperDepthNotWorseOnAverage) {
  double prev = 2.0;
  for (unsigned depth : {1u, 2u, 4u, 8u}) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 32; lx <= 224; lx += 32) {
      for (std::uint32_t ly = 32; ly <= 224; ly += 32) {
        Desynchronizer desync({depth, false});
        const auto out =
            apply(desync, test::vdc_stream(lx), test::halton3_stream(ly));
        if (!scc_defined(out.x, out.y)) continue;
        total += scc(out.x, out.y);
        ++count;
      }
    }
    const double average = total / count;
    EXPECT_LE(average, prev + 0.01) << "depth " << depth;
    prev = average;
  }
}

// --- flush ------------------------------------------------------------------------

TEST(DesynchronizerFlush, DrainsSavedOnesIntoOneSidedCycles) {
  // X = 1100, Y = 1111: the first (1,1) saves an X bit; the remaining
  // cycles are (1,1) and (0,1) - no (0,0) ever arrives, so the plain FSM
  // strands the bit.  Flush force-emits it into a trailing (0,1) cycle.
  {
    Desynchronizer plain({1, false});
    const auto out = apply(plain, Bitstream::from_string("1100"),
                           Bitstream::from_string("1111"));
    EXPECT_EQ(out.x.count_ones(), 1u);  // one X 1 lost
  }
  {
    Desynchronizer flushing({1, true});
    const auto out = apply(flushing, Bitstream::from_string("1100"),
                           Bitstream::from_string("1111"));
    EXPECT_EQ(out.x.count_ones(), 2u);  // recovered by the flush
    EXPECT_EQ(out.y.count_ones(), 4u);
  }
}

TEST(DesynchronizerFlush, CannotRecoverWhenNoZeroSlotsExist) {
  // All-(1,1) input: there is no cycle where an extra 1 could be emitted,
  // so even flush mode must lose the saved bit (documented limitation).
  Desynchronizer flushing({1, true});
  const auto out = apply(flushing, Bitstream::from_string("1111"),
                         Bitstream::from_string("1111"));
  EXPECT_EQ(out.x.count_ones() + out.y.count_ones(), 7u);
}

TEST(DesynchronizerFlush, ReducesAverageAbsBias) {
  double bias_plain = 0.0;
  double bias_flush = 0.0;
  for (std::uint32_t lx = 32; lx <= 224; lx += 32) {
    for (std::uint32_t ly = 32; ly <= 224; ly += 32) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      Desynchronizer plain({8, false});
      Desynchronizer flushing({8, true});
      const auto a = apply(plain, x, y);
      const auto b = apply(flushing, x, y);
      bias_plain += std::abs(a.x.value() - x.value()) +
                    std::abs(a.y.value() - y.value());
      bias_flush += std::abs(b.x.value() - x.value()) +
                    std::abs(b.y.value() - y.value());
    }
  }
  EXPECT_LE(bias_flush, bias_plain + 1e-12);
}

// --- composition ---------------------------------------------------------------------

TEST(DesynchronizerComposition, StagesDriveSccDown) {
  const Bitstream x = test::halton3_stream(128);
  const Bitstream y = test::halton3_stream(140);
  double prev = scc(x, y);
  for (std::size_t stages : {1u, 2u, 3u}) {
    const auto out = compose_desynchronizers(x, y, stages);
    const double c = scc(out.x, out.y);
    EXPECT_LE(c, prev + 0.05) << stages;
    prev = c;
  }
  EXPECT_LT(prev, -0.7);
}

TEST(DesynchronizerComposition, StagesHelpScrambledAgreementPatterns) {
  // A synthetic scrambled pair clusters its (1,1) cycles, which defeats a
  // single depth-1 stage; composition (paper §III-B) recovers much of the
  // lost strength.
  const auto pair = make_positively_correlated(120, 150, 256);
  Desynchronizer single;
  const auto one = apply(single, pair.x, pair.y);
  const auto four = compose_desynchronizers(pair.x, pair.y, 4);
  EXPECT_LT(scc(four.x, four.y), scc(one.x, one.y) + 0.05);
  EXPECT_LT(scc(four.x, four.y), -0.3);
}

TEST(DesynchronizerComposition, ZeroStagesIsIdentity) {
  const Bitstream x = test::vdc_stream(90);
  const Bitstream y = test::halton3_stream(166);
  const auto out = compose_desynchronizers(x, y, 0);
  EXPECT_EQ(out.x, x);
  EXPECT_EQ(out.y, y);
}

TEST(DesynchronizerComposition, ValueDriftBoundedByStages) {
  const Bitstream x = test::vdc_stream(128);
  const Bitstream y = test::halton3_stream(128);
  const auto out = compose_desynchronizers(x, y, 4);
  EXPECT_NEAR(out.x.value(), x.value(), 5.0 / 256.0);
  EXPECT_NEAR(out.y.value(), y.value(), 5.0 / 256.0);
}

}  // namespace
}  // namespace sc::core
