/// Seed-stability regression corpus: thirteen representative registry
/// programs — every fix kind, a regeneration plan, a fault campaign, an
/// optimizer chain rewrite, and one program per accuracy-analysis
/// diagnostic id — executed on all four backend
/// configurations and checksummed bit-for-bit against tests/golden/
/// corpus.hpp.  A mismatch here with the differential suites green means
/// every backend shifted *together*: exactly the failure mode of the PR 3
/// seed-derivation migration, which silently moved all results at once.
/// See tests/golden/README.md for the (intentional-change-only)
/// regeneration workflow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "fault_fixtures.hpp"
#include "golden/corpus.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph_fixtures.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "opt/optimize.hpp"

namespace sc::golden {
namespace {

using graph::BackendKind;
using graph::ExecConfig;
using graph::ExecutionResult;
using graph::GraphBuilder;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;
using graph::Value;

/// FNV-1a over every node stream (length + packed words) and the output
/// node list.  Word padding past size() is zeroed by Bitstream's
/// invariant, and the packed words are platform-independent functions of
/// the bit sequence, so the checksum is stable anywhere the bits are.
std::uint64_t checksum(const ExecutionResult& result) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xFFu;
      hash *= 1099511628211ULL;
    }
  };
  mix(result.streams.size());
  for (const Bitstream& stream : result.streams) {
    mix(stream.size());
    for (const Bitstream::Word word : stream.words()) mix(word);
  }
  mix(result.output_nodes.size());
  for (const graph::NodeId node : result.output_nodes) mix(node);
  return hash;
}

struct Case {
  std::string name;
  Program program;
  ProgramPlan plan;
  ExecConfig config;
  // Owned here so config.fault_plan stays valid for the run.
  std::shared_ptr<fault::FaultPlan> faults;
};

using fault::fixtures::two_input;

std::vector<Case> corpus_cases() {
  // Fixed, hand-written values only — no std::uniform_real_distribution,
  // whose output is implementation-defined and would break the corpus
  // across standard libraries.
  ExecConfig base;
  base.stream_length = 333;  // odd: exercises tails everywhere
  base.width = 8;
  base.seed = 3;

  std::vector<Case> cases;
  const auto add = [&](std::string name, Program program, Strategy strategy) {
    Case c;
    c.name = std::move(name);
    c.plan = plan_program(program, strategy);
    c.program = std::move(program);
    c.config = base;
    cases.push_back(std::move(c));
  };

  add("multiply-decor", two_input("multiply", true), Strategy::kManipulation);
  add("max-resync", two_input("max", false), Strategy::kManipulation);
  add("satadd-desync", two_input("saturating-add", false),
      Strategy::kManipulation);
  {
    GraphBuilder b;
    const Value x = b.input("x", 0.5, 0);
    b.output(b.op("bernstein-x2-3", {x, x, x}), "fx");
    add("bernstein-fan", b.build(), Strategy::kManipulation);
  }
  add("divide-sync", two_input("divide", false), Strategy::kManipulation);
  add("regen-shared", two_input("multiply", true), Strategy::kRegeneration);
  {
    // Every edge-error kind plus an FSM wipe at once: pins the fault hash
    // scheme (fault_key / hash_at) and the injection order.
    Case c;
    c.name = "faulted-mixed";
    c.program = two_input("max", false);
    c.plan = plan_program(c.program, Strategy::kManipulation);
    c.config = base;
    c.faults = std::make_shared<fault::FaultPlan>();
    c.faults->seed = 0xFA170;
    c.faults->edges.push_back({"x", fault::ErrorKind::kBitFlip, 0.05, 16, 0});
    c.faults->edges.push_back({"y", fault::ErrorKind::kBurst, 0.1, 24, 1});
    fault::EdgeFault stuck;
    stuck.edge = "x";
    stuck.kind = fault::ErrorKind::kStuckAt1;
    stuck.begin = 300;
    stuck.end = 320;
    c.faults->edges.push_back(stuck);
    fault::EdgeFault dead;
    dead.edge = "out";
    dead.kind = fault::ErrorKind::kStuckAt0;
    dead.begin = 50;
    dead.end = 60;
    c.faults->edges.push_back(dead);
    c.faults->fsms.push_back({"out", 150, 0, -1});
    c.config.fault_plan = c.faults.get();
    cases.push_back(std::move(c));
  }
  {
    // The optimizer's chain rewrite on the 16-way fan-out: pins the
    // chain pass, seed_tag preservation, and the rebuild paths.
    Case c;
    c.name = "optimized-chain";
    c.program = graph::fixtures::fanout16_program();
    c.plan = plan_program(c.program, Strategy::kManipulation);
    c.config = base;
    c.config.optimize = true;
    cases.push_back(std::move(c));
  }
  // One program per accuracy-analysis diagnostic id (mirrors the
  // examples/programs/ lint corpus): their bit-level streams are pinned
  // here, their diagnostic JSON by AccuracyDiagnosticJsonIsByteStable.
  {
    GraphBuilder b;
    b.output(b.op("stanh-8", {b.input("x", 0.3, 0)}), "t");
    add("precision-stanh", b.build(), Strategy::kManipulation);
  }
  {
    GraphBuilder b;
    const Value a = b.input("a", 0.95, 0);
    const Value y = b.input("b", 0.9, 1);
    b.output(b.op("saturating-add", {a, y}), "s");
    add("saturation-or", b.build(), Strategy::kManipulation);
  }
  {
    GraphBuilder b;
    const Value a = b.input("a", 0.5, 0);
    const Value y = b.input("b", 0.5, 0);
    b.output(b.op("subtract", {a, y}), "d");
    add("corrbias-xor", b.build(), Strategy::kManipulation);
  }
  {
    GraphBuilder b;
    const Value x = b.input("x", 0.8, 0);
    const Value y = b.input("y", 0.6, 0);
    b.output(b.op("multiply", {x, y}), "p");
    add("shortstream-mul", b.build(), Strategy::kManipulation);
  }
  {
    Case c;
    c.name = "chain-unrec";
    GraphBuilder b;
    const Value x = b.input("x", 0.7, 0);
    b.output(b.op("bernstein-x2-3", {x, x, x}), "poly");
    c.program = b.build();
    c.plan = plan_program(c.program, Strategy::kManipulation);
    c.config = base;
    c.config.optimize = true;
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(GoldenCorpus, BitLevelResultsMatchTheCommittedChecksums) {
  const bool print = std::getenv("SC_GOLDEN_PRINT") != nullptr;
  if (print) std::printf("inline constexpr GoldenEntry kGoldenCorpus[] = {\n");

  for (const Case& c : corpus_cases()) {
    engine::Session session({1, /*chunk_bits=*/128, 0x5eed});
    const struct {
      const char* label;
      std::unique_ptr<graph::ExecutorBackend> backend;
    } backends[] = {
        {"reference", graph::make_backend(BackendKind::kReference)},
        {"kernel", graph::make_backend(BackendKind::kKernel)},
        {"engine", graph::make_backend(BackendKind::kEngine)},
        {"engine-chunked", graph::make_engine_backend(session)},
    };
    for (const auto& entry : backends) {
      const std::uint64_t got =
          checksum(entry.backend->run(c.program, c.plan, c.config));
      if (print) {
        std::printf("    {\"%s\", \"%s\", 0x%016llXULL},\n", c.name.c_str(),
                    entry.label, static_cast<unsigned long long>(got));
        continue;
      }
      bool found = false;
      for (const GoldenEntry& golden : kGoldenCorpus) {
        if (c.name != golden.program ||
            std::string(entry.label) != golden.backend) {
          continue;
        }
        found = true;
        EXPECT_EQ(got, golden.checksum)
            << c.name << " on " << entry.label
            << ": bit-level results changed.  If every row moved together "
               "this is a seeding/derivation migration; see "
               "tests/golden/README.md before regenerating.";
      }
      EXPECT_TRUE(found) << "no golden entry for " << c.name << " on "
                         << entry.label;
    }
  }
  if (print) {
    std::printf("};\n");
    GTEST_SKIP() << "SC_GOLDEN_PRINT set: printed the corpus instead of "
                    "checking it";
  }
}

// Telemetry neutrality at golden granularity: the full corpus — faults,
// regeneration, the optimizer rewrite — re-run with tracing, metrics, and
// a stream-health probe attached must reproduce the exact checksums of
// the bare runs on every backend.  Observation may never move a bit.
TEST(GoldenCorpus, TelemetryEnabledRunsKeepIdenticalChecksums) {
  for (const Case& c : corpus_cases()) {
    obs::Telemetry telemetry;  // tracing on, in-memory
    telemetry.add_probe({"x", "out", 128});

    engine::Session bare_session({1, /*chunk_bits=*/128, 0x5eed});
    engine::Session traced_session(
        {1, /*chunk_bits=*/128, 0x5eed, &telemetry});
    const struct {
      const char* label;
      std::unique_ptr<graph::ExecutorBackend> bare;
      std::unique_ptr<graph::ExecutorBackend> traced;
    } backends[] = {
        {"reference", graph::make_backend(BackendKind::kReference),
         graph::make_backend(BackendKind::kReference)},
        {"kernel", graph::make_backend(BackendKind::kKernel),
         graph::make_backend(BackendKind::kKernel)},
        {"engine-chunked", graph::make_engine_backend(bare_session),
         graph::make_engine_backend(traced_session)},
    };
    for (const auto& entry : backends) {
      ExecConfig with = c.config;
      with.telemetry = &telemetry;
      const std::uint64_t bare =
          checksum(entry.bare->run(c.program, c.plan, c.config));
      const std::uint64_t traced =
          checksum(entry.traced->run(c.program, c.plan, with));
      EXPECT_EQ(bare, traced)
          << c.name << " on " << entry.label
          << ": attaching telemetry changed bit-level results";
    }
    // The observed runs actually observed something.
    EXPECT_NE(telemetry.snapshot().counters.count("backend.runs"), 0u);
  }
}

// Always-on profiling at golden granularity: a deliberately tiny trace
// ring (64 events — the corpus overflows it, exercising overwrite-oldest
// on every run) with the call-tree profiler aggregating after each run
// must also reproduce the exact bare checksums.  Dropping trace events
// may never drop bits.
TEST(GoldenCorpus, ProfiledRunsWithTinyRingKeepIdenticalChecksums) {
  for (const Case& c : corpus_cases()) {
    obs::TelemetryConfig tconfig;
    tconfig.trace_capacity = 64;
    obs::Telemetry telemetry(tconfig);

    engine::Session bare_session({1, /*chunk_bits=*/128, 0x5eed});
    engine::Session profiled_session(
        {1, /*chunk_bits=*/128, 0x5eed, &telemetry});
    const struct {
      const char* label;
      std::unique_ptr<graph::ExecutorBackend> bare;
      std::unique_ptr<graph::ExecutorBackend> profiled;
    } backends[] = {
        {"reference", graph::make_backend(BackendKind::kReference),
         graph::make_backend(BackendKind::kReference)},
        {"kernel", graph::make_backend(BackendKind::kKernel),
         graph::make_backend(BackendKind::kKernel)},
        {"engine-chunked", graph::make_engine_backend(bare_session),
         graph::make_engine_backend(profiled_session)},
    };
    for (const auto& entry : backends) {
      ExecConfig with = c.config;
      with.telemetry = &telemetry;
      const std::uint64_t bare =
          checksum(entry.bare->run(c.program, c.plan, c.config));
      const std::uint64_t profiled =
          checksum(entry.profiled->run(c.program, c.plan, with));
      EXPECT_EQ(bare, profiled)
          << c.name << " on " << entry.label
          << ": profiling with a saturated ring changed bit-level results";
      // Aggregate after every run, the way an always-on profiler would.
      const obs::Profile profile = obs::build_profile(*telemetry.tracer());
      EXPECT_LE(profile.span_count, 64u);
      EXPECT_FALSE(profile.to_collapsed().empty());
    }
  }
}

// Machine-output stability: sc_lint's --json is a CI contract
// (validate_lint.py --expect pins per-file diagnostic-id sets), so the
// JSON an analysis produces must be byte-identical across runs — no
// map-iteration, float-formatting, or diagnostic-ordering drift.  One
// program per accuracy diagnostic id, each analyzed twice from scratch
// exactly the way tools/sc_lint.cpp does.
TEST(GoldenCorpus, AccuracyDiagnosticJsonIsByteStable) {
  struct LintCase {
    const char* name;
    bool optimize;
    double target_rmse;
    const char* expect_id;
  };
  const LintCase lint_cases[] = {
      {"precision-stanh", false, 0.0, "precision-loss"},
      {"saturation-or", false, 0.0, "saturation-risk"},
      {"corrbias-xor", false, 0.0, "correlation-bias"},
      {"shortstream-mul", false, 0.05, "insufficient-stream-length"},
      {"chain-unrec", true, 0.0, "chain-unrecoverable"},
  };
  std::vector<Case> cases = corpus_cases();
  for (const LintCase& lc : lint_cases) {
    const auto it =
        std::find_if(cases.begin(), cases.end(),
                     [&](const Case& c) { return c.name == lc.name; });
    ASSERT_NE(it, cases.end()) << lc.name;
    analysis::AnalyzerConfig config;
    config.stream_length = 256;  // sc_lint's default operating point
    config.target_rmse = lc.target_rmse;
    const auto lint_json = [&]() {
      if (!lc.optimize) {
        return analysis::analyze(it->program, it->plan, config)
            .to_json(lc.name);
      }
      opt::OptConfig opt_config;
      opt_config.dead_fix_elimination = true;
      const opt::OptResult optimized =
          opt::optimize(it->program, it->plan, opt_config);
      return analysis::analyze(optimized.program, optimized.plan, config)
          .to_json(lc.name);
    };
    const std::string first = lint_json();
    const std::string second = lint_json();
    EXPECT_EQ(first, second)
        << lc.name << ": analysis JSON changed between two identical runs";
    EXPECT_NE(first.find(std::string("\"id\": \"") + lc.expect_id + "\""),
              std::string::npos)
        << lc.name << " must emit " << lc.expect_id << "; got:\n"
        << first;
  }
}

}  // namespace
}  // namespace sc::golden
