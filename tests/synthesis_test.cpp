/// Tests for analytic stream-pair synthesis (target value + target SCC)
/// and the ErrorStats accumulator.

#include <gtest/gtest.h>

#include <cmath>

#include "bitstream/correlation.hpp"
#include "bitstream/metrics.hpp"
#include "bitstream/synthesis.hpp"

namespace sc {
namespace {

TEST(OverlapForScc, IndependencePointAtZeroTarget) {
  // 128 * 128 / 256 = 64.
  EXPECT_EQ(overlap_for_scc(128, 128, 256, 0.0), 64u);
}

TEST(OverlapForScc, MaxOverlapAtPlusOne) {
  EXPECT_EQ(overlap_for_scc(100, 200, 256, 1.0), 100u);
  EXPECT_EQ(overlap_for_scc(200, 100, 256, 1.0), 100u);
}

TEST(OverlapForScc, MinOverlapAtMinusOne) {
  // 200 + 100 - 256 = 44 forced overlaps.
  EXPECT_EQ(overlap_for_scc(200, 100, 256, -1.0), 44u);
  // Disjoint possible: zero overlap.
  EXPECT_EQ(overlap_for_scc(100, 100, 256, -1.0), 0u);
}

TEST(OverlapForScc, TargetClampedToValidRange) {
  EXPECT_EQ(overlap_for_scc(100, 200, 256, 5.0), 100u);
  EXPECT_EQ(overlap_for_scc(100, 100, 256, -7.0), 0u);
}

TEST(OverlapForScc, InterpolatesMonotonically) {
  std::uint64_t prev = 0;
  for (double target = -1.0; target <= 1.0 + 1e-9; target += 0.25) {
    const std::uint64_t a = overlap_for_scc(128, 128, 256, target);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(MakePair, ExactValuesAlways) {
  for (double target : {-1.0, -0.3, 0.0, 0.7, 1.0}) {
    const auto pair = make_pair_with_scc(77, 180, 256, target);
    EXPECT_EQ(pair.x.count_ones(), 77u) << target;
    EXPECT_EQ(pair.y.count_ones(), 180u) << target;
    EXPECT_EQ(pair.x.size(), 256u);
  }
}

TEST(MakePair, RealizedSccTracksTarget) {
  for (double target : {-0.75, -0.5, -0.25, 0.25, 0.5, 0.75}) {
    const auto pair = make_pair_with_scc(128, 128, 256, target);
    EXPECT_NEAR(scc(pair.x, pair.y), target, 0.05) << target;
  }
}

TEST(MakePair, DeterministicPerSeed) {
  const auto a = make_pair_with_scc(100, 150, 256, 0.5, 42);
  const auto b = make_pair_with_scc(100, 150, 256, 0.5, 42);
  const auto c = make_pair_with_scc(100, 150, 256, 0.5, 43);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_NE(a.x, c.x);
}

TEST(MakePair, EdgeValuesDoNotCrash) {
  const auto zero = make_pair_with_scc(0, 128, 256, 1.0);
  EXPECT_EQ(zero.x.count_ones(), 0u);
  const auto full = make_pair_with_scc(256, 128, 256, -1.0);
  EXPECT_EQ(full.x.count_ones(), 256u);
  EXPECT_EQ(full.y.count_ones(), 128u);
}

TEST(MakeStream, ExactOnesCount) {
  for (std::uint64_t ones : {0u, 1u, 100u, 255u, 256u}) {
    EXPECT_EQ(make_stream(ones, 256).count_ones(), ones);
  }
}

TEST(MakeStream, SpreadAcrossStream) {
  // A seeded permutation should not cluster all ones in one half.
  const Bitstream s = make_stream(128, 256);
  std::size_t first_half = 0;
  for (std::size_t i = 0; i < 128; ++i) first_half += s.get(i);
  EXPECT_GT(first_half, 40u);
  EXPECT_LT(first_half, 88u);
}

TEST(ErrorStats, EmptyIsZero) {
  ErrorStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_abs(), 0.0);
  EXPECT_DOUBLE_EQ(stats.rms(), 0.0);
}

TEST(ErrorStats, AccumulatesMoments) {
  ErrorStats stats;
  stats.add(1.0);
  stats.add(-1.0);
  stats.add(3.0);
  stats.add(-3.0);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_abs(), 2.0);
  EXPECT_DOUBLE_EQ(stats.rms(), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(ErrorStats, SingleSampleMinMax) {
  ErrorStats stats;
  stats.add(-0.5);
  EXPECT_DOUBLE_EQ(stats.min(), -0.5);
  EXPECT_DOUBLE_EQ(stats.max(), -0.5);
}

TEST(MetricsFunctions, BiasAndAbsError) {
  const Bitstream x = Bitstream::from_string("11110000");
  EXPECT_DOUBLE_EQ(bias(x, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(bias(x, 0.75), -0.25);
  EXPECT_DOUBLE_EQ(abs_error(x, 0.75), 0.25);
}

}  // namespace
}  // namespace sc
