/// \file test_util.hpp
/// Shared helpers for the test suite: canonical stream generation from the
/// paper's RNG configurations and small convenience assertions.

#pragma once

#include <cstdint>
#include <memory>

#include "bitstream/bitstream.hpp"
#include "convert/sng.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"

namespace sc::test {

inline constexpr unsigned kWidth = 8;       // natural length 256
inline constexpr std::size_t kN = 256;      // paper's stream length

/// Stream of level x in [0, 256] from a fresh base-2 VDC sequence.
inline Bitstream vdc_stream(std::uint32_t level, std::size_t n = kN) {
  convert::Sng sng(std::make_unique<rng::VanDerCorput>(kWidth));
  return sng.generate(level, n);
}

/// Stream of level y in [0, 256] from a fresh base-3 Halton sequence
/// (the paper's second uncorrelated source).
inline Bitstream halton3_stream(std::uint32_t level, std::size_t n = kN) {
  convert::Sng sng(std::make_unique<rng::Halton>(kWidth, 3));
  return sng.generate(level, n);
}

/// Stream of level x from a fresh LFSR with the given seed.
inline Bitstream lfsr_stream(std::uint32_t level, std::uint32_t seed = 1,
                             std::size_t n = kN) {
  convert::Sng sng(std::make_unique<rng::Lfsr>(kWidth, seed));
  return sng.generate(level, n);
}

}  // namespace sc::test
