/// Tests for the batched streaming execution engine: thread pool
/// semantics, deterministic per-job seeding, chunked processing that is
/// bit-identical to whole-stream core::apply, bounded buffering on long
/// streams, and thread-count invariance of the batch entry points.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/decorrelator.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "engine/batch.hpp"
#include "engine/chunked_stream.hpp"
#include "engine/session.hpp"
#include "engine/thread_pool.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "img/image.hpp"
#include "img/sc_pipeline.hpp"
#include "rng/lfsr.hpp"
#include "test_util.hpp"

namespace sc::engine {
namespace {

// --- thread pool ---------------------------------------------------------------

TEST(ThreadPool, SubmitDeliversResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForDrainsBeforeRethrowing) {
  // An early job failure must not unwind while queued blocks still hold
  // references into the caller's frame: parallel_for may only rethrow
  // after every block has finished.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 200,
                   [&ran](std::size_t i) {
                     if (i == 0) throw std::runtime_error("boom");
                     std::this_thread::sleep_for(std::chrono::microseconds(50));
                     ran.fetch_add(1);
                   }),
      std::runtime_error);
  const int settled = ran.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(ran.load(), settled);  // no task still touching `ran` after return
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor must finish all 64, not drop queued work
  EXPECT_EQ(ran.load(), 64);
}

// --- seeding -------------------------------------------------------------------

TEST(ThreadPool, ZeroRequestAlwaysResolvesToAtLeastOneWorker) {
  // resolve_threads(0) falls back to hardware_concurrency(), which the
  // standard allows to return 0; the clamp must still yield >= 1 worker or
  // a default-constructed pool would deadlock with an empty worker set.
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(JobSeed, DeterministicAndDistinct) {
  EXPECT_EQ(job_seed(7, 3), job_seed(7, 3));
  EXPECT_NE(job_seed(7, 3), job_seed(7, 4));
  EXPECT_NE(job_seed(7, 3), job_seed(8, 3));
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_NE(job_seed32(0, i), 0u);  // LFSR seeds must never be zero
  }
}

TEST(JobSeed, StridedSeedsDistinctInLowWidthBits) {
  // The library's LFSRs keep only the low `width` seed bits, so per-job
  // seeds must stay distinct in that range or jobs silently duplicate
  // RNG schedules.  256 consecutive strided seeds cover all 8-bit
  // residues exactly once (and likewise for every width).
  std::set<std::uint32_t> low8;
  std::set<std::uint32_t> low16;
  for (std::size_t i = 0; i < 256; ++i) {
    low8.insert(strided_seed32(42, i) & 0xFFu);
    low16.insert(strided_seed32(42, i) & 0xFFFFu);
  }
  EXPECT_EQ(low8.size(), 256u);
  EXPECT_EQ(low16.size(), 256u);
}

// --- chunk sources -------------------------------------------------------------

TEST(ChunkedStream, SngSourceFullScaleLevelAtWidth32) {
  // Regression companion to Sng's natural-length fix: the engine SNG
  // source takes a 64-bit level so 2^32 (p = 1.0 at width 32) does not
  // wrap to 0 and emit all-zero streams.
  SngChunkSource source(std::make_unique<rng::Lfsr>(32, 0xF00D),
                        std::uint64_t{1} << 32, 256);
  Bitstream chunk;
  ASSERT_EQ(source.next_chunk(chunk, 256), 256u);
  EXPECT_EQ(chunk.count_ones(), 256u);
}

TEST(ChunkedStream, SngSourceMatchesWholeStreamSng) {
  const std::size_t n = 1000;
  convert::Sng whole(std::make_unique<rng::Lfsr>(8, 5));
  const Bitstream expected = whole.generate(144, n);

  SngChunkSource source(std::make_unique<rng::Lfsr>(8, 5), 144, n);
  CollectSink sink;
  const ChunkedRunStats stats =
      run_chunked(source, nullptr, sink, /*chunk_bits=*/96);
  EXPECT_EQ(sink.stream(), expected);
  EXPECT_EQ(stats.bits, n);
  EXPECT_EQ(stats.chunks, (n + 95) / 96);
  EXPECT_LE(stats.peak_buffer_bits, 96u);
}

TEST(ChunkedStream, BitstreamSourceRoundTrips) {
  const Bitstream original = test::lfsr_stream(100, 9, 777);
  BitstreamChunkSource source(original);
  CollectSink sink;
  run_chunked(source, nullptr, sink, 64);
  EXPECT_EQ(sink.stream(), original);

  source.reset();
  ValueSink value;
  run_chunked(source, nullptr, value, 50);  // non-word-aligned chunks
  EXPECT_DOUBLE_EQ(value.value(), original.value());
}

// --- chunked vs whole-stream FSM equivalence -----------------------------------

TEST(ChunkedStream, DecorrelatorChunkedEqualsWholeStream) {
  const std::size_t n = 2048;
  const Bitstream x = test::lfsr_stream(150, 3, n);
  const Bitstream y = test::lfsr_stream(150, 3, n);  // SCC = +1 copy

  for (const std::size_t chunk_bits : {64u, 100u, 256u, 1000u, 4096u}) {
    core::Decorrelator whole(8, std::make_unique<rng::Lfsr>(8, 11),
                             std::make_unique<rng::Lfsr>(8, 12, 3));
    const sc::StreamPair expected = core::apply(whole, x, y);

    core::Decorrelator chunked(8, std::make_unique<rng::Lfsr>(8, 11),
                               std::make_unique<rng::Lfsr>(8, 12, 3));
    BitstreamChunkSource sx(x);
    BitstreamChunkSource sy(y);
    CollectPairSink sink;
    const ChunkedRunStats stats =
        run_chunked_pair(sx, sy, &chunked, sink, chunk_bits);

    EXPECT_EQ(sink.stream_x(), expected.x) << "chunk_bits=" << chunk_bits;
    EXPECT_EQ(sink.stream_y(), expected.y) << "chunk_bits=" << chunk_bits;
    EXPECT_LE(stats.peak_buffer_bits, 2 * chunk_bits);
  }
}

TEST(ChunkedStream, SynchronizerFlushSurvivesChunking) {
  // Flush mode counts remaining cycles from begin_stream(total): a chunked
  // driver that reset per chunk would flush early and diverge.
  const std::size_t n = 512;
  const Bitstream x = test::vdc_stream(170, n);
  const Bitstream y = test::halton3_stream(90, n);

  for (const bool flush : {false, true}) {
    core::Synchronizer whole({2, flush});
    const sc::StreamPair expected = core::apply(whole, x, y);

    core::Synchronizer chunked({2, flush});
    BitstreamChunkSource sx(x);
    BitstreamChunkSource sy(y);
    CollectPairSink sink;
    run_chunked_pair(sx, sy, &chunked, sink, /*chunk_bits=*/100);

    EXPECT_EQ(sink.stream_x(), expected.x) << "flush=" << flush;
    EXPECT_EQ(sink.stream_y(), expected.y) << "flush=" << flush;
  }
}

TEST(ChunkedStream, TfmChunkedEqualsWholeStream) {
  const std::size_t n = 1024;
  const Bitstream x = test::lfsr_stream(80, 21, n);

  core::TrackingForecastMemory whole({8, 3, 0.5},
                                     std::make_unique<rng::Lfsr>(8, 31));
  const Bitstream expected = core::apply(whole, x);

  core::TrackingForecastMemory chunked({8, 3, 0.5},
                                       std::make_unique<rng::Lfsr>(8, 31));
  BitstreamChunkSource sx(x);
  CollectSink sink;
  run_chunked(sx, &chunked, sink, 130);
  EXPECT_EQ(sink.stream(), expected);
}

TEST(ChunkedStream, PairStatsSinkMatchesWholeStreamMetrics) {
  const std::size_t n = 2048;
  const Bitstream x = test::vdc_stream(128, n);
  const Bitstream y = test::halton3_stream(64, n);

  BitstreamChunkSource sx(x);
  BitstreamChunkSource sy(y);
  PairStatsSink sink;
  run_chunked_pair(sx, sy, nullptr, sink, 333);

  EXPECT_DOUBLE_EQ(sink.value_x(), x.value());
  EXPECT_DOUBLE_EQ(sink.value_y(), y.value());
  EXPECT_DOUBLE_EQ(sink.scc(), scc(x, y));
}

TEST(ChunkedStream, LanesMatchIndependentPairRuns) {
  // The batched driver must be bit-identical, lane for lane, to running
  // each job through its own run_chunked_pair — mixed lengths, transforms
  // of different kinds, and a pass-through lane, all sharing chunk buffers.
  const Bitstream x0 = test::lfsr_stream(150, 3, 2048);
  const Bitstream y0 = test::lfsr_stream(150, 3, 2048);
  const Bitstream x1 = test::vdc_stream(170, 777);   // odd, non-word-aligned
  const Bitstream y1 = test::halton3_stream(90, 777);
  const Bitstream x2 = test::lfsr_stream(80, 21, 300);
  const Bitstream y2 = test::lfsr_stream(200, 9, 300);

  const auto make_decorr = [] {
    return core::Decorrelator(8, std::make_unique<rng::Lfsr>(8, 11),
                              std::make_unique<rng::Lfsr>(8, 12, 3));
  };

  // Reference: three independent chunked runs.
  std::array<CollectPairSink, 3> expected;
  std::array<ChunkedRunStats, 3> expected_stats;
  {
    core::Decorrelator d = make_decorr();
    BitstreamChunkSource sx(x0), sy(y0);
    expected_stats[0] = run_chunked_pair(sx, sy, &d, expected[0], 256);
  }
  {
    core::Synchronizer s({2, true});
    BitstreamChunkSource sx(x1), sy(y1);
    expected_stats[1] = run_chunked_pair(sx, sy, &s, expected[1], 256);
  }
  {
    BitstreamChunkSource sx(x2), sy(y2);
    expected_stats[2] = run_chunked_pair(sx, sy, nullptr, expected[2], 256);
  }

  // Batched: same three jobs, one driver invocation.
  core::Decorrelator d = make_decorr();
  core::Synchronizer s({2, true});
  BitstreamChunkSource sx0(x0), sy0(y0);
  BitstreamChunkSource sx1(x1), sy1(y1);
  BitstreamChunkSource sx2(x2), sy2(y2);
  std::array<CollectPairSink, 3> got;
  const std::vector<ChunkedRunStats> stats = run_chunked_lanes(
      {{&sx0, &sy0, &d, &got[0]},
       {&sx1, &sy1, &s, &got[1]},
       {&sx2, &sy2, nullptr, &got[2]}},
      /*chunk_bits=*/256);

  ASSERT_EQ(stats.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(got[l].stream_x(), expected[l].stream_x()) << "lane " << l;
    EXPECT_EQ(got[l].stream_y(), expected[l].stream_y()) << "lane " << l;
    EXPECT_EQ(stats[l].bits, expected_stats[l].bits) << "lane " << l;
    EXPECT_EQ(stats[l].chunks, expected_stats[l].chunks) << "lane " << l;
    EXPECT_LE(stats[l].peak_buffer_bits, 2 * 256u) << "lane " << l;
  }
}

TEST(ChunkedStream, LanesValidateArguments) {
  const Bitstream x = test::lfsr_stream(100, 9, 64);
  const Bitstream y = test::lfsr_stream(100, 9, 65);  // length mismatch
  BitstreamChunkSource sx(x), sy(y);
  CollectPairSink sink;
  EXPECT_THROW(run_chunked_lanes({{&sx, &sy, nullptr, &sink}}),
               std::invalid_argument);
  EXPECT_THROW(run_chunked_lanes({{nullptr, &sx, nullptr, &sink}}),
               std::invalid_argument);
  BitstreamChunkSource sx2(x);
  EXPECT_THROW(run_chunked_lanes({{&sx, &sx2, nullptr, &sink}}, 0),
               std::invalid_argument);
  // An empty lane list is a valid no-op.
  EXPECT_TRUE(run_chunked_lanes({}).empty());
}

// --- long-stream processing ----------------------------------------------------

TEST(ChunkedStream, LongStreamBoundedBuffering) {
  // A 2^24-bit maximally correlated pair through the chunked decorrelator:
  // peak engine-side buffering stays at the two chunk buffers (never the
  // 2 MiB stream) while values are preserved and SCC is driven toward 0.
  const std::size_t n = std::size_t{1} << 24;
  const std::size_t chunk = kDefaultChunkBits;

  SngChunkSource sx(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000, n);
  SngChunkSource sy(std::make_unique<rng::Lfsr>(16, 0xACE1), 24000, n);
  core::Decorrelator dec(64, std::make_unique<rng::Lfsr>(16, 0xBEEF),
                         std::make_unique<rng::Lfsr>(16, 0xCAFE, 5));
  PairStatsSink sink;
  const ChunkedRunStats stats = run_chunked_pair(sx, sy, &dec, sink, chunk);

  EXPECT_EQ(stats.bits, n);
  EXPECT_EQ(stats.chunks, n / chunk);
  EXPECT_LE(stats.peak_buffer_bits, 2 * chunk);  // never the whole stream

  const double p = 24000.0 / 65536.0;
  EXPECT_NEAR(sink.value_x(), p, 0.01);
  EXPECT_NEAR(sink.value_y(), p, 0.01);
  EXPECT_LT(std::abs(sink.scc()), 0.05);  // decorrelated from SCC = +1
}

// --- batch / session invariance ------------------------------------------------

graph::DataflowGraph batch_graph() {
  graph::DataflowGraph g;
  const graph::NodeId a = g.add_input("a", 0.6, 0);
  const graph::NodeId b = g.add_input("b", 0.5, 0);
  const graph::NodeId c = g.add_input("c", 0.3, 1);
  const graph::NodeId d = g.add_input("d", 0.8, 1);
  const graph::NodeId ab = g.add_op(graph::OpKind::kMultiply, a, b);
  const graph::NodeId cd = g.add_op(graph::OpKind::kMultiply, c, d);
  g.mark_output(g.add_op(graph::OpKind::kScaledAdd, ab, cd));
  return g;
}

TEST(Session, MapPreservesIndexOrder) {
  Session session({4, kDefaultChunkBits, 99});
  const std::vector<std::size_t> out = session.map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  EXPECT_EQ(session.stats().jobs, 100u);
  EXPECT_EQ(session.stats().batches, 1u);

  // Chunked-run accounting is caller-folded: jobs report their run stats
  // back into the session (safe from worker threads).
  const Bitstream stream = test::lfsr_stream(100, 3, 512);
  session.for_each(4, [&session, &stream](std::size_t) {
    BitstreamChunkSource source(stream);
    ValueSink sink;
    session.note_chunked(run_chunked(source, nullptr, sink, 128));
  });
  EXPECT_EQ(session.stats().chunked_runs, 4u);
  EXPECT_EQ(session.stats().stream_bits, 4u * 512u);
}

TEST(ExecuteBatch, BitIdenticalAcrossThreadCounts) {
  const graph::DataflowGraph g = batch_graph();
  const graph::Plan plan =
      graph::plan_insertions(g, graph::Strategy::kManipulation);

  Session one({1, kDefaultChunkBits, 42});
  Session many({4, kDefaultChunkBits, 42});
  const auto configs = graph::seeded_sweep({}, 24, one);
  ASSERT_EQ(configs.size(), 24u);
  // Identical session base seeds derive identical sweeps.
  EXPECT_EQ(configs[5].seed, graph::seeded_sweep({}, 24, many)[5].seed);

  const auto serial = graph::execute_batch(g, plan, configs, one);
  const auto parallel = graph::execute_batch(g, plan, configs, many);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t j = 0; j < serial.size(); ++j) {
    ASSERT_EQ(serial[j].streams.size(), parallel[j].streams.size());
    for (std::size_t s = 0; s < serial[j].streams.size(); ++s) {
      EXPECT_EQ(serial[j].streams[s], parallel[j].streams[s])
          << "job " << j << " stream " << s;
    }
    EXPECT_EQ(serial[j].mean_abs_error, parallel[j].mean_abs_error);
  }
}

TEST(ExecuteBatch, MatchesSequentialExecute) {
  const graph::DataflowGraph g = batch_graph();
  const graph::Plan plan =
      graph::plan_insertions(g, graph::Strategy::kRegeneration);

  Session session({3, kDefaultChunkBits, 7});
  const auto configs = graph::seeded_sweep({}, 10, session);
  const auto batched = graph::execute_batch(g, plan, configs, session);

  for (std::size_t j = 0; j < configs.size(); ++j) {
    const graph::ExecutionResult direct = graph::execute(g, plan, configs[j]);
    ASSERT_EQ(batched[j].streams.size(), direct.streams.size());
    for (std::size_t s = 0; s < direct.streams.size(); ++s) {
      EXPECT_EQ(batched[j].streams[s], direct.streams[s]);
    }
  }
}

TEST(PipelineTiled, BitIdenticalAcrossThreadCounts) {
  const img::Image input = img::Image::synthetic_scene(30, 30, 5);
  img::PipelineConfig config;
  config.tile = 10;

  Session one({1});
  Session four({4});
  const img::PipelineResult a =
      img::run_pipeline_tiled(input, img::Variant::kSynchronizer, config, one);
  const img::PipelineResult b =
      img::run_pipeline_tiled(input, img::Variant::kSynchronizer, config, four);

  ASSERT_EQ(a.output.pixel_count(), b.output.pixel_count());
  EXPECT_EQ(a.output.pixels(), b.output.pixels());  // exact, not approximate
  EXPECT_EQ(a.error, b.error);
}

TEST(PipelineTiled, AccuracyComparableToSerialEngine) {
  const img::Image input = img::Image::synthetic_scene(20, 20, 11);
  img::PipelineConfig config;
  config.tile = 10;

  Session session({2});
  const img::PipelineResult serial =
      img::run_pipeline(input, img::Variant::kSynchronizer, config);
  const img::PipelineResult tiled = img::run_pipeline_tiled(
      input, img::Variant::kSynchronizer, config, session);

  // Different (but equally valid) RNG schedules: outputs differ bitwise,
  // accuracy must stay in the same regime.
  EXPECT_NEAR(tiled.error, serial.error, 0.05);
  EXPECT_EQ(tiled.cost.tiles, serial.cost.tiles);
}

}  // namespace
}  // namespace sc::engine
