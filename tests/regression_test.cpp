/// Golden-value regression suite: pins the bit-exact output of every
/// deterministic component (RNG sequences, SNG streams, FSM transforms,
/// improved operators) so that refactors cannot silently change behaviour.
/// The golden strings were captured from the verified implementation that
/// reproduces the paper's tables.

#include <gtest/gtest.h>

#include <memory>

#include "convert/sng.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/sobol.hpp"
#include "rng/van_der_corput.hpp"

namespace sc {
namespace {

std::string first_values(rng::RandomSource& source, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    out += std::to_string(source.next());
    if (i + 1 < count) out += ",";
  }
  return out;
}

TEST(Golden, Lfsr8Sequence) {
  rng::Lfsr lfsr(8, 1);
  EXPECT_EQ(first_values(lfsr, 10), "1,2,4,8,17,35,71,142,28,56");
}

TEST(Golden, Lfsr4Sequence) {
  rng::Lfsr lfsr(4, 1);
  // Period 15 then repeats.
  EXPECT_EQ(first_values(lfsr, 16), "1,2,4,9,3,6,13,10,5,11,7,15,14,12,8,1");
}

TEST(Golden, VdcSequence) {
  rng::VanDerCorput vdc(4);
  EXPECT_EQ(first_values(vdc, 8), "0,8,4,12,2,10,6,14");
}

TEST(Golden, Halton3Sequence) {
  rng::Halton halton(4, 3);
  // floor(radical_inverse_3(t) * 16): 0, 1/3, 2/3, 1/9, ...
  EXPECT_EQ(first_values(halton, 6), "0,5,10,1,7,12");
}

TEST(Golden, SobolDim2Sequence) {
  rng::Sobol sobol(4, 2);
  EXPECT_EQ(first_values(sobol, 8), "0,8,4,12,6,14,2,10");
}

TEST(Golden, VdcStreamLevel100) {
  convert::Sng sng(std::make_unique<rng::VanDerCorput>(8));
  const Bitstream s = sng.generate(100, 32);
  EXPECT_EQ(s.to_string(), "10101010101010001010100010101000");
  EXPECT_EQ(s.count_ones(), 13u);
}

TEST(Golden, SynchronizerOutputs) {
  // Inputs chosen to visit every D = 1 FSM transition.
  const Bitstream x = Bitstream::from_string("1010011010");
  const Bitstream y = Bitstream::from_string("0110101001");
  core::Synchronizer sync;
  const auto out = core::apply(sync, x, y);
  EXPECT_EQ(out.x.to_string(), "0110011001");
  EXPECT_EQ(out.y.to_string(), "0110011001");
  EXPECT_EQ(sync.credit(), 0);  // everything paired
}

TEST(Golden, SynchronizerFlushOutputs) {
  const Bitstream x = Bitstream::from_string("10100000");
  const Bitstream y = Bitstream::from_string("00000000");
  core::Synchronizer sync({1, true});
  const auto out = core::apply(sync, x, y);
  // The saved X 1 must drain before the end: two 1s survive on X'.
  EXPECT_EQ(out.x.count_ones(), 2u);
  EXPECT_EQ(out.y.count_ones(), 0u);
}

TEST(Golden, DesynchronizerOutputs) {
  const Bitstream x = Bitstream::from_string("11001100");
  const Bitstream y = Bitstream::from_string("11001100");
  core::Desynchronizer desync;
  const auto out = core::apply(desync, x, y);
  EXPECT_EQ(out.x.to_string(), "01101100");
  EXPECT_EQ(out.y.to_string(), "11000110");
}

TEST(Golden, DecorrelatorOutputs) {
  const Bitstream x = Bitstream::from_string("1111000011110000");
  const Bitstream y = Bitstream::from_string("1111000011110000");
  core::Decorrelator dec(4, std::make_unique<rng::Lfsr>(8, 19),
                         std::make_unique<rng::Lfsr>(8, 37));
  const auto out = core::apply(dec, x, y);
  EXPECT_EQ(out.x.to_string(), "1111001000010110");
  EXPECT_EQ(out.y.to_string(), "0111100001011100");
}

TEST(Golden, SyncMaxStream) {
  convert::Sng sx(std::make_unique<rng::VanDerCorput>(8));
  convert::Sng sy(std::make_unique<rng::Halton>(8, 3));
  const Bitstream z =
      core::sync_max(sx.generate(100, 256), sy.generate(180, 256));
  EXPECT_EQ(z.count_ones(), 180u);  // max(100, 180), no residual
}

TEST(Golden, DesyncSatAddStream) {
  convert::Sng sx(std::make_unique<rng::VanDerCorput>(8));
  convert::Sng sy(std::make_unique<rng::Halton>(8, 3));
  const Bitstream z =
      core::desync_saturating_add(sx.generate(100, 256), sy.generate(100, 256));
  EXPECT_EQ(z.count_ones(), 202u);  // ~min(256, 200); Halton stream carries +2
}

}  // namespace
}  // namespace sc
