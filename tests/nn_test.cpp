/// Tests for the hybrid stochastic-binary NN substrate: the XNOR+APC MAC,
/// layer forward passes under each RNG strategy, and the XOR network
/// end-to-end.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bitstream/encoding.hpp"
#include "convert/sng.hpp"
#include "nn/mlp.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"

namespace sc::nn {
namespace {

Bitstream bipolar_stream(double v, rng::RandomSourcePtr source,
                         std::size_t n = 1024) {
  convert::Sng sng(std::move(source));
  return sng.generate(bipolar_level(v, 256), n);
}

TEST(ScDot, SingleProductMatchesMultiplication) {
  const Bitstream x = bipolar_stream(0.5, std::make_unique<rng::VanDerCorput>(8));
  const Bitstream w = bipolar_stream(-0.6, std::make_unique<rng::Halton>(8, 3));
  const std::vector<Bitstream> xs = {x};
  const std::vector<Bitstream> ws = {w};
  EXPECT_NEAR(sc_dot_bipolar(xs, ws), 0.5 * -0.6, 0.05);
}

TEST(ScDot, AveragesManyProducts) {
  std::vector<Bitstream> xs, ws;
  const std::vector<double> xv = {0.2, -0.8, 0.5, 0.9};
  const std::vector<double> wv = {0.7, 0.3, -0.9, -0.1};
  double expected = 0.0;
  for (std::size_t i = 0; i < xv.size(); ++i) {
    xs.push_back(bipolar_stream(
        xv[i], std::make_unique<rng::Lfsr>(8, 3 + static_cast<std::uint32_t>(i))));
    ws.push_back(bipolar_stream(
        wv[i],
        std::make_unique<rng::Lfsr>(8, 91 + static_cast<std::uint32_t>(i))));
    expected += xv[i] * wv[i];
  }
  expected /= static_cast<double>(xv.size());
  EXPECT_NEAR(sc_dot_bipolar(xs, ws), expected, 0.06);
}

TEST(ForwardFloat, ComputesTanhOfScaledMean) {
  Dense layer;
  layer.weights = {{1.0, -1.0}};
  layer.bias = {0.0};
  layer.alpha = 2.0;
  const std::vector<double> x = {0.5, -0.5};
  // pre = (0.5 + 0.5)/2 = 0.5; out = tanh(1.0).
  const auto out = forward_float(layer, x);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], std::tanh(1.0), 1e-12);
}

class StrategySweep : public ::testing::TestWithParam<RngStrategy> {};

TEST_P(StrategySweep, LayerForwardAccuracyByStrategy) {
  Dense layer;
  layer.weights = {{0.8, -0.4, 0.2}, {-0.6, 0.9, 0.1}};
  layer.bias = {0.1, -0.2};
  layer.alpha = 3.0;
  const std::vector<double> x = {0.3, -0.7, 0.5};
  const auto expected = forward_float(layer, x);

  MlpConfig config;
  config.strategy = GetParam();
  const auto got = forward_sc(layer, x, config);
  ASSERT_EQ(got.size(), expected.size());

  double err = 0.0;
  for (std::size_t j = 0; j < got.size(); ++j) {
    err += std::abs(got[j] - expected[j]);
  }
  err /= static_cast<double>(got.size());
  if (GetParam() == RngStrategy::kSingleRng) {
    EXPECT_GT(err, 0.15);  // correlated MAC is broken
  } else {
    EXPECT_LT(err, 0.15) << "strategy should be accurate";
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values(RngStrategy::kTwoRngs,
                                           RngStrategy::kSingleRng,
                                           RngStrategy::kDecorrelated));

TEST(XorNetwork, FloatReferenceClassifiesXor) {
  const auto net = xor_network();
  const double cases[4][3] = {
      {-1, -1, -1}, {-1, +1, +1}, {+1, -1, +1}, {+1, +1, -1}};
  for (const auto& c : cases) {
    const std::vector<double> x = {c[0], c[1]};
    const auto out = forward_float(net, x);
    EXPECT_GT(out[0] * c[2], 0.2) << c[0] << "," << c[1];
  }
}

TEST(XorNetwork, StochasticForwardMatchesSign) {
  const auto net = xor_network();
  MlpConfig config;
  config.stream_length = 2048;
  const double cases[4][3] = {
      {-1, -1, -1}, {-1, +1, +1}, {+1, -1, +1}, {+1, +1, -1}};
  for (const auto& c : cases) {
    const std::vector<double> x = {c[0], c[1]};
    const auto out = forward_sc(net, x, config);
    EXPECT_GT(out[0] * c[2], 0.0) << c[0] << "," << c[1];
  }
}

TEST(XorNetwork, SingleRngCorruptsTheOutputs) {
  // With rail inputs (+-1) the classification sign can survive a broken
  // MAC, but the network outputs drift far from the float reference -
  // measure the numeric corruption rather than the decision flip.
  const auto net = xor_network();
  MlpConfig good_config;
  good_config.stream_length = 2048;
  MlpConfig bad_config = good_config;
  bad_config.strategy = RngStrategy::kSingleRng;

  double err_good = 0.0;
  double err_bad = 0.0;
  // Use non-rail inputs where the MAC products actually matter.
  const double cases[4][2] = {{-0.6, -0.7}, {-0.7, 0.6}, {0.6, -0.6},
                              {0.7, 0.6}};
  for (const auto& c : cases) {
    const std::vector<double> x = {c[0], c[1]};
    const auto expected = forward_float(net, x);
    err_good += std::abs(forward_sc(net, x, good_config)[0] - expected[0]);
    err_bad += std::abs(forward_sc(net, x, bad_config)[0] - expected[0]);
  }
  EXPECT_GT(err_bad, 2.0 * err_good);
}

TEST(Mlp, DeterministicPerSeed) {
  Dense layer;
  layer.weights = {{0.5, -0.5}};
  layer.bias = {0.0};
  const std::vector<double> x = {0.4, 0.6};
  MlpConfig config;
  const auto a = forward_sc(layer, x, config);
  const auto b = forward_sc(layer, x, config);
  EXPECT_EQ(a, b);
}

TEST(Mlp, LongerStreamsReduceError) {
  Dense layer;
  layer.weights = {{0.7, -0.3, 0.5, -0.9}};
  layer.bias = {0.05};
  layer.alpha = 2.0;
  const std::vector<double> x = {0.2, 0.8, -0.6, 0.4};
  const auto expected = forward_float(layer, x);

  auto error_at = [&](std::size_t n) {
    MlpConfig config;
    config.stream_length = n;
    const auto got = forward_sc(layer, x, config);
    return std::abs(got[0] - expected[0]);
  };
  EXPECT_LE(error_at(4096), error_at(64) + 0.02);
}

}  // namespace
}  // namespace sc::nn
