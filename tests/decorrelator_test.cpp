/// Tests for the decorrelation circuits: the shuffle buffer and
/// decorrelator (paper Fig. 4) plus the isolator and TFM baselines of
/// Table II.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "core/decorrelator.hpp"
#include "core/isolator.hpp"
#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "core/tfm.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/mt_source.hpp"
#include "rng/van_der_corput.hpp"
#include "test_util.hpp"

namespace sc::core {
namespace {

std::unique_ptr<rng::Lfsr> aux(std::uint32_t seed) {
  return std::make_unique<rng::Lfsr>(8, seed);
}

// --- shuffle buffer -----------------------------------------------------------

TEST(ShuffleBuffer, InitializedHalfOnes) {
  ShuffleBuffer buf(8, aux(3));
  EXPECT_EQ(buf.saved_ones(), 4u);
  ShuffleBuffer small(1, aux(3));
  EXPECT_EQ(small.saved_ones(), 0u);  // floor(1/2)
}

TEST(ShuffleBuffer, ConservesOnesUpToBufferContents) {
  ShuffleBuffer buf(8, aux(5));
  const unsigned initial_ones = buf.saved_ones();
  const Bitstream in = test::vdc_stream(100);
  const Bitstream out = apply(buf, in);
  // Every 1 either leaves through the output or stays in the buffer.
  EXPECT_EQ(out.count_ones() + buf.saved_ones(),
            in.count_ones() + initial_ones);
}

TEST(ShuffleBuffer, PreservesValueApproximately) {
  for (std::uint32_t level : {32u, 128u, 224u}) {
    ShuffleBuffer buf(8, aux(7));
    const Bitstream out = apply(buf, test::vdc_stream(level));
    EXPECT_NEAR(out.value(), level / 256.0, 8.0 / 256.0) << level;
  }
}

TEST(ShuffleBuffer, ReordersBitsOfAStream) {
  ShuffleBuffer buf(8, aux(11));
  const Bitstream in = test::vdc_stream(128);
  const Bitstream out = apply(buf, in);
  EXPECT_NE(out, in);
}

TEST(ShuffleBuffer, ResetRestoresInitialBufferAndSource) {
  ShuffleBuffer buf(8, aux(13));
  const Bitstream in = test::vdc_stream(90);
  const Bitstream first = apply(buf, in);
  buf.reset();
  const Bitstream second = apply(buf, in);
  EXPECT_EQ(first, second);
}

TEST(ShuffleBuffer, DepthOneStillMixes) {
  ShuffleBuffer buf(1, aux(17));
  const Bitstream in = test::vdc_stream(128);
  const Bitstream out = apply(buf, in);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_NEAR(out.value(), in.value(), 2.0 / 256.0);
}

// --- decorrelator ----------------------------------------------------------------

TEST(Decorrelator, BreaksMaximalPositiveCorrelation) {
  // Paper Table II: same-RNG pairs (SCC ~0.99) drop to near 0.
  const Bitstream x = test::lfsr_stream(100, 1);
  const Bitstream y = test::lfsr_stream(200, 1);
  ASSERT_GT(scc(x, y), 0.95);
  Decorrelator dec(8, aux(19), aux(37));
  const auto out = apply(dec, x, y);
  EXPECT_LT(std::abs(scc(out.x, out.y)), 0.35);
}

TEST(Decorrelator, PreservesBothValues) {
  const Bitstream x = test::lfsr_stream(80, 1);
  const Bitstream y = test::lfsr_stream(190, 1);
  Decorrelator dec(8, aux(19), aux(37));
  const auto out = apply(dec, x, y);
  EXPECT_NEAR(out.x.value(), x.value(), 8.0 / 256.0);
  EXPECT_NEAR(out.y.value(), y.value(), 8.0 / 256.0);
}

TEST(Decorrelator, DeeperBuffersDecorrelateMore) {
  // Average |SCC| over a value grid should not grow with depth.
  double prev = 2.0;
  for (std::size_t depth : {2u, 4u, 8u, 16u}) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 48; lx <= 208; lx += 40) {
      for (std::uint32_t ly = 48; ly <= 208; ly += 40) {
        Decorrelator dec(depth, aux(19), aux(37));
        const auto out =
            apply(dec, test::lfsr_stream(lx, 1), test::lfsr_stream(ly, 1));
        if (!scc_defined(out.x, out.y)) continue;
        total += std::abs(scc(out.x, out.y));
        ++count;
      }
    }
    const double average = total / count;
    EXPECT_LE(average, prev + 0.05) << "depth " << depth;
    prev = average;
  }
  EXPECT_LT(prev, 0.3);
}

TEST(Decorrelator, EnablesAccurateMultiplicationDownstream) {
  // The end-to-end payoff: AND of same-RNG streams computes min (wrong);
  // after decorrelation it computes the product.
  const Bitstream x = test::lfsr_stream(128, 1);
  const Bitstream y = test::lfsr_stream(192, 1);
  ASSERT_NEAR((x & y).value(), 0.5, 0.02);  // min, not product
  Decorrelator dec(16, aux(19), aux(37));
  const auto out = apply(dec, x, y);
  EXPECT_NEAR((out.x & out.y).value(), 0.5 * 0.75, 0.05);
}

TEST(Decorrelator, SameAuxSourcesDoNotDecorrelate) {
  // Negative control: identical aux schedules shuffle in lockstep, so a
  // same-RNG pair keeps most of its correlation.
  const Bitstream x = test::lfsr_stream(100, 1);
  const Bitstream y = test::lfsr_stream(200, 1);
  Decorrelator dec(8, aux(19), aux(19));
  const auto out = apply(dec, x, y);
  EXPECT_GT(scc(out.x, out.y), 0.8);
}

// --- isolator baseline --------------------------------------------------------------

TEST(DelayLine, DelaysByConfiguredCycles) {
  DelayLine line(2);
  const Bitstream in = Bitstream::from_string("10110000");
  const Bitstream out = apply(line, in);
  EXPECT_EQ(out.to_string(), "00101100");
}

TEST(DelayLine, ZeroDelayIsIdentity) {
  DelayLine line(0);
  const Bitstream in = Bitstream::from_string("1011");
  EXPECT_EQ(apply(line, in), in);
}

TEST(IsolatorPair, MatchesBitstreamDelayed) {
  IsolatorPair iso(3);
  const Bitstream x = test::vdc_stream(70);
  const Bitstream y = test::vdc_stream(170);
  const auto out = apply(iso, x, y);
  EXPECT_EQ(out.x, x);
  EXPECT_EQ(out.y, y.delayed(3));
}

TEST(IsolatorPair, EffectOnSccIsErratic) {
  // The paper's point (§II-B/Table II): isolators shift phase but keep bit
  // order, so the SCC after isolation is uncontrolled - sometimes it stays
  // high, sometimes it overshoots negative.  Verify it moved for a
  // same-source pair but document no sign guarantee.
  const Bitstream x = test::lfsr_stream(100, 1);
  const Bitstream y = test::lfsr_stream(200, 1);
  const double before = scc(x, y);
  IsolatorPair iso(1);
  const auto out = apply(iso, x, y);
  const double after = scc(out.x, out.y);
  EXPECT_LT(after, before);  // the delay perturbs maximal correlation
}

TEST(IsolatorPair, PreservesValueUpToEdgeBit) {
  IsolatorPair iso(1);
  const Bitstream x = test::vdc_stream(128);
  const Bitstream y = test::vdc_stream(128);
  const auto out = apply(iso, x, y);
  EXPECT_NEAR(out.y.value(), y.value(), 1.0 / 256.0);
}

// --- TFM baseline ---------------------------------------------------------------------

TrackingForecastMemory::Config tfm_config() {
  TrackingForecastMemory::Config config;
  config.precision = 8;
  config.shift = 3;
  return config;
}

TEST(Tfm, EstimateConvergesToStreamValue) {
  TrackingForecastMemory tfm(tfm_config(), aux(23));
  const Bitstream in = test::vdc_stream(192);
  apply(tfm, in);
  EXPECT_NEAR(tfm.estimate(), 0.75, 0.15);
}

TEST(Tfm, OutputValueTracksInput) {
  for (std::uint32_t level : {64u, 128u, 192u}) {
    TrackingForecastMemory tfm(tfm_config(), aux(29));
    const Bitstream out = apply(tfm, test::vdc_stream(level));
    EXPECT_NEAR(out.value(), level / 256.0, 0.12) << level;
  }
}

TEST(Tfm, RegenerationDecorrelatesPair) {
  const Bitstream x = test::lfsr_stream(110, 1);
  const Bitstream y = test::lfsr_stream(210, 1);
  ASSERT_GT(scc(x, y), 0.95);
  TfmPair pair(tfm_config(), aux(31), aux(47));
  const auto out = apply(pair, x, y);
  EXPECT_LT(scc(out.x, out.y), 0.8);  // weaker than the decorrelator
}

TEST(Tfm, ResetRestoresEstimateAndSource) {
  TrackingForecastMemory tfm(tfm_config(), aux(53));
  const Bitstream in = test::vdc_stream(100);
  const Bitstream first = apply(tfm, in);
  tfm.reset();
  const Bitstream second = apply(tfm, in);
  EXPECT_EQ(first, second);
}

TEST(Tfm, EstimateSaturatesWithinScale) {
  TrackingForecastMemory tfm(tfm_config(), aux(59));
  for (int i = 0; i < 512; ++i) tfm.step(true);
  EXPECT_LE(tfm.estimate(), 1.0);
  EXPECT_GT(tfm.estimate(), 0.95);
  for (int i = 0; i < 512; ++i) tfm.step(false);
  EXPECT_GE(tfm.estimate(), 0.0);
  EXPECT_LT(tfm.estimate(), 0.05);
}

// --- comparative ranking (paper Table II takeaway) ---------------------------------------

TEST(DecorrelationRanking, DecorrelatorBeatsIsolatorAndTfm) {
  // Average |SCC| after each technique on same-LFSR pairs over a value grid:
  // the paper finds decorrelator < TFM < isolator (Table II LFSR rows).
  double sum_dec = 0.0, sum_iso = 0.0, sum_tfm = 0.0;
  int count = 0;
  for (std::uint32_t lx = 48; lx <= 208; lx += 32) {
    for (std::uint32_t ly = 48; ly <= 208; ly += 32) {
      const Bitstream x = test::lfsr_stream(lx, 1);
      const Bitstream y = test::lfsr_stream(ly, 1);
      Decorrelator dec(8, aux(19), aux(37));
      IsolatorPair iso(1);
      TfmPair tfm(tfm_config(), aux(31), aux(47));
      const auto a = apply(dec, x, y);
      const auto b = apply(iso, x, y);
      const auto c = apply(tfm, x, y);
      sum_dec += std::abs(scc(a.x, a.y));
      sum_iso += std::abs(scc(b.x, b.y));
      sum_tfm += std::abs(scc(c.x, c.y));
      ++count;
    }
  }
  EXPECT_LT(sum_dec / count, sum_tfm / count);
  EXPECT_LT(sum_dec / count, sum_iso / count);
}

}  // namespace
}  // namespace sc::core
