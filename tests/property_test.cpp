/// Randomized property tests: invariants that must hold for *every* input,
/// checked over seeded random stream pairs and values.  Complements the
/// structured sweeps elsewhere with adversarial/irregular inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>

#include "arith/add.hpp"
#include "arith/minmax.hpp"
#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "core/synchronizer.hpp"
#include "rng/lfsr.hpp"

namespace sc {
namespace {

/// Seeded random stream of arbitrary structure (not SNG-generated: runs,
/// bursts, and irregular patterns included by construction).
Bitstream random_stream(std::mt19937_64& gen, std::size_t n) {
  Bitstream out(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double p = unit(gen);
  // Mix of i.i.d. bits and runs to stress FSM depth.
  std::size_t i = 0;
  while (i < n) {
    if (unit(gen) < 0.2) {
      // burst of identical bits
      const bool bit = unit(gen) < p;
      const std::size_t len = 1 + static_cast<std::size_t>(unit(gen) * 12);
      for (std::size_t k = 0; k < len && i < n; ++k, ++i) out.set(i, bit);
    } else {
      out.set(i, unit(gen) < p);
      ++i;
    }
  }
  return out;
}

class RandomPairProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    std::mt19937_64 gen(GetParam());
    x_ = random_stream(gen, 512);
    y_ = random_stream(gen, 512);
  }
  Bitstream x_, y_;
};

TEST_P(RandomPairProperty, SccAlwaysInRange) {
  const double c = scc(x_, y_);
  EXPECT_GE(c, -1.0 - 1e-12);
  EXPECT_LE(c, 1.0 + 1e-12);
}

TEST_P(RandomPairProperty, SynchronizerNeverLowersScc) {
  if (!scc_defined(x_, y_)) return;
  core::Synchronizer sync({2, false});
  const auto out = core::apply(sync, x_, y_);
  if (!scc_defined(out.x, out.y)) return;
  EXPECT_GE(scc(out.x, out.y), scc(x_, y_) - 1e-9);
}

TEST_P(RandomPairProperty, SynchronizerConservesOnesExactly) {
  for (unsigned depth : {1u, 3u, 7u}) {
    core::Synchronizer sync({depth, false});
    const auto out = core::apply(sync, x_, y_);
    const int credit = sync.credit();
    EXPECT_EQ(out.x.count_ones() +
                  static_cast<std::size_t>(std::max(credit, 0)),
              x_.count_ones());
    EXPECT_EQ(out.y.count_ones() +
                  static_cast<std::size_t>(std::max(-credit, 0)),
              y_.count_ones());
  }
}

TEST_P(RandomPairProperty, SynchronizerFlushNeverIncreasesAbsBias) {
  core::Synchronizer plain({4, false});
  core::Synchronizer flushing({4, true});
  const auto a = core::apply(plain, x_, y_);
  const auto b = core::apply(flushing, x_, y_);
  const double bias_plain = std::abs(a.x.value() - x_.value()) +
                            std::abs(a.y.value() - y_.value());
  const double bias_flush = std::abs(b.x.value() - x_.value()) +
                            std::abs(b.y.value() - y_.value());
  EXPECT_LE(bias_flush, bias_plain + 1e-12);
}

TEST_P(RandomPairProperty, DesynchronizerNeverRaisesScc) {
  if (!scc_defined(x_, y_)) return;
  core::Desynchronizer desync({2, false});
  const auto out = core::apply(desync, x_, y_);
  if (!scc_defined(out.x, out.y)) return;
  EXPECT_LE(scc(out.x, out.y), scc(x_, y_) + 1e-9);
}

TEST_P(RandomPairProperty, DesynchronizerConservesOnesExactly) {
  core::Desynchronizer desync({3, false});
  const auto out = core::apply(desync, x_, y_);
  EXPECT_EQ(out.x.count_ones() + desync.saved_x(), x_.count_ones());
  EXPECT_EQ(out.y.count_ones() + desync.saved_y(), y_.count_ones());
}

TEST_P(RandomPairProperty, ShuffleBufferConservesOnesWithAccounting) {
  core::ShuffleBuffer buffer(8, std::make_unique<rng::Lfsr>(8, 77));
  const unsigned initial = buffer.saved_ones();
  const Bitstream out = core::apply(buffer, x_);
  EXPECT_EQ(out.count_ones() + buffer.saved_ones(),
            x_.count_ones() + initial);
}

TEST_P(RandomPairProperty, SyncMaxAtLeastEachOperandMinusResidual) {
  // max(pX, pY) >= pX and >= pY; the circuit's output may lose at most
  // depth bits to stranding.
  const Bitstream z = core::sync_max(x_, y_, {2, false});
  const double slack = 3.0 / 512.0;
  EXPECT_GE(z.value(), x_.value() - slack);
  EXPECT_GE(z.value(), y_.value() - slack);
}

TEST_P(RandomPairProperty, SyncMinAtMostEachOperand) {
  // AND of the synchronized pair can never emit more 1s than either input
  // stream contributed.
  const Bitstream z = core::sync_min(x_, y_, {2, false});
  EXPECT_LE(z.value(), x_.value() + 1e-12);
  EXPECT_LE(z.value(), y_.value() + 1e-12);
}

TEST_P(RandomPairProperty, MinMaxSumConservation) {
  core::Synchronizer sync({2, false});
  const auto synced = core::apply(sync, x_, y_);
  const Bitstream mx = synced.x | synced.y;
  const Bitstream mn = synced.x & synced.y;
  // OR + AND conserve ones pointwise.
  EXPECT_EQ(mx.count_ones() + mn.count_ones(),
            synced.x.count_ones() + synced.y.count_ones());
}

TEST_P(RandomPairProperty, ToggleAddWithinHalfLsbOfExactSum) {
  const Bitstream z = arith::toggle_add(x_, y_);
  const double exact = 0.5 * (x_.value() + y_.value());
  EXPECT_NEAR(z.value(), exact, 0.5 / 512.0 + 1e-12);
}

TEST_P(RandomPairProperty, CaMaxCaMinBracketTrueValues) {
  const double mx = arith::ca_max(x_, y_).value();
  const double mn = arith::ca_min(x_, y_).value();
  EXPECT_GE(mx + 0.05, std::max(x_.value(), y_.value()));
  EXPECT_LE(mn - 0.05, std::min(x_.value(), y_.value()));
}

TEST_P(RandomPairProperty, TransformsAreDeterministicAfterReset) {
  core::Synchronizer sync({3, false});
  const auto first = core::apply(sync, x_, y_);
  sync.reset();
  const auto second = core::apply(sync, x_, y_);
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.y, second.y);
}

TEST_P(RandomPairProperty, SccSymmetryAndSelfIdentity) {
  EXPECT_DOUBLE_EQ(scc(x_, y_), scc(y_, x_));
  if (scc_defined(x_, x_)) EXPECT_DOUBLE_EQ(scc(x_, x_), 1.0);
  if (scc_defined(x_, ~x_)) EXPECT_DOUBLE_EQ(scc(x_, ~x_), -1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPairProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace sc
