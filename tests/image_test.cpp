/// Tests for the image substrate: container semantics, synthetic scenes,
/// PGM round-trips, and the float reference kernels.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "img/image.hpp"
#include "img/kernels.hpp"

namespace sc::img {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 0.5);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_DOUBLE_EQ(img.at(2, 1), 0.5);
  img.at(2, 1) = 0.9;
  EXPECT_DOUBLE_EQ(img.at(2, 1), 0.9);
}

TEST(Image, ClampedAccessAtBorders) {
  Image img(3, 3);
  img.at(0, 0) = 0.1;
  img.at(2, 2) = 0.9;
  EXPECT_DOUBLE_EQ(img.at_clamped(-5, -5), 0.1);
  EXPECT_DOUBLE_EQ(img.at_clamped(10, 10), 0.9);
  EXPECT_DOUBLE_EQ(img.at_clamped(1, 1), img.at(1, 1));
}

TEST(Image, ClampLimitsRange) {
  Image img(2, 1);
  img.at(0, 0) = -0.5;
  img.at(1, 0) = 1.5;
  img.clamp();
  EXPECT_DOUBLE_EQ(img.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(img.at(1, 0), 1.0);
}

TEST(Image, GradientIsMonotone) {
  const Image g = Image::gradient(8, 8);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(7, 7), 1.0);
  EXPECT_LT(g.at(1, 1), g.at(5, 5));
}

TEST(Image, CheckerboardAlternates) {
  const Image cb = Image::checkerboard(8, 8, 2);
  EXPECT_DOUBLE_EQ(cb.at(0, 0), 0.85);
  EXPECT_DOUBLE_EQ(cb.at(2, 0), 0.15);
  EXPECT_DOUBLE_EQ(cb.at(2, 2), 0.85);
}

TEST(Image, BlobsAreDeterministicPerSeed) {
  const Image a = Image::blobs(16, 16, 42);
  const Image b = Image::blobs(16, 16, 42);
  const Image c = Image::blobs(16, 16, 43);
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 0.0);
  EXPECT_GT(mean_abs_error(a, c), 0.0);
}

TEST(Image, SyntheticSceneInUnitRange) {
  const Image s = Image::synthetic_scene(20, 20, 7);
  for (double p : s.pixels()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Image, PgmRoundTrip) {
  const Image original = Image::synthetic_scene(12, 9, 3);
  const std::string path = "/tmp/scorr_test_roundtrip.pgm";
  ASSERT_TRUE(original.save_pgm(path));
  std::string error;
  const Image loaded = Image::load_pgm(path, &error);
  ASSERT_FALSE(loaded.empty()) << error;
  EXPECT_EQ(loaded.width(), 12u);
  EXPECT_EQ(loaded.height(), 9u);
  // 8-bit quantization: within half a gray level.
  EXPECT_LT(max_abs_error(original, loaded), 0.5 / 255.0 + 1e-9);
  std::remove(path.c_str());
}

TEST(Image, LoadPgmRejectsMissingFile) {
  std::string error;
  const Image img = Image::load_pgm("/tmp/definitely_missing_scorr.pgm", &error);
  EXPECT_TRUE(img.empty());
  EXPECT_FALSE(error.empty());
}

TEST(Image, ErrorMetrics) {
  Image a(2, 2, 0.5);
  Image b(2, 2, 0.5);
  b.at(1, 1) = 0.9;
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 0.1);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 0.4);
  EXPECT_DOUBLE_EQ(mean_abs_error(a, a), 0.0);
}

// --- float kernels ---------------------------------------------------------------

TEST(GaussianBlur, PreservesConstantImage) {
  const Image flat(6, 6, 0.3);
  const Image blurred = gaussian_blur3(flat);
  EXPECT_LT(max_abs_error(flat, blurred), 1e-12);
}

TEST(GaussianBlur, WeightsSumSixteen) {
  int sum = 0;
  for (int w : kGaussianWeights16) sum += w;
  EXPECT_EQ(sum, 16);
}

TEST(GaussianBlur, SmoothsAnImpulse) {
  Image impulse(5, 5, 0.0);
  impulse.at(2, 2) = 1.0;
  const Image blurred = gaussian_blur3(impulse);
  EXPECT_DOUBLE_EQ(blurred.at(2, 2), 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(blurred.at(1, 2), 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(blurred.at(1, 1), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(blurred.at(0, 0), 0.0);
}

TEST(RobertsCross, ZeroOnConstantImage) {
  const Image flat(6, 6, 0.7);
  const Image edges = roberts_cross(flat);
  EXPECT_LT(max_abs_error(Image(6, 6, 0.0), edges), 1e-12);
}

TEST(RobertsCross, DetectsDiagonalStep) {
  // Vertical step edge: |a-d| and |b-c| each see the step across columns.
  Image step(6, 6, 0.0);
  for (std::size_t y = 0; y < 6; ++y)
    for (std::size_t x = 3; x < 6; ++x) step.at(x, y) = 1.0;
  const Image edges = roberts_cross(step);
  // At x = 2: a = 0, d = 1, b = 1, c = 0 -> 0.5 * (1 + 1) = 1.
  EXPECT_DOUBLE_EQ(edges.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(edges.at(0, 2), 0.0);
}

TEST(ReferencePipeline, ComposesBlurs) {
  const Image input = Image::synthetic_scene(16, 16, 5);
  const Image direct = roberts_cross(gaussian_blur3(input));
  const Image composed = reference_pipeline(input);
  EXPECT_DOUBLE_EQ(mean_abs_error(direct, composed), 0.0);
}

TEST(Median3x3, ConstantImageFixedPoint) {
  const Image flat(5, 5, 0.4);
  EXPECT_LT(max_abs_error(flat, median3x3(flat)), 1e-12);
}

TEST(Median3x3, RemovesSaltNoise) {
  Image img(5, 5, 0.2);
  img.at(2, 2) = 1.0;  // isolated outlier
  const Image filtered = median3x3(img);
  EXPECT_DOUBLE_EQ(filtered.at(2, 2), 0.2);
}

}  // namespace
}  // namespace sc::img
