/// Differential tests for the table-driven kernel layer (src/kernel/):
/// every kernel must be bit-identical to the bit-serial FSM it replaces —
/// across configurations, seeds, stream lengths that are not multiples of
/// 8 (or 64), chunk boundaries, and state written back for bit-serial
/// continuation after a kernel run.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "engine/chunked_stream.hpp"
#include "graph/dataflow.hpp"
#include "graph/executor.hpp"
#include "graph/planner.hpp"
#include "kernel/apply.hpp"
#include "kernel/fastmod.hpp"
#include "kernel/kernels.hpp"
#include "rng/lfsr.hpp"
#include "rng/mt_source.hpp"

namespace sc::kernel {
namespace {

/// Lengths chosen to hit every remainder path: empty, sub-nibble,
/// sub-byte, word-aligned, word+1, and multi-word with odd tails.
const std::size_t kLengths[] = {0, 1, 3, 7, 8, 31, 63, 64, 65,
                                100, 257, 1000, 4097};

Bitstream random_stream(std::mt19937& gen, std::size_t n, double p) {
  std::bernoulli_distribution bit(p);
  Bitstream out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (bit(gen)) out.set(i, true);
  }
  return out;
}

/// Applies two identically configured transforms — one through core::apply
/// (bit-serial reference), one through kernel::apply — and requires
/// bit-identical outputs, matching residual state, and matching bit-serial
/// continuation after the run (which proves the state writeback is exact,
/// including RNG sequence positions).
void expect_equivalent(core::PairTransform& serial, core::PairTransform& fast,
                       const Bitstream& x, const Bitstream& y) {
  const sc::StreamPair ref = core::apply(serial, x, y);
  const sc::StreamPair got = kernel::apply(fast, x, y);
  ASSERT_EQ(ref.x, got.x);
  ASSERT_EQ(ref.y, got.y);
  EXPECT_EQ(serial.saved_ones(), fast.saved_ones());
  for (int i = 0; i < 64; ++i) {
    const bool a = (i % 5) < 2;
    const bool b = (i % 3) == 0;
    const core::BitPair ps = serial.step(a, b);
    const core::BitPair pf = fast.step(a, b);
    ASSERT_EQ(ps.x, pf.x) << "continuation cycle " << i;
    ASSERT_EQ(ps.y, pf.y) << "continuation cycle " << i;
  }
}

// --- fastmod ---------------------------------------------------------------

TEST(FastMod, MatchesHardwareModuloExactly) {
  std::mt19937 gen(7);
  std::uniform_int_distribution<std::uint32_t> value;
  for (std::uint32_t d = 1; d <= 70; ++d) {
    const FastMod mod(d);
    for (std::uint32_t x = 0; x < 3 * d + 2; ++x) {
      ASSERT_EQ(mod(x), x % d) << "x=" << x << " d=" << d;
    }
    for (int i = 0; i < 1000; ++i) {
      const std::uint32_t x = value(gen);
      ASSERT_EQ(mod(x), x % d) << "x=" << x << " d=" << d;
    }
    ASSERT_EQ(mod(0xFFFFFFFFu), 0xFFFFFFFFu % d);
  }
}

// --- synchronizer ----------------------------------------------------------

TEST(SynchronizerKernel, EligibleConfigsCompile) {
  core::Synchronizer sync({4, true, 1});
  EXPECT_NE(make_pair_kernel(sync), nullptr);
}

TEST(PairKernelFactory, OversizedDepthsFallBackInsteadOfWrapping) {
  // State counts are computed in 64 bits: depths whose count wraps a
  // 32-bit integer must return "no kernel", not an undersized table.
  core::Synchronizer sync({0x80000000u, false, 0});
  EXPECT_EQ(make_pair_kernel(sync), nullptr);
  core::Desynchronizer desync({65535u, false, true});
  EXPECT_EQ(make_pair_kernel(desync), nullptr);
  core::Desynchronizer desync2({92683u, false, true});
  EXPECT_EQ(make_pair_kernel(desync2), nullptr);
}

TEST(KernelApply, MismatchedSizesThrow) {
  core::Synchronizer sync({1, false, 0});
  EXPECT_THROW(kernel::apply(sync, Bitstream(1024), Bitstream(64)),
               std::invalid_argument);
}

TEST(SynchronizerKernel, MatchesBitSerial) {
  std::mt19937 gen(101);
  for (const unsigned depth : {1u, 2u, 3u, 8u}) {
    for (const bool flush : {false, true}) {
      for (const int credit : {0, 1, -2}) {
        for (const std::size_t n : kLengths) {
          core::Synchronizer serial({depth, flush, credit});
          core::Synchronizer fast({depth, flush, credit});
          const Bitstream x = random_stream(gen, n, 0.6);
          const Bitstream y = random_stream(gen, n, 0.4);
          expect_equivalent(serial, fast, x, y);
        }
      }
    }
  }
}

// --- desynchronizer --------------------------------------------------------

TEST(DesynchronizerKernel, MatchesBitSerial) {
  std::mt19937 gen(202);
  for (const unsigned depth : {1u, 2u, 5u}) {
    for (const bool flush : {false, true}) {
      for (const bool prefer_x : {true, false}) {
        for (const std::size_t n : kLengths) {
          core::Desynchronizer serial({depth, flush, prefer_x});
          core::Desynchronizer fast({depth, flush, prefer_x});
          const Bitstream x = random_stream(gen, n, 0.7);
          const Bitstream y = random_stream(gen, n, 0.7);
          expect_equivalent(serial, fast, x, y);
        }
      }
    }
  }
}

// --- decorrelator ----------------------------------------------------------

core::Decorrelator decorrelator_fixture(std::size_t depth,
                                        std::uint32_t seed) {
  return core::Decorrelator(
      depth, std::make_unique<rng::Lfsr>(10, seed),
      std::make_unique<rng::Lfsr>(10, seed + 17, /*rotation=*/3));
}

TEST(DecorrelatorKernel, MatchesBitSerialTableAndDirectPaths) {
  std::mt19937 gen(303);
  // Depths 16 and 33 exceed the table cap and exercise the direct
  // mask-update path; the rest go through the cached transition table.
  for (const std::size_t depth : {1u, 4u, 8u, 12u, 16u, 33u}) {
    for (const std::size_t n : kLengths) {
      core::Decorrelator serial = decorrelator_fixture(depth, 0xBEE);
      core::Decorrelator fast = decorrelator_fixture(depth, 0xBEE);
      const Bitstream x = random_stream(gen, n, 0.5);
      const Bitstream y = random_stream(gen, n, 0.3);
      expect_equivalent(serial, fast, x, y);
    }
  }
}

// --- TFM pair --------------------------------------------------------------

TEST(TfmKernel, MatchesBitSerial) {
  std::mt19937 gen(404);
  const core::TrackingForecastMemory::Config configs[] = {
      {8, 3, 0.5}, {8, 1, 0.25}, {6, 2, 0.75}};
  for (const auto& config : configs) {
    for (const std::size_t n : kLengths) {
      core::TfmPair serial(config,
                           std::make_unique<rng::Lfsr>(config.precision, 5),
                           std::make_unique<rng::Lfsr>(config.precision, 9));
      core::TfmPair fast(config,
                         std::make_unique<rng::Lfsr>(config.precision, 5),
                         std::make_unique<rng::Lfsr>(config.precision, 9));
      const Bitstream x = random_stream(gen, n, 0.6);
      const Bitstream y = random_stream(gen, n, 0.2);
      expect_equivalent(serial, fast, x, y);
    }
  }
}

// --- word-datapath boundaries ----------------------------------------------

/// Lengths that straddle the word kernels' internal RNG block (4096 bits)
/// and the 64-bit word grain: every partial-final-word and block-boundary
/// remainder path in the word-parallel implementations.
const std::size_t kWordBoundaryLengths[] = {4095, 4096, 4097, 8191, 8192,
                                            8193, 12289};

TEST(WordKernels, DecorrelatorBitIdenticalAcrossWordAndBlockBoundaries) {
  std::mt19937 gen(707);
  for (const std::size_t depth : {1u, 8u, 16u}) {
    for (const std::size_t n : kWordBoundaryLengths) {
      core::Decorrelator serial = decorrelator_fixture(depth, 0xACE);
      core::Decorrelator fast = decorrelator_fixture(depth, 0xACE);
      const Bitstream x = random_stream(gen, n, 0.5);
      const Bitstream y = random_stream(gen, n, 0.35);
      expect_equivalent(serial, fast, x, y);
    }
  }
}

TEST(WordKernels, ChainLinkBitIdenticalAcrossWordAndBlockBoundaries) {
  std::mt19937 gen(808);
  for (const std::size_t depth : {1u, 8u, 63u, 64u}) {  // 64 -> scalar path
    for (const std::size_t n : kWordBoundaryLengths) {
      core::DecorrelatorChainLink serial(depth,
                                         std::make_unique<rng::Lfsr>(10, 21));
      core::DecorrelatorChainLink fast(depth,
                                       std::make_unique<rng::Lfsr>(10, 21));
      const Bitstream x = random_stream(gen, n, 0.55);
      const Bitstream y = random_stream(gen, n, 0.55);
      expect_equivalent(serial, fast, x, y);
    }
  }
}

TEST(WordKernels, TfmPairBitIdenticalAcrossWordAndBlockBoundaries) {
  std::mt19937 gen(909);
  // Precision 8 rides the nibble-jump word path; 10 exceeds the word-path
  // cap and must fall back to the per-cycle table bit-identically.
  for (const unsigned precision : {8u, 10u}) {
    const core::TrackingForecastMemory::Config config{precision, 3, 0.5};
    for (const std::size_t n : kWordBoundaryLengths) {
      core::TfmPair serial(config, std::make_unique<rng::Lfsr>(precision, 5),
                           std::make_unique<rng::Lfsr>(precision, 9));
      core::TfmPair fast(config, std::make_unique<rng::Lfsr>(precision, 5),
                         std::make_unique<rng::Lfsr>(precision, 9));
      const Bitstream x = random_stream(gen, n, 0.6);
      const Bitstream y = random_stream(gen, n, 0.25);
      expect_equivalent(serial, fast, x, y);
    }
  }
}

TEST(WordKernels, FaultsPinnedAtWordBoundariesDoNotShift) {
  // Mirrors the chunk-boundary fault suite at the kernel grain: corrupt the
  // inputs exactly at 64-bit word seams and RNG-block seams, then require
  // the word kernels to track the bit-serial reference through the
  // disturbance (a word-offset bug would shift the corruption's echo).
  std::mt19937 gen(1010);
  const std::size_t n = 8193;
  const std::size_t kFaultBits[] = {0, 63, 64, 65, 4095, 4096, 4097, 8192};
  Bitstream x = random_stream(gen, n, 0.5);
  Bitstream y = random_stream(gen, n, 0.5);
  for (const std::size_t i : kFaultBits) {
    x.set(i, !x.get(i));  // bit-flip fault at the seam
    y.set(i, true);       // stuck-at-1 fault at the seam
  }
  {
    core::Decorrelator serial = decorrelator_fixture(8, 0xFA1);
    core::Decorrelator fast = decorrelator_fixture(8, 0xFA1);
    expect_equivalent(serial, fast, x, y);
  }
  {
    const core::TrackingForecastMemory::Config config{8, 3, 0.5};
    core::TfmPair serial(config, std::make_unique<rng::Lfsr>(8, 5),
                         std::make_unique<rng::Lfsr>(8, 9));
    core::TfmPair fast(config, std::make_unique<rng::Lfsr>(8, 5),
                       std::make_unique<rng::Lfsr>(8, 9));
    expect_equivalent(serial, fast, x, y);
  }
  {
    core::DecorrelatorChainLink serial(16, std::make_unique<rng::Lfsr>(10, 3));
    core::DecorrelatorChainLink fast(16, std::make_unique<rng::Lfsr>(10, 3));
    expect_equivalent(serial, fast, x, y);
  }
}

TEST(WordKernels, ShuffleBufferBitIdenticalAcrossWordAndBlockBoundaries) {
  std::mt19937 gen(1111);
  for (const std::size_t depth : {1u, 8u, 63u, 64u}) {
    for (const std::size_t n : kWordBoundaryLengths) {
      core::ShuffleBuffer serial(depth, std::make_unique<rng::Lfsr>(9, 33));
      core::ShuffleBuffer fast(depth, std::make_unique<rng::Lfsr>(9, 33));
      const Bitstream in = random_stream(gen, n, 0.5);
      ASSERT_EQ(core::apply(serial, in), kernel::apply(fast, in))
          << "depth=" << depth << " n=" << n;
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(serial.step(i % 3 == 0), fast.step(i % 3 == 0));
      }
    }
  }
}

TEST(WordKernels, TfmStreamBitIdenticalAcrossWordAndBlockBoundaries) {
  std::mt19937 gen(1212);
  for (const unsigned precision : {8u, 10u}) {
    for (const std::size_t n : kWordBoundaryLengths) {
      core::TrackingForecastMemory serial(
          {precision, 3, 0.5}, std::make_unique<rng::Lfsr>(precision, 77));
      core::TrackingForecastMemory fast(
          {precision, 3, 0.5}, std::make_unique<rng::Lfsr>(precision, 77));
      const Bitstream in = random_stream(gen, n, 0.4);
      ASSERT_EQ(core::apply(serial, in), kernel::apply(fast, in))
          << "precision=" << precision << " n=" << n;
      EXPECT_EQ(serial.estimate_fixed(), fast.estimate_fixed());
    }
  }
}

// --- single-stream kernels -------------------------------------------------

TEST(StreamKernel, ShuffleBufferMatchesBitSerial) {
  std::mt19937 gen(505);
  for (const std::size_t depth : {1u, 8u, 12u, 20u}) {
    for (const std::size_t n : kLengths) {
      core::ShuffleBuffer serial(depth, std::make_unique<rng::Lfsr>(9, 33));
      core::ShuffleBuffer fast(depth, std::make_unique<rng::Lfsr>(9, 33));
      const Bitstream x = random_stream(gen, n, 0.5);
      const Bitstream ref = core::apply(serial, x);
      const Bitstream got = kernel::apply(fast, x);
      ASSERT_EQ(ref, got) << "depth=" << depth << " n=" << n;
      EXPECT_EQ(serial.saved_ones(), fast.saved_ones());
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(serial.step(i % 3 == 0), fast.step(i % 3 == 0));
      }
    }
  }
}

TEST(StreamKernel, TfmMatchesBitSerial) {
  std::mt19937 gen(606);
  for (const std::size_t n : kLengths) {
    core::TrackingForecastMemory serial({8, 3, 0.5},
                                        std::make_unique<rng::Lfsr>(8, 77));
    core::TrackingForecastMemory fast({8, 3, 0.5},
                                      std::make_unique<rng::Lfsr>(8, 77));
    const Bitstream x = random_stream(gen, n, 0.4);
    ASSERT_EQ(core::apply(serial, x), kernel::apply(fast, x)) << "n=" << n;
    EXPECT_EQ(serial.estimate_fixed(), fast.estimate_fixed());
  }
}

TEST(StreamKernel, UnsupportedTransformFallsBack) {
  // A transform type without a kernel must still work through
  // kernel::apply (bit-serial fallback), not crash or change results.
  class Inverter final : public core::StreamTransform {
   public:
    bool step(bool in) override { return !in; }
    void reset() override {}
  };
  Inverter serial;
  Inverter fast;
  EXPECT_EQ(make_stream_kernel(fast), nullptr);
  const Bitstream x = Bitstream::from_string("1011001110001");
  EXPECT_EQ(core::apply(serial, x), kernel::apply(fast, x));
}

// --- chunked engine path ---------------------------------------------------

/// kAuto (kernel) and kSerial chunked runs over the same sources must
/// produce identical streams, including flush tails that span chunk
/// boundaries and chunk sizes that are not multiples of 64.
void expect_chunked_equivalent(core::PairTransform& serial_fsm,
                               core::PairTransform& fast_fsm,
                               std::size_t length, std::size_t chunk_bits) {
  using namespace sc::engine;
  SngChunkSource sx_a(std::make_unique<rng::Lfsr>(12, 0xACE), 2000, length);
  SngChunkSource sy_a(std::make_unique<rng::Lfsr>(12, 0xACE, 5), 2000, length);
  CollectPairSink fast_sink;
  run_chunked_pair(sx_a, sy_a, &fast_fsm, fast_sink, chunk_bits,
                   KernelPolicy::kAuto);

  SngChunkSource sx_b(std::make_unique<rng::Lfsr>(12, 0xACE), 2000, length);
  SngChunkSource sy_b(std::make_unique<rng::Lfsr>(12, 0xACE, 5), 2000, length);
  CollectPairSink serial_sink;
  run_chunked_pair(sx_b, sy_b, &serial_fsm, serial_sink, chunk_bits,
                   KernelPolicy::kSerial);

  ASSERT_EQ(serial_sink.stream_x(), fast_sink.stream_x());
  ASSERT_EQ(serial_sink.stream_y(), fast_sink.stream_y());
}

TEST(ChunkedKernel, SynchronizerFlushAcrossChunkBoundaries) {
  for (const std::size_t chunk_bits : {4u, 100u, 1000u, 65536u}) {
    core::Synchronizer serial({8, true});
    core::Synchronizer fast({8, true});
    expect_chunked_equivalent(serial, fast, 10007, chunk_bits);
  }
}

TEST(ChunkedKernel, DecorrelatorAcrossChunkBoundaries) {
  for (const std::size_t chunk_bits : {100u, 4096u}) {
    core::Decorrelator serial = decorrelator_fixture(8, 0xF00);
    core::Decorrelator fast = decorrelator_fixture(8, 0xF00);
    expect_chunked_equivalent(serial, fast, 100003, chunk_bits);
  }
}

TEST(ChunkedKernel, SingleStreamAuto) {
  using namespace sc::engine;
  const std::size_t length = 10007;
  core::ShuffleBuffer serial(8, std::make_unique<rng::Lfsr>(9, 3));
  core::ShuffleBuffer fast(8, std::make_unique<rng::Lfsr>(9, 3));

  SngChunkSource src_a(std::make_unique<rng::Lfsr>(12, 0xB0B), 1000, length);
  CollectSink fast_sink;
  run_chunked(src_a, &fast, fast_sink, 1000, KernelPolicy::kAuto);

  SngChunkSource src_b(std::make_unique<rng::Lfsr>(12, 0xB0B), 1000, length);
  CollectSink serial_sink;
  run_chunked(src_b, &serial, serial_sink, 1000, KernelPolicy::kSerial);

  ASSERT_EQ(serial_sink.stream(), fast_sink.stream());
}

// --- graph executor --------------------------------------------------------

TEST(ExecutorKernel, UseKernelsIsBitIdentical) {
  using namespace sc::graph;
  DataflowGraph g;
  const NodeId a = g.add_input("a", 0.6, 0);
  const NodeId b = g.add_input("b", 0.5, 0);
  const NodeId c = g.add_input("c", 0.3, 1);
  const NodeId d = g.add_input("d", 0.8, 1);
  const NodeId ab = g.add_op(OpKind::kMultiply, a, b);
  const NodeId cd = g.add_op(OpKind::kSubtractAbs, c, d);
  g.mark_output(g.add_op(OpKind::kScaledAdd, ab, cd));
  const Plan plan = plan_insertions(g, Strategy::kManipulation);

  ExecConfig with_kernels;
  with_kernels.stream_length = 4096;
  ExecConfig without_kernels = with_kernels;
  without_kernels.use_kernels = false;

  const ExecutionResult fast = execute(g, plan, with_kernels);
  const ExecutionResult ref = execute(g, plan, without_kernels);
  ASSERT_EQ(fast.streams.size(), ref.streams.size());
  for (std::size_t i = 0; i < fast.streams.size(); ++i) {
    ASSERT_EQ(fast.streams[i], ref.streams[i]) << "node " << i;
  }
  EXPECT_EQ(fast.mean_abs_error, ref.mean_abs_error);
}

// --- RNG fill block --------------------------------------------------------

TEST(RandomSourceFill, LfsrFillMatchesNextExactly) {
  rng::Lfsr a(16, 0xACE1, 5);
  rng::Lfsr b(16, 0xACE1, 5);
  std::vector<std::uint32_t> block(1000);
  a.fill(block.data(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    ASSERT_EQ(block[i], b.next()) << "i=" << i;
  }
  // Interleaving fill and next must continue the same sequence.
  a.fill(block.data(), 7);
  for (std::size_t i = 0; i < 7; ++i) {
    ASSERT_EQ(block[i], b.next());
  }
  ASSERT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace sc::kernel
