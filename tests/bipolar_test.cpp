/// Tests for bipolar-encoded arithmetic and the weighted (categorical)
/// sampler used by MUX-tree kernels.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "arith/bipolar.hpp"
#include "arith/multiply.hpp"
#include "convert/weighted_sampler.hpp"
#include "rng/lfsr.hpp"
#include "rng/van_der_corput.hpp"
#include "test_util.hpp"

namespace sc {
namespace {

TEST(Bipolar, NegateFlipsSign) {
  const Bitstream x = test::vdc_stream(192);  // v = +0.5
  EXPECT_DOUBLE_EQ(arith::negate_bipolar(x).bipolar_value(),
                   -x.bipolar_value());
}

TEST(Bipolar, NegateIsInvolution) {
  const Bitstream x = test::halton3_stream(77);
  EXPECT_EQ(arith::negate_bipolar(arith::negate_bipolar(x)), x);
}

class BipolarAddSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(BipolarAddSweep, ScaledAddAveragesBipolarValues) {
  const auto [lx, ly] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  rng::Lfsr sel(8, 55);
  const Bitstream z = arith::scaled_add_bipolar(x, y, sel);
  EXPECT_NEAR(z.bipolar_value(),
              0.5 * (x.bipolar_value() + y.bipolar_value()), 0.08);
}

TEST_P(BipolarAddSweep, ScaledSubHalvesDifference) {
  const auto [lx, ly] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  rng::Lfsr sel(8, 55);
  const Bitstream z = arith::scaled_sub_bipolar(x, y, sel);
  EXPECT_NEAR(z.bipolar_value(),
              0.5 * (x.bipolar_value() - y.bipolar_value()), 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    ValueGrid, BipolarAddSweep,
    ::testing::Combine(::testing::Values(32u, 128u, 224u),
                       ::testing::Values(64u, 128u, 208u)));

TEST(Bipolar, XnorMultipliesBipolarValues) {
  // -0.5 * +0.5 = -0.25 with uncorrelated operands.
  const Bitstream x = test::vdc_stream(64);    // v = -0.5
  const Bitstream y = test::halton3_stream(192);  // v = +0.5
  const Bitstream z = arith::multiply_bipolar(x, y);
  EXPECT_NEAR(z.bipolar_value(), -0.25, 0.06);
}

TEST(Bipolar, ExplicitSelectStreamForm) {
  const Bitstream x = test::vdc_stream(128);
  const Bitstream y = test::halton3_stream(128);
  const Bitstream sel = test::lfsr_stream(128, 5);
  const Bitstream viaStream = arith::scaled_add_bipolar(x, y, sel);
  EXPECT_EQ(viaStream, Bitstream::mux(x, y, sel));
}

// --- weighted sampler -------------------------------------------------------

TEST(WeightedSampler, UniformWeightsCoverAllCategories) {
  convert::WeightedSampler sampler({1, 1, 1, 1},
                                   std::make_unique<rng::VanDerCorput>(8));
  std::array<int, 4> histogram{};
  for (int i = 0; i < 256; ++i) {
    ++histogram[sampler.step()];
  }
  for (int count : histogram) EXPECT_EQ(count, 64);
}

TEST(WeightedSampler, BinomialKernelWeightsMatchProbabilities) {
  // The Gaussian-blur decoder: weights {1,2,1,2,4,2,1,2,1} / 16.
  std::vector<std::uint32_t> weights = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  convert::WeightedSampler sampler(weights,
                                   std::make_unique<rng::VanDerCorput>(8));
  std::array<int, 9> histogram{};
  const int cycles = 4096;
  for (int i = 0; i < cycles; ++i) ++histogram[sampler.step()];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double expected = cycles * weights[k] / 16.0;
    EXPECT_NEAR(histogram[k], expected, expected * 0.05 + 4) << k;
  }
}

TEST(WeightedSampler, SingleCategoryAlwaysSelected) {
  convert::WeightedSampler sampler({7},
                                   std::make_unique<rng::Lfsr>(8, 3));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.step(), 0u);
}

TEST(WeightedSampler, TraceMatchesStep) {
  convert::WeightedSampler a({1, 3, 4}, std::make_unique<rng::Lfsr>(8, 9));
  convert::WeightedSampler b({1, 3, 4}, std::make_unique<rng::Lfsr>(8, 9));
  const auto trace = a.trace(64);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], b.step()) << i;
  }
}

TEST(WeightedSampler, ResetReplaysSequence) {
  convert::WeightedSampler sampler({1, 1, 2},
                                   std::make_unique<rng::Lfsr>(8, 21));
  const auto first = sampler.trace(32);
  sampler.reset();
  EXPECT_EQ(sampler.trace(32), first);
}

TEST(WeightedSampler, TotalWeightAccessor) {
  convert::WeightedSampler sampler({1, 2, 1, 2, 4, 2, 1, 2, 1},
                                   std::make_unique<rng::Lfsr>(8, 3));
  EXPECT_EQ(sampler.total_weight(), 16u);
  EXPECT_EQ(sampler.weights().size(), 9u);
}

}  // namespace
}  // namespace sc
