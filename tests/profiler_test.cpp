/// \file profiler_test.cpp
/// The span-aggregation profiler (src/obs/profiler.hpp) and the bounded
/// trace ring (src/obs/trace.hpp): call-tree recovery from hand-built
/// spans, the exclusive-time telescoping invariant, the collapsed-stack
/// golden, ring overflow semantics, and the 31-node engine-backend
/// acceptance run.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "engine/session.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace sc::obs;

TraceEvent span(const std::string& name, double ts_us, double dur_us,
                std::uint32_t tid = 0) {
  TraceEvent e;
  e.name = name;
  e.category = "test";
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  return e;
}

/// The hand-built reference tree used by several tests:
///   root [0, 100)
///     a   [10, 30)   and a second call [91, 95)
///     b   [40, 90)
///       c [50, 60)
std::vector<TraceEvent> reference_spans() {
  return {
      span("root", 0.0, 100.0), span("a", 10.0, 20.0),
      span("b", 40.0, 50.0),    span("c", 50.0, 10.0),
      span("a", 91.0, 4.0),
  };
}

const ProfileNode* child(const ProfileNode& node, const std::string& name) {
  for (const ProfileNode& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(Profiler, RecoversCallTreeFromContainment) {
  const Profile profile = build_profile(reference_spans());
  ASSERT_EQ(profile.roots.size(), 1u);
  const ProfileNode& root = profile.roots[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.calls, 1u);
  EXPECT_DOUBLE_EQ(root.inclusive_us, 100.0);
  // exclusive = 100 - (24 from a's two calls) - (50 from b) = 26.
  EXPECT_DOUBLE_EQ(root.exclusive_us, 26.0);
  ASSERT_EQ(root.children.size(), 2u);

  const ProfileNode* a = child(root, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 2u) << "same-name same-path spans must merge";
  EXPECT_DOUBLE_EQ(a->inclusive_us, 24.0);
  EXPECT_DOUBLE_EQ(a->exclusive_us, 24.0);
  EXPECT_TRUE(a->children.empty());

  const ProfileNode* b = child(root, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->inclusive_us, 50.0);
  EXPECT_DOUBLE_EQ(b->exclusive_us, 40.0);
  const ProfileNode* c = child(*b, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->inclusive_us, 10.0);

  EXPECT_EQ(profile.span_count, 5u);
  EXPECT_DOUBLE_EQ(profile.total_us, 100.0);
}

TEST(Profiler, ExclusiveTimesTelescopeToRootInclusive) {
  const Profile profile = build_profile(reference_spans());
  EXPECT_DOUBLE_EQ(profile.exclusive_sum_us(), 100.0);
  EXPECT_DOUBLE_EQ(profile.exclusive_sum_us(), profile.total_us);
}

TEST(Profiler, SpanEndingWhereNextStartsIsASibling) {
  // b starts at exactly a's end: containment is [start, end), so they are
  // siblings, not parent/child.
  const Profile profile = build_profile({
      span("root", 0.0, 20.0),
      span("a", 0.0, 10.0),
      span("b", 10.0, 10.0),
  });
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_EQ(profile.roots[0].children.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.roots[0].exclusive_us, 0.0);
}

TEST(Profiler, ThreadsKeptSeparateThenMergedByPath) {
  std::vector<TraceEvent> events;
  for (std::uint32_t tid = 0; tid < 2; ++tid) {
    events.push_back(span("work", 0.0, 50.0, tid));
    events.push_back(span("inner", 5.0, 10.0, tid));
  }
  const Profile profile = build_profile(std::move(events));
  ASSERT_EQ(profile.threads.size(), 2u);
  for (const ThreadProfile& thread : profile.threads) {
    ASSERT_EQ(thread.roots.size(), 1u);
    EXPECT_DOUBLE_EQ(thread.roots[0].inclusive_us, 50.0);
  }
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_EQ(profile.roots[0].calls, 2u);
  EXPECT_DOUBLE_EQ(profile.roots[0].inclusive_us, 100.0);
  // Concurrent threads each contribute their own wall time.
  EXPECT_DOUBLE_EQ(profile.total_us, 100.0);
  EXPECT_DOUBLE_EQ(profile.exclusive_sum_us(), 100.0);
}

TEST(Profiler, CollapsedStackGolden) {
  const std::string collapsed = build_profile(reference_spans()).to_collapsed();
  // Deterministic output for the reference tree, children ranked by
  // inclusive time; zero-exclusive paths are skipped.
  EXPECT_EQ(collapsed,
            "root 26\n"
            "root;b 40\n"
            "root;b;c 10\n"
            "root;a 24\n");
}

TEST(Profiler, CollapsedSanitizesSeparatorCharacters) {
  const Profile profile =
      build_profile({span("outer;with\nbad", 0.0, 10.0)});
  const std::string collapsed = profile.to_collapsed();
  EXPECT_EQ(collapsed, "outer:with:bad 10\n");
}

TEST(Profiler, TableAndJsonCarryDropCounter) {
  const Profile profile = build_profile(reference_spans(), 7);
  EXPECT_EQ(profile.dropped_events, 7u);
  EXPECT_NE(profile.to_table().find("7 dropped"), std::string::npos);
  EXPECT_NE(profile.to_json().find("\"dropped_events\": 7"),
            std::string::npos);
  EXPECT_NE(profile.to_json().find("\"span_count\": 5"), std::string::npos);
}

TEST(Profiler, CounterEventsAreIgnored) {
  std::vector<TraceEvent> events = reference_spans();
  TraceEvent counter;
  counter.name = "probe.scc";
  counter.phase = 'C';
  counter.ts_us = 42.0;
  events.push_back(counter);
  const Profile profile = build_profile(std::move(events));
  EXPECT_EQ(profile.span_count, 5u);
  EXPECT_EQ(profile.to_collapsed().find("probe.scc"), std::string::npos);
}

// ------------------------------------------------------------- trace ring

TEST(TraceRing, OverflowDropsOldestAndCounts) {
  TraceBuffer ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    ring.push(span("e" + std::to_string(i), static_cast<double>(i), 1.0));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first window of the most recent pushes.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceBuffer ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, TracerSurfacesDropsAndSnapshotStaysOrdered) {
  Tracer tracer(8);
  EXPECT_EQ(tracer.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    TraceEvent e = span("s" + std::to_string(i), static_cast<double>(i), 1.0);
    tracer.record(std::move(e));
  }
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12u);
  const std::vector<TraceEvent> events = tracer.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }

  // The drop counter reaches the metrics snapshot through Telemetry.
  TelemetryConfig config;
  config.trace_capacity = 4;
  Telemetry telemetry(config);
  for (int i = 0; i < 9; ++i) {
    Span s(telemetry.tracer(), "tick", "test");
  }
  EXPECT_EQ(telemetry.snapshot().counters.at("trace.dropped_events"), 5u);
}

// ------------------------------------------------------------- acceptance

/// The ISSUE's acceptance bar: a 31-node program on the engine backend,
/// profiled end to end — collapsed output exists and the exclusive-time
/// sum telescopes to the total profile time within 1%.
TEST(Acceptance, EngineRunProfileTelescopesWithinOnePercent) {
  using namespace sc::graph;
  GraphBuilder b;
  std::vector<Value> layer;
  for (unsigned i = 0; i < 16; ++i) {
    layer.push_back(
        b.input("p" + std::to_string(i), 0.15 + 0.05 * (i % 10), i % 4));
  }
  while (layer.size() > 1) {
    std::vector<Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.op("scaled-add", {layer[i], layer[i + 1]}));
    }
    layer = std::move(next);
  }
  b.output(layer[0], "out");
  const Program program = b.build();
  ASSERT_EQ(program.node_count(), 31u);

  Telemetry telemetry;
  sc::engine::Session session({2, 512, 0x5eed, &telemetry});
  const ProgramPlan plan = plan_program(program, Strategy::kManipulation);
  ExecConfig config;
  config.stream_length = 4096;
  config.width = 8;
  config.telemetry = &telemetry;
  make_engine_backend(session)->run(program, plan, config);

  const Profile profile = build_profile(*telemetry.tracer());
  EXPECT_EQ(profile.dropped_events, 0u);
  EXPECT_GT(profile.span_count, 0u);
  EXPECT_GT(profile.total_us, 0.0);
  // Telescoping invariant on a real multi-thread trace: within 1%.
  EXPECT_NEAR(profile.exclusive_sum_us() / profile.total_us, 1.0, 0.01);

  const std::string collapsed = profile.to_collapsed();
  EXPECT_NE(collapsed.find("backend.run.engine"), std::string::npos);
  EXPECT_NE(collapsed.find("engine.chunk"), std::string::npos);
  // Every line is "path<space>integer".
  std::size_t start = 0;
  while (start < collapsed.size()) {
    const std::size_t eol = collapsed.find('\n', start);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = collapsed.substr(start, eol - start);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    for (const char ch : value) {
      EXPECT_TRUE(ch >= '0' && ch <= '9') << line;
    }
    start = eol + 1;
  }
}

}  // namespace
