/// Tests for the synchronizer (paper Fig. 3a): exact D = 1 FSM semantics,
/// value conservation, induced positive correlation, depth generalization,
/// flush mode, and serial composition.

#include <gtest/gtest.h>

#include <tuple>

#include "bitstream/correlation.hpp"
#include "bitstream/synthesis.hpp"
#include "core/ops.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "test_util.hpp"

namespace sc::core {
namespace {

// --- exact Fig. 3a FSM semantics at D = 1 ---------------------------------

TEST(SynchronizerFsm, S0PassesEqualInputs) {
  Synchronizer sync;
  for (auto bit : {false, true}) {
    const BitPair out = sync.step(bit, bit);
    EXPECT_EQ(out.x, bit);
    EXPECT_EQ(out.y, bit);
    EXPECT_EQ(sync.credit(), 0);
  }
}

TEST(SynchronizerFsm, S0SavesUnpairedXBit) {
  Synchronizer sync;
  const BitPair out = sync.step(true, false);  // S0 --(1,0)/(0,0)--> S1
  EXPECT_FALSE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(sync.credit(), 1);
  EXPECT_EQ(sync.saved_ones(), 1u);
}

TEST(SynchronizerFsm, S0SavesUnpairedYBit) {
  Synchronizer sync;
  const BitPair out = sync.step(false, true);  // S0 --(0,1)/(0,0)--> S2
  EXPECT_FALSE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(sync.credit(), -1);
}

TEST(SynchronizerFsm, S1PairsSavedXBitWithIncomingY) {
  Synchronizer sync;
  sync.step(true, false);                       // -> S1
  const BitPair out = sync.step(false, true);   // S1 --(0,1)/(1,1)--> S0
  EXPECT_TRUE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(sync.credit(), 0);
}

TEST(SynchronizerFsm, S2PairsSavedYBitWithIncomingX) {
  Synchronizer sync;
  sync.step(false, true);                       // -> S2
  const BitPair out = sync.step(true, false);   // S2 --(1,0)/(1,1)--> S0
  EXPECT_TRUE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(sync.credit(), 0);
}

TEST(SynchronizerFsm, S1PassesEqualInputs) {
  Synchronizer sync;
  sync.step(true, false);  // -> S1
  const BitPair out = sync.step(true, true);
  EXPECT_TRUE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(sync.credit(), 1);  // still saved
}

TEST(SynchronizerFsm, S1SaturatedPassesSecondUnpairedX) {
  // D = 1: a second (1,0) while one X bit is saved passes through
  // (the figure's "In: X=1, Y=0 / Out: X'=1, Y'=0" self-loop).
  Synchronizer sync;
  sync.step(true, false);  // -> S1
  const BitPair out = sync.step(true, false);
  EXPECT_TRUE(out.x);
  EXPECT_FALSE(out.y);
  EXPECT_EQ(sync.credit(), 1);
}

TEST(SynchronizerFsm, S2SaturatedPassesSecondUnpairedY) {
  Synchronizer sync;
  sync.step(false, true);  // -> S2
  const BitPair out = sync.step(false, true);
  EXPECT_FALSE(out.x);
  EXPECT_TRUE(out.y);
  EXPECT_EQ(sync.credit(), -1);
}

TEST(SynchronizerFsm, ResetReturnsToInitialState) {
  Synchronizer sync;
  sync.step(true, false);
  sync.reset();
  EXPECT_EQ(sync.credit(), 0);
  EXPECT_EQ(sync.saved_ones(), 0u);
}

// --- worked example -----------------------------------------------------------

TEST(Synchronizer, PairsTableIStyleStreams) {
  // X = 10101010 (0.5), Y = 11111100 (0.75), SCC = 0: after the
  // synchronizer the pair realizes min-overlap... i.e. SCC -> +1.
  const Bitstream x = Bitstream::from_string("10101010");
  const Bitstream y = Bitstream::from_string("11111100");
  Synchronizer sync;
  const auto out = apply(sync, x, y);
  EXPECT_DOUBLE_EQ(scc(out.x, out.y), 1.0);
  // Values preserved exactly here (no residual bits for this input).
  EXPECT_EQ(out.x.count_ones() + sync.saved_ones(), x.count_ones());
}

// --- invariants over exhaustive-ish sweeps -------------------------------------

class SynchronizerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, unsigned>> {
};

TEST_P(SynchronizerSweep, ConservesOnesUpToResidualCredit) {
  const auto [lx, ly, depth] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  Synchronizer sync({depth, false});
  const auto out = apply(sync, x, y);
  const int credit = sync.credit();
  // ones_out_x = ones_in_x - max(credit, 0); ones_out_y = ones_in_y + min(credit, 0).
  EXPECT_EQ(out.x.count_ones() + static_cast<std::size_t>(std::max(credit, 0)),
            x.count_ones());
  EXPECT_EQ(out.y.count_ones(),
            y.count_ones() - static_cast<std::size_t>(std::max(-credit, 0)));
  // Residual is bounded by the depth.
  EXPECT_LE(sync.saved_ones(), depth);
}

TEST_P(SynchronizerSweep, RaisesSccTowardPlusOne) {
  const auto [lx, ly, depth] = GetParam();
  const Bitstream x = test::vdc_stream(lx);
  const Bitstream y = test::halton3_stream(ly);
  if (!scc_defined(x, y)) return;
  const double before = scc(x, y);
  Synchronizer sync({depth, false});
  const auto out = apply(sync, x, y);
  if (!scc_defined(out.x, out.y)) return;
  const double after = scc(out.x, out.y);
  EXPECT_GE(after, before - 1e-9);
  EXPECT_GT(after, 0.85) << "lx=" << lx << " ly=" << ly << " D=" << depth;
}

INSTANTIATE_TEST_SUITE_P(
    ValueDepthGrid, SynchronizerSweep,
    ::testing::Combine(::testing::Values(32u, 96u, 128u, 192u, 240u),
                       ::testing::Values(16u, 64u, 128u, 176u, 224u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(Synchronizer, DeeperSaveDepthNotWorseOnAverage) {
  // Average output SCC over a value grid must not degrade with depth.
  double prev = -2.0;
  for (unsigned depth : {1u, 2u, 4u, 8u}) {
    double total = 0.0;
    int count = 0;
    for (std::uint32_t lx = 16; lx <= 240; lx += 32) {
      for (std::uint32_t ly = 16; ly <= 240; ly += 32) {
        Synchronizer sync({depth, false});
        const auto out =
            apply(sync, test::vdc_stream(lx), test::halton3_stream(ly));
        if (!scc_defined(out.x, out.y)) continue;
        total += scc(out.x, out.y);
        ++count;
      }
    }
    const double average = total / count;
    EXPECT_GE(average, prev - 0.01) << "depth transition to " << depth;
    prev = average;
  }
}

TEST(Synchronizer, AlreadyCorrelatedInputsStayCorrelated) {
  // Paper Table II Halton/Halton row: input SCC ~0.98 stays ~0.99.
  const auto pair = make_positively_correlated(100, 180, 256);
  Synchronizer sync;
  const auto out = apply(sync, pair.x, pair.y);
  EXPECT_GT(scc(out.x, out.y), 0.98);
  // Values preserved up to the residual saved bit (conservation identity).
  const int credit = sync.credit();
  EXPECT_EQ(out.x.count_ones() + static_cast<std::size_t>(std::max(credit, 0)),
            100u);
  EXPECT_EQ(out.y.count_ones() + static_cast<std::size_t>(std::max(-credit, 0)),
            180u);
}

TEST(Synchronizer, BiasIsNonPositiveWithoutFlush) {
  // Saved bits can only be lost, never invented: each output has at most
  // as many 1s as its own input stream (note Halton streams are not
  // exactly level-accurate, so compare against the actual input counts).
  for (std::uint32_t lx : {30u, 128u, 220u}) {
    for (std::uint32_t ly : {50u, 128u, 200u}) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      Synchronizer sync({4, false});
      const auto out = apply(sync, x, y);
      EXPECT_LE(out.x.count_ones(), x.count_ones());
      EXPECT_LE(out.y.count_ones(), y.count_ones());
    }
  }
}

TEST(Synchronizer, InitialCreditPreloadEmitsExtraOne) {
  // A preloaded saved X bit pairs with the first lone Y 1.
  Synchronizer sync({1, false, +1});
  EXPECT_EQ(sync.credit(), 1);
  const BitPair out = sync.step(false, true);
  EXPECT_TRUE(out.x);  // phantom saved bit emitted
  EXPECT_TRUE(out.y);
  EXPECT_EQ(sync.credit(), 0);
}

TEST(Synchronizer, InitialCreditClampedToDepth) {
  Synchronizer sync({2, false, +9});
  EXPECT_EQ(sync.credit(), 2);
}

// --- flush mode -----------------------------------------------------------------

TEST(SynchronizerFlush, DrainsResidualOnTrailingZeros) {
  // X = 1,0,0,0  Y = 0,0,0,0: without flush the saved X 1 is lost.
  {
    Synchronizer plain({1, false});
    const auto out = apply(plain, Bitstream::from_string("1000"),
                           Bitstream::from_string("0000"));
    EXPECT_EQ(out.x.count_ones(), 0u);
  }
  {
    Synchronizer flushing({1, true});
    const auto out = apply(flushing, Bitstream::from_string("1000"),
                           Bitstream::from_string("0000"));
    EXPECT_EQ(out.x.count_ones(), 1u);  // force-emitted before the end
  }
}

TEST(SynchronizerFlush, ReducesAverageAbsBias) {
  double bias_plain = 0.0;
  double bias_flush = 0.0;
  int count = 0;
  for (std::uint32_t lx = 16; lx <= 240; lx += 16) {
    for (std::uint32_t ly = 16; ly <= 240; ly += 16) {
      const Bitstream x = test::vdc_stream(lx);
      const Bitstream y = test::halton3_stream(ly);
      Synchronizer plain({8, false});
      Synchronizer flushing({8, true});
      const auto a = apply(plain, x, y);
      const auto b = apply(flushing, x, y);
      bias_plain += std::abs(a.x.value() - x.value()) +
                    std::abs(a.y.value() - y.value());
      bias_flush += std::abs(b.x.value() - x.value()) +
                    std::abs(b.y.value() - y.value());
      ++count;
    }
  }
  EXPECT_LT(bias_flush, bias_plain + 1e-12);
}

TEST(SynchronizerFlush, StillRaisesScc) {
  Synchronizer sync({2, true});
  const auto out = apply(sync, test::vdc_stream(96), test::halton3_stream(160));
  EXPECT_GT(scc(out.x, out.y), 0.8);
}

TEST(SynchronizerFlush, WithoutBeginStreamBehavesLikePlainFsm) {
  // Unknown stream length disables forcing; semantics match flush=false.
  Synchronizer flushing({1, true});
  Synchronizer plain({1, false});
  const Bitstream x = test::vdc_stream(100);
  const Bitstream y = test::halton3_stream(150);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const BitPair a = flushing.step(x.get(i), y.get(i));
    const BitPair b = plain.step(x.get(i), y.get(i));
    EXPECT_EQ(a.x, b.x) << i;
    EXPECT_EQ(a.y, b.y) << i;
  }
}

TEST(SynchronizerFlush, KeepsFlushSemanticsPastAnnouncedLength) {
  // Regression for the remaining_ == 0 sentinel: it meant both "length
  // never announced" and "announced length consumed", so one bit past the
  // announced end the FSM silently reverted to save mode and swallowed 1s.
  Synchronizer sync({1, true});
  sync.begin_stream(2);
  const BitPair o1 = sync.step(true, false);  // save the unpaired X 1
  EXPECT_FALSE(o1.x);
  EXPECT_FALSE(o1.y);
  const BitPair o2 = sync.step(false, false);  // flush window: force-emit
  EXPECT_TRUE(o2.x);
  EXPECT_FALSE(o2.y);
  EXPECT_EQ(sync.saved_ones(), 0u);
  // One past the announced end: must pass through, not save the 1.
  const BitPair o3 = sync.step(true, false);
  EXPECT_TRUE(o3.x);
  EXPECT_FALSE(o3.y);
  EXPECT_EQ(sync.saved_ones(), 0u);
}

TEST(SynchronizerFlush, ResetClearsAnnouncedLength) {
  // reset() must also forget the announced length, or the next (unknown
  // length) run would flush spuriously.
  Synchronizer sync({1, true});
  sync.begin_stream(1);
  sync.reset();
  Synchronizer plain({1, false});
  const Bitstream x = test::vdc_stream(64);
  const Bitstream y = test::halton3_stream(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const BitPair a = sync.step(x.get(i), y.get(i));
    const BitPair b = plain.step(x.get(i), y.get(i));
    EXPECT_EQ(a.x, b.x) << i;
    EXPECT_EQ(a.y, b.y) << i;
  }
}

// --- composition (paper §III-B) ---------------------------------------------------

TEST(SynchronizerComposition, StagesImproveCorrelation) {
  const Bitstream x = test::lfsr_stream(128, 1);
  const Bitstream y = test::vdc_stream(128);
  double prev = scc(x, y);
  for (std::size_t stages : {1u, 2u, 4u}) {
    const auto out = compose_synchronizers(x, y, stages);
    const double c = scc(out.x, out.y);
    EXPECT_GE(c, prev - 0.02) << stages;
    prev = c;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(SynchronizerComposition, ZeroStagesIsIdentity) {
  const Bitstream x = test::vdc_stream(77);
  const Bitstream y = test::halton3_stream(181);
  const auto out = compose_synchronizers(x, y, 0);
  EXPECT_EQ(out.x, x);
  EXPECT_EQ(out.y, y);
}

TEST(SynchronizerComposition, ValueDriftBoundedByStages) {
  const Bitstream x = test::vdc_stream(128);
  const Bitstream y = test::halton3_stream(128);
  const std::size_t stages = 4;
  const auto out = compose_synchronizers(x, y, stages);
  // Each stage can strand at most D = 1 one per side; preloads can add one.
  EXPECT_NEAR(out.x.value(), x.value(), (stages + 2) / 256.0);
  EXPECT_NEAR(out.y.value(), y.value(), (stages + 2) / 256.0);
}

}  // namespace
}  // namespace sc::core
