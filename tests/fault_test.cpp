/// Tests for the fault-injection subsystem (src/fault/): error-process
/// statistics and independence, edge-fault semantics (stuck-at, flip,
/// burst, transient windows), plan resolution and validation, FSM state
/// corruption, and — the PR 2 kernel_test gap — directed conformance cases
/// with faults landing on exact kernel chunk boundaries and inside the
/// final partial chunk for synchronizer / desynchronizer / chain-link
/// fixes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "bitstream/correlation.hpp"
#include "engine/session.hpp"
#include "fault/fault.hpp"
#include "fault/inject.hpp"
#include "fault/sweep.hpp"
#include "fault_fixtures.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::fault {
namespace {

using fixtures::conforms;
using fixtures::two_input;
using graph::BackendKind;
using graph::ExecConfig;
using graph::ExecutionResult;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Program;
using graph::ProgramPlan;
using graph::Strategy;
using graph::Value;

Program shared_max() { return two_input("max", /*shared_group=*/true); }

// --- the error processes ----------------------------------------------------

TEST(ErrorProcess, RateIsAccurateAndReplayable) {
  const std::uint64_t key = fault_key(7, "edge", ErrorKind::kBitFlip, 0);
  const std::size_t n = 1 << 16;
  for (const double rate : {0.01, 0.1, 0.5}) {
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (draw_at(key, i, rate)) ++fired;
    }
    const double measured = static_cast<double>(fired) / n;
    EXPECT_NEAR(measured, rate, 4.0 * std::sqrt(rate * (1 - rate) / n))
        << "rate " << rate;
    // Replay: same key, same indices, same decisions.
    std::size_t again = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (draw_at(key, i, rate)) ++again;
    }
    EXPECT_EQ(fired, again);
  }
  EXPECT_FALSE(draw_at(key, 0, 0.0));
  EXPECT_TRUE(draw_at(key, 0, 1.0));
}

TEST(ErrorProcess, DistinctEdgesSaltsAndKindsAreIndependent) {
  // Two error processes must not fire in lockstep: build the decision
  // streams of each key pair and bound their SCC — the same audit the rng
  // suite applies to generator lanes, here for the fault sources.
  const std::size_t n = 1 << 14;
  const std::uint64_t keys[] = {
      fault_key(7, "x", ErrorKind::kBitFlip, 0),
      fault_key(7, "x", ErrorKind::kBitFlip, 1),   // salt differs
      fault_key(7, "y", ErrorKind::kBitFlip, 0),   // edge differs
      fault_key(7, "x", ErrorKind::kBurst, 0),     // kind differs
      fault_key(8, "x", ErrorKind::kBitFlip, 0),   // master seed differs
  };
  std::vector<Bitstream> decisions;
  for (const std::uint64_t key : keys) {
    Bitstream bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (draw_at(key, i, 0.5)) bits.set(i, true);
    }
    decisions.push_back(std::move(bits));
  }
  for (std::size_t a = 0; a < decisions.size(); ++a) {
    EXPECT_NE(keys[a], 0u);
    for (std::size_t b = a + 1; b < decisions.size(); ++b) {
      EXPECT_LT(std::abs(scc(decisions[a], decisions[b])), 0.05)
          << "keys " << a << " and " << b << " fire in lockstep";
    }
  }
}

// --- edge-fault semantics ---------------------------------------------------

TEST(EdgeFaults, StuckAtForcesTheEdgeAndItsConsumers) {
  const Program p = shared_max();
  const ProgramPlan plan = plan_program(p, Strategy::kNone);
  ExecConfig config;
  config.stream_length = 256;

  FaultPlan stuck1;
  stuck1.edges.push_back({"y", ErrorKind::kStuckAt1, 0.0});
  config.fault_plan = &stuck1;
  const ExecutionResult r1 =
      graph::make_backend(BackendKind::kKernel)->run(p, plan, config);
  EXPECT_DOUBLE_EQ(r1.streams[p.find("y")].value(), 1.0);
  // max(x, 1) = 1: the OR consumer sees the stuck wire.
  EXPECT_DOUBLE_EQ(r1.values[0], 1.0);

  FaultPlan stuck0;
  stuck0.edges.push_back({"y", ErrorKind::kStuckAt0, 0.0});
  config.fault_plan = &stuck0;
  const ExecutionResult r0 =
      graph::make_backend(BackendKind::kKernel)->run(p, plan, config);
  EXPECT_DOUBLE_EQ(r0.streams[p.find("y")].value(), 0.0);
  // max(x, 0) = x under SCC-agnostic OR with y = const 0.
  EXPECT_DOUBLE_EQ(r0.values[0], r0.streams[p.find("x")].value());
}

TEST(EdgeFaults, BitFlipXorsTheCleanStreamExactlyWhereTheProcessFired) {
  const Program p = shared_max();
  const ProgramPlan plan = plan_program(p, Strategy::kNone);
  ExecConfig config;
  config.stream_length = 777;

  const ExecutionResult clean =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);
  FaultPlan faults;
  faults.seed = 99;
  faults.edges.push_back({"x", ErrorKind::kBitFlip, 0.1, 16, 5});
  config.fault_plan = &faults;
  const ExecutionResult faulted =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);

  const std::uint64_t key = fault_key(99, "x", ErrorKind::kBitFlip, 5);
  const NodeId x = p.find("x");
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < config.stream_length; ++i) {
    const bool expect_flip = draw_at(key, i, 0.1);
    EXPECT_EQ(faulted.streams[x].get(i), clean.streams[x].get(i) ^ expect_flip)
        << "bit " << i;
    flipped += expect_flip;
  }
  EXPECT_GT(flipped, 0u);
}

TEST(EdgeFaults, BurstCorruptsWholeAlignedWindows) {
  const Program p = shared_max();
  const ProgramPlan plan = plan_program(p, Strategy::kNone);
  ExecConfig config;
  config.stream_length = 1024;

  const ExecutionResult clean =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);
  FaultPlan faults;
  faults.edges.push_back({"x", ErrorKind::kBurst, 0.3, /*burst_length=*/32});
  config.fault_plan = &faults;
  const ExecutionResult faulted =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);

  const NodeId x = p.find("x");
  std::size_t corrupted_windows = 0;
  for (std::size_t w = 0; w < config.stream_length / 32; ++w) {
    // Within one window, either every bit flipped or none did.
    const bool first =
        faulted.streams[x].get(w * 32) != clean.streams[x].get(w * 32);
    for (std::size_t i = 1; i < 32; ++i) {
      EXPECT_EQ(faulted.streams[x].get(w * 32 + i) !=
                    clean.streams[x].get(w * 32 + i),
                first)
          << "window " << w << " bit " << i;
    }
    corrupted_windows += first;
  }
  EXPECT_GT(corrupted_windows, 2u);
  EXPECT_LT(corrupted_windows, 20u);  // ~0.3 * 32 windows
}

TEST(EdgeFaults, TransientWindowLimitsTheBlastRadius) {
  const Program p = shared_max();
  const ProgramPlan plan = plan_program(p, Strategy::kNone);
  ExecConfig config;
  config.stream_length = 512;

  const ExecutionResult clean =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);
  FaultPlan faults;
  EdgeFault fault;
  fault.edge = "x";
  fault.kind = ErrorKind::kBitFlip;
  fault.rate = 1.0;  // deterministic inversion inside the window
  fault.begin = 100;
  fault.end = 140;
  faults.edges.push_back(fault);
  config.fault_plan = &faults;
  const ExecutionResult faulted =
      graph::make_backend(BackendKind::kReference)->run(p, plan, config);

  const NodeId x = p.find("x");
  for (std::size_t i = 0; i < config.stream_length; ++i) {
    const bool inside = i >= 100 && i < 140;
    EXPECT_EQ(faulted.streams[x].get(i), clean.streams[x].get(i) ^ inside)
        << "bit " << i;
  }
}

// --- resolution & validation ------------------------------------------------

TEST(Resolution, UnknownNamesSkipButValidateThrows) {
  const Program p = shared_max();
  FaultPlan plan;
  plan.edges.push_back({"no-such-wire", ErrorKind::kStuckAt1, 0.0});
  const ResolvedFaultPlan resolved = resolve(&plan, p);
  EXPECT_FALSE(resolved.any_edges);  // skipped: the wire does not exist
  EXPECT_THROW(validate(plan, p), std::invalid_argument);

  FaultPlan bad_burst;
  bad_burst.edges.push_back({"x", ErrorKind::kBurst, 0.1, /*burst_length=*/0});
  EXPECT_THROW(validate(bad_burst, p), std::invalid_argument);

  FaultPlan fsm_on_input;
  fsm_on_input.fsms.push_back({"x", 0, 0, -1});
  EXPECT_THROW(validate(fsm_on_input, p), std::invalid_argument);

  FaultPlan good;
  good.edges.push_back({"out", ErrorKind::kBitFlip, 0.1});
  good.fsms.push_back({"out", 10, 0, -1});
  EXPECT_NO_THROW(validate(good, p));
  EXPECT_EQ(resolve(nullptr, p).any_edges, false);
}

// --- FSM state corruption ---------------------------------------------------

TEST(FsmCorruption, DisturbsTheOutputAndStaysBackendIdentical) {
  // Shared-trace multiply gets a planned decorrelator; wiping its shuffle
  // buffers mid-stream must visibly disturb the output (the buffers hold
  // in-flight bits and the replayed address schedule shifts) and every
  // backend must place the wipe on the same absolute cycle.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.45, 0);
  b.output(b.op("multiply", {x, y}), "out");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(plan.inserted_units, 1u);

  ExecConfig config;
  config.stream_length = 600;
  const auto kernel = graph::make_backend(BackendKind::kKernel);
  const ExecutionResult clean = kernel->run(p, plan, config);

  FaultPlan seu;
  seu.fsms.push_back({"out", /*first=*/300, /*period=*/0, /*lane=*/-1});
  config.fault_plan = &seu;
  const ExecutionResult hit = kernel->run(p, plan, config);

  const NodeId out = p.outputs()[0];
  EXPECT_NE(clean.streams[out], hit.streams[out]);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(clean.streams[out].get(i), hit.streams[out].get(i))
        << "corruption leaked backward to bit " << i;
  }

  auto engine = graph::make_backend(BackendKind::kEngine);
  EXPECT_TRUE(conforms(*kernel, p, plan, config));
  EXPECT_TRUE(conforms(*engine, p, plan, config));
}

TEST(FsmCorruption, PeriodicAndLaneTargetedFaultsAgreeAcrossBackends) {
  // bernstein-x2-3 fed one stream three times: three pairwise decorrelator
  // fixes, so lane targeting matters.
  GraphBuilder b;
  const Value x = b.input("x", 0.5, 0);
  b.output(b.op("bernstein-x2-3", {x, x, x}), "fx");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_GE(plan.inserted_units, 3u);

  for (const std::int32_t lane : {-1, 0, 2}) {
    FaultPlan seu;
    seu.fsms.push_back({"fx", /*first=*/37, /*period=*/97, lane});
    ExecConfig config;
    config.stream_length = 500;
    config.fault_plan = &seu;
    const auto kernel = graph::make_backend(BackendKind::kKernel);
    const auto engine = graph::make_backend(BackendKind::kEngine);
    EXPECT_TRUE(conforms(*kernel, p, plan, config)) << "lane " << lane;
    EXPECT_TRUE(conforms(*engine, p, plan, config)) << "lane " << lane;
  }
}

TEST(FsmCorruption, SharedCircuitSeuHitsEverySiblingConsumer) {
  // Two siblings read the same (x, z) pair and each need a synchronizer;
  // the optimizer's sharing pass models them as ONE circuit fanning out
  // (PairFix::shared_with).  An SEU addressed through either sibling must
  // therefore disturb BOTH outputs — one state register, one blast radius
  // — while without the optimizer the two mirrors are separate physical
  // circuits and the fault stays local to the named op.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value z = b.input("z", 0.4, 1);
  b.output(b.op("subtract", {x, z}), "diff");
  b.output(b.op("min", {x, z}), "floor");
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(plan.inserted_units, 2u);

  const auto kernel = graph::make_backend(BackendKind::kKernel);
  FaultPlan seu;
  seu.fsms.push_back({"diff", /*first=*/16, /*period=*/9, /*lane=*/-1});
  const NodeId diff = p.find("diff");
  const NodeId floor = p.find("floor");
  for (const bool optimize : {false, true}) {
    ExecConfig config;
    config.stream_length = 512;
    config.optimize = optimize;
    const ExecutionResult clean = kernel->run(p, plan, config);
    config.fault_plan = &seu;
    const ExecutionResult hit = kernel->run(p, plan, config);
    EXPECT_NE(clean.streams[diff], hit.streams[diff]) << optimize;
    if (optimize) {
      EXPECT_NE(clean.streams[floor], hit.streams[floor])
          << "shared circuit: the wipe must fan out to the sibling";
    } else {
      EXPECT_EQ(clean.streams[floor], hit.streams[floor])
          << "separate circuits: the wipe must stay local to 'diff'";
    }
    const auto engine = graph::make_backend(BackendKind::kEngine);
    EXPECT_TRUE(conforms(*engine, p, plan, config)) << optimize;
  }
}

TEST(Resolution, FaultsOnValuesTheOptimizerMergesAwayVanishIdentically) {
  // CSE keeps the first duplicate's name; the merged-away duplicate's
  // wire — and any fault naming it — vanishes from the optimized design,
  // the same way a removed dead value's would.  Pinned here so the
  // documented contract (fault.hpp) has a regression.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.45, 1);
  b.output(b.op("multiply", {x, y}), "keep");
  b.output(b.op("multiply", {x, y}), "dup");  // CSE merges into "keep"
  const Program p = b.build();
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);

  FaultPlan faults;
  faults.edges.push_back({"dup", ErrorKind::kStuckAt1, 0.0});
  ExecConfig config;
  config.stream_length = 256;
  config.optimize = true;
  const auto kernel = graph::make_backend(BackendKind::kKernel);
  const ExecutionResult clean = kernel->run(p, plan, config);
  config.fault_plan = &faults;
  const ExecutionResult faulted = kernel->run(p, plan, config);
  // The faulted wire does not exist in the optimized design: no effect,
  // and identically none on every backend.
  for (std::size_t s = 0; s < clean.streams.size(); ++s) {
    EXPECT_EQ(clean.streams[s], faulted.streams[s]) << "stream " << s;
  }
  EXPECT_TRUE(conforms(*graph::make_backend(BackendKind::kEngine), p, plan,
                       config));

  // The survivor's own name still faults normally.
  faults.edges[0].edge = "keep";
  const ExecutionResult survivor_hit = kernel->run(p, plan, config);
  EXPECT_NE(clean.streams[p.find("keep")],
            survivor_hit.streams[p.find("keep")]);
}

// --- directed: faults on kernel chunk boundaries and flush tails ------------
// PR 2's kernel_test proved chunked == whole-stream on clean runs; these
// close the faulted gap: corruption landing exactly on a chunk boundary,
// inside the final partial chunk, and on the last bit of an exact-multiple
// stream must not shift under chunking for any fix kind.

struct BoundaryCase {
  const char* label;
  std::size_t stream_length;  // chunk_bits = 128
};

class ChunkBoundaryFaults : public ::testing::Test {
 protected:
  static constexpr std::size_t kChunkBits = 128;

  void check(const Program& p, const ProgramPlan& plan,
             const char* fix_label) {
    const BoundaryCase cases[] = {
        {"final partial chunk", 3 * kChunkBits + 37},
        {"exact chunk multiple", 3 * kChunkBits},
        {"one past a boundary", 2 * kChunkBits + 1},
    };
    for (const BoundaryCase& c : cases) {
      // Faults pinned to the interesting indices: a deterministic flip
      // window straddling the first chunk boundary, a stuck window
      // covering the final (possibly partial) chunk's interior, and FSM
      // wipes at an exact boundary and inside the last chunk.
      FaultPlan faults;
      EdgeFault straddle;
      straddle.edge = "x";
      straddle.kind = ErrorKind::kBitFlip;
      straddle.rate = 1.0;
      straddle.begin = kChunkBits - 2;
      straddle.end = kChunkBits + 2;
      faults.edges.push_back(straddle);
      EdgeFault tail;
      tail.edge = "y";
      tail.kind = ErrorKind::kStuckAt1;
      tail.begin = (c.stream_length / kChunkBits) * kChunkBits;
      tail.end = c.stream_length;  // empty when length is an exact multiple
      if (tail.begin == c.stream_length) tail.begin = c.stream_length - 1;
      faults.edges.push_back(tail);
      faults.fsms.push_back({"out", /*first=*/2 * kChunkBits, 0, -1});
      faults.fsms.push_back({"out", /*first=*/c.stream_length - 1, 0, -1});

      ExecConfig config;
      config.stream_length = c.stream_length;
      config.fault_plan = &faults;

      engine::Session session({1, kChunkBits, 0x5eed});
      const auto chunked = graph::make_engine_backend(session);
      const auto kernel = graph::make_backend(BackendKind::kKernel);
      EXPECT_TRUE(conforms(*chunked, p, plan, config))
          << fix_label << ": " << c.label;
      EXPECT_TRUE(conforms(*kernel, p, plan, config))
          << fix_label << ": " << c.label;
    }
  }
};

TEST_F(ChunkBoundaryFaults, Synchronizer) {
  const Program p = two_input("max", false);
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(plan.fixes[0].fix, graph::FixKind::kSynchronizer);
  check(p, plan, "synchronizer");
}

TEST_F(ChunkBoundaryFaults, Desynchronizer) {
  const Program p = two_input("saturating-add", false);
  const ProgramPlan plan = plan_program(p, Strategy::kManipulation);
  ASSERT_EQ(plan.fixes[0].fix, graph::FixKind::kDesynchronizer);
  check(p, plan, "desynchronizer");
}

TEST_F(ChunkBoundaryFaults, DecorrelatorChainLink) {
  // Chain links are optimizer-emitted; a manual one-fix plan over
  // multiply(x, x) drives the chain-link kernel directly.
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.45, 0);  // unused by the fix, faulted edge
  b.output(b.op("multiply", {x, x}), "out");
  b.output(b.op("max", {y, y}), "aux");
  const Program p = b.build();
  ProgramPlan plan;
  plan.strategy = Strategy::kManipulation;
  graph::PairFix fix;
  fix.op_node = p.find("out");
  fix.operand_a = 0;
  fix.operand_b = 1;
  fix.requirement = graph::Requirement::kUncorrelated;
  fix.relation = graph::Relation::kPositive;
  fix.fix = graph::FixKind::kDecorrelatorChain;
  plan.fixes.push_back(fix);
  plan.inserted_units = 1;
  check(p, plan, "chain-link");
}

// --- the sweep analyzer -----------------------------------------------------

TEST(Sweep, ReproducesTheReCo1OrderingAndRecoveryAsymmetry) {
  SweepConfig config;
  config.stream_length = 2048;
  const SweepReport report = sweep(config);
  EXPECT_TRUE(report.reco1_ordering_holds());

  // Clean runs drift nothing; faulted shared-trace pairs lose SCC.
  for (const SweepRow& row : report.rows) {
    if (row.regime == "correlated") {
      EXPECT_NEAR(row.scc_clean, 1.0, 1e-9) << row.circuit;
      if (row.rate >= 0.05) {
        EXPECT_LT(row.scc_faulty, 0.9)
            << row.circuit << " rate " << row.rate;
      }
    }
  }

  // Recovery asymmetry: saved-credit FSMs re-converge fast; shuffle-buffer
  // circuits replay a shifted schedule and stay divergent far longer.
  std::size_t sync_depth = 0, decor_depth = 0;
  for (const RecoveryRow& row : report.recovery) {
    if (row.fix == "synchronizer") sync_depth = row.recovery_depth;
    if (row.fix == "decorrelator") decor_depth = row.recovery_depth;
  }
  EXPECT_LT(sync_depth, 64u);
  EXPECT_GT(decor_depth, sync_depth);
}

}  // namespace
}  // namespace sc::fault
