/// \file element.hpp
/// Per-cycle circuit element interface for the cycle-level simulator.
///
/// The paper's methodology evaluates accelerators with "a cycle-level
/// simulator which uses models that have been verified against RTL
/// simulation traces".  This module is that simulator: a Circuit is a set
/// of single-bit wires and an ordered list of Elements; each clock cycle
/// every element reads its input wires and writes its output wires in
/// insertion (topological) order.  Sequential elements advance their
/// internal state exactly once per cycle.
///
/// The same FSM objects (core::Synchronizer etc.) back both this simulator
/// and the whole-stream functional API; tests assert the two are
/// bit-identical, mirroring the paper's model-vs-RTL cross-check.

#pragma once

#include <cstdint>

namespace sc::sim {

class Circuit;

/// Wire handle (index into the circuit's wire table).
using WireId = std::uint32_t;

/// One circuit element, evaluated once per cycle.
class Element {
 public:
  virtual ~Element() = default;

  /// Reads input wires and writes output wires for the current cycle.
  /// Elements are evaluated in the order they were added to the circuit,
  /// which must be a topological order of the combinational paths.
  virtual void step(Circuit& circuit) = 0;

  /// Returns the element to its power-on state.
  virtual void reset() {}
};

}  // namespace sc::sim
