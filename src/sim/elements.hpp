/// \file elements.hpp
/// Cycle-level elements wrapping every circuit in the library: sources,
/// gates, correlation manipulators, arithmetic FSMs, and probes.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arith/add.hpp"
#include "arith/divide.hpp"
#include "arith/minmax.hpp"
#include "bitstream/bitstream.hpp"
#include "convert/sng.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/isolator.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "rng/random_source.hpp"
#include "sim/circuit.hpp"
#include "sim/element.hpp"

namespace sc::sim {

/// Replays a fixed bitstream onto a wire (0 past the end).
class StreamSource final : public Element {
 public:
  StreamSource(Bitstream stream, WireId out)
      : stream_(std::move(stream)), out_(out) {}
  void step(Circuit& c) override {
    const bool bit = index_ < stream_.size() && stream_.get(index_);
    ++index_;
    c.set_value(out_, bit);
  }
  void reset() override { index_ = 0; }

 private:
  Bitstream stream_;
  WireId out_;
  std::size_t index_ = 0;
};

/// Comparator SNG: emits (rng < level) each cycle.
class SngElement final : public Element {
 public:
  SngElement(rng::RandomSourcePtr source, std::uint32_t level, WireId out)
      : sng_(std::move(source)), level_(level), out_(out) {}
  void step(Circuit& c) override { c.set_value(out_, sng_.step(level_)); }
  void reset() override { sng_.reset(); }
  void set_level(std::uint32_t level) { level_ = level; }

 private:
  convert::Sng sng_;
  std::uint32_t level_;
  WireId out_;
};

/// Two-input combinational gate.
class Gate2 final : public Element {
 public:
  enum class Kind { kAnd, kOr, kXor, kXnor, kNand, kNor };
  Gate2(Kind kind, WireId a, WireId b, WireId out)
      : kind_(kind), a_(a), b_(b), out_(out) {}
  void step(Circuit& c) override;

 private:
  Kind kind_;
  WireId a_, b_, out_;
};

/// Inverter.
class NotGate final : public Element {
 public:
  NotGate(WireId in, WireId out) : in_(in), out_(out) {}
  void step(Circuit& c) override { c.set_value(out_, !c.value(in_)); }

 private:
  WireId in_, out_;
};

/// Two-input mux: out = sel ? b : a.
class Mux2 final : public Element {
 public:
  Mux2(WireId a, WireId b, WireId sel, WireId out)
      : a_(a), b_(b), sel_(sel), out_(out) {}
  void step(Circuit& c) override {
    c.set_value(out_, c.value(sel_) ? c.value(b_) : c.value(a_));
  }

 private:
  WireId a_, b_, sel_, out_;
};

/// Wraps any core::PairTransform (synchronizer, desynchronizer,
/// decorrelator, isolator pair, TFM pair) as a 2-in / 2-out element.
class PairTransformElement final : public Element {
 public:
  PairTransformElement(std::unique_ptr<core::PairTransform> transform,
                       WireId in_x, WireId in_y, WireId out_x, WireId out_y)
      : transform_(std::move(transform)),
        in_x_(in_x),
        in_y_(in_y),
        out_x_(out_x),
        out_y_(out_y) {}
  void step(Circuit& c) override {
    const core::BitPair out = transform_->step(c.value(in_x_), c.value(in_y_));
    c.set_value(out_x_, out.x);
    c.set_value(out_y_, out.y);
  }
  void reset() override { transform_->reset(); }
  core::PairTransform& transform() { return *transform_; }

 private:
  std::unique_ptr<core::PairTransform> transform_;
  WireId in_x_, in_y_, out_x_, out_y_;
};

/// Wraps a core::StreamTransform (shuffle buffer, delay line, TFM).
class StreamTransformElement final : public Element {
 public:
  StreamTransformElement(std::unique_ptr<core::StreamTransform> transform,
                         WireId in, WireId out)
      : transform_(std::move(transform)), in_(in), out_(out) {}
  void step(Circuit& c) override {
    c.set_value(out_, transform_->step(c.value(in_)));
  }
  void reset() override { transform_->reset(); }

 private:
  std::unique_ptr<core::StreamTransform> transform_;
  WireId in_, out_;
};

/// Deterministic correlation-agnostic adder element.
class ToggleAdderElement final : public Element {
 public:
  ToggleAdderElement(WireId a, WireId b, WireId out)
      : a_(a), b_(b), out_(out) {}
  void step(Circuit& c) override {
    c.set_value(out_, adder_.step(c.value(a_), c.value(b_)));
  }
  void reset() override { adder_.reset(); }

 private:
  arith::ToggleAdder adder_;
  WireId a_, b_, out_;
};

/// CORDIV divider element.
class CordivElement final : public Element {
 public:
  CordivElement(WireId x, WireId y, WireId out) : x_(x), y_(y), out_(out) {}
  void step(Circuit& c) override {
    c.set_value(out_, div_.step(c.value(x_), c.value(y_)));
  }
  void reset() override { div_.reset(); }

 private:
  arith::Cordiv div_;
  WireId x_, y_, out_;
};

/// Correlation-agnostic max element.
class CaMaxElement final : public Element {
 public:
  CaMaxElement(WireId x, WireId y, WireId out) : x_(x), y_(y), out_(out) {}
  void step(Circuit& c) override {
    c.set_value(out_, unit_.step(c.value(x_), c.value(y_)));
  }
  void reset() override { unit_.reset(); }

 private:
  arith::CaMax unit_;
  WireId x_, y_, out_;
};

/// S/D counter probe: accumulates the 1s on a wire.
class CounterElement final : public Element {
 public:
  explicit CounterElement(WireId in) : in_(in) {}
  void step(Circuit& c) override {
    count_ += c.value(in_) ? 1 : 0;
    ++cycles_;
  }
  void reset() override {
    count_ = 0;
    cycles_ = 0;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double value() const {
    return cycles_ == 0
               ? 0.0
               : static_cast<double>(count_) / static_cast<double>(cycles_);
  }

 private:
  WireId in_;
  std::uint64_t count_ = 0;
  std::uint64_t cycles_ = 0;
};

/// Records the full bit trace of a wire.
class ProbeElement final : public Element {
 public:
  explicit ProbeElement(WireId in) : in_(in) {}
  void step(Circuit& c) override { trace_.push_back(c.value(in_)); }
  void reset() override { trace_.clear(); }
  const Bitstream& trace() const { return trace_; }

 private:
  WireId in_;
  Bitstream trace_;
};

}  // namespace sc::sim
