#include "sim/circuit.hpp"

namespace sc::sim {

WireId Circuit::make_wire(std::string name) {
  values_.push_back(0);
  names_.push_back(std::move(name));
  return static_cast<WireId>(values_.size() - 1);
}

void Circuit::step() {
  for (auto& element : elements_) {
    element->step(*this);
  }
  ++cycle_;
}

void Circuit::run(std::size_t cycles) {
  for (std::size_t i = 0; i < cycles; ++i) step();
}

void Circuit::reset() {
  for (auto& v : values_) v = 0;
  for (auto& element : elements_) element->reset();
  cycle_ = 0;
}

}  // namespace sc::sim
