#include "sim/elements.hpp"

namespace sc::sim {

void Gate2::step(Circuit& c) {
  const bool a = c.value(a_);
  const bool b = c.value(b_);
  bool out = false;
  switch (kind_) {
    case Kind::kAnd:
      out = a && b;
      break;
    case Kind::kOr:
      out = a || b;
      break;
    case Kind::kXor:
      out = a != b;
      break;
    case Kind::kXnor:
      out = a == b;
      break;
    case Kind::kNand:
      out = !(a && b);
      break;
    case Kind::kNor:
      out = !(a || b);
      break;
  }
  c.set_value(out_, out);
}

}  // namespace sc::sim
