/// \file circuit.hpp
/// Wire table + element schedule for the cycle-level simulator.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/element.hpp"

namespace sc::sim {

/// A single-clock-domain circuit: named single-bit wires and an ordered
/// list of elements evaluated once per cycle.
class Circuit {
 public:
  /// Creates a wire, initially 0.
  WireId make_wire(std::string name = {});

  /// Number of wires.
  [[nodiscard]] std::size_t wire_count() const { return values_.size(); }

  /// Current value of a wire.
  [[nodiscard]] bool value(WireId wire) const { return values_[wire] != 0; }

  /// Drives a wire (used by elements and by external stimulus).
  void set_value(WireId wire, bool value) { values_[wire] = value ? 1 : 0; }

  /// Wire name ("" if unnamed).
  const std::string& wire_name(WireId wire) const { return names_[wire]; }

  /// Adds an element; returns a stable reference.  Elements are evaluated
  /// in insertion order each cycle.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto element = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *element;
    elements_.push_back(std::move(element));
    return ref;
  }

  /// Evaluates one clock cycle.
  void step();

  /// Evaluates `cycles` clock cycles.
  void run(std::size_t cycles);

  /// Resets every element and clears all wires and the cycle counter.
  void reset();

  /// Cycles elapsed since construction / reset.
  [[nodiscard]] std::size_t cycle() const { return cycle_; }

 private:
  std::vector<char> values_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Element>> elements_;
  std::size_t cycle_ = 0;
};

}  // namespace sc::sim
