/// \file batch.hpp
/// Deterministic fan-out of independent jobs across the thread pool.
///
/// A *batch* is a vector of jobs that are pure functions of their index:
/// job i derives everything random it needs from `job_seed(base, i)`, so
/// the batch result is a function of (base seed, job count) alone and is
/// bit-identical for every thread count.  This is the engine's workhorse
/// for op-accuracy sweeps, per-seed graph executions, and image tiles.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "engine/thread_pool.hpp"

namespace sc::engine {

/// Mixes a base seed and a job index into an independent 64-bit seed
/// (splitmix64 finalizer: consecutive indices land far apart, so per-job
/// LFSRs / generators start decorrelated).
std::uint64_t job_seed(std::uint64_t base_seed, std::size_t job_index);

/// job_seed truncated to the nonzero 32-bit range the library's LFSR seeds
/// use (an all-zero LFSR state is absorbing).
std::uint32_t job_seed32(std::uint64_t base_seed, std::size_t job_index);

/// Per-job 32-bit seed for width-masked generators.  The library's LFSRs
/// keep only the low `width` bits of their seed (rng::Lfsr masks, then
/// remaps 0 to 1), so hashed seeds like job_seed32 birthday-collide in the
/// low 8 bits after a few dozen jobs — silently running duplicate RNG
/// schedules.  This variant walks an odd stride from a hashed base, which
/// is a unit mod every power of two: any 2^w consecutive indices yield
/// 2^w *distinct* residues mod 2^w, the strongest decorrelation a
/// width-w generator can express.  Use it whenever the consumer is an
/// LFSR-style seed; use job_seed/job_seed32 for full-width consumers.
///
/// Residual limit (pigeonhole): a width-w LFSR has only 2^w - 1 nonzero
/// states, and rng::Lfsr remaps a masked-zero seed to 1 — so in each
/// window of 2^w consecutive jobs, the one job whose masked seed is 0
/// shares that single generator's schedule with the residue-1 job.
/// Consumers that derive several generators with distinct offsets (the
/// executor, the pipeline tile engines) only ever alias one
/// sub-generator per window this way, never a whole job.
std::uint32_t strided_seed32(std::uint64_t base_seed, std::size_t job_index);

/// Wall-clock accounting of one batch.  When the pool carries a telemetry
/// context (ThreadPool::attach_telemetry) the same numbers are also folded
/// into the metrics registry — "engine.batches" / "engine.jobs" counters,
/// the "engine.batch.jobs_per_second" gauge, and the
/// "engine.batch.duration_us" histogram — so rates show up in snapshots
/// next to the pool's queue metrics instead of living in a side struct.
struct BatchStats {
  std::size_t jobs = 0;
  unsigned threads = 0;
  double seconds = 0.0;
  /// Stream bits the batch's jobs pushed through chunked runs (filled by
  /// Session::note_batch from its chunked accounting; 0 when untracked).
  std::uint64_t stream_bits = 0;
  [[nodiscard]] double jobs_per_second() const {
    return seconds > 0.0 ? static_cast<double>(jobs) / seconds : 0.0;
  }
  [[nodiscard]] double bits_per_second() const {
    return seconds > 0.0 ? static_cast<double>(stream_bits) / seconds : 0.0;
  }
};

/// Fans jobs across a pool, preserving result order by index.
class BatchRunner {
 public:
  explicit BatchRunner(ThreadPool& pool) : pool_(&pool) {}

  /// Runs fn(i) for i in [0, count) and returns the results ordered by
  /// index.  R must be default-constructible (results are written into
  /// preallocated slots).  Rethrows the first job exception.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> packs bits: concurrent writes to "
                  "distinct indices race; map to char/int instead");
    std::vector<R> results(count);
    run_indexed(count,
                [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Index-only form for jobs that write their own output slots.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
    run_indexed(count, fn);
  }

  ThreadPool& pool() noexcept { return *pool_; }

  /// Stats of the most recent map()/for_each() call (thread-safe snapshot).
  [[nodiscard]] BatchStats last_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_stats_;
  }

 private:
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  ThreadPool* pool_;
  mutable std::mutex stats_mutex_;
  BatchStats last_stats_;
};

}  // namespace sc::engine
