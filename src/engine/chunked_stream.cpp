#include "engine/chunked_stream.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sc::engine {

// --------------------------------------------------------------- sources

SngChunkSource::SngChunkSource(rng::RandomSourcePtr source,
                               std::uint32_t level, std::size_t length)
    : source_(std::move(source)), level_(level), length_(length) {
  assert(source_ != nullptr);
}

std::size_t SngChunkSource::next_chunk(Bitstream& chunk,
                                       std::size_t max_bits) {
  const std::size_t take = std::min(max_bits, length_ - produced_);
  chunk.assign_zero(take);  // reuses the buffer's capacity across chunks
  for (std::size_t i = 0; i < take; ++i) {
    if (source_->next() < level_) chunk.set(i, true);
  }
  produced_ += take;
  return take;
}

void SngChunkSource::reset() {
  source_->reset();
  produced_ = 0;
}

std::size_t BitstreamChunkSource::next_chunk(Bitstream& chunk,
                                             std::size_t max_bits) {
  const std::size_t take = std::min(max_bits, stream_->size() - position_);
  chunk.assign_zero(take);
  for (std::size_t i = 0; i < take; ++i) {
    if (stream_->get(position_ + i)) chunk.set(i, true);
  }
  position_ += take;
  return take;
}

// ----------------------------------------------------------------- sinks

void ValueSink::consume(const Bitstream& chunk) {
  ones_ += chunk.count_ones();
  bits_ += chunk.size();
}

double ValueSink::value() const noexcept {
  return bits_ == 0 ? 0.0
                    : static_cast<double>(ones_) / static_cast<double>(bits_);
}

void CollectSink::consume(const Bitstream& chunk) {
  stream_.reserve(stream_.size() + chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    stream_.push_back(chunk.get(i));
  }
}

void PairStatsSink::consume(const Bitstream& chunk_x,
                            const Bitstream& chunk_y) {
  const OverlapCounts piece = overlap(chunk_x, chunk_y);
  counts_.a += piece.a;
  counts_.b += piece.b;
  counts_.c += piece.c;
  counts_.d += piece.d;
}

double PairStatsSink::value_x() const noexcept {
  const std::uint64_t n = counts_.n();
  return n == 0 ? 0.0
                : static_cast<double>(counts_.a + counts_.b) /
                      static_cast<double>(n);
}

double PairStatsSink::value_y() const noexcept {
  const std::uint64_t n = counts_.n();
  return n == 0 ? 0.0
                : static_cast<double>(counts_.a + counts_.c) /
                      static_cast<double>(n);
}

double PairStatsSink::scc() const { return sc::scc(counts_); }

void CollectPairSink::consume(const Bitstream& chunk_x,
                              const Bitstream& chunk_y) {
  x_.reserve(x_.size() + chunk_x.size());
  y_.reserve(y_.size() + chunk_y.size());
  for (std::size_t i = 0; i < chunk_x.size(); ++i) x_.push_back(chunk_x.get(i));
  for (std::size_t i = 0; i < chunk_y.size(); ++i) y_.push_back(chunk_y.get(i));
}

// --------------------------------------------------------------- drivers

ChunkedRunStats run_chunked(ChunkSource& source,
                            core::StreamTransform* transform, ChunkSink& sink,
                            std::size_t chunk_bits) {
  if (chunk_bits == 0) throw std::invalid_argument("chunk_bits must be > 0");

  ChunkedRunStats stats;
  if (transform != nullptr) transform->begin_stream(source.length());

  Bitstream chunk;
  while (source.next_chunk(chunk, chunk_bits) > 0) {
    if (transform != nullptr) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk.set(i, transform->step(chunk.get(i)));
      }
    }
    stats.bits += chunk.size();
    ++stats.chunks;
    stats.peak_buffer_bits = std::max(stats.peak_buffer_bits, chunk.size());
    sink.consume(chunk);
  }
  return stats;
}

ChunkedRunStats run_chunked_pair(ChunkSource& source_x, ChunkSource& source_y,
                                 core::PairTransform* transform,
                                 PairChunkSink& sink,
                                 std::size_t chunk_bits) {
  if (chunk_bits == 0) throw std::invalid_argument("chunk_bits must be > 0");
  if (source_x.length() != source_y.length()) {
    throw std::invalid_argument("pair sources must have equal length");
  }

  ChunkedRunStats stats;
  if (transform != nullptr) transform->begin_stream(source_x.length());

  Bitstream chunk_x;
  Bitstream chunk_y;
  for (;;) {
    const std::size_t nx = source_x.next_chunk(chunk_x, chunk_bits);
    const std::size_t ny = source_y.next_chunk(chunk_y, chunk_bits);
    if (nx != ny) {
      // A short-reading source would shear the pair out of phase and feed
      // unequal chunks into word-parallel sinks; fail loudly instead.
      throw std::logic_error(
          "ChunkSource produced a short chunk; next_chunk must return "
          "exactly min(max_bits, remaining)");
    }
    if (nx == 0) break;
    if (transform != nullptr) {
      for (std::size_t i = 0; i < nx; ++i) {
        const core::BitPair out =
            transform->step(chunk_x.get(i), chunk_y.get(i));
        chunk_x.set(i, out.x);
        chunk_y.set(i, out.y);
      }
    }
    stats.bits += nx;
    ++stats.chunks;
    stats.peak_buffer_bits =
        std::max(stats.peak_buffer_bits, chunk_x.size() + chunk_y.size());
    sink.consume(chunk_x, chunk_y);
    (void)ny;
  }
  return stats;
}

}  // namespace sc::engine
