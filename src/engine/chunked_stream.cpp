#include "engine/chunked_stream.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernel/apply.hpp"
#include "kernel/kernels.hpp"

namespace sc::engine {

// --------------------------------------------------------------- sources

SngChunkSource::SngChunkSource(rng::RandomSourcePtr source,
                               std::uint64_t level, std::size_t length)
    : source_(std::move(source)), level_(level), length_(length) {
  assert(source_ != nullptr);
}

std::size_t SngChunkSource::next_chunk(Bitstream& chunk,
                                       std::size_t max_bits) {
  const std::size_t take = std::min(max_bits, length_ - produced_);
  chunk.assign_zero(take);  // reuses the buffer's capacity across chunks
  if (take != 0) {
    // One word-API call packs the whole chunk: bit i = (draw_i < level_).
    // The chunk is all-zero and the fill ORs only positions < take, so
    // the tail-clear invariant holds (fill_compare touches no bit >= take).
    source_->fill_compare(chunk.word_data(), take, level_);
  }
  produced_ += take;
  return take;
}

void SngChunkSource::reset() {
  source_->reset();
  produced_ = 0;
}

std::size_t BitstreamChunkSource::next_chunk(Bitstream& chunk,
                                             std::size_t max_bits) {
  const std::size_t take = std::min(max_bits, stream_->size() - position_);
  chunk.assign_zero(take);
  if (take != 0) {
    // Word-parallel shifted copy out of the backing stream.
    const std::vector<Bitstream::Word>& src = stream_->words();
    Bitstream::Word* dst = chunk.word_data();
    const std::size_t dst_words = (take + 63) / 64;
    const std::size_t word0 = position_ / 64;
    const auto off = static_cast<unsigned>(position_ % 64);
    if (off == 0) {
      for (std::size_t w = 0; w < dst_words; ++w) dst[w] = src[word0 + w];
    } else {
      for (std::size_t w = 0; w < dst_words; ++w) {
        Bitstream::Word bits = src[word0 + w] >> off;
        if (word0 + w + 1 < src.size()) {
          bits |= src[word0 + w + 1] << (64 - off);
        }
        dst[w] = bits;
      }
    }
    if (take % 64 != 0) {  // restore the tail-clear invariant
      dst[dst_words - 1] &= (Bitstream::Word{1} << (take % 64)) - 1;
    }
  }
  position_ += take;
  return take;
}

// ----------------------------------------------------------------- sinks

void ValueSink::consume(const Bitstream& chunk) {
  ones_ += chunk.count_ones();
  bits_ += chunk.size();
}

double ValueSink::value() const noexcept {
  return bits_ == 0 ? 0.0
                    : static_cast<double>(ones_) / static_cast<double>(bits_);
}

void CollectSink::consume(const Bitstream& chunk) {
  stream_.reserve(stream_.size() + chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    stream_.push_back(chunk.get(i));
  }
}

void PairStatsSink::consume(const Bitstream& chunk_x,
                            const Bitstream& chunk_y) {
  const OverlapCounts piece = overlap(chunk_x, chunk_y);
  counts_.a += piece.a;
  counts_.b += piece.b;
  counts_.c += piece.c;
  counts_.d += piece.d;
}

double PairStatsSink::value_x() const noexcept {
  const std::uint64_t n = counts_.n();
  return n == 0 ? 0.0
                : static_cast<double>(counts_.a + counts_.b) /
                      static_cast<double>(n);
}

double PairStatsSink::value_y() const noexcept {
  const std::uint64_t n = counts_.n();
  return n == 0 ? 0.0
                : static_cast<double>(counts_.a + counts_.c) /
                      static_cast<double>(n);
}

double PairStatsSink::scc() const { return sc::scc(counts_); }

void CollectPairSink::consume(const Bitstream& chunk_x,
                              const Bitstream& chunk_y) {
  x_.reserve(x_.size() + chunk_x.size());
  y_.reserve(y_.size() + chunk_y.size());
  for (std::size_t i = 0; i < chunk_x.size(); ++i) x_.push_back(chunk_x.get(i));
  for (std::size_t i = 0; i < chunk_y.size(); ++i) y_.push_back(chunk_y.get(i));
}

// --------------------------------------------------------------- drivers

ChunkedRunStats run_chunked(ChunkSource& source,
                            core::StreamTransform* transform, ChunkSink& sink,
                            std::size_t chunk_bits, KernelPolicy policy) {
  if (chunk_bits == 0) throw std::invalid_argument("chunk_bits must be > 0");

  ChunkedRunStats stats;
  std::unique_ptr<kernel::StreamKernel> kern;
  if (transform != nullptr) {
    transform->begin_stream(source.length());
    if (policy == KernelPolicy::kAuto) {
      kern = kernel::make_stream_kernel(*transform);
    }
  }

  Bitstream chunk;
  while (source.next_chunk(chunk, chunk_bits) > 0) {
    if (kern != nullptr) {
      kern->process(chunk.word_data(), chunk.size());
    } else if (transform != nullptr) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk.set(i, transform->step(chunk.get(i)));
      }
    }
    stats.bits += chunk.size();
    ++stats.chunks;
    stats.peak_buffer_bits = std::max(stats.peak_buffer_bits, chunk.size());
    sink.consume(chunk);
  }
  if (kern != nullptr) kern->finish();
  return stats;
}

ChunkedRunStats run_chunked_pair(ChunkSource& source_x, ChunkSource& source_y,
                                 core::PairTransform* transform,
                                 PairChunkSink& sink,
                                 std::size_t chunk_bits, KernelPolicy policy) {
  if (chunk_bits == 0) throw std::invalid_argument("chunk_bits must be > 0");
  if (source_x.length() != source_y.length()) {
    throw std::invalid_argument("pair sources must have equal length");
  }

  ChunkedRunStats stats;
  // The shared chunk driver (also used by the graph engine backend) owns
  // the begin/kernel/advance/finish protocol.
  std::unique_ptr<kernel::ChunkedPairApplier> applier;
  if (transform != nullptr) {
    applier = std::make_unique<kernel::ChunkedPairApplier>(
        *transform, policy == KernelPolicy::kAuto);
    applier->begin(source_x.length());
  }

  Bitstream chunk_x;
  Bitstream chunk_y;
  for (;;) {
    const std::size_t nx = source_x.next_chunk(chunk_x, chunk_bits);
    const std::size_t ny = source_y.next_chunk(chunk_y, chunk_bits);
    if (nx != ny) {
      // A short-reading source would shear the pair out of phase and feed
      // unequal chunks into word-parallel sinks; fail loudly instead.
      throw std::logic_error(
          "ChunkSource produced a short chunk; next_chunk must return "
          "exactly min(max_bits, remaining)");
    }
    if (nx == 0) break;
    if (applier != nullptr) applier->advance(chunk_x, chunk_y);
    stats.bits += nx;
    ++stats.chunks;
    stats.peak_buffer_bits =
        std::max(stats.peak_buffer_bits, chunk_x.size() + chunk_y.size());
    sink.consume(chunk_x, chunk_y);
    (void)ny;
  }
  if (applier != nullptr) applier->finish();
  return stats;
}

std::vector<ChunkedRunStats> run_chunked_lanes(
    const std::vector<PairLane>& lanes, std::size_t chunk_bits,
    KernelPolicy policy) {
  if (chunk_bits == 0) throw std::invalid_argument("chunk_bits must be > 0");
  for (const PairLane& lane : lanes) {
    if (lane.source_x == nullptr || lane.source_y == nullptr ||
        lane.sink == nullptr) {
      throw std::invalid_argument("PairLane sources and sink must be set");
    }
    if (lane.source_x->length() != lane.source_y->length()) {
      throw std::invalid_argument("pair sources must have equal length");
    }
  }

  struct LaneState {
    std::unique_ptr<kernel::ChunkedPairApplier> applier;
    bool done = false;
  };
  std::vector<LaneState> states(lanes.size());
  std::vector<ChunkedRunStats> stats(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (lanes[l].transform != nullptr) {
      states[l].applier = std::make_unique<kernel::ChunkedPairApplier>(
          *lanes[l].transform, policy == KernelPolicy::kAuto);
      states[l].applier->begin(lanes[l].source_x->length());
    }
  }

  // Two chunk buffers shared by every lane: the peak live buffering is one
  // chunk pair regardless of the lane count.
  Bitstream chunk_x;
  Bitstream chunk_y;
  std::size_t live = lanes.size();
  while (live != 0) {
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      LaneState& st = states[l];
      if (st.done) continue;
      const std::size_t nx = lanes[l].source_x->next_chunk(chunk_x, chunk_bits);
      const std::size_t ny = lanes[l].source_y->next_chunk(chunk_y, chunk_bits);
      if (nx != ny) {
        throw std::logic_error(
            "ChunkSource produced a short chunk; next_chunk must return "
            "exactly min(max_bits, remaining)");
      }
      if (nx == 0) {
        if (st.applier != nullptr) st.applier->finish();
        st.done = true;
        --live;
        continue;
      }
      if (st.applier != nullptr) st.applier->advance(chunk_x, chunk_y);
      stats[l].bits += nx;
      ++stats[l].chunks;
      stats[l].peak_buffer_bits = std::max(
          stats[l].peak_buffer_bits, chunk_x.size() + chunk_y.size());
      lanes[l].sink->consume(chunk_x, chunk_y);
    }
  }
  return stats;
}

}  // namespace sc::engine
