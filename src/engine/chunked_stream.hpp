/// \file chunked_stream.hpp
/// Block-wise bitstream processing: generate, transform, and reduce streams
/// in fixed word-chunks so arbitrarily long streams (2^24 bits and beyond)
/// never need full materialization.
///
/// The paper evaluates its circuits on 256-bit streams, but every circuit
/// is a per-cycle FSM: nothing in a synchronizer, desynchronizer,
/// decorrelator, or TFM requires the whole stream in memory.  This module
/// exploits that.  A `ChunkSource` produces the next chunk of bits on
/// demand, a `StreamTransform` / `PairTransform` FSM is driven across chunk
/// boundaries without reset (its state carries over, so the result is
/// bit-identical to a whole-stream `core::apply`), and a `ChunkSink`
/// reduces chunks as they appear (stream value, overlap/SCC statistics, or
/// full collection for tests).  Peak engine-side buffering is the chunk
/// buffers themselves — O(chunk), not O(stream).
///
/// FSM flush semantics are preserved: the driver calls begin_stream() once
/// with the *total* length before the first chunk, exactly as the
/// whole-stream helpers do, so length-tracking transforms (synchronizer
/// flush mode) behave identically under chunking.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"
#include "core/pair_transform.hpp"
#include "rng/random_source.hpp"

namespace sc::engine {

/// Default chunk size: 2^16 bits = 8 KiB per buffer, large enough to
/// amortize virtual dispatch, small enough to stay cache-resident.
inline constexpr std::size_t kDefaultChunkBits = std::size_t{1} << 16;

// --------------------------------------------------------------- sources

/// Produces a bitstream chunk-at-a-time.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Total bits this source will produce.
  [[nodiscard]] virtual std::size_t length() const = 0;

  /// Overwrites `chunk` with the next bits of the stream.  Contract: must
  /// produce *exactly* min(max_bits, bits remaining) bits — short reads
  /// are not allowed, so paired sources of equal length always stay in
  /// lockstep (run_chunked_pair enforces this).  Resizes `chunk` to the
  /// produced count and returns it (0 at end of stream).
  virtual std::size_t next_chunk(Bitstream& chunk, std::size_t max_bits) = 0;

  /// Rewinds to the beginning of the stream.
  virtual void reset() = 0;
};

/// Comparator-SNG source: bit i is (source.next() < level), the paper's
/// Fig. 2g generator, produced lazily so the stream never materializes.
/// Each chunk is packed by one RandomSource::fill_compare call, so
/// generation rides the source's word API (SIMD-packed block fills, or
/// ring replay for LFSRs) and keeps pace with the word-parallel kernels
/// downstream.
class SngChunkSource final : public ChunkSource {
 public:
  /// \param source owned RNG; \param level in [0, 2^source->width()] —
  /// 64-bit so a width-32 source's full-scale level 2^32 does not wrap
  /// (same class of bug as Sng::natural_length_);
  /// \param length total bits to produce.
  SngChunkSource(rng::RandomSourcePtr source, std::uint64_t level,
                 std::size_t length);

  [[nodiscard]] std::size_t length() const override { return length_; }
  std::size_t next_chunk(Bitstream& chunk, std::size_t max_bits) override;
  void reset() override;

 private:
  rng::RandomSourcePtr source_;
  std::uint64_t level_;
  std::size_t length_;
  std::size_t produced_ = 0;
};

/// Non-owning view of an in-memory stream, chunked (reference path for
/// equivalence tests).  The referenced stream must outlive the source.
class BitstreamChunkSource final : public ChunkSource {
 public:
  explicit BitstreamChunkSource(const Bitstream& stream) : stream_(&stream) {}

  [[nodiscard]] std::size_t length() const override { return stream_->size(); }
  std::size_t next_chunk(Bitstream& chunk, std::size_t max_bits) override;
  void reset() override { position_ = 0; }

 private:
  const Bitstream* stream_;
  std::size_t position_ = 0;
};

// ----------------------------------------------------------------- sinks

/// Consumes chunks of a single output stream.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;
  virtual void consume(const Bitstream& chunk) = 0;
};

/// O(1)-memory reduction to the stream value: ones and bit count.
class ValueSink final : public ChunkSink {
 public:
  void consume(const Bitstream& chunk) override;

  [[nodiscard]] std::uint64_t ones() const noexcept { return ones_; }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
  /// Unipolar value of the reduced stream (0 for an empty stream).
  [[nodiscard]] double value() const noexcept;

 private:
  std::uint64_t ones_ = 0;
  std::uint64_t bits_ = 0;
};

/// Materializes the full stream (tests / small streams only).
class CollectSink final : public ChunkSink {
 public:
  void consume(const Bitstream& chunk) override;
  const Bitstream& stream() const noexcept { return stream_; }

 private:
  Bitstream stream_;
};

/// Consumes chunk pairs of a two-output transform.
class PairChunkSink {
 public:
  virtual ~PairChunkSink() = default;
  virtual void consume(const Bitstream& chunk_x, const Bitstream& chunk_y) = 0;
};

/// O(1)-memory joint statistics: per-stream values plus the 2x2 overlap
/// counts, from which SCC is computed exactly as the whole-stream metric
/// does — correlation measurement without materialization.
class PairStatsSink final : public PairChunkSink {
 public:
  void consume(const Bitstream& chunk_x, const Bitstream& chunk_y) override;

  const OverlapCounts& counts() const noexcept { return counts_; }
  [[nodiscard]] double value_x() const noexcept;
  [[nodiscard]] double value_y() const noexcept;
  /// SCC of the streams seen so far (0 while degenerate).
  [[nodiscard]] double scc() const;

 private:
  OverlapCounts counts_;
};

/// Materializes both output streams (tests only).
class CollectPairSink final : public PairChunkSink {
 public:
  void consume(const Bitstream& chunk_x, const Bitstream& chunk_y) override;
  const Bitstream& stream_x() const noexcept { return x_; }
  const Bitstream& stream_y() const noexcept { return y_; }

 private:
  Bitstream x_;
  Bitstream y_;
};

// --------------------------------------------------------------- drivers

/// Accounting of one chunked run, including the proof obligation that
/// engine-side buffering stayed bounded by the chunk size.
struct ChunkedRunStats {
  std::size_t bits = 0;              ///< total bits processed per stream
  std::size_t chunks = 0;            ///< number of chunks
  std::size_t peak_buffer_bits = 0;  ///< high-water mark of live chunk buffers
};

/// How the drivers advance the FSM across each chunk.
enum class KernelPolicy {
  /// Table-driven word-parallel kernels (src/kernel/) when the transform
  /// has one, bit-serial step() otherwise.  Output is bit-identical either
  /// way; this is the default whole-stream path.
  kAuto,
  /// Always one virtual step() per cycle — the reference implementation,
  /// kept selectable for differential tests and benchmarks.
  kSerial,
};

/// Streams `source` through an optional per-cycle FSM into `sink`,
/// chunk-at-a-time.  Passing nullptr for `transform` reduces the source
/// directly.  The FSM is *not* reset: like core::apply, the caller controls
/// initial state; begin_stream(total) is issued before the first chunk.
ChunkedRunStats run_chunked(ChunkSource& source,
                            core::StreamTransform* transform, ChunkSink& sink,
                            std::size_t chunk_bits = kDefaultChunkBits,
                            KernelPolicy policy = KernelPolicy::kAuto);

/// Pair version: streams two sources through a PairTransform FSM into a
/// pair sink.  Sources must have equal length.
ChunkedRunStats run_chunked_pair(ChunkSource& source_x, ChunkSource& source_y,
                                 core::PairTransform* transform,
                                 PairChunkSink& sink,
                                 std::size_t chunk_bits = kDefaultChunkBits,
                                 KernelPolicy policy = KernelPolicy::kAuto);

/// One independent pair job for the batched driver below.  All pointers
/// are non-owning and must outlive the run; `transform` may be nullptr
/// for a pass-through lane.  The two sources must have equal length, but
/// different lanes may have different lengths.
struct PairLane {
  ChunkSource* source_x = nullptr;
  ChunkSource* source_y = nullptr;
  core::PairTransform* transform = nullptr;
  PairChunkSink* sink = nullptr;
};

/// Batched multi-stream driver: advances every lane one chunk per round,
/// round-robin, until all lanes are exhausted.  Each lane is bit-identical
/// to its own run_chunked_pair call (per-lane FSM state carries across
/// chunks through a dedicated kernel applier; begin_stream sees the lane's
/// total length before its first chunk).  The two chunk buffers are shared
/// across lanes, so peak engine-side buffering stays O(chunk) no matter
/// how many jobs are in flight — this is what lets one invocation sweep
/// several independent streams through the word-parallel kernels while
/// the RNG blocks and tables stay hot in cache.
std::vector<ChunkedRunStats> run_chunked_lanes(
    const std::vector<PairLane>& lanes,
    std::size_t chunk_bits = kDefaultChunkBits,
    KernelPolicy policy = KernelPolicy::kAuto);

}  // namespace sc::engine
