#include "engine/batch.hpp"

#include <chrono>

#include "obs/telemetry.hpp"

namespace sc::engine {

std::uint64_t job_seed(std::uint64_t base_seed, std::size_t job_index) {
  // splitmix64: advance by the index, then finalize.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(job_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint32_t job_seed32(std::uint64_t base_seed, std::size_t job_index) {
  const std::uint64_t mixed = job_seed(base_seed, job_index);
  // Fold and force nonzero: a zero seed would park an LFSR in its
  // absorbing state.
  const auto folded =
      static_cast<std::uint32_t>(mixed ^ (mixed >> 32));
  return folded == 0 ? 0x5eedu : folded;
}

std::uint32_t strided_seed32(std::uint64_t base_seed, std::size_t job_index) {
  const auto base = static_cast<std::uint32_t>(job_seed(base_seed, 0));
  // 0x9e3779b1 is odd, hence invertible mod 2^w for every w: consecutive
  // indices cover all residues of a width-w register before repeating.
  return base + static_cast<std::uint32_t>(job_index) * 0x9e3779b1u;
}

void BatchRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  const auto start = std::chrono::steady_clock::now();
  parallel_for(*pool_, 0, count, body);
  const auto stop = std::chrono::steady_clock::now();

  BatchStats stats;
  stats.jobs = count;
  stats.threads = pool_->size();
  stats.seconds = std::chrono::duration<double>(stop - start).count();

  if (obs::Telemetry* telemetry = pool_->telemetry()) {
    obs::MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter("engine.batches").inc();
    metrics.counter("engine.jobs").add(count);
    metrics.gauge("engine.batch.jobs_per_second").set(stats.jobs_per_second());
    metrics.histogram("engine.batch.duration_us")
        .observe(static_cast<std::uint64_t>(stats.seconds * 1e6));
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  last_stats_ = stats;
}

}  // namespace sc::engine
