/// \file thread_pool.hpp
/// Fixed-size worker pool with a task queue and futures.
///
/// The engine's unit of parallelism is the *job*: an independent,
/// deterministic function of its inputs (a graph execution, an image tile,
/// a sweep point).  Jobs never share mutable state, so the pool needs no
/// work stealing or priorities — a single locked queue drained by N workers
/// saturates the embarrassingly parallel workloads this library produces.
///
/// Determinism contract: the pool schedules jobs in an arbitrary order, so
/// callers that need reproducible output must make every job a pure
/// function of its index (see BatchRunner::map, which writes each result
/// into a preallocated slot).  Under that contract results are bit-identical
/// for every pool size, including 1.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sc::obs {
class Counter;
class Gauge;
class Histogram;
class Telemetry;
}  // namespace sc::obs

namespace sc::engine {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Total tasks completed since construction.
  [[nodiscard]] std::size_t tasks_executed() const noexcept;

  /// Enqueues a callable; the returned future delivers its result (or
  /// rethrows its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Resolved worker count for a requested thread count (0 = hardware).
  static unsigned resolve_threads(unsigned requested);

  /// Binds (or, with nullptr, unbinds) a telemetry context.  While bound,
  /// the pool maintains the "engine.pool.queue_depth" gauge (value + max),
  /// the "engine.pool.task_wait_us" histogram (enqueue -> dequeue latency),
  /// and the "engine.pool.backpressure_stalls" counter (submissions that
  /// found work already queued, i.e. every worker busy).  Unbound — the
  /// default — the queue carries no timestamps and no clock is read.
  /// Call before submitting work; instrument pointers are swapped under
  /// the queue lock.
  void attach_telemetry(obs::Telemetry* telemetry);

  /// The bound telemetry context (nullptr when unbound).
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept { return telemetry_; }

 private:
  /// Queue entry: the callable plus its enqueue timestamp (0 when the pool
  /// had no telemetry at submission — no clock read on the untracked path).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueued_us = 0;
  };

  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::size_t> executed_{0};

  obs::Telemetry* telemetry_ = nullptr;  // guarded by mutex_ for writes
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* task_wait_ = nullptr;
  obs::Counter* stalls_ = nullptr;
};

/// Runs body(i) for every i in [begin, end) across the pool and waits for
/// completion.  Indices are grouped into contiguous blocks (at least `grain`
/// indices per task) to amortize queue traffic.  Rethrows the first task
/// exception.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace sc::engine
