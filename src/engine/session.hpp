/// \file session.hpp
/// Top-level handle of the execution engine: one pool, one batch runner,
/// one configuration.
///
/// A Session is what callers thread through the high-level entry points
/// (`graph::execute_batch`, `img::run_pipeline_tiled`, benches): it owns
/// the worker pool, fixes the chunk size for long-stream processing, and
/// anchors the deterministic seeding scheme (base seed -> per-job seeds).
/// Two sessions with the same config produce bit-identical results
/// regardless of their thread counts.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "engine/batch.hpp"
#include "engine/chunked_stream.hpp"
#include "engine/thread_pool.hpp"

namespace sc::engine {

struct SessionConfig {
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads = 0;
  /// Chunk size for long-stream processing, in bits.
  std::size_t chunk_bits = kDefaultChunkBits;
  /// Base seed of the deterministic per-job seeding scheme.
  std::uint64_t base_seed = 0x5eedULL;
  /// Telemetry context (src/obs/): the session attaches it to its pool
  /// (queue depth / task wait / backpressure metrics) and folds batch and
  /// chunked-run accounting into it as engine.* metrics.  Non-owning;
  /// nullptr = env fallback (SC_TRACE/SC_METRICS), exactly as
  /// graph::ExecConfig::telemetry.  Observation never changes results.
  obs::Telemetry* telemetry = nullptr;
};

/// Lifetime totals across everything a session ran.
struct SessionStats {
  std::size_t batches = 0;
  std::size_t jobs = 0;
  std::size_t chunked_runs = 0;
  std::uint64_t stream_bits = 0;  ///< bits pushed through chunked runs
};

class Session {
 public:
  explicit Session(SessionConfig config = {});

  const SessionConfig& config() const noexcept { return config_; }
  ThreadPool& pool() noexcept { return pool_; }
  BatchRunner& runner() noexcept { return runner_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }
  /// The resolved telemetry context (config's, else env; may be nullptr).
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept { return telemetry_; }

  /// Full-width seed for job `index` under this session's base seed
  /// (hashed; for consumers that use all 64 bits).
  [[nodiscard]] std::uint64_t seed_for(std::size_t index) const {
    return job_seed(config_.base_seed, index);
  }
  /// Width-safe per-job seed for LFSR-style consumers that mask seeds to
  /// their register width — see strided_seed32.
  [[nodiscard]] std::uint32_t strided_seed_for(std::size_t index) const {
    return strided_seed32(config_.base_seed, index);
  }

  /// Runs fn(i) for i in [0, count) across the pool (deterministic result
  /// order) and records batch stats.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn) {
    std::vector<R> out = runner_.map<R>(count, fn);
    note_batch(count);
    return out;
  }

  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
    runner_.for_each(count, fn);
    note_batch(count);
  }

  /// Folds a chunked run's accounting into the session totals
  /// (thread-safe; chunked runs may execute on workers).  With telemetry
  /// bound, also maintains the engine.chunked_runs / engine.chunks /
  /// engine.stream_bits counters and the engine.buffer.peak_bits gauge —
  /// the same names session-less chunked runs record directly.
  void note_chunked(const ChunkedRunStats& stats);

  [[nodiscard]] SessionStats stats() const;

  /// Stats of the most recent map()/for_each(), including the stream-bits
  /// delta its jobs pushed through chunked runs (so bits_per_second() is
  /// meaningful for graph batches).
  [[nodiscard]] BatchStats last_batch() const;

 private:
  void note_batch(std::size_t jobs);

  SessionConfig config_;
  ThreadPool pool_;
  BatchRunner runner_;
  obs::Telemetry* telemetry_ = nullptr;
  mutable std::mutex stats_mutex_;
  SessionStats stats_;
  BatchStats last_batch_;
  std::uint64_t batch_bits_mark_ = 0;  ///< stream_bits at last note_batch
};

}  // namespace sc::engine
