#include "engine/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hpp"

namespace sc::engine {
namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_threads(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::tasks_executed() const noexcept {
  return executed_.load(std::memory_order_relaxed);
}

void ThreadPool::attach_telemetry(obs::Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    queue_depth_ = nullptr;
    task_wait_ = nullptr;
    stalls_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = telemetry->metrics();
  queue_depth_ = &metrics.gauge("engine.pool.queue_depth");
  task_wait_ = &metrics.histogram("engine.pool.task_wait_us");
  stalls_ = &metrics.counter("engine.pool.backpressure_stalls");
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Task entry;
    entry.fn = std::move(task);
    if (task_wait_ != nullptr) entry.enqueued_us = steady_now_us();
    if (stalls_ != nullptr && !queue_.empty()) stalls_->inc();
    queue_.push(std::move(entry));
    if (queue_depth_ != nullptr) {
      queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so destruction never drops work
      // whose futures are still awaited.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      if (queue_depth_ != nullptr) {
        queue_depth_->set(static_cast<double>(queue_.size()));
      }
      if (task_wait_ != nullptr && task.enqueued_us != 0) {
        const std::uint64_t now = steady_now_us();
        task_wait_->observe(now > task.enqueued_us ? now - task.enqueued_us
                                                   : 0);
      }
    }
    task.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t count = end - begin;
  // Aim for a few blocks per worker so a slow block does not serialize the
  // tail, without flooding the queue with single-index tasks.
  const std::size_t target_blocks =
      std::max<std::size_t>(1, std::min(count, std::size_t{4} * pool.size()));
  const std::size_t block = std::max(grain, (count + target_blocks - 1) / target_blocks);

  std::vector<std::future<void>> futures;
  futures.reserve((count + block - 1) / block);
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Wait for every block before rethrowing: bailing on the first error
  // would unwind the caller's stack while queued blocks still hold
  // references into it.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sc::engine
