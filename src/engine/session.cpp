#include "engine/session.hpp"

#include "obs/telemetry.hpp"

namespace sc::engine {

Session::Session(SessionConfig config)
    : config_(config), pool_(config.threads), runner_(pool_) {
  if (config_.chunk_bits == 0) config_.chunk_bits = kDefaultChunkBits;
  telemetry_ = obs::fallback(config_.telemetry);
  pool_.attach_telemetry(telemetry_);
}

void Session::note_chunked(const ChunkedRunStats& stats) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.chunked_runs;
    stats_.stream_bits += stats.bits;
  }
  if (telemetry_ != nullptr) {
    obs::MetricsRegistry& metrics = telemetry_->metrics();
    metrics.counter("engine.chunked_runs").inc();
    metrics.counter("engine.chunks").add(stats.chunks);
    metrics.counter("engine.stream_bits").add(stats.bits);
    metrics.gauge("engine.buffer.peak_bits")
        .set(static_cast<double>(stats.peak_buffer_bits));
  }
}

void Session::note_batch(std::size_t jobs) {
  BatchStats batch = runner_.last_stats();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.jobs += jobs;
    // The chunked bits accumulated since the previous batch are the bits
    // this batch's jobs pushed (jobs run synchronously inside map()).
    batch.stream_bits = stats_.stream_bits - batch_bits_mark_;
    batch_bits_mark_ = stats_.stream_bits;
    last_batch_ = batch;
  }
  if (telemetry_ != nullptr && batch.stream_bits != 0) {
    telemetry_->metrics()
        .gauge("engine.batch.bits_per_second")
        .set(batch.bits_per_second());
  }
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

BatchStats Session::last_batch() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return last_batch_;
}

}  // namespace sc::engine
