#include "engine/session.hpp"

namespace sc::engine {

Session::Session(SessionConfig config)
    : config_(config), pool_(config.threads), runner_(pool_) {
  if (config_.chunk_bits == 0) config_.chunk_bits = kDefaultChunkBits;
}

void Session::note_chunked(const ChunkedRunStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.chunked_runs;
  stats_.stream_bits += stats.bits;
}

void Session::note_batch(std::size_t jobs) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.batches;
  stats_.jobs += jobs;
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace sc::engine
