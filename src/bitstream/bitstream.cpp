#include "bitstream/bitstream.hpp"

#include "common/bitops.hpp"
#include <cassert>

namespace sc {

Bitstream::Bitstream(std::size_t length, bool fill)
    : words_(words_for(length), fill ? ~Word{0} : Word{0}), size_(length) {
  clear_tail();
}

Bitstream Bitstream::from_string(std::string_view bits) {
  Bitstream out;
  out.reserve(bits.size());
  for (char c : bits) {
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      break;
    }
  }
  return out;
}

Bitstream Bitstream::from_bits(std::initializer_list<int> bits) {
  Bitstream out;
  out.reserve(bits.size());
  for (int b : bits) out.push_back(b != 0);
  return out;
}

void Bitstream::push_back(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(Word{0});
  if (value) words_.back() |= Word{1} << (size_ % kWordBits);
  ++size_;
}

void Bitstream::reserve(std::size_t length) { words_.reserve(words_for(length)); }

void Bitstream::assign_zero(std::size_t length) {
  words_.assign(words_for(length), 0);
  size_ = length;
}

void Bitstream::clear() noexcept {
  words_.clear();
  size_ = 0;
}

std::size_t Bitstream::count_ones() const noexcept {
  std::size_t ones = 0;
  for (Word w : words_) ones += static_cast<std::size_t>(sc::popcount64(w));
  return ones;
}

double Bitstream::value() const noexcept {
  if (size_ == 0) return 0.0;
  return static_cast<double>(count_ones()) / static_cast<double>(size_);
}

double Bitstream::bipolar_value() const noexcept {
  if (size_ == 0) return 0.0;
  return 2.0 * value() - 1.0;
}

std::string Bitstream::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void Bitstream::clear_tail() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

Bitstream operator&(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out = x;
  out &= y;
  return out;
}

Bitstream operator|(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out = x;
  out |= y;
  return out;
}

Bitstream operator^(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out = x;
  out ^= y;
  return out;
}

Bitstream operator~(const Bitstream& x) {
  Bitstream out = x;
  for (auto& w : out.words_) w = ~w;
  out.clear_tail();
  return out;
}

Bitstream& Bitstream::operator&=(const Bitstream& y) {
  assert(size_ == y.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= y.words_[i];
  return *this;
}

Bitstream& Bitstream::operator|=(const Bitstream& y) {
  assert(size_ == y.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= y.words_[i];
  return *this;
}

Bitstream& Bitstream::operator^=(const Bitstream& y) {
  assert(size_ == y.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= y.words_[i];
  return *this;
}

Bitstream Bitstream::mux(const Bitstream& x, const Bitstream& y,
                         const Bitstream& sel) {
  assert(x.size() == y.size() && x.size() == sel.size());
  Bitstream out(x.size());
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] =
        (x.words_[i] & ~sel.words_[i]) | (y.words_[i] & sel.words_[i]);
  }
  return out;
}

Bitstream Bitstream::rotated(std::size_t k) const {
  Bitstream out(size_);
  if (size_ == 0) return out;
  k %= size_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.set(i, get((i + k) % size_));
  }
  return out;
}

Bitstream Bitstream::delayed(std::size_t k, bool pad) const {
  Bitstream out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.set(i, i < k ? pad : get(i - k));
  }
  return out;
}

}  // namespace sc
