#include "bitstream/synthesis.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

namespace sc {
namespace {

/// Seeded random permutation of [0, n).
std::vector<std::uint32_t> permutation(std::uint64_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::mt19937_64 gen(seed);
  std::shuffle(perm.begin(), perm.end(), gen);
  return perm;
}

}  // namespace

std::uint64_t overlap_for_scc(std::uint64_t ones_x, std::uint64_t ones_y,
                              std::uint64_t n, double target) {
  assert(ones_x <= n && ones_y <= n);
  target = std::clamp(target, -1.0, 1.0);
  const double nx = static_cast<double>(ones_x);
  const double ny = static_cast<double>(ones_y);
  const double nn = static_cast<double>(n);
  const double a_indep = nn == 0.0 ? 0.0 : nx * ny / nn;
  const double a_max = static_cast<double>(std::min(ones_x, ones_y));
  const double a_min =
      static_cast<double>(ones_x + ones_y > n ? ones_x + ones_y - n : 0);
  double a = a_indep;
  if (target > 0.0) {
    a = a_indep + target * (a_max - a_indep);
  } else if (target < 0.0) {
    a = a_indep + (-target) * (a_min - a_indep);
  }
  a = std::clamp(a, a_min, a_max);
  return static_cast<std::uint64_t>(std::lround(a));
}

StreamPair make_pair_with_scc(std::uint64_t ones_x, std::uint64_t ones_y,
                              std::uint64_t n, double target_scc,
                              std::uint64_t seed) {
  assert(ones_x <= n && ones_y <= n);
  const std::uint64_t a = overlap_for_scc(ones_x, ones_y, n, target_scc);
  const std::uint64_t b = ones_x - a;  // X=1, Y=0
  const std::uint64_t c = ones_y - a;  // X=0, Y=1
  assert(a + b + c <= n);

  // Lay out the four occupancy classes along a seeded permutation:
  // the first a slots get (1,1), the next b get (1,0), the next c get (0,1),
  // and the remainder get (0,0).
  const auto perm = permutation(n, seed);
  StreamPair out{Bitstream(n), Bitstream(n)};
  std::uint64_t idx = 0;
  for (; idx < a; ++idx) {
    out.x.set(perm[idx], true);
    out.y.set(perm[idx], true);
  }
  for (; idx < a + b; ++idx) out.x.set(perm[idx], true);
  for (; idx < a + b + c; ++idx) out.y.set(perm[idx], true);
  return out;
}

StreamPair make_positively_correlated(std::uint64_t ones_x,
                                      std::uint64_t ones_y, std::uint64_t n,
                                      std::uint64_t seed) {
  return make_pair_with_scc(ones_x, ones_y, n, 1.0, seed);
}

StreamPair make_negatively_correlated(std::uint64_t ones_x,
                                      std::uint64_t ones_y, std::uint64_t n,
                                      std::uint64_t seed) {
  return make_pair_with_scc(ones_x, ones_y, n, -1.0, seed);
}

StreamPair make_uncorrelated(std::uint64_t ones_x, std::uint64_t ones_y,
                             std::uint64_t n, std::uint64_t seed) {
  return make_pair_with_scc(ones_x, ones_y, n, 0.0, seed);
}

Bitstream make_stream(std::uint64_t ones, std::uint64_t n,
                      std::uint64_t seed) {
  assert(ones <= n);
  const auto perm = permutation(n, seed);
  Bitstream out(n);
  for (std::uint64_t i = 0; i < ones; ++i) out.set(perm[i], true);
  return out;
}

}  // namespace sc
