#include "bitstream/correlation.hpp"

#include <algorithm>
#include "common/bitops.hpp"
#include <cmath>
#include <stdexcept>
#include <string>

namespace sc {

OverlapCounts overlap(const Bitstream& x, const Bitstream& y) {
  if (x.size() != y.size()) {
    // An assert here vanishes under NDEBUG and the word loop then indexes
    // past the shorter vector; mismatched lengths are a caller bug, so
    // fail deterministically in every build mode.
    throw std::invalid_argument("sc::overlap: stream sizes differ (" +
                                std::to_string(x.size()) + " vs " +
                                std::to_string(y.size()) + ")");
  }
  OverlapCounts counts;
  const auto& xw = x.words();
  const auto& yw = y.words();
  std::uint64_t a = 0;
  std::uint64_t ones_x = 0;
  std::uint64_t ones_y = 0;
  for (std::size_t i = 0; i < xw.size(); ++i) {
    a += static_cast<std::uint64_t>(sc::popcount64(xw[i] & yw[i]));
    ones_x += static_cast<std::uint64_t>(sc::popcount64(xw[i]));
    ones_y += static_cast<std::uint64_t>(sc::popcount64(yw[i]));
  }
  counts.a = a;
  counts.b = ones_x - a;
  counts.c = ones_y - a;
  counts.d = x.size() - ones_x - ones_y + a;
  return counts;
}

bool scc_defined(const OverlapCounts& k) {
  const std::uint64_t n = k.n();
  const std::uint64_t px = k.a + k.b;  // ones in X
  const std::uint64_t py = k.a + k.c;  // ones in Y
  return n > 0 && px > 0 && px < n && py > 0 && py < n;
}

bool scc_defined(const Bitstream& x, const Bitstream& y) {
  return scc_defined(overlap(x, y));
}

double scc(const OverlapCounts& k) {
  if (!scc_defined(k)) return 0.0;
  const double n = static_cast<double>(k.n());
  const double a = static_cast<double>(k.a);
  const double b = static_cast<double>(k.b);
  const double c = static_cast<double>(k.c);
  const double d = static_cast<double>(k.d);
  const double num = a * d - b * c;
  double denom = 0.0;
  if (num > 0.0) {
    denom = n * std::min(a + b, a + c) - (a + b) * (a + c);
  } else {
    denom = (a + b) * (a + c) - n * std::max(a - d, 0.0);
  }
  if (denom == 0.0) return 0.0;
  return num / denom;
}

double scc(const Bitstream& x, const Bitstream& y) {
  return scc(overlap(x, y));
}

double pearson(const Bitstream& x, const Bitstream& y) {
  const OverlapCounts k = overlap(x, y);
  const double n = static_cast<double>(k.n());
  if (n == 0.0) return 0.0;
  const double px = static_cast<double>(k.a + k.b) / n;
  const double py = static_cast<double>(k.a + k.c) / n;
  const double pxy = static_cast<double>(k.a) / n;
  const double vx = px * (1.0 - px);
  const double vy = py * (1.0 - py);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return (pxy - px * py) / std::sqrt(vx * vy);
}

}  // namespace sc
