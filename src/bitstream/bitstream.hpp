/// \file bitstream.hpp
/// Packed stochastic-number (SN) bitstream container.
///
/// A stochastic number is a finite sequence of bits whose *unipolar* value is
/// the fraction of 1s (range [0,1]) and whose *bipolar* value maps 1 -> +1 and
/// 0 -> -1 (range [-1,+1]).  All stochastic-computing circuits in this library
/// consume and produce `sc::Bitstream` objects (whole-stream API) or
/// individual bits (per-cycle API, see `sc::core` and `sc::sim`).
///
/// The representation is 64-bit-word packed so that combinational gates
/// (AND/OR/XOR/NOT/MUX) and population counts run word-parallel.

#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace sc {

/// Packed, dynamically sized bitstream.
///
/// Invariant: all bits at positions >= size() inside the last storage word are
/// zero ("tail bits are clear").  Every mutating operation preserves this so
/// that count_ones() and word-wise operators never see garbage tail bits.
class Bitstream {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// Creates an empty bitstream.
  Bitstream() = default;

  /// Creates a bitstream of `length` bits, all set to `fill`.
  explicit Bitstream(std::size_t length, bool fill = false);

  /// Parses a bitstream from a string of '0'/'1' characters.
  /// The leftmost character is bit index 0 (first in time), matching the
  /// notation used in the paper (e.g. "01000100" has value 0.25).
  /// Any character other than '0'/'1' terminates parsing.
  static Bitstream from_string(std::string_view bits);

  /// Builds a bitstream from a list of 0/1 integers (nonzero => 1).
  static Bitstream from_bits(std::initializer_list<int> bits);

  /// Number of bits in the stream.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads the bit at position `i` (0-based).  Precondition: i < size().
  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  bool operator[](std::size_t i) const noexcept { return get(i); }

  /// Writes the bit at position `i`.  Precondition: i < size().
  void set(std::size_t i, bool value) noexcept {
    const Word mask = Word{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  /// Appends a bit at the end of the stream.
  void push_back(bool value);

  /// Pre-sizes the underlying storage for `length` bits.
  void reserve(std::size_t length);

  /// Resizes to `length` bits, all cleared.  Reuses existing capacity, so
  /// repeated calls (e.g. per-chunk buffers in the streaming engine) do
  /// not reallocate.
  void assign_zero(std::size_t length);

  /// Removes all bits.
  void clear() noexcept;

  /// Number of 1 bits.
  [[nodiscard]] std::size_t count_ones() const noexcept;
  /// Number of 0 bits.
  [[nodiscard]] std::size_t count_zeros() const noexcept { return size_ - count_ones(); }

  /// Unipolar value: count_ones() / size().  Returns 0 for an empty stream.
  [[nodiscard]] double value() const noexcept;
  /// Bipolar value: 2 * value() - 1.  Returns 0 for an empty stream.
  [[nodiscard]] double bipolar_value() const noexcept;

  /// Renders the stream as a '0'/'1' string, earliest bit first.
  [[nodiscard]] std::string to_string() const;

  /// Direct read access to the packed words (tail bits are guaranteed clear).
  const std::vector<Word>& words() const noexcept { return words_; }
  /// Mutable word pointer for word-parallel writers (the kernel layer).
  /// Callers must keep the tail-bits-clear invariant: bits at positions
  /// >= size() in the last word stay zero.
  Word* word_data() noexcept { return words_.data(); }
  /// Number of storage words.
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  bool operator==(const Bitstream& other) const noexcept {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const Bitstream& other) const noexcept {
    return !(*this == other);
  }

  /// Word-parallel combinational gates.  Operand sizes must match.
  friend Bitstream operator&(const Bitstream& x, const Bitstream& y);
  friend Bitstream operator|(const Bitstream& x, const Bitstream& y);
  friend Bitstream operator^(const Bitstream& x, const Bitstream& y);
  /// Bitwise NOT; in unipolar encoding this computes 1 - value().
  friend Bitstream operator~(const Bitstream& x);

  Bitstream& operator&=(const Bitstream& y);
  Bitstream& operator|=(const Bitstream& y);
  Bitstream& operator^=(const Bitstream& y);

  /// Two-input multiplexer: out[i] = sel[i] ? y[i] : x[i].
  /// All three streams must have the same length.  With an uncorrelated
  /// half-weight select stream this is the classic SC scaled adder.
  static Bitstream mux(const Bitstream& x, const Bitstream& y,
                       const Bitstream& sel);

  /// Returns the stream cyclically rotated left by `k` positions
  /// (bit i of the result is bit (i+k) mod size of the input).
  [[nodiscard]] Bitstream rotated(std::size_t k) const;

  /// Returns a copy delayed by `k` cycles: the first `k` output bits are
  /// `pad`, bit i (i >= k) of the result is input bit i - k.  Length is
  /// preserved (the last `k` input bits fall off).  This models a chain of k
  /// isolator D flip-flops initialized to `pad`.
  [[nodiscard]] Bitstream delayed(std::size_t k, bool pad = false) const;

 private:
  static std::size_t words_for(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }
  /// Clears bits at positions >= size_ in the last word.
  void clear_tail() noexcept;

  std::vector<Word> words_;
  std::size_t size_ = 0;
};

}  // namespace sc
