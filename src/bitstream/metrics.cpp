#include "bitstream/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace sc {

double bias(const Bitstream& x, double reference) {
  return x.value() - reference;
}

double abs_error(const Bitstream& x, double reference) {
  return std::abs(x.value() - reference);
}

void ErrorStats::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  sum_abs_ += std::abs(sample);
  sum_sq_ += sample * sample;
}

double ErrorStats::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double ErrorStats::mean_abs() const noexcept {
  return count_ == 0 ? 0.0 : sum_abs_ / static_cast<double>(count_);
}

double ErrorStats::rms() const noexcept {
  return count_ == 0 ? 0.0 : std::sqrt(sum_sq_ / static_cast<double>(count_));
}

}  // namespace sc
