/// \file encoding.hpp
/// Value <-> level quantization helpers for unipolar and bipolar encodings.
///
/// A length-N stream can represent the N+1 levels {0/N, 1/N, ..., N/N}
/// (unipolar) or {-1, -1+2/N, ..., +1} (bipolar).  Digital-to-stochastic
/// conversion quantizes a real value to the nearest level; these helpers
/// centralize that arithmetic so converters, kernels, and tests agree on the
/// rounding rule (round-half-up, clamped to the representable range).

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sc {

/// Quantizes a unipolar value p in [0,1] to an integer level in [0, n].
inline std::uint32_t unipolar_level(double p, std::uint32_t n) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return static_cast<std::uint32_t>(
      std::lround(clamped * static_cast<double>(n)));
}

/// 64-bit overload for natural lengths up to 2^32 (a 32-bit-wide source's
/// full period does not fit the uint32 helper's range).
inline std::uint64_t unipolar_level64(double p, std::uint64_t n) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return static_cast<std::uint64_t>(
      std::llround(clamped * static_cast<double>(n)));
}

/// Value of a unipolar level: level / n.
inline double unipolar_value(std::uint32_t level, std::uint32_t n) {
  return n == 0 ? 0.0 : static_cast<double>(level) / static_cast<double>(n);
}

/// Quantizes a bipolar value v in [-1,1] to an integer level in [0, n]
/// (the level of the underlying unipolar stream, p = (v+1)/2).
inline std::uint32_t bipolar_level(double v, std::uint32_t n) {
  return unipolar_level((std::clamp(v, -1.0, 1.0) + 1.0) / 2.0, n);
}

/// Bipolar value of a level: 2*(level/n) - 1.
inline double bipolar_value(std::uint32_t level, std::uint32_t n) {
  return 2.0 * unipolar_value(level, n) - 1.0;
}

/// Quantization step of a length-n stream (the LSB weight), 1/n.
inline double quantum(std::uint32_t n) {
  return n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
}

}  // namespace sc
