/// \file synthesis.hpp
/// Direct construction of stream pairs with prescribed values and SCC.
///
/// Tests and benchmarks frequently need "two streams with values pX, pY and
/// correlation exactly +1 / 0 / -1" (e.g. paper Table I) or an arbitrary
/// target SCC.  Rather than searching RNG seeds, these routines construct the
/// joint occupancy (a,b,c,d) analytically and then lay the bits out along a
/// seeded random permutation of positions, which realizes the exact overlap
/// while keeping the streams irregular in time.

#pragma once

#include <cstdint>
#include <utility>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"

namespace sc {

/// A pair of equal-length streams.
struct StreamPair {
  Bitstream x;
  Bitstream y;
};

/// Overlap count `a` (positions where both streams are 1) that realizes the
/// target SCC for streams of length n with ones_x and ones_y 1s.  target is
/// clamped to [-1, 1].  SCC interpolates linearly in `a` between the
/// independence point and the min/max overlap bound, so the result is the
/// rounded interpolant.
std::uint64_t overlap_for_scc(std::uint64_t ones_x, std::uint64_t ones_y,
                              std::uint64_t n, double target);

/// Builds a stream pair of length n with exactly ones_x / ones_y 1s and
/// joint overlap as close as possible to the SCC target.
/// `seed` selects the random position permutation (same seed => same pair).
StreamPair make_pair_with_scc(std::uint64_t ones_x, std::uint64_t ones_y,
                              std::uint64_t n, double target_scc,
                              std::uint64_t seed = 0x5eed);

/// Convenience wrappers for the three canonical regimes of paper Table I.
StreamPair make_positively_correlated(std::uint64_t ones_x,
                                      std::uint64_t ones_y, std::uint64_t n,
                                      std::uint64_t seed = 0x5eed);
StreamPair make_negatively_correlated(std::uint64_t ones_x,
                                      std::uint64_t ones_y, std::uint64_t n,
                                      std::uint64_t seed = 0x5eed);
StreamPair make_uncorrelated(std::uint64_t ones_x, std::uint64_t ones_y,
                             std::uint64_t n, std::uint64_t seed = 0x5eed);

/// Builds a single stream of length n with exactly `ones` 1s scattered by a
/// seeded permutation.
Bitstream make_stream(std::uint64_t ones, std::uint64_t n,
                      std::uint64_t seed = 0x5eed);

}  // namespace sc
