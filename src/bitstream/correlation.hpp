/// \file correlation.hpp
/// Stochastic cross-correlation (SCC) and related pairwise statistics.
///
/// SCC is the standard correlation metric for stochastic computing, defined
/// by Alaghi & Hayes (ICCD 2013) and restated in Lee et al. (DATE 2018):
///
///              ad - bc
///   SCC = ---------------------------------   if ad > bc
///          N*min(a+b, a+c) - (a+b)(a+c)
///
///              ad - bc
///       = ---------------------------------   otherwise
///          (a+b)(a+c) - N*max(a - d, 0)
///
/// where over the N stream positions a = #{X=1,Y=1}, b = #{X=1,Y=0},
/// c = #{X=0,Y=1}, d = #{X=0,Y=0}.  SCC = +1 means maximal positive
/// correlation (the 1s overlap as much as the values allow), SCC = -1 means
/// maximal negative correlation (minimal overlap), and SCC = 0 means the
/// overlap equals the independence expectation a = N*pX*pY.

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"

namespace sc {

/// Joint 2x2 occupancy counts of two equal-length streams.
struct OverlapCounts {
  std::uint64_t a = 0;  ///< positions where X=1 and Y=1
  std::uint64_t b = 0;  ///< positions where X=1 and Y=0
  std::uint64_t c = 0;  ///< positions where X=0 and Y=1
  std::uint64_t d = 0;  ///< positions where X=0 and Y=0

  [[nodiscard]] std::uint64_t n() const noexcept { return a + b + c + d; }
};

/// Computes the joint occupancy counts of X and Y (word-parallel).
/// The streams must have equal length; mismatched lengths throw
/// std::invalid_argument (an explicit check, not an assert, so release
/// builds fail loudly instead of reading past the shorter word vector).
OverlapCounts overlap(const Bitstream& x, const Bitstream& y);

/// SCC computed directly from occupancy counts.
///
/// Zero-variance contract (every division-by-zero case is defined):
///  * either stream constant (all-0s or all-1s, i.e. zero variance), or
///    both streams empty (N = 0): the SCC denominator is 0 and no
///    correlation is measurable — returns 0, the independence point.
///    Use scc_defined() to distinguish "measured 0" from "undefined";
///    sweep averages (paper Table II) exclude undefined pairs.
///  * the residual guard: if a finite-precision corner makes the selected
///    denominator exactly 0 with a nonzero numerator, the function also
///    returns 0 rather than dividing (for non-constant streams the
///    positive-branch denominator min*(N - max) is provably > 0, so this
///    guard is defensive only).
double scc(const OverlapCounts& counts);

/// SCC of two equal-length streams.  See scc(const OverlapCounts&).
double scc(const Bitstream& x, const Bitstream& y);

/// True when SCC is mathematically defined for this pair, i.e. neither
/// stream is constant (all-0s or all-1s).  Averages of SCC over value sweeps
/// (paper Table II) exclude undefined pairs.
bool scc_defined(const OverlapCounts& counts);
bool scc_defined(const Bitstream& x, const Bitstream& y);

/// Pearson product-moment correlation of the two bit sequences, an auxiliary
/// diagnostic (the paper argues SCC is the right metric because it is
/// insensitive to the stream values; Pearson is not).  Zero-variance
/// contract: returns 0 when either stream is constant (variance 0) or both
/// are empty — same convention as scc().
double pearson(const Bitstream& x, const Bitstream& y);

}  // namespace sc
