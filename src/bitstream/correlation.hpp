/// \file correlation.hpp
/// Stochastic cross-correlation (SCC) and related pairwise statistics.
///
/// SCC is the standard correlation metric for stochastic computing, defined
/// by Alaghi & Hayes (ICCD 2013) and restated in Lee et al. (DATE 2018):
///
///              ad - bc
///   SCC = ---------------------------------   if ad > bc
///          N*min(a+b, a+c) - (a+b)(a+c)
///
///              ad - bc
///       = ---------------------------------   otherwise
///          (a+b)(a+c) - N*max(a - d, 0)
///
/// where over the N stream positions a = #{X=1,Y=1}, b = #{X=1,Y=0},
/// c = #{X=0,Y=1}, d = #{X=0,Y=0}.  SCC = +1 means maximal positive
/// correlation (the 1s overlap as much as the values allow), SCC = -1 means
/// maximal negative correlation (minimal overlap), and SCC = 0 means the
/// overlap equals the independence expectation a = N*pX*pY.

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"

namespace sc {

/// Joint 2x2 occupancy counts of two equal-length streams.
struct OverlapCounts {
  std::uint64_t a = 0;  ///< positions where X=1 and Y=1
  std::uint64_t b = 0;  ///< positions where X=1 and Y=0
  std::uint64_t c = 0;  ///< positions where X=0 and Y=1
  std::uint64_t d = 0;  ///< positions where X=0 and Y=0

  std::uint64_t n() const noexcept { return a + b + c + d; }
};

/// Computes the joint occupancy counts of X and Y (word-parallel).
/// The streams must have equal length; mismatched lengths throw
/// std::invalid_argument (an explicit check, not an assert, so release
/// builds fail loudly instead of reading past the shorter word vector).
OverlapCounts overlap(const Bitstream& x, const Bitstream& y);

/// SCC computed directly from occupancy counts.
/// Degenerate pairs (either stream constant, i.e. value 0 or 1) have a zero
/// denominator; this function returns 0 for them.
double scc(const OverlapCounts& counts);

/// SCC of two equal-length streams.  See scc(const OverlapCounts&).
double scc(const Bitstream& x, const Bitstream& y);

/// True when SCC is mathematically defined for this pair, i.e. neither
/// stream is constant (all-0s or all-1s).  Averages of SCC over value sweeps
/// (paper Table II) exclude undefined pairs.
bool scc_defined(const OverlapCounts& counts);
bool scc_defined(const Bitstream& x, const Bitstream& y);

/// Pearson product-moment correlation of the two bit sequences, an auxiliary
/// diagnostic (the paper argues SCC is the right metric because it is
/// insensitive to the stream values; Pearson is not).  Returns 0 when either
/// stream is constant.
double pearson(const Bitstream& x, const Bitstream& y);

}  // namespace sc
