/// \file metrics.hpp
/// Accuracy metrics used throughout the paper's evaluation: bias (signed
/// value deviation), absolute error, RMSE, and running accumulators for
/// exhaustive value sweeps.

#pragma once

#include <cstddef>

#include "bitstream/bitstream.hpp"

namespace sc {

/// Signed deviation of a stream's unipolar value from a reference value:
/// value(x) - reference.  The paper calls the average of this over a sweep
/// the "bias" of a circuit (ideally zero for correlation manipulators).
double bias(const Bitstream& x, double reference);

/// |value(x) - reference|.
double abs_error(const Bitstream& x, double reference);

/// Streaming accumulator for scalar error statistics over a sweep.
/// Collects mean, mean-absolute, RMS, min and max of the samples.
class ErrorStats {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Mean of the signed samples (average bias when samples are deviations).
  [[nodiscard]] double mean() const noexcept;
  /// Mean of |sample|.
  [[nodiscard]] double mean_abs() const noexcept;
  /// sqrt(mean(sample^2)).
  [[nodiscard]] double rms() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_abs_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sc
