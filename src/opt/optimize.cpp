#include "opt/optimize.hpp"

#include <numeric>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "analysis/error_model.hpp"
#include "obs/telemetry.hpp"

namespace sc::opt {

std::size_t OptResult::nodes_removed() const {
  std::size_t total = 0;
  for (const PassReport& report : reports) {
    if (report.accepted) total += report.nodes_removed;
  }
  return total;
}

std::size_t OptResult::corrections_saved() const {
  std::size_t total = 0;
  for (const PassReport& report : reports) {
    if (report.accepted) total += report.corrections_saved;
  }
  return total;
}

std::string OptResult::summary() const {
  std::ostringstream out;
  for (const PassReport& report : reports) {
    out << "  " << to_string(report) << "\n";
  }
  out << "  modeled area " << area_before_um2 << " -> " << area_after_um2
      << " um2 (" << (cost_delta.power_uw <= 0 ? "" : "+")
      << cost_delta.power_uw << " uW)\n";
  out << "  static fragility " << fragility_before << " -> "
      << fragility_after << "\n";
  out << "  predicted |error| <= " << error_before << " -> " << error_after;
  return out.str();
}

OptResult optimize(const graph::Program& program,
                   const graph::ProgramPlan& plan, const OptConfig& config) {
  obs::Span span(obs::tracer_of(obs::fallback(config.telemetry)),
                 "opt.optimize", "opt");
  OptResult result;
  result.program = program;
  result.plan = plan;
  result.node_map.resize(program.node_count());
  std::iota(result.node_map.begin(), result.node_map.end(), 0u);
  result.area_before_um2 = modeled_area(program, plan, config);
  const PassManager pipeline = default_pipeline(config);
  result.reports =
      pipeline.run(result.program, result.plan, result.node_map, config);
  result.area_after_um2 = modeled_area(result.program, result.plan, config);
  analysis::AnalyzerConfig fragility_config;
  fragility_config.width = config.width;
  fragility_config.sync_depth = config.planner.sync_depth;
  fragility_config.shuffle_depth = config.planner.shuffle_depth;
  fragility_config.telemetry = config.telemetry;
  result.fragility_before =
      analysis::plan_fragility(program, plan, fragility_config);
  result.fragility_after = analysis::plan_fragility(
      result.program, result.plan, fragility_config);
  analysis::AnalyzerConfig error_config = fragility_config;
  error_config.stream_length = config.error_stream_length;
  result.error_before = analysis::plan_error(program, plan, error_config);
  result.error_after =
      analysis::plan_error(result.program, result.plan, error_config);
  span.arg("area_before_um2", result.area_before_um2);
  span.arg("area_after_um2", result.area_after_um2);
  span.arg("fragility_before", result.fragility_before);
  span.arg("fragility_after", result.fragility_after);
  span.arg("error_before", result.error_before);
  span.arg("error_after", result.error_after);
  result.cost_delta = hw::evaluate_delta(
      program.base_netlist(config.width) + plan.overhead,
      result.program.base_netlist(config.width) + result.plan.overhead,
      config.cost);
  return result;
}

}  // namespace sc::opt
