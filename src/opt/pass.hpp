/// \file pass.hpp
/// The program-optimizer pass pipeline (Pass / PassManager).
///
/// A Pass rewrites a graph::Program and its ProgramPlan before execution.
/// The PassManager runs passes in order and guards every rewrite with the
/// hw::cost model: a pass's result is kept only when it does not raise the
/// modeled area of the full design (operator cells + SNG bank + inserted
/// correction hardware) and leaves every per-operand-pair Requirement
/// either provably satisfied, fixed, chain-covered (see plan_covers), or —
/// under Strategy::kNone — recorded as a violation.  Rejected rewrites are
/// rolled back wholesale, so a buggy or unprofitable pass can never
/// corrupt a program.
///
/// Six passes ship (factories below, canonical order in
/// opt::default_pipeline; the sixth is opt-in):
///   1. constant folding        — ops whose inputs are all constants
///                                become constants (reseeded),
///   2. common-subexpression    — duplicate registry ops merge when their
///      elimination               name, operand identity, and RNG-slot
///                                seeds agree and no planned fix in front
///                                of them draws RNG (bit-identical),
///   3. dead-value elimination  — nodes not reaching any output are
///                                dropped (bit-identical),
///   4. chain decorrelators     — k-way same-source copy groups get the
///                                paper's k-1 decorrelator chain instead
///                                of the planner's k(k-1)/2 pairwise
///                                insertions (reseeded),
///   5. correction sharing      — duplicate RNG-free synchronizer /
///                                desynchronizer insertions feeding
///                                sibling ops are merged into one charged
///                                circuit (bit-identical),
///   6. dead-fix elimination    — fixes the static analyzer proves
///      (opt-in)                  redundant are dropped (reseeded; see
///                                OptConfig::dead_fix_elimination).
/// "Bit-identical" passes preserve every surviving node's streams exactly
/// (ProgramNode::seed_tag keeps RNG identity stable across rewrites);
/// "reseeded" passes preserve exact semantics and are statistically
/// equivalent.

#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "hw/cost.hpp"

namespace sc::opt {

/// Optimizer knobs.  `planner` must match the PlannerConfig the incoming
/// plan was made with (it sizes replanned / re-priced fix hardware);
/// `cost` is the operating point of the area guidance; `width` prices the
/// base netlist's SNG bank.
struct OptConfig {
  graph::PlannerConfig planner;
  hw::CostConfig cost;
  unsigned width = 8;
  /// Telemetry context (src/obs/): the PassManager records one span per
  /// pass ("opt.<pass>": accepted, rewrite counts, area delta) and opt.*
  /// counters into it.  Non-owning, nullptr = env fallback, exactly as
  /// ExecConfig::telemetry.  Replans triggered by program rewrites also
  /// carry it (config.planner is forwarded with the same pointer).
  obs::Telemetry* telemetry = nullptr;

  // Per-pass toggles (all on by default).
  bool constant_folding = true;
  bool cse = true;
  bool dead_value_elimination = true;
  bool chain_decorrelators = true;
  bool correction_sharing = true;
  /// Drop inserted fixes the static analyzer (src/analysis/) proves
  /// redundant — the pair stays in its required regime without the
  /// circuit, either because a remaining decorrelator of the same op
  /// already shuffles one of its slots or because the analyzer proved the
  /// raw operand pair's SCC class outright (the relation is then refined
  /// to record the proof).  kNegative pairs are never dropped (Relation
  /// cannot express a proven anticorrelation, so plan_covers could not
  /// re-check the drop); those stay analyzer warnings.  Off by default:
  /// dropping a fix changes the fixed operands' streams (exact semantics
  /// and pair regimes are preserved, bits are not).
  bool dead_fix_elimination = false;

  // ---- multi-objective Pareto budgets -----------------------------------
  // All infinite by default, which reproduces the legacy area-only gate
  // exactly.  Setting *any* budget switches the gate to Pareto mode: a
  // rewrite is kept when it is safe, improves at least one objective
  // (area, predicted error, fragility), and worsens no *budgeted*
  // objective beyond its budget.  The canonical tension is the chain
  // pass: it lowers area but raises both predicted error
  // (single-shuffle residual, error_model.hpp) and fragility (shared
  // upstream shuffle state) — under a tight error_budget it must be
  // rolled back, under a loose one kept.

  /// Modeled full-design area ceiling in um2.
  double area_budget_um2 = std::numeric_limits<double>::infinity();
  /// Ceiling on analysis::plan_error's worst predicted per-output
  /// |error| bound, evaluated at error_stream_length bits.
  double error_budget = std::numeric_limits<double>::infinity();
  /// Ceiling on analysis::plan_fragility's summed per-fix score.
  double fragility_budget = std::numeric_limits<double>::infinity();
  /// Stream length the error budget's predicted bound is evaluated at
  /// (longer streams shrink the stochastic half of the bound).
  std::size_t error_stream_length = 4096;

  /// True when any budget is finite (the gate runs in Pareto mode and
  /// pays for the error/fragility analyses per pass).
  [[nodiscard]] bool budgeted() const {
    return area_budget_um2 < std::numeric_limits<double>::infinity() ||
           error_budget < std::numeric_limits<double>::infinity() ||
           fragility_budget < std::numeric_limits<double>::infinity();
  }

  /// Only the passes that never reseed (CSE, DVE, correction sharing):
  /// optimized programs stay bit-identical to unoptimized ones.
  static OptConfig bit_identical() {
    OptConfig config;
    config.constant_folding = false;
    config.chain_decorrelators = false;
    return config;
  }
};

/// Diff summary of one pass application.
struct PassReport {
  std::string pass;
  bool changed = false;   ///< the pass found a rewrite
  bool accepted = false;  ///< the rewrite survived the cost/safety gate
  std::size_t nodes_removed = 0;
  std::size_t nodes_folded = 0;
  /// Correction circuits no longer charged: fixes dropped by chaining plus
  /// fixes marked shared (PairFix::shared_with).
  std::size_t corrections_saved = 0;
  double area_delta_um2 = 0.0;  ///< modeled-area change (0 when rejected)
  /// Predicted worst-output-error and fragility changes (0 when rejected
  /// or when the gate runs un-budgeted and never evaluates them).
  double error_delta = 0.0;
  double fragility_delta = 0.0;
  std::string detail;           ///< human-readable specifics
};

std::string to_string(const PassReport& report);

/// One rewrite stage.  Passes mutate program/plan in place; the manager
/// snapshots both and rolls back when the gate rejects the result.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Rewrites program and/or plan, filling `report` (changed, nodes_*,
  /// corrections_saved, detail).  Returns the node remap for program
  /// rewrites — old id -> new id, graph::kInvalidNode for removed nodes —
  /// or an empty vector when the program was left untouched.  After a
  /// non-empty remap the manager replans the program under the plan's
  /// strategy, so plan-only passes must run after program passes (the
  /// default pipeline does).
  virtual std::vector<graph::NodeId> run(graph::Program& program,
                                         graph::ProgramPlan& plan,
                                         const OptConfig& config,
                                         PassReport& report) = 0;
};

/// Ordered pass pipeline with the cost/safety gate.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Runs every pass.  `node_map` (original id -> current id,
  /// graph::kInvalidNode for removed) is composed across accepted program
  /// rewrites; pass an identity map sized to the original program.
  std::vector<PassReport> run(graph::Program& program,
                              graph::ProgramPlan& plan,
                              std::vector<graph::NodeId>& node_map,
                              const OptConfig& config) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// ------------------------------------------------------------- factories

std::unique_ptr<Pass> make_constant_folding_pass();
std::unique_ptr<Pass> make_cse_pass();
std::unique_ptr<Pass> make_dead_value_elimination_pass();
std::unique_ptr<Pass> make_chain_decorrelator_pass();
std::unique_ptr<Pass> make_correction_sharing_pass();
std::unique_ptr<Pass> make_dead_fix_elimination_pass();

/// The five passes in canonical order (program rewrites first, then plan
/// rewrites), honoring the config's toggles.
PassManager default_pipeline(const OptConfig& config);

// --------------------------------------------------------------- helpers

/// Modeled area of the full design: base netlist (operator cells + SNG
/// bank at config.width) plus the plan's correction overhead, evaluated at
/// config.cost.
double modeled_area(const graph::Program& program,
                    const graph::ProgramPlan& plan, const OptConfig& config);

/// Recomputes plan.overhead / plan.inserted_units from plan.fixes,
/// charging each non-kNone, non-shared fix once.
void reprice_plan(graph::ProgramPlan& plan,
                  const graph::PlannerConfig& config);

/// True when every examined operand pair of the plan is provably
/// satisfied, carries a fix, is covered by a decorrelator chain (a slot
/// re-shuffled by an independent schedule is uncorrelated with every other
/// operand, so a kUncorrelated pair is met when either slot appears in a
/// kDecorrelator fix of the same op), or is a recorded violation.  The
/// safety half of the PassManager's gate.
bool plan_covers(const graph::ProgramPlan& plan);

}  // namespace sc::opt
