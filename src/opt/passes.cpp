/// \file passes.cpp
/// The five shipped optimizer passes (see pass.hpp for the contract).

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "analysis/analyzer.hpp"
#include "opt/pass.hpp"

namespace sc::opt {
namespace {

using graph::FixKind;
using graph::GraphBuilder;
using graph::NodeId;
using graph::OpId;
using graph::PairFix;
using graph::Program;
using graph::ProgramNode;
using graph::ProgramPlan;
using graph::Requirement;
using graph::Value;

/// Marks every node reachable from the outputs through operand edges.
/// Nodes flagged in `stop` (optional) are treated as leaves: marked live
/// but not traversed through — the fold pass uses it to orphan the
/// operands of ops it is about to replace with constants.
std::vector<bool> reachable_from_outputs(const Program& program,
                                         const std::vector<bool>* stop =
                                             nullptr) {
  std::vector<bool> live(program.node_count(), false);
  std::vector<NodeId> stack(program.outputs().begin(),
                            program.outputs().end());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    if (stop != nullptr && (*stop)[id]) continue;
    for (NodeId operand : program.node(id).operands) stack.push_back(operand);
  }
  return live;
}

// -------------------------------------------------------- constant folding

/// Ops whose operands are all constants become constants of their exact
/// value (on a fresh private RNG group — a reseeding rewrite).  Operand
/// constants orphaned by the fold are dropped in the same rewrite, so the
/// saved comparator/LFSR cells are visible to this pass's own cost gate.
class ConstantFoldingPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "constant-fold"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& /*plan*/,
                          const OptConfig& /*config*/,
                          PassReport& report) override {
    const std::size_t n = program.node_count();
    std::vector<bool> constant(n, false);
    std::vector<bool> fold(n, false);
    bool any = false;
    for (NodeId id = 0; id < n; ++id) {
      const ProgramNode& node = program.node(id);
      if (node.kind == ProgramNode::Kind::kConstant) {
        constant[id] = true;
        continue;
      }
      if (node.kind != ProgramNode::Kind::kOp) continue;
      bool all_const = !node.operands.empty();
      for (NodeId operand : node.operands) all_const &= constant[operand];
      if (all_const) {
        fold[id] = constant[id] = true;
        any = true;
      }
    }
    if (!any) return {};
    report.changed = true;

    // Liveness after folding: folded ops no longer reference their
    // operands, so orphaned constants vanish with them.
    const std::vector<bool> live = reachable_from_outputs(program, &fold);

    // Fresh RNG groups / seed tags for the new constants, above every id
    // the program already uses.
    unsigned next_group = graph::kConstantGroupBase;
    std::uint32_t next_tag = 0;
    for (NodeId id = 0; id < n; ++id) {
      const ProgramNode& node = program.node(id);
      next_tag = std::max(next_tag, node.seed_tag + 1);
      if (node.kind != ProgramNode::Kind::kOp) {
        next_group = std::max(next_group, node.rng_group + 1);
      }
    }

    const std::vector<double> values = program.exact_values();
    GraphBuilder builder(program.reg());
    std::vector<NodeId> remap(n, graph::kInvalidNode);
    for (NodeId id = 0; id < n; ++id) {
      if (!live[id]) {
        ++report.nodes_removed;
        continue;
      }
      ProgramNode copy = program.node(id);
      if (fold[id]) {
        ProgramNode folded;
        folded.kind = ProgramNode::Kind::kConstant;
        folded.name = copy.name;
        folded.value = std::clamp(values[id], 0.0, 1.0);
        folded.rng_group = next_group++;
        folded.seed_tag = next_tag++;
        copy = std::move(folded);
        ++report.nodes_folded;
      } else if (copy.kind == ProgramNode::Kind::kOp) {
        for (NodeId& operand : copy.operands) operand = remap[operand];
      }
      remap[id] = builder.raw_node(std::move(copy)).id;
    }
    for (NodeId out : program.outputs()) builder.output(Value{remap[out]});
    program = builder.build();
    return remap;
  }
};

// ------------------------------------------------- common subexpressions

/// Merges op nodes whose operator, operand identity, and RNG-slot seeds
/// agree.  Operators with private RNG slots draw from seeds keyed by
/// their seed_tag, and so do the planned fixes in front of an op
/// (decorrelator / chain / regeneration aux RNGs) — in either case
/// distinct duplicates produce *different* streams, so the CSE key keeps
/// them apart and only truly deterministic nodes merge.  That is exactly
/// what makes the rewrite bit-identical: a deterministic evaluator on
/// identical (unfixed or RNG-free-fixed) operand streams emits identical
/// bits, so consumers of the dropped duplicate see the same stream.
class CsePass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "cse"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& plan,
                          const OptConfig& /*config*/,
                          PassReport& report) override {
    using Key = std::tuple<OpId, std::uint32_t, std::vector<NodeId>>;
    const std::size_t n = program.node_count();
    // Ops whose planned fixes draw RNG (seeded per node): their output is
    // not a function of (op, operands) alone.
    std::vector<bool> rng_fixed(n, false);
    for (const PairFix& fix : plan.fixes) {
      if (graph::fix_draws_rng(fix.fix)) rng_fixed[fix.op_node] = true;
    }
    std::map<Key, NodeId> seen;
    GraphBuilder builder(program.reg());
    std::vector<NodeId> remap(n, graph::kInvalidNode);
    for (NodeId id = 0; id < n; ++id) {
      ProgramNode copy = program.node(id);
      if (copy.kind == ProgramNode::Kind::kOp) {
        for (NodeId& operand : copy.operands) operand = remap[operand];
        const bool draws_rng =
            program.def_of(id).rng_slots > 0 || rng_fixed[id];
        Key key{copy.op, draws_rng ? copy.seed_tag : 0, copy.operands};
        const auto it = seen.find(key);
        if (it != seen.end()) {
          remap[id] = it->second;
          ++report.nodes_removed;
          report.changed = true;
          continue;
        }
        remap[id] = builder.raw_node(std::move(copy)).id;
        seen.emplace(std::move(key), remap[id]);
        continue;
      }
      remap[id] = builder.raw_node(std::move(copy)).id;
    }
    if (!report.changed) return {};
    for (NodeId out : program.outputs()) builder.output(Value{remap[out]});
    program = builder.build();
    return remap;
  }
};

// ------------------------------------------------- dead value elimination

/// Drops nodes that reach no program output (bit-identical: surviving
/// nodes keep their operands, rng groups, and seed tags).
class DeadValueEliminationPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "dve"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& /*plan*/,
                          const OptConfig& /*config*/,
                          PassReport& report) override {
    const std::vector<bool> live = reachable_from_outputs(program);
    const std::size_t n = program.node_count();
    if (std::all_of(live.begin(), live.end(), [](bool b) { return b; })) {
      return {};
    }
    report.changed = true;
    GraphBuilder builder(program.reg());
    std::vector<NodeId> remap(n, graph::kInvalidNode);
    for (NodeId id = 0; id < n; ++id) {
      if (!live[id]) {
        ++report.nodes_removed;
        continue;
      }
      ProgramNode copy = program.node(id);
      if (copy.kind == ProgramNode::Kind::kOp) {
        for (NodeId& operand : copy.operands) operand = remap[operand];
      }
      remap[id] = builder.raw_node(std::move(copy)).id;
    }
    for (NodeId out : program.outputs()) builder.output(Value{remap[out]});
    program = builder.build();
    return remap;
  }
};

// ---------------------------------------------------- chain decorrelators

/// Rewrites the planner's pairwise decorrelator insertions over a k-way
/// same-node copy group (k(k-1)/2 two-buffer circuits) into the paper's
/// series chain (§III-C) of k-1 single-buffer links over consecutive
/// slots: copy j becomes the composition of j independent shuffles of
/// copy 0, so shuffle windows compound along the chain and every pair —
/// inside the group and against any other operand — reaches SCC ~ 0.
/// Only groups whose slots reference one *node* are chained (a link
/// replaces its second stream with a shuffle of the first, which
/// preserves the value only when the streams are identical); same-group
/// inputs with different values keep the pairwise insertions.  The
/// dropped PairFix entries stay in the plan with fix = kNone so
/// plan_covers can check the chain rule.  Reseeding rewrite (chain lanes
/// draw fresh per-lane aux seeds).
class ChainDecorrelatorPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "chain-decorrelators"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& plan,
                          const OptConfig& /*config*/,
                          PassReport& report) override {
    std::map<NodeId, std::vector<std::size_t>> by_op;
    for (std::size_t i = 0; i < plan.fixes.size(); ++i) {
      by_op[plan.fixes[i].op_node].push_back(i);
    }
    std::vector<PairFix> chain_fixes;
    std::size_t groups = 0;
    for (const auto& [op_node, indices] : by_op) {
      const ProgramNode& node = program.node(op_node);

      // Slots already claimed by non-decorrelator fixes must not be
      // re-shuffled (a chain after a synchronizer would destroy the
      // alignment it just built).
      std::set<unsigned> off_limits;
      for (std::size_t i : indices) {
        const PairFix& fix = plan.fixes[i];
        if (fix.fix == FixKind::kNone || fix.fix == FixKind::kDecorrelator) {
          continue;
        }
        off_limits.insert(fix.operand_a);
        off_limits.insert(fix.operand_b);
      }

      // Copy groups: slots that reference the same node carry one and the
      // same stream, so a chain link's shuffle(previous copy) preserves
      // their value exactly.
      std::map<NodeId, std::vector<unsigned>> sources;
      for (unsigned slot = 0; slot < node.operands.size(); ++slot) {
        if (off_limits.count(slot) != 0) continue;
        sources[node.operands[slot]].push_back(slot);
      }

      std::set<unsigned> chained;
      for (const auto& [source, slots] : sources) {
        (void)source;
        // 2-copy groups keep the planner's Fig. 4a pair decorrelator on
        // purpose: it shuffles *both* streams (relative window ~2D),
        // while a lone chain link shuffles only one (~D) — swapping
        // would trade decorrelation quality for area, which the
        // area-only gate cannot see.  Chains only win at k >= 3, where
        // links compose.
        if (slots.size() < 3) continue;
        // Every intra-group pair must currently be a planned pairwise
        // decorrelator with the kUncorrelated requirement.
        std::vector<std::size_t> pair_indices;
        bool eligible = true;
        for (std::size_t a = 0; a < slots.size() && eligible; ++a) {
          for (std::size_t b = a + 1; b < slots.size() && eligible; ++b) {
            bool found = false;
            for (std::size_t i : indices) {
              const PairFix& fix = plan.fixes[i];
              if (fix.operand_a == slots[a] && fix.operand_b == slots[b] &&
                  fix.fix == FixKind::kDecorrelator && fix.shared_with < 0 &&
                  fix.requirement == Requirement::kUncorrelated) {
                pair_indices.push_back(i);
                found = true;
                break;
              }
            }
            eligible &= found;
          }
        }
        if (!eligible) continue;

        for (std::size_t i : pair_indices) plan.fixes[i].fix = FixKind::kNone;
        for (std::size_t t = 0; t + 1 < slots.size(); ++t) {
          PairFix link;
          link.op_node = op_node;
          link.operand_a = slots[t];
          link.operand_b = slots[t + 1];
          link.requirement = Requirement::kUncorrelated;
          link.relation = graph::Relation::kPositive;
          link.fix = FixKind::kDecorrelatorChain;
          chain_fixes.push_back(link);
        }
        // Every slot but the chain head is re-shuffled.
        chained.insert(slots.begin() + 1, slots.end());
        report.corrections_saved += pair_indices.size() - (slots.size() - 1);
        report.changed = true;
        ++groups;
      }

      // Cross-group decorrelators touching a chained (already re-shuffled)
      // slot are redundant: that slot is independent of everything.
      if (!chained.empty()) {
        for (std::size_t i : indices) {
          PairFix& fix = plan.fixes[i];
          if (fix.fix != FixKind::kDecorrelator || fix.shared_with >= 0) {
            continue;
          }
          if (chained.count(fix.operand_a) != 0 ||
              chained.count(fix.operand_b) != 0) {
            fix.fix = FixKind::kNone;
            ++report.corrections_saved;
            report.changed = true;
          }
        }
      }
    }
    if (!report.changed) return {};
    plan.fixes.insert(plan.fixes.end(), chain_fixes.begin(),
                      chain_fixes.end());
    std::ostringstream detail;
    detail << groups << " copy group" << (groups == 1 ? "" : "s")
           << " chained";
    report.detail = detail.str();
    return {};
  }
};

// ------------------------------------------------------ correction sharing

/// Marks duplicate RNG-free synchronizer / desynchronizer insertions that
/// read the same producer pair as shared (PairFix::shared_with): one
/// physical circuit fans out to every sibling consumer, so the plan
/// charges it once.  Only fixes whose slots no other fix of the same op
/// touches are candidates — their inputs are provably the raw producer
/// streams — and the mirrored FSM is deterministic, so backends stay
/// bit-identical without any change.
class CorrectionSharingPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "share-corrections"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& plan,
                          const OptConfig& /*config*/,
                          PassReport& report) override {
    // Per-op slot usage over all active fixes.
    std::map<NodeId, std::map<unsigned, unsigned>> usage;
    for (const PairFix& fix : plan.fixes) {
      if (fix.fix == FixKind::kNone) continue;
      ++usage[fix.op_node][fix.operand_a];
      ++usage[fix.op_node][fix.operand_b];
    }
    std::map<std::tuple<NodeId, NodeId, int>, std::size_t> representative;
    std::size_t shared = 0;
    for (std::size_t i = 0; i < plan.fixes.size(); ++i) {
      PairFix& fix = plan.fixes[i];
      if ((fix.fix != FixKind::kSynchronizer &&
           fix.fix != FixKind::kDesynchronizer) ||
          fix.shared_with >= 0) {
        continue;
      }
      const std::map<unsigned, unsigned>& slots = usage[fix.op_node];
      if (slots.at(fix.operand_a) != 1 || slots.at(fix.operand_b) != 1) {
        continue;  // another fix rewrites these streams first
      }
      const ProgramNode& node = program.node(fix.op_node);
      const std::tuple<NodeId, NodeId, int> key{
          node.operands[fix.operand_a], node.operands[fix.operand_b],
          static_cast<int>(fix.fix)};
      const auto it = representative.find(key);
      if (it == representative.end()) {
        representative.emplace(key, i);
        continue;
      }
      fix.shared_with = static_cast<std::int32_t>(it->second);
      ++shared;
    }
    if (shared == 0) return {};
    report.changed = true;
    report.corrections_saved = shared;
    std::ostringstream detail;
    detail << shared << " correction" << (shared == 1 ? "" : "s")
           << " fanned out from siblings";
    report.detail = detail.str();
    return {};
  }
};

// ----------------------------------------------------- dead-fix elimination

/// Drops inserted fixes the static analyzer proves redundant.  The
/// analyzer's redundancy verdicts are counterfactual against the *full*
/// incoming plan, so drops are applied greedily and each one is re-checked
/// against the fixes still active: a kUncorrelated pair may lose its fix
/// only while another decorrelator of the op keeps shuffling one of its
/// slots (exactly plan_covers's chain rule) or the raw pair is provably
/// independent; a kPositive pair only when the raw pair is provably
/// SCC = +1 (threshold-generator proof) — the relation is then refined to
/// record the proof.  Sharing representatives and their mirrors are left
/// alone (the mirrored FSM is the representative's circuit), and
/// kNegative pairs are never touched.  Dropped entries stay in
/// plan.fixes with FixKind::kNone, like the planner's satisfied pairs,
/// so fix indices (shared_with) stay stable.
class DeadFixEliminationPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "drop-dead-fixes"; }

  std::vector<NodeId> run(Program& program, ProgramPlan& plan,
                          const OptConfig& config,
                          PassReport& report) override {
    analysis::AnalyzerConfig analyzer_config;
    analyzer_config.width = config.width;
    analyzer_config.sync_depth = config.planner.sync_depth;
    analyzer_config.shuffle_depth = config.planner.shuffle_depth;
    analyzer_config.telemetry = config.telemetry;
    const analysis::AnalysisReport verdicts =
        analysis::analyze(program, plan, analyzer_config);

    std::set<std::size_t> representatives;
    for (const PairFix& fix : plan.fixes) {
      if (fix.shared_with >= 0) {
        representatives.insert(static_cast<std::size_t>(fix.shared_with));
      }
    }
    const auto shuffled_elsewhere = [&plan](std::size_t self, NodeId op,
                                            unsigned a, unsigned b) {
      for (std::size_t j = 0; j < plan.fixes.size(); ++j) {
        if (j == self) continue;
        const PairFix& other = plan.fixes[j];
        if (other.op_node != op) continue;
        if (other.fix == FixKind::kDecorrelator &&
            (other.operand_a == a || other.operand_b == a ||
             other.operand_a == b || other.operand_b == b)) {
          return true;
        }
        if (other.fix == FixKind::kDecorrelatorChain &&
            (other.operand_b == a || other.operand_b == b)) {
          return true;
        }
      }
      return false;
    };

    std::size_t dropped = 0;
    for (const analysis::RedundantFix& redundant : verdicts.redundant_fixes) {
      PairFix& fix = plan.fixes[redundant.fix_index];
      if (fix.fix == FixKind::kNone || fix.shared_with >= 0 ||
          representatives.count(redundant.fix_index) != 0) {
        continue;
      }
      const ProgramNode& node = program.node(fix.op_node);
      const analysis::SccClass raw = verdicts.node_class(
          node.operands[fix.operand_a], node.operands[fix.operand_b]);
      if (fix.requirement == Requirement::kUncorrelated &&
          redundant.without_fix == analysis::SccClass::kIndependent) {
        if (raw == analysis::SccClass::kIndependent) {
          fix.fix = FixKind::kNone;
          fix.relation = graph::Relation::kIndependent;
          ++dropped;
        } else if (shuffled_elsewhere(redundant.fix_index, fix.op_node,
                                      fix.operand_a, fix.operand_b)) {
          fix.fix = FixKind::kNone;  // chain-covered; relation stays honest
          ++dropped;
        }
      } else if (fix.requirement == Requirement::kPositive &&
                 redundant.without_fix == analysis::SccClass::kCorrelated &&
                 raw == analysis::SccClass::kCorrelated &&
                 !shuffled_elsewhere(redundant.fix_index, fix.op_node,
                                     fix.operand_a, fix.operand_b)) {
        fix.fix = FixKind::kNone;
        fix.relation = graph::Relation::kPositive;
        ++dropped;
      }
    }
    if (dropped == 0) return {};
    report.changed = true;
    report.corrections_saved = dropped;
    std::ostringstream detail;
    detail << dropped << " provably redundant fix" << (dropped == 1 ? "" : "es")
           << " dropped";
    report.detail = detail.str();
    return {};
  }
};

}  // namespace

std::unique_ptr<Pass> make_constant_folding_pass() {
  return std::make_unique<ConstantFoldingPass>();
}
std::unique_ptr<Pass> make_cse_pass() { return std::make_unique<CsePass>(); }
std::unique_ptr<Pass> make_dead_value_elimination_pass() {
  return std::make_unique<DeadValueEliminationPass>();
}
std::unique_ptr<Pass> make_chain_decorrelator_pass() {
  return std::make_unique<ChainDecorrelatorPass>();
}
std::unique_ptr<Pass> make_correction_sharing_pass() {
  return std::make_unique<CorrectionSharingPass>();
}
std::unique_ptr<Pass> make_dead_fix_elimination_pass() {
  return std::make_unique<DeadFixEliminationPass>();
}

PassManager default_pipeline(const OptConfig& config) {
  PassManager pipeline;
  if (config.constant_folding) pipeline.add(make_constant_folding_pass());
  if (config.cse) pipeline.add(make_cse_pass());
  if (config.dead_value_elimination) {
    pipeline.add(make_dead_value_elimination_pass());
  }
  if (config.chain_decorrelators) pipeline.add(make_chain_decorrelator_pass());
  if (config.correction_sharing) pipeline.add(make_correction_sharing_pass());
  if (config.dead_fix_elimination) {
    pipeline.add(make_dead_fix_elimination_pass());
  }
  return pipeline;
}

}  // namespace sc::opt
