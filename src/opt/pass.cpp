#include "opt/pass.hpp"

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/error_model.hpp"
#include "obs/telemetry.hpp"

namespace sc::opt {

using graph::FixKind;
using graph::NodeId;
using graph::PairFix;
using graph::ProgramPlan;

namespace {

/// Area comparisons tolerate float noise from netlist summation order.
constexpr double kAreaEpsilon = 1e-6;
/// Same for the predicted-error and fragility axes of the Pareto gate.
constexpr double kMetricEpsilon = 1e-9;

/// Analyzer operating point of the gate's error/fragility evaluations.
analysis::AnalyzerConfig gate_analyzer_config(const OptConfig& config) {
  analysis::AnalyzerConfig out;
  out.stream_length = config.error_stream_length;
  out.width = config.width;
  out.sync_depth = config.planner.sync_depth;
  out.shuffle_depth = config.planner.shuffle_depth;
  out.telemetry = config.telemetry;
  return out;
}

/// One budgeted axis of the Pareto gate: a rewrite may sit above a
/// budget it was already above (legacy designs keep optimizing), but
/// must not *move away* from a budget it violates.
bool within_budget(double before, double after, double budget,
                   double epsilon) {
  return !(after > budget && after > before + epsilon);
}

}  // namespace

std::string to_string(const PassReport& report) {
  std::ostringstream out;
  out << report.pass << ": ";
  if (!report.changed) {
    out << "no rewrite";
    return out.str();
  }
  out << (report.accepted ? "accepted" : "REJECTED");
  if (report.nodes_removed != 0) out << ", -" << report.nodes_removed << " nodes";
  if (report.nodes_folded != 0) out << ", " << report.nodes_folded << " folded";
  if (report.corrections_saved != 0) {
    out << ", -" << report.corrections_saved << " corrections";
  }
  out << ", area " << (report.area_delta_um2 <= 0 ? "" : "+")
      << report.area_delta_um2 << " um2";
  if (report.error_delta != 0.0) {
    out << ", error " << (report.error_delta <= 0 ? "" : "+")
        << report.error_delta;
  }
  if (report.fragility_delta != 0.0) {
    out << ", fragility " << (report.fragility_delta <= 0 ? "" : "+")
        << report.fragility_delta;
  }
  if (!report.detail.empty()) out << " (" << report.detail << ")";
  return out.str();
}

double modeled_area(const graph::Program& program, const ProgramPlan& plan,
                    const OptConfig& config) {
  return hw::evaluate(program.base_netlist(config.width) + plan.overhead,
                      config.cost)
      .area_um2;
}

void reprice_plan(ProgramPlan& plan, const graph::PlannerConfig& config) {
  plan.overhead =
      hw::Netlist("insertion-overhead(" + to_string(plan.strategy) + ")");
  plan.inserted_units = 0;
  for (const PairFix& fix : plan.fixes) {
    if (fix.fix == FixKind::kNone || fix.shared_with >= 0) continue;
    plan.overhead += graph::fix_netlist(fix.fix, config);
    ++plan.inserted_units;
  }
}

bool plan_covers(const ProgramPlan& plan) {
  // Slots of each op that some decorrelator fix re-shuffles (a chain link
  // only re-shuffles its second operand; the first passes through).
  std::map<NodeId, std::set<unsigned>> shuffled;
  for (const PairFix& fix : plan.fixes) {
    if (fix.fix == FixKind::kDecorrelator) {
      shuffled[fix.op_node].insert(fix.operand_a);
      shuffled[fix.op_node].insert(fix.operand_b);
    } else if (fix.fix == FixKind::kDecorrelatorChain) {
      shuffled[fix.op_node].insert(fix.operand_b);
    }
  }
  const std::set<NodeId> violated(plan.violations.begin(),
                                  plan.violations.end());
  for (const PairFix& fix : plan.fixes) {
    if (graph::requirement_satisfied(fix.requirement, fix.relation)) continue;
    if (fix.fix != FixKind::kNone) continue;
    if (violated.count(fix.op_node) != 0) continue;
    if (fix.requirement == graph::Requirement::kUncorrelated) {
      const auto it = shuffled.find(fix.op_node);
      if (it != shuffled.end() && (it->second.count(fix.operand_a) != 0 ||
                                   it->second.count(fix.operand_b) != 0)) {
        continue;  // chain-covered
      }
    }
    return false;
  }
  return true;
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<PassReport> PassManager::run(graph::Program& program,
                                         ProgramPlan& plan,
                                         std::vector<NodeId>& node_map,
                                         const OptConfig& config) const {
  obs::Telemetry* const telemetry = obs::fallback(config.telemetry);
  obs::Tracer* const tracer = obs::tracer_of(telemetry);
  const bool budgeted = config.budgeted();
  const analysis::AnalyzerConfig gate_config = gate_analyzer_config(config);
  // Carried across passes so each pass pays one error/fragility
  // evaluation, not two (the accepted state's metrics become the next
  // pass's "before").
  double error_before = 0.0;
  double fragility_before = 0.0;
  if (budgeted) {
    error_before = analysis::plan_error(program, plan, gate_config);
    fragility_before = analysis::plan_fragility(program, plan, gate_config);
  }
  std::vector<PassReport> reports;
  reports.reserve(passes_.size());
  for (const std::unique_ptr<Pass>& pass : passes_) {
    obs::Span span(tracer, "opt." + pass->name(), "opt");
    const graph::Program before_program = program;
    const ProgramPlan before_plan = plan;
    const double area_before = modeled_area(program, plan, config);

    PassReport report;
    report.pass = pass->name();
    std::vector<NodeId> remap = pass->run(program, plan, config, report);
    if (telemetry != nullptr) telemetry->metrics().counter("opt.passes").inc();
    if (!report.changed) {
      span.arg_str("result", "no-rewrite");
      reports.push_back(std::move(report));
      continue;
    }
    if (!remap.empty()) {
      // The program changed: replan under the same strategy so fixes,
      // relations, and violations track the rewritten operand identities.
      plan = plan_program(program, plan.strategy, config.planner);
    }
    reprice_plan(plan, config.planner);

    const double area_after = modeled_area(program, plan, config);
    const bool lowers =
        area_after < area_before - kAreaEpsilon ||
        (area_after <= area_before + kAreaEpsilon &&
         (report.nodes_removed != 0 || report.corrections_saved != 0));
    const bool safe = plan_covers(plan) &&
                      plan.violations.size() <= before_plan.violations.size();

    // Legacy gate: keep what lowers area and stays safe.  Pareto gate
    // (any finite budget): keep what is safe, improves at least one
    // objective, and moves no budgeted objective further past its
    // budget — the chain rewrite's area saving no longer buys an
    // arbitrary accuracy/fragility cost.
    bool keep = lowers && safe;
    double error_after = error_before;
    double fragility_after = fragility_before;
    if (budgeted && safe) {
      error_after = analysis::plan_error(program, plan, gate_config);
      fragility_after =
          analysis::plan_fragility(program, plan, gate_config);
      const bool improves =
          lowers || error_after < error_before - kMetricEpsilon ||
          fragility_after < fragility_before - kMetricEpsilon;
      keep = improves &&
             within_budget(area_before, area_after, config.area_budget_um2,
                           kAreaEpsilon) &&
             within_budget(error_before, error_after, config.error_budget,
                           kMetricEpsilon) &&
             within_budget(fragility_before, fragility_after,
                           config.fragility_budget, kMetricEpsilon);
    }
    if (!keep) {
      program = before_program;
      plan = before_plan;
      report.accepted = false;
      report.area_delta_um2 = 0.0;
      report.error_delta = 0.0;
      report.fragility_delta = 0.0;
      report.nodes_removed = 0;
      report.nodes_folded = 0;
      report.corrections_saved = 0;
      span.arg_str("result", "rejected");
      if (telemetry != nullptr) {
        telemetry->metrics().counter("opt.rewrites_rejected").inc();
      }
      reports.push_back(std::move(report));
      continue;
    }

    report.accepted = true;
    report.area_delta_um2 = area_after - area_before;
    if (budgeted) {
      report.error_delta = error_after - error_before;
      report.fragility_delta = fragility_after - fragility_before;
      error_before = error_after;
      fragility_before = fragility_after;
    }
    span.arg_str("result", "accepted");
    span.arg("nodes_removed", static_cast<std::uint64_t>(report.nodes_removed));
    span.arg("corrections_saved",
             static_cast<std::uint64_t>(report.corrections_saved));
    span.arg("area_delta_um2", report.area_delta_um2);
    if (telemetry != nullptr) {
      obs::MetricsRegistry& metrics = telemetry->metrics();
      metrics.counter("opt.rewrites_accepted").inc();
      metrics.counter("opt.nodes_removed").add(report.nodes_removed);
      metrics.counter("opt.corrections_saved").add(report.corrections_saved);
    }
    if (!remap.empty()) {
      for (NodeId& mapped : node_map) {
        if (mapped != graph::kInvalidNode) mapped = remap[mapped];
      }
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace sc::opt
