/// \file optimize.hpp
/// One-call front of the optimizer subsystem: opt::optimize runs the
/// default pass pipeline (pass.hpp) over a planned program and returns the
/// rewritten program/plan plus per-pass diff reports.  Backends invoke it
/// automatically when ExecConfig::optimize is set; library users can call
/// it directly to inspect or price the rewrites.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "opt/pass.hpp"

namespace sc::opt {

/// Everything optimize() produced.
struct OptResult {
  graph::Program program;
  graph::ProgramPlan plan;
  /// Original node id -> optimized node id; graph::kInvalidNode for
  /// removed nodes, the survivor's id for CSE-merged duplicates (their
  /// streams are one and the same).
  std::vector<graph::NodeId> node_map;
  std::vector<PassReport> reports;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  /// Static fragility (analysis::plan_fragility: per-fix state_bits x
  /// blast x persistence, summed) of the incoming and optimized plans —
  /// the reliability axis the area numbers above cannot see.  The chain
  /// pass trades area *for* fragility (one chain link's upset poisons
  /// every downstream copy), so a future cost gate budgets against this
  /// pair; today they are reported in summary() and telemetry.
  double fragility_before = 0.0;
  double fragility_after = 0.0;
  /// Predicted worst per-output |error| bound (analysis::plan_error at
  /// OptConfig::error_stream_length bits) of the incoming and optimized
  /// plans — the accuracy axis of the Pareto gate, reported beside area
  /// and fragility whether or not a budget was set.
  double error_before = 0.0;
  double error_after = 0.0;
  /// Full-design cost change (after minus before: area, leakage, dynamic
  /// power, energy) at the config's operating point — negative is saved.
  hw::CostReport cost_delta;

  [[nodiscard]] std::size_t nodes_removed() const;
  [[nodiscard]] std::size_t corrections_saved() const;
  /// One line per accepted pass plus the area totals.
  [[nodiscard]] std::string summary() const;
};

/// Runs the default pipeline (fold -> cse -> dve -> chain -> share, per
/// config toggles) over a copy of (program, plan).  config.planner must
/// match the PlannerConfig the plan was made with.
OptResult optimize(const graph::Program& program,
                   const graph::ProgramPlan& plan,
                   const OptConfig& config = {});

}  // namespace sc::opt
