#include "common/simd.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define SC_SIMD_X86 1
#include <immintrin.h>
#else
#define SC_SIMD_X86 0
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define SC_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SC_SIMD_NEON 0
#endif

namespace sc::simd {
namespace {

// ----------------------------------------------------------------- dispatch

Tier detect_tier() {
#if SC_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2") &&
      __builtin_cpu_supports("popcnt")) {
    return Tier::kAvx2;
  }
  return Tier::kScalar;
#elif SC_SIMD_NEON
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

Tier resolve_tier() {
  const Tier detected = detect_tier();
  const char* env = std::getenv("SC_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "off" || v == "scalar" || v == "0" || v == "false" || v == "none") {
    return Tier::kScalar;
  }
  if (v == "avx2") return detected < Tier::kAvx2 ? detected : Tier::kAvx2;
  if (v == "neon") return detected < Tier::kNeon ? detected : Tier::kNeon;
  // "on" / "auto" / "avx512" / anything unrecognized: widest supported.
  return detected;
}

// ----------------------------------------------------- scalar reference set
//
// Each vector implementation below must match its scalar twin bit-for-bit;
// tests/kernel_test.cpp re-runs the kernel conformance suite with
// SC_SIMD=off to enforce it end to end.

void pack_compare_lt_scalar(const std::uint32_t* vals, std::size_t n,
                            std::uint32_t level, std::uint64_t* words) {
  for (std::size_t i = 0; i < n; ++i) {
    words[i >> 6] |= static_cast<std::uint64_t>(vals[i] < level) << (i & 63);
  }
}

void pack_compare_trace_scalar(const std::uint32_t* raw,
                               const std::uint16_t* thresh, std::size_t n,
                               std::uint64_t* words) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = static_cast<std::int32_t>(raw[i]) <
                     static_cast<std::int32_t>(thresh[i]);
    words[i >> 6] |= static_cast<std::uint64_t>(bit) << (i & 63);
  }
}

void pack_compare_trace_u8_scalar(const std::uint8_t* raw,
                                  const std::uint16_t* thresh, std::size_t n,
                                  std::uint64_t* words) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = static_cast<std::int32_t>(raw[i]) <
                     static_cast<std::int32_t>(thresh[i]);
    words[i >> 6] |= static_cast<std::uint64_t>(bit) << (i & 63);
  }
}

void shuffle_words_scalar(std::uint64_t* words, const std::uint8_t* r,
                          std::size_t n, unsigned depth,
                          std::uint64_t* slots) {
  std::uint64_t mask = *slots;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned rv = r[i];
    std::uint64_t& word = words[i >> 6];
    const unsigned b = static_cast<unsigned>(i & 63);
    const std::uint64_t in = (word >> b) & 1u;
    std::uint64_t out;
    if (rv == depth) {
      out = in;
    } else {
      out = (mask >> rv) & 1u;
      mask = (mask & ~(std::uint64_t{1} << rv)) | (in << rv);
    }
    word = (word & ~(std::uint64_t{1} << b)) | (out << b);
  }
  *slots = mask;
}

// --------------------------------------------------------------- mod magic

/// 32-bit Lemire round-up magic for a byte-range divisor, or 0 when the
/// exhaustive check over the 16-bit value domain failed (the SIMD path
/// then stands down).  With M = floor((2^32 - 1) / d) + 1 the remainder is
/// mulhi32(M * v mod 2^32, d), exact for v < 2^16 whenever d <= 2^16 —
/// verified outright anyway the first time each divisor is seen.
std::uint32_t mod_magic(std::uint32_t bound) {
  static std::mutex mutex;
  static std::map<std::uint32_t, std::uint32_t> cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(bound);
  if (it != cache.end()) return it->second;
  std::uint32_t magic = ~std::uint32_t{0} / bound + 1;
  for (std::uint32_t v = 0; v < (std::uint32_t{1} << 16); ++v) {
    const auto low = static_cast<std::uint32_t>(magic * v);
    const auto rem = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(low) * bound) >> 32);
    if (rem != v % bound) {
      magic = 0;
      break;
    }
  }
  cache.emplace(bound, magic);
  return magic;
}

void mod_bytes_scalar(const std::uint32_t* vals, std::size_t n,
                      std::uint32_t bound, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(vals[i] % bound);
  }
}

// ------------------------------------------------------------- x86 tiers

#if SC_SIMD_X86

__attribute__((target("avx2")))
void pack_compare_lt_avx2(const std::uint32_t* vals, std::size_t n,
                          std::uint32_t level, std::uint64_t* words) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vl =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(level)), bias);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 8) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(vals + i + k)),
          bias);
      const auto m = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vl, v))));
      w |= static_cast<std::uint64_t>(m) << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) pack_compare_lt_scalar(vals + i, n - i, level, words + (i >> 6));
}

__attribute__((target("avx512f")))
void pack_compare_lt_avx512(const std::uint32_t* vals, std::size_t n,
                            std::uint32_t level, std::uint64_t* words) {
  const __m512i vl = _mm512_set1_epi32(static_cast<int>(level));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 16) {
      const __m512i v = _mm512_loadu_si512(vals + i + k);
      w |= static_cast<std::uint64_t>(
               static_cast<std::uint16_t>(_mm512_cmplt_epu32_mask(v, vl)))
           << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) pack_compare_lt_scalar(vals + i, n - i, level, words + (i >> 6));
}

__attribute__((target("avx2")))
void pack_compare_trace_avx2(const std::uint32_t* raw,
                             const std::uint16_t* thresh, std::size_t n,
                             std::uint64_t* words) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(raw + i + k));
      const __m256i t = _mm256_cvtepu16_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(thresh + i + k)));
      const auto m = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(t, v))));
      w |= static_cast<std::uint64_t>(m) << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) {
    pack_compare_trace_scalar(raw + i, thresh + i, n - i, words + (i >> 6));
  }
}

__attribute__((target("avx512f")))
void pack_compare_trace_avx512(const std::uint32_t* raw,
                               const std::uint16_t* thresh, std::size_t n,
                               std::uint64_t* words) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 16) {
      const __m512i v = _mm512_loadu_si512(raw + i + k);
      const __m512i t = _mm512_cvtepu16_epi32(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(thresh + i + k)));
      w |= static_cast<std::uint64_t>(
               static_cast<std::uint16_t>(_mm512_cmpgt_epi32_mask(t, v)))
           << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) {
    pack_compare_trace_scalar(raw + i, thresh + i, n - i, words + (i >> 6));
  }
}

__attribute__((target("avx2,bmi2")))
void pack_compare_trace_u8_avx2(const std::uint8_t* raw,
                                const std::uint16_t* thresh, std::size_t n,
                                std::uint64_t* words) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 16) {
      const __m256i v = _mm256_cvtepu8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(raw + i + k)));
      const __m256i t = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(thresh + i + k));
      const auto m = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpgt_epi16(t, v)));
      // movemask reports per byte; keep one bit per 16-bit lane.
      w |= _pext_u64(m, 0xAAAAAAAAu) << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) {
    pack_compare_trace_u8_scalar(raw + i, thresh + i, n - i, words + (i >> 6));
  }
}

__attribute__((target("avx512f,avx512bw")))
void pack_compare_trace_u8_avx512(const std::uint8_t* raw,
                                  const std::uint16_t* thresh, std::size_t n,
                                  std::uint64_t* words) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 32) {
      const __m512i v = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(raw + i + k)));
      const __m512i t = _mm512_loadu_si512(thresh + i + k);
      w |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               _mm512_cmpgt_epi16_mask(t, v)))
           << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) {
    pack_compare_trace_u8_scalar(raw + i, thresh + i, n - i, words + (i >> 6));
  }
}

__attribute__((target("avx512f")))
void mod_bytes_avx512(const std::uint32_t* vals, std::size_t n,
                      std::uint32_t bound, std::uint32_t magic,
                      std::uint8_t* out) {
  const __m512i vm = _mm512_set1_epi32(static_cast<int>(magic));
  const __m512i vb = _mm512_set1_epi32(static_cast<int>(bound));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v = _mm512_loadu_si512(vals + i);
    const __m512i low = _mm512_mullo_epi32(v, vm);
    // Remainder = high 32 bits of low * bound, recombined across the
    // even/odd 64-bit product lanes.
    const __m512i pe = _mm512_mul_epu32(low, vb);
    const __m512i po = _mm512_mul_epu32(_mm512_srli_epi64(low, 32), vb);
    const __m512i rem =
        _mm512_mask_blend_epi32(0xAAAA, _mm512_srli_epi64(pe, 32), po);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm512_cvtepi32_epi8(rem));
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>(vals[i] % bound);
}

/// Scalar loop over the same verified magic (no hardware divide); used by
/// the AVX2 tier and as the vector tail.
void mod_bytes_magic_scalar(const std::uint32_t* vals, std::size_t n,
                            std::uint32_t bound, std::uint32_t magic,
                            std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto low = static_cast<std::uint32_t>(magic * vals[i]);
    out[i] = static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(low) * bound) >> 32);
  }
}

/// Word-parallel shuffle advance, one PEXT/PDEP pass per slot class per
/// word (see the header).  The carry bit of slot class s *is* slot s of
/// the buffer, so the in/out state is exactly the slots mask.
__attribute__((target("avx2,bmi2,popcnt")))
void shuffle_words_avx2(std::uint64_t* words, const std::uint8_t* r,
                        std::size_t n, unsigned depth, std::uint64_t* slots) {
  std::uint64_t carry = *slots;
  const std::size_t nwords = n >> 6;
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    const std::uint64_t in = words[wi];
    const std::uint8_t* rw = r + wi * 64;
    const __m256i r0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rw));
    const __m256i r1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rw + 32));
    std::uint64_t out = 0;
    for (unsigned s = 0; s <= depth; ++s) {
      const __m256i vs = _mm256_set1_epi8(static_cast<char>(s));
      const auto m0 = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(r0, vs)));
      const auto m1 = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(r1, vs)));
      const std::uint64_t mask = m0 | (static_cast<std::uint64_t>(m1) << 32);
      if (s == depth) {
        out |= in & mask;  // pass-through class
        continue;
      }
      const std::uint64_t ext = _pext_u64(in, mask);
      const auto pc = static_cast<unsigned>(_mm_popcnt_u64(mask));
      out |= _pdep_u64((ext << 1) | ((carry >> s) & 1u), mask);
      if (pc != 0) {
        carry = (carry & ~(std::uint64_t{1} << s)) |
                (((ext >> (pc - 1)) & 1u) << s);
      }
    }
    words[wi] = out;
  }
  *slots = carry;
  const std::size_t done = nwords * 64;
  if (done < n) {
    shuffle_words_scalar(words + nwords, r + done, n - done, depth, slots);
  }
}

__attribute__((target("avx512f,avx512bw,bmi2,popcnt")))
void shuffle_words_avx512(std::uint64_t* words, const std::uint8_t* r,
                          std::size_t n, unsigned depth,
                          std::uint64_t* slots) {
  std::uint64_t carry = *slots;
  const std::size_t nwords = n >> 6;
  const __m512i vone = _mm512_set1_epi8(1);
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    const std::uint64_t in = words[wi];
    const __m512i rz = _mm512_loadu_si512(r + wi * 64);
    __m512i vs = _mm512_setzero_si512();
    std::uint64_t out = 0;
    for (unsigned s = 0; s < depth; ++s) {
      const std::uint64_t mask =
          _cvtmask64_u64(_mm512_cmpeq_epi8_mask(rz, vs));
      vs = _mm512_add_epi8(vs, vone);
      const std::uint64_t ext = _pext_u64(in, mask);
      const auto pc = static_cast<unsigned>(_mm_popcnt_u64(mask));
      out |= _pdep_u64((ext << 1) | ((carry >> s) & 1u), mask);
      if (pc != 0) {
        carry = (carry & ~(std::uint64_t{1} << s)) |
                (((ext >> (pc - 1)) & 1u) << s);
      }
    }
    const std::uint64_t pass = _cvtmask64_u64(_mm512_cmpeq_epi8_mask(rz, vs));
    words[wi] = out | (in & pass);
  }
  *slots = carry;
  const std::size_t done = nwords * 64;
  if (done < n) {
    shuffle_words_scalar(words + nwords, r + done, n - done, depth, slots);
  }
}

#endif  // SC_SIMD_X86

#if SC_SIMD_NEON

void pack_compare_lt_neon(const std::uint32_t* vals, std::size_t n,
                          std::uint32_t level, std::uint64_t* words) {
  const uint32x4_t vl = vdupq_n_u32(level);
  const uint32x4_t weights = {1u, 2u, 4u, 8u};
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t w = 0;
    for (unsigned k = 0; k < 64; k += 4) {
      const uint32x4_t v = vld1q_u32(vals + i + k);
      const uint32x4_t lt = vcltq_u32(v, vl);
      w |= static_cast<std::uint64_t>(vaddvq_u32(vandq_u32(lt, weights)))
           << k;
    }
    words[i >> 6] |= w;
  }
  if (i < n) pack_compare_lt_scalar(vals + i, n - i, level, words + (i >> 6));
}

#endif  // SC_SIMD_NEON

}  // namespace

Tier active_tier() {
  static const Tier tier = resolve_tier();
  return tier;
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kNeon:
      return "neon";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void pack_compare_lt(const std::uint32_t* vals, std::size_t n,
                     std::uint32_t level, std::uint64_t* words) {
  switch (active_tier()) {
#if SC_SIMD_X86
    case Tier::kAvx512:
      return pack_compare_lt_avx512(vals, n, level, words);
    case Tier::kAvx2:
      return pack_compare_lt_avx2(vals, n, level, words);
#endif
#if SC_SIMD_NEON
    case Tier::kNeon:
      return pack_compare_lt_neon(vals, n, level, words);
#endif
    default:
      return pack_compare_lt_scalar(vals, n, level, words);
  }
}

void pack_compare_trace(const std::uint32_t* raw, const std::uint16_t* thresh,
                        std::size_t n, std::uint64_t* words) {
  switch (active_tier()) {
#if SC_SIMD_X86
    case Tier::kAvx512:
      return pack_compare_trace_avx512(raw, thresh, n, words);
    case Tier::kAvx2:
      return pack_compare_trace_avx2(raw, thresh, n, words);
#endif
    default:
      return pack_compare_trace_scalar(raw, thresh, n, words);
  }
}

void pack_compare_trace_u8(const std::uint8_t* raw,
                           const std::uint16_t* thresh, std::size_t n,
                           std::uint64_t* words) {
  switch (active_tier()) {
#if SC_SIMD_X86
    case Tier::kAvx512:
      return pack_compare_trace_u8_avx512(raw, thresh, n, words);
    case Tier::kAvx2:
      return pack_compare_trace_u8_avx2(raw, thresh, n, words);
#endif
    default:
      return pack_compare_trace_u8_scalar(raw, thresh, n, words);
  }
}

void mod_bytes(const std::uint32_t* vals, std::size_t n, std::uint32_t bound,
               std::uint64_t value_bound, std::uint8_t* out) {
  if (bound == 1) {
    std::memset(out, 0, n);
    return;
  }
#if SC_SIMD_X86
  const Tier tier = active_tier();
  if (tier >= Tier::kAvx2 && value_bound != 0 &&
      value_bound <= (std::uint64_t{1} << 16)) {
    const std::uint32_t magic = mod_magic(bound);
    if (magic != 0) {
      if (tier == Tier::kAvx512) {
        mod_bytes_avx512(vals, n, bound, magic, out);
      } else {
        mod_bytes_magic_scalar(vals, n, bound, magic, out);
      }
      return;
    }
  }
#else
  (void)value_bound;
#endif
  mod_bytes_scalar(vals, n, bound, out);
}

void or_copy_bits(std::uint64_t* dst, std::size_t dst_bit0,
                  const std::uint64_t* src, std::size_t src_bit0,
                  std::size_t nbits) {
  while (nbits != 0) {
    const std::size_t dw = dst_bit0 >> 6;
    const auto doff = static_cast<unsigned>(dst_bit0 & 63);
    const std::size_t take = std::size_t{64} - doff < nbits
                                 ? std::size_t{64} - doff
                                 : nbits;
    const std::size_t sw = src_bit0 >> 6;
    const auto soff = static_cast<unsigned>(src_bit0 & 63);
    std::uint64_t bits = src[sw] >> soff;
    if (soff != 0 && soff + take > 64) bits |= src[sw + 1] << (64 - soff);
    if (take != 64) bits &= (std::uint64_t{1} << take) - 1;
    dst[dw] |= bits << doff;
    dst_bit0 += take;
    src_bit0 += take;
    nbits -= take;
  }
}

void shuffle_words(std::uint64_t* words, const std::uint8_t* r, std::size_t n,
                   unsigned depth, std::uint64_t* slots) {
  switch (active_tier()) {
#if SC_SIMD_X86
    case Tier::kAvx512:
      return shuffle_words_avx512(words, r, n, depth, slots);
    case Tier::kAvx2:
      return shuffle_words_avx2(words, r, n, depth, slots);
#endif
    default:
      return shuffle_words_scalar(words, r, n, depth, slots);
  }
}

}  // namespace sc::simd
