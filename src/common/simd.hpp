/// \file simd.hpp
/// Runtime-dispatched SIMD shim for the word-parallel kernel datapath.
///
/// Every helper here is *exact*: the vector implementations are drop-in
/// replacements for the scalar loops they accelerate, bit-identical for
/// every input (the kernel layer's equivalence contract extends through
/// this shim).  Dispatch picks the widest tier the host supports at first
/// use — AVX-512 (F/BW/VL/DQ + BMI2), AVX2 + BMI2 + POPCNT, NEON on
/// aarch64, or plain scalar — and the `SC_SIMD` environment variable
/// overrides it:
///
///   SC_SIMD=off | scalar | 0    force the scalar reference loops
///   SC_SIMD=avx2                cap at the AVX2 tier (x86 only)
///   SC_SIMD=avx512 | on | auto  no cap (the default)
///
/// The forced-scalar override is the differential-testing escape hatch:
/// with SC_SIMD=off the RNG-coupled kernels fall back to their per-cycle
/// table/direct paths, so golden corpora and conformance fixtures can be
/// replayed against both datapaths.  The variable is read once, at the
/// first dispatch, and cached for the process lifetime.

#pragma once

#include <cstddef>
#include <cstdint>

namespace sc::simd {

/// Instruction tiers the shim dispatches across, widest supported wins.
enum class Tier {
  kScalar = 0,  ///< portable reference loops (also the SC_SIMD=off tier)
  kNeon = 1,    ///< aarch64 NEON (packing helpers only; rest scalar)
  kAvx2 = 2,    ///< x86 AVX2 + BMI2 + POPCNT
  kAvx512 = 3,  ///< x86 AVX-512 F/BW/VL/DQ on top of the AVX2 tier
};

/// The tier in effect for this process (detection + SC_SIMD override,
/// resolved once and cached).
Tier active_tier();

/// Human-readable name of a tier ("scalar", "neon", "avx2", "avx512").
const char* tier_name(Tier tier);

/// True when the word-parallel kernel datapaths should engage (any tier
/// above scalar).  SC_SIMD=off turns this off, which routes every
/// RNG-coupled kernel back to its per-cycle scalar reference path.
inline bool word_parallel_enabled() { return active_tier() != Tier::kScalar; }

// ------------------------------------------------------------ bit packing

/// ORs bit i = (vals[i] < level) into words[i/64] at bit i%64, i in [0, n).
/// Touched bit positions must be clear beforehand (the chunk sources zero
/// their buffers first).  Comparison is unsigned 32-bit; level saturates
/// the compare (level > max uint32 handled by the caller).
void pack_compare_lt(const std::uint32_t* vals, std::size_t n,
                     std::uint32_t level, std::uint64_t* words);

/// ORs bit i = (int32(raw[i]) < thresh[i]) into words, same layout as
/// pack_compare_lt.  Signed compare — this is the TFM output rule, where
/// raw is the aux RNG draw and thresh the post-update estimate trace.
void pack_compare_trace(const std::uint32_t* raw, const std::uint16_t* thresh,
                        std::size_t n, std::uint64_t* words);

/// Byte-source variant of pack_compare_trace for aux values that fit a
/// byte (source width <= 8): bit i = (raw[i] < thresh[i]), raw
/// zero-extended, thresh at most 2^15 - 1 so the 16-bit signed compare
/// is exact.
void pack_compare_trace_u8(const std::uint8_t* raw,
                           const std::uint16_t* thresh, std::size_t n,
                           std::uint64_t* words);

// -------------------------------------------------------------- modulo

/// out[i] = vals[i] % bound, narrowed to bytes.  Requires bound in
/// [1, 255].  Exact for every 32-bit input: SIMD tiers use a per-bound
/// 2^20 magic that is verified exhaustively over the 16-bit domain the
/// first time a bound is seen and engage only when the caller-guaranteed
/// exclusive value bound fits 2^16; otherwise scalar Lemire reduction.
/// Pass value_bound = 0 for "unknown / full 32-bit domain".
void mod_bytes(const std::uint32_t* vals, std::size_t n, std::uint32_t bound,
               std::uint64_t value_bound, std::uint8_t* out);

// ----------------------------------------------------------- bit copying

/// ORs nbits bits read from src starting at absolute bit src_bit0 into
/// dst starting at absolute bit dst_bit0 (bit i of a buffer lives at
/// word i/64, bit i%64).  Destination bit positions must be clear.
/// This is the ring-replay primitive: misaligned word-at-a-time copy.
void or_copy_bits(std::uint64_t* dst, std::size_t dst_bit0,
                  const std::uint64_t* src, std::size_t src_bit0,
                  std::size_t nbits);

// ------------------------------------------------------- shuffle datapath

/// Advances one shuffle buffer `n` cycles, word-parallel, in place.
/// words holds the input bits (bit i of the run at words[i/64] bit i%64);
/// bits at positions >= n in the final word are preserved.  r[i] is the
/// cycle-i address draw, already reduced to [0, depth].  *slots is the
/// slot-contents bitmask (bit s = slot s) and is updated to the final
/// state — the same encoding core::ShuffleBuffer uses.  depth in [1, 63].
///
/// Exact semantics per cycle (identical to the ShuffleBuffer transition):
///   r == depth: out = in, slots unchanged;
///   r <  depth: out = slots[r], slots[r] = in.
///
/// The vector tiers decompose the buffer per slot class: positions with
/// r == s form a chain where each output is the previous input of the
/// same class (a depth-1 FIFO per class), which is one PEXT, one shifted
/// OR-in of the carry, and one PDEP per slot per word — no per-bit
/// dependency chain and no gather/scatter.  The scalar tier is the plain
/// per-bit update.
void shuffle_words(std::uint64_t* words, const std::uint8_t* r, std::size_t n,
                   unsigned depth, std::uint64_t* slots);

}  // namespace sc::simd
