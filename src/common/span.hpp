/// \file span.hpp
/// Minimal C++17 stand-in for std::span (C++20), covering the subset this
/// codebase uses: construction from contiguous containers, iteration,
/// indexing, and size queries.  Non-owning view; the referenced data must
/// outlive the span.

#pragma once

#include <cstddef>
#include <type_traits>

namespace sc {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  constexpr span() noexcept = default;
  constexpr span(T* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  /// Constructs from any contiguous container exposing data() and size()
  /// (std::vector, std::array, sc::span of compatible type, ...).
  /// Matching C++20 std::span, rvalue containers are accepted only for
  /// const element types (safe in function-argument position); binding a
  /// mutable span to a temporary is rejected at compile time.
  template <typename Container,
            typename Element = std::remove_pointer_t<
                decltype(std::declval<Container&>().data())>,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Container>, span> &&
                (std::is_lvalue_reference_v<Container> || std::is_const_v<T>) &&
                // Qualification conversion only (std::span's gate): rules
                // out derived-to-base and void* decay, which would iterate
                // with the wrong stride.
                std::is_convertible_v<Element (*)[], T (*)[]>>,
            typename = decltype(std::declval<Container&>().size())>
  constexpr span(Container&& c) noexcept : data_(c.data()), size_(c.size()) {}

  [[nodiscard]] constexpr T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] constexpr T& front() const noexcept { return data_[0]; }
  [[nodiscard]] constexpr T& back() const noexcept { return data_[size_ - 1]; }

  [[nodiscard]] constexpr T* begin() const noexcept { return data_; }
  [[nodiscard]] constexpr T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] constexpr span subspan(std::size_t offset, std::size_t count) const noexcept {
    return span(data_ + offset, count);
  }
  [[nodiscard]] constexpr span first(std::size_t count) const noexcept {
    return span(data_, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sc
