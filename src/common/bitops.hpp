/// \file bitops.hpp
/// C++17 portability shims for <bit> operations the codebase relies on.

#pragma once

#include <cstdint>

namespace sc {

/// Population count of a 64-bit word (std::popcount is C++20-only).
inline int popcount64(std::uint64_t w) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  int n = 0;
  while (w) {
    w &= w - 1;
    ++n;
  }
  return n;
#endif
}

inline int popcount32(std::uint32_t w) noexcept {
  return popcount64(w);
}

/// Number of bits needed to represent w (std::bit_width is C++20-only).
/// bit_width(0) == 0, bit_width(5) == 3.
inline unsigned bit_width64(std::uint64_t w) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return w == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(w));
#else
  unsigned n = 0;
  while (w) {
    w >>= 1;
    ++n;
  }
  return n;
#endif
}

/// Number of trailing zero bits (std::countr_zero is C++20-only).
/// countr_zero64(0) == 64.
inline unsigned countr_zero64(std::uint64_t w) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return w == 0 ? 64u : static_cast<unsigned>(__builtin_ctzll(w));
#else
  if (w == 0) return 64u;
  unsigned n = 0;
  while (!(w & 1)) {
    w >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace sc
