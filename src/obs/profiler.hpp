/// \file profiler.hpp
/// Span-aggregation profiler: turns the tracer's flat complete events
/// into a call-tree profile answering "where did the time go".
///
/// The Chrome trace format carries no explicit parent links — nesting is
/// time containment per thread (exactly how Perfetto renders it).
/// build_profile() recovers that structure offline: events are grouped by
/// tid, sorted by start time, and folded with a containment stack, so a
/// span that starts and ends inside another span on the same thread
/// becomes its child.  Same-name spans at the same tree path merge into
/// one node accumulating call count and time, which is what turns ten
/// thousand per-chunk spans into one readable row.
///
/// Per node:
///   inclusive_us  total wall time spent inside this span (self + children)
///   exclusive_us  inclusive minus the children's inclusive — the time
///                 attributable to this span's own code
///   calls         number of spans merged into the node
///
/// The per-thread trees are kept (Profile::threads) and also merged by
/// path into Profile::roots, so a pool of identical workers reads as one
/// tree.  By construction the exclusive times telescope: the sum of
/// exclusive_us over a tree equals its root's inclusive_us (the basis of
/// the CI invariant "exclusive sum == total run time").
///
/// Exports:
///   to_table()      top-N hot spots ranked by exclusive time
///   to_json()       nested call tree, machine-readable
///   to_collapsed()  collapsed-stack lines ("a;b;c <microseconds>"),
///                   directly consumable by flamegraph.pl / speedscope /
///                   inferno — the "where do decorrelator cycles go"
///                   picture is one `flamegraph.pl profile.collapsed` away
///
/// Profiling a run is: attach a Telemetry, run, then
/// build_profile(*telemetry.tracer()).  Or set SC_PROFILE=<path> and the
/// process-exit flush writes the collapsed profile with zero code changes
/// (telemetry.hpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sc::obs {

/// One merged call-tree node.
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_us = 0.0;
  double exclusive_us = 0.0;
  std::vector<ProfileNode> children;  ///< sorted by inclusive_us, descending
};

/// The call trees of one thread (dense tracer tid).
struct ThreadProfile {
  std::uint32_t tid = 0;
  std::vector<ProfileNode> roots;
};

struct Profile {
  /// Call trees merged across threads by path.
  std::vector<ProfileNode> roots;
  /// The unmerged per-thread trees (tid order).
  std::vector<ThreadProfile> threads;
  /// Sum of merged root inclusive times: the profile's notion of total
  /// run time.  Threads running concurrently each contribute their own
  /// wall time (a 2-worker pool busy for 1 ms contributes 2 ms).
  double total_us = 0.0;
  /// Complete ('X') events aggregated.
  std::size_t span_count = 0;
  /// Ring-buffer drops at snapshot time: nonzero means the tree only
  /// covers the most recent window of spans.
  std::uint64_t dropped_events = 0;

  /// Sum of exclusive_us over every node — telescopes to total_us.
  [[nodiscard]] double exclusive_sum_us() const;

  /// Fixed-width hot-spot table: top `top_n` nodes by exclusive time with
  /// call counts, inclusive/exclusive microseconds, and % of total.
  [[nodiscard]] std::string to_table(std::size_t top_n = 20) const;
  /// Nested JSON: {"total_us":..., "span_count":..., "dropped_events":...,
  /// "roots":[{"name":..., "calls":..., "inclusive_us":...,
  /// "exclusive_us":..., "children":[...]}]}.
  [[nodiscard]] std::string to_json() const;
  /// Collapsed-stack lines, one per tree path with nonzero exclusive
  /// time: "root;child;leaf 1234" (value = exclusive microseconds,
  /// rounded; fractions below 1 us emit as 1 so no hot path vanishes).
  [[nodiscard]] std::string to_collapsed() const;
};

/// Aggregates complete ('X') events into a Profile; counter events are
/// ignored.  `dropped` is carried into Profile::dropped_events.
[[nodiscard]] Profile build_profile(std::vector<TraceEvent> events,
                                    std::uint64_t dropped = 0);

/// Snapshot-and-aggregate convenience over a live tracer.
[[nodiscard]] Profile build_profile(const Tracer& tracer);

}  // namespace sc::obs
