/// \file trace.hpp
/// The tracing half of the telemetry subsystem: RAII spans recorded as
/// Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
///
/// A Tracer collects *complete* events ("ph":"X": name, category, start
/// timestamp, duration, thread id) plus *counter* events ("ph":"C", used
/// by the stream-health probes) into a BOUNDED ring buffer and serializes
/// them with write_chrome_trace().  Threads are mapped to small dense
/// tids in first-seen order, so a Perfetto timeline shows one track per
/// worker — the visual proof of the engine's fan-out.
///
/// Span is the only way user code should record durations: construct it
/// over a Tracer* (nullptr = fully disabled, the constructor is then two
/// pointer stores) and the destructor stamps the event.  Nesting falls
/// out of the trace format itself — Perfetto nests same-tid events by
/// time containment, so a Span inside a Span renders as a child slice.
/// The span-aggregation profiler (profiler.hpp) recovers the same
/// containment relation offline to build call-tree profiles.
///
/// Timestamps are steady_clock microseconds relative to the tracer's
/// construction: monotonic per thread by construction, which the CI trace
/// validator checks.
///
/// Memory model — safe for always-on tracing: events land in a
/// TraceBuffer, a fixed-capacity ring that OVERWRITES THE OLDEST event
/// once full and counts every overwrite in dropped_events().  A
/// long-lived server can therefore leave tracing enabled forever and
/// always hold the most recent window of activity, paying a constant
/// memory budget instead of the unbounded vector growth the first
/// telemetry cut had.  The drop counter is surfaced as the
/// `trace.dropped_events` counter in every metrics snapshot so a
/// truncated trace is never mistaken for a complete one.
///
/// Thread safety: record/counter may be called from any thread.  The
/// ring has no global lock — a writer claims a slot with one atomic
/// ticket increment and publishes it under that slot's one-word latch,
/// which is only ever contended when a wrapping writer lands on the slot
/// a concurrent snapshot is copying (spans are per-pass / per-node /
/// per-chunk scale, orders of magnitude off the per-bit hot path).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sc::obs {

/// One recorded trace event (complete span or counter sample).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';          ///< 'X' complete, 'C' counter
  double ts_us = 0.0;        ///< start, microseconds since tracer epoch
  double dur_us = 0.0;       ///< complete events only
  std::uint32_t tid = 0;
  /// Small argument map; values are emitted verbatim, so pass numbers as
  /// numbers ("13") and strings pre-quoted ("\"engine\"").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Default ring capacity: 64k events is minutes of per-chunk spans and a
/// few MB — small enough to keep resident, large enough that short runs
/// never drop.
inline constexpr std::size_t kDefaultTraceCapacity = 1u << 16;

/// Bounded multi-producer ring of TraceEvents.  push() never blocks on
/// other writers (one atomic ticket, one uncontended per-slot latch) and
/// never fails: once the ring is full the oldest event is overwritten and
/// dropped_events() is incremented.  snapshot() returns the surviving
/// events oldest-first.
class TraceBuffer {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so slot
  /// selection is a mask, not a divide.
  explicit TraceBuffer(std::size_t capacity = kDefaultTraceCapacity);

  void push(TraceEvent event);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Events currently held (min(pushed, capacity), racy under writers).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Copy of the surviving events in push order (oldest first).  Safe
  /// under concurrent writers; an event being overwritten mid-copy is
  /// attributed to whichever write holds the slot latch first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  struct Slot {
    /// One-word latch serializing the (rare) writer-vs-snapshot and
    /// wrap-collision cases; writers on distinct slots never interact.
    /// (C++20 default-initializes atomic_flag to clear.)
    mutable std::atomic_flag latch;
    /// 1 + ticket of the event held; 0 = empty.  Written under the latch.
    std::uint64_t ticket = 0;
    TraceEvent event;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultTraceCapacity)
      : epoch_(std::chrono::steady_clock::now()), buffer_(capacity) {}

  /// Microseconds since tracer construction.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Dense id of the calling thread (assigned in first-seen order).
  std::uint32_t tid();

  void record(TraceEvent event);

  /// Counter event: a named numeric series Perfetto plots over time.
  void counter(const std::string& name, double value);

  /// Events currently buffered (the ring may have dropped older ones).
  [[nodiscard]] std::size_t event_count() const;
  /// Events overwritten since construction — nonzero means the trace is a
  /// most-recent window, not a complete record.
  [[nodiscard]] std::uint64_t dropped_events() const;
  [[nodiscard]] std::size_t capacity() const { return buffer_.capacity(); }
  [[nodiscard]] std::vector<TraceEvent> events() const;  ///< snapshot copy

  /// Serializes everything recorded so far as a Chrome trace JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}), sorted by
  /// timestamp.  May be called repeatedly (e.g. flush after every run) —
  /// the file is rewritten whole each time.
  void write_chrome_trace(const std::string& path) const;
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  TraceBuffer buffer_;
  mutable std::mutex tid_mutex_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span: records one complete event over its lifetime.  A nullptr
/// tracer makes every operation a no-op, so call sites need no branches.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.ts_us = tracer_->now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument (shown in the Perfetto slice pane).  `value` is
  /// emitted verbatim — numbers unquoted, strings via arg_str.
  void arg(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr) event_.args.emplace_back(key, value);
  }
  void arg(const std::string& key, std::uint64_t value) {
    arg(key, std::to_string(value));
  }
  void arg(const std::string& key, double value);
  void arg_str(const std::string& key, const std::string& value) {
    arg(key, "\"" + value + "\"");
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    event_.dur_us = tracer_->now_us() - event_.ts_us;
    event_.tid = tracer_->tid();
    tracer_->record(std::move(event_));
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace sc::obs
