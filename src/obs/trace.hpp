/// \file trace.hpp
/// The tracing half of the telemetry subsystem: RAII spans recorded as
/// Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
///
/// A Tracer collects *complete* events ("ph":"X": name, category, start
/// timestamp, duration, thread id) plus *counter* events ("ph":"C", used
/// by the stream-health probes) into an in-memory buffer and serializes
/// them with write_chrome_trace().  Threads are mapped to small dense
/// tids in first-seen order, so a Perfetto timeline shows one track per
/// worker — the visual proof of the engine's fan-out.
///
/// Span is the only way user code should record durations: construct it
/// over a Tracer* (nullptr = fully disabled, the constructor is then two
/// pointer stores) and the destructor stamps the event.  Nesting falls
/// out of the trace format itself — Perfetto nests same-tid events by
/// time containment, so a Span inside a Span renders as a child slice.
///
/// Timestamps are steady_clock microseconds relative to the tracer's
/// construction: monotonic per thread by construction, which the CI trace
/// validator checks.
///
/// Thread safety: record/counter may be called from any thread (one
/// mutex-guarded vector push; spans are per-pass / per-node / per-chunk
/// scale, orders of magnitude off the per-bit hot path).

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sc::obs {

/// One recorded trace event (complete span or counter sample).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';          ///< 'X' complete, 'C' counter
  double ts_us = 0.0;        ///< start, microseconds since tracer epoch
  double dur_us = 0.0;       ///< complete events only
  std::uint32_t tid = 0;
  /// Small argument map; values are emitted verbatim, so pass numbers as
  /// numbers ("13") and strings pre-quoted ("\"engine\"").
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since tracer construction.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Dense id of the calling thread (assigned in first-seen order).
  std::uint32_t tid();

  void record(TraceEvent event);

  /// Counter event: a named numeric series Perfetto plots over time.
  void counter(const std::string& name, double value);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;  ///< snapshot copy

  /// Serializes everything recorded so far as a Chrome trace JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}), sorted by
  /// timestamp.  May be called repeatedly (e.g. flush after every run) —
  /// the file is rewritten whole each time.
  void write_chrome_trace(const std::string& path) const;
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span: records one complete event over its lifetime.  A nullptr
/// tracer makes every operation a no-op, so call sites need no branches.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.ts_us = tracer_->now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument (shown in the Perfetto slice pane).  `value` is
  /// emitted verbatim — numbers unquoted, strings via arg_str.
  void arg(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr) event_.args.emplace_back(key, value);
  }
  void arg(const std::string& key, std::uint64_t value) {
    arg(key, std::to_string(value));
  }
  void arg(const std::string& key, double value);
  void arg_str(const std::string& key, const std::string& value) {
    arg(key, "\"" + value + "\"");
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    event_.dur_us = tracer_->now_us() - event_.ts_us;
    event_.tid = tracer_->tid();
    tracer_->record(std::move(event_));
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace sc::obs
