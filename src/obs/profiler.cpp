#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace sc::obs {
namespace {

/// Mutable tree used during aggregation (ProfileNode's children vector
/// would invalidate pointers while the containment stack still holds
/// them, so build with stable map-based nodes and convert at the end).
struct BuildNode {
  std::uint64_t calls = 0;
  double inclusive_us = 0.0;
  double children_inclusive_us = 0.0;
  std::map<std::string, BuildNode> children;
};

struct StackEntry {
  double end_us;
  BuildNode* node;
};

ProfileNode finalize(const std::string& name, const BuildNode& b) {
  ProfileNode node;
  node.name = name;
  node.calls = b.calls;
  node.inclusive_us = b.inclusive_us;
  // Clock jitter can make children marginally exceed the parent; clamp so
  // a profile never reports negative self time.
  node.exclusive_us = std::max(0.0, b.inclusive_us - b.children_inclusive_us);
  node.children.reserve(b.children.size());
  for (const auto& [child_name, child] : b.children) {
    node.children.push_back(finalize(child_name, child));
  }
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& c) {
              return a.inclusive_us > c.inclusive_us;
            });
  return node;
}

/// Folds one thread's events (sorted by start time, longer-first on ties)
/// into a forest keyed by span name.
void fold_thread(const std::vector<const TraceEvent*>& events,
                 std::map<std::string, BuildNode>* roots) {
  std::vector<StackEntry> stack;
  for (const TraceEvent* e : events) {
    const double start = e->ts_us;
    const double end = e->ts_us + e->dur_us;
    // Unwind spans that finished before this one starts.  Ties (a span
    // ending exactly where the next starts) unwind too: back-to-back
    // siblings, not nesting.
    while (!stack.empty() && stack.back().end_us <= start) stack.pop_back();
    std::map<std::string, BuildNode>* scope =
        stack.empty() ? roots : &stack.back().node->children;
    BuildNode& node = (*scope)[e->name];
    node.calls += 1;
    node.inclusive_us += e->dur_us;
    if (!stack.empty()) stack.back().node->children_inclusive_us += e->dur_us;
    stack.push_back({end, &node});
  }
}

void merge_into(const ProfileNode& src, std::vector<ProfileNode>* dst) {
  for (ProfileNode& d : *dst) {
    if (d.name == src.name) {
      d.calls += src.calls;
      d.inclusive_us += src.inclusive_us;
      d.exclusive_us += src.exclusive_us;
      for (const ProfileNode& child : src.children) {
        merge_into(child, &d.children);
      }
      return;
    }
  }
  dst->push_back(src);
}

void sort_by_inclusive(std::vector<ProfileNode>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.inclusive_us > b.inclusive_us;
            });
  for (ProfileNode& n : *nodes) sort_by_inclusive(&n.children);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void node_json(const ProfileNode& node, std::ostringstream* out) {
  *out << "{\"name\": \"" << json_escape(node.name)
       << "\", \"calls\": " << node.calls
       << ", \"inclusive_us\": " << fmt(node.inclusive_us)
       << ", \"exclusive_us\": " << fmt(node.exclusive_us)
       << ", \"children\": [";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) *out << ", ";
    node_json(node.children[i], out);
  }
  *out << "]}";
}

/// Collapsed-stack frame names use ';' as the separator; a name carrying
/// one would split the frame, so it is replaced.
std::string frame_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == '\n') c = ':';
  }
  return out;
}

void collect_collapsed(const ProfileNode& node, const std::string& prefix,
                       std::ostringstream* out) {
  const std::string path =
      prefix.empty() ? frame_name(node.name) : prefix + ";" + frame_name(node.name);
  if (node.exclusive_us > 0.0) {
    // Round, but never round a hot path down to invisibility.
    const auto value = static_cast<std::uint64_t>(
        std::max(1.0, std::floor(node.exclusive_us + 0.5)));
    *out << path << " " << value << "\n";
  }
  for (const ProfileNode& child : node.children) {
    collect_collapsed(child, path, out);
  }
}

struct FlatRow {
  const ProfileNode* node;
  std::string path;
};

void flatten(const ProfileNode& node, const std::string& prefix,
             std::vector<FlatRow>* rows) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  rows->push_back({&node, path});
  for (const ProfileNode& child : node.children) flatten(child, path, rows);
}

double exclusive_sum(const ProfileNode& node) {
  double sum = node.exclusive_us;
  for (const ProfileNode& child : node.children) sum += exclusive_sum(child);
  return sum;
}

}  // namespace

double Profile::exclusive_sum_us() const {
  double sum = 0.0;
  for (const ProfileNode& root : roots) sum += exclusive_sum(root);
  return sum;
}

std::string Profile::to_table(std::size_t top_n) const {
  std::vector<FlatRow> rows;
  for (const ProfileNode& root : roots) flatten(root, "", &rows);
  std::sort(rows.begin(), rows.end(), [](const FlatRow& a, const FlatRow& b) {
    return a.node->exclusive_us > b.node->exclusive_us;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  std::ostringstream out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%-12s %10s %14s %14s  %s\n", "excl%",
                "calls", "excl us", "incl us", "span");
  out << buf;
  for (const FlatRow& row : rows) {
    const double pct =
        total_us > 0.0 ? 100.0 * row.node->exclusive_us / total_us : 0.0;
    std::snprintf(buf, sizeof(buf), "%-12.2f %10llu %14.1f %14.1f  %s\n", pct,
                  static_cast<unsigned long long>(row.node->calls),
                  row.node->exclusive_us, row.node->inclusive_us,
                  row.path.c_str());
    out << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total %.1f us over %zu spans (%llu dropped)\n", total_us,
                span_count, static_cast<unsigned long long>(dropped_events));
  out << buf;
  return out.str();
}

std::string Profile::to_json() const {
  std::ostringstream out;
  out << "{\"total_us\": " << fmt(total_us)
      << ", \"span_count\": " << span_count
      << ", \"dropped_events\": " << dropped_events << ", \"roots\": [";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i != 0) out << ", ";
    node_json(roots[i], &out);
  }
  out << "]}\n";
  return out.str();
}

std::string Profile::to_collapsed() const {
  std::ostringstream out;
  for (const ProfileNode& root : roots) collect_collapsed(root, "", &out);
  return out.str();
}

Profile build_profile(std::vector<TraceEvent> events, std::uint64_t dropped) {
  Profile profile;
  profile.dropped_events = dropped;

  // Group complete events by tid.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) {
    if (e.phase != 'X') continue;
    by_tid[e.tid].push_back(&e);
    ++profile.span_count;
  }

  for (auto& [tid, thread_events] : by_tid) {
    // Containment order: by start time; on equal starts the longer span is
    // the parent.  (The ring holds events in *end* order — spans are
    // recorded at destruction — so this sort is what recovers nesting.)
    std::sort(thread_events.begin(), thread_events.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                return a->dur_us > b->dur_us;
              });
    std::map<std::string, BuildNode> roots;
    fold_thread(thread_events, &roots);

    ThreadProfile thread;
    thread.tid = tid;
    for (const auto& [name, node] : roots) {
      thread.roots.push_back(finalize(name, node));
    }
    std::sort(thread.roots.begin(), thread.roots.end(),
              [](const ProfileNode& a, const ProfileNode& b) {
                return a.inclusive_us > b.inclusive_us;
              });
    for (const ProfileNode& root : thread.roots) {
      merge_into(root, &profile.roots);
    }
    profile.threads.push_back(std::move(thread));
  }

  sort_by_inclusive(&profile.roots);
  for (const ProfileNode& root : profile.roots) {
    profile.total_us += root.inclusive_us;
  }
  return profile;
}

Profile build_profile(const Tracer& tracer) {
  return build_profile(tracer.events(), tracer.dropped_events());
}

}  // namespace sc::obs
