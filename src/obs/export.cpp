#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/telemetry.hpp"

namespace sc::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus label values escape backslash, double quote, and newline.
std::string label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` (empty string for no labels), with an
/// optional extra label appended (used for histogram `le`).
std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += k + "=\"" + label_escape(v) + "\"";
    first = false;
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + label_escape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "sc_";
  out.reserve(name.size() + 3);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            const Labels& labels) {
  std::ostringstream out;
  const std::string block = label_block(labels);

  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << block << " " << value << "\n";
  }
  for (const auto& [name, vm] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << block << " " << fmt_double(vm.first) << "\n";
    out << "# TYPE " << pname << "_max gauge\n";
    out << pname << "_max" << block << " " << fmt_double(vm.second) << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k < hist.buckets.size(); ++k) {
      if (hist.buckets[k] == 0) continue;  // keep expositions compact
      cumulative += hist.buckets[k];
      // Bucket k holds [2^(k-1), 2^k): its inclusive upper bound is
      // 2^k - 1 (bucket 0 holds exactly {0}).
      const double le = k == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(k)) - 1.0;
      out << pname << "_bucket" << label_block(labels, "le", fmt_double(le))
          << " " << cumulative << "\n";
    }
    out << pname << "_bucket" << label_block(labels, "le", "+Inf") << " "
        << hist.count << "\n";
    out << pname << "_sum" << block << " " << hist.sum << "\n";
    out << pname << "_count" << block << " " << hist.count << "\n";
  }
  return out.str();
}

void write_prometheus(const MetricsSnapshot& snapshot, const std::string& path,
                      const Labels& labels) {
  std::ofstream out(path, std::ios::trunc);
  out << prometheus_text(snapshot, labels);
}

std::string jsonl_records(const MetricsSnapshot& snapshot, const Labels& labels,
                          std::uint64_t ts_ms) {
  std::ostringstream out;
  const std::string label_suffix =
      ", \"labels\": " + labels_json(labels) + "}\n";
  const std::string stamp = "{\"ts_ms\": " + std::to_string(ts_ms) + ", ";

  for (const auto& [name, value] : snapshot.counters) {
    out << stamp << "\"name\": \"" << json_escape(name)
        << "\", \"kind\": \"counter\", \"value\": " << value << label_suffix;
  }
  for (const auto& [name, vm] : snapshot.gauges) {
    out << stamp << "\"name\": \"" << json_escape(name)
        << "\", \"kind\": \"gauge\", \"value\": " << fmt_double(vm.first)
        << ", \"max\": " << fmt_double(vm.second) << label_suffix;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    out << stamp << "\"name\": \"" << json_escape(name)
        << "\", \"kind\": \"histogram\", \"count\": " << hist.count
        << ", \"sum\": " << hist.sum
        << ", \"mean\": " << fmt_double(hist.mean())
        << ", \"p50\": " << fmt_double(hist.quantile(0.5))
        << ", \"p99\": " << fmt_double(hist.quantile(0.99)) << label_suffix;
  }
  return out.str();
}

// -------------------------------------------------------------- JsonlSink

JsonlSink::JsonlSink(std::string path, Labels labels)
    : path_(std::move(path)), labels_(std::move(labels)) {}

bool JsonlSink::append(const MetricsSnapshot& snapshot) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  const std::string records = jsonl_records(snapshot, labels_, ts_ms);

  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(path_, std::ios::app);
  if (!out) return false;
  out << records;
  std::uint64_t lines = 0;
  for (const char c : records) lines += c == '\n' ? 1 : 0;
  lines_ += lines;
  return true;
}

std::uint64_t JsonlSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

// ------------------------------------------------------- PeriodicExporter

PeriodicExporter::PeriodicExporter(Telemetry& telemetry, ExportConfig config)
    : telemetry_(telemetry),
      config_(std::move(config)),
      jsonl_(config_.jsonl_path, config_.labels) {
  thread_ = std::thread([this] { run(); });
}

PeriodicExporter::~PeriodicExporter() { stop(); }

void PeriodicExporter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, config_.interval, [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    export_once();
    lock.lock();
  }
}

void PeriodicExporter::export_once() {
  const MetricsSnapshot snapshot = telemetry_.snapshot();
  if (!config_.prometheus_path.empty()) {
    write_prometheus(snapshot, config_.prometheus_path, config_.labels);
  }
  if (!config_.jsonl_path.empty()) {
    jsonl_.append(snapshot);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void PeriodicExporter::flush_now() { export_once(); }

void PeriodicExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    export_once();  // final flush: the last window is never lost
  }
}

}  // namespace sc::obs
