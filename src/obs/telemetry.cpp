#include "obs/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/export.hpp"
#include "obs/profiler.hpp"

namespace sc::obs {

Telemetry::Telemetry(TelemetryConfig config) : config_(std::move(config)) {
  // A profile target implies tracing: the profiler aggregates spans.
  if (config_.tracing || !config_.profile_path.empty()) {
    tracer_ = std::make_unique<Tracer>(config_.trace_capacity);
  }
}

void Telemetry::add_probe(ProbeSpec spec) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_specs_.push_back(std::move(spec));
}

std::vector<ProbeSpec> Telemetry::probe_specs() const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  return probe_specs_;
}

void Telemetry::add_probe_report(ProbeReport report) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_reports_.push_back(std::move(report));
}

std::vector<ProbeReport> Telemetry::probe_reports() const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  return probe_reports_;
}

void Telemetry::flush() {
  if (!config_.trace_path.empty() && tracer_ != nullptr) {
    tracer_->write_chrome_trace(config_.trace_path);
  }
  if (!config_.profile_path.empty() && tracer_ != nullptr) {
    const Profile profile = build_profile(*tracer_);
    if (config_.profile_path == "-") {
      std::fputs(profile.to_table().c_str(), stderr);
    } else {
      std::ofstream out(config_.profile_path, std::ios::trunc);
      out << profile.to_collapsed();
    }
  }
  if (!config_.metrics_path.empty()) {
    const MetricsSnapshot snap = snapshot();
    if (config_.metrics_path == "-") {
      std::fputs(snap.to_table().c_str(), stderr);
    } else {
      std::ofstream out(config_.metrics_path, std::ios::trunc);
      out << snap.to_json();
    }
  }
  if (!config_.prometheus_path.empty()) {
    std::ofstream out(config_.prometheus_path, std::ios::trunc);
    out << prometheus_text(snapshot());
  }
}

Telemetry* Telemetry::from_env() {
  // Constructed exactly once; the function-local static keeps the "both
  // env vars unset -> nullptr, no allocation, ever" contract and makes
  // concurrent first calls safe.
  static Telemetry* instance = []() -> Telemetry* {
    const char* trace = std::getenv("SC_TRACE");
    const char* metrics = std::getenv("SC_METRICS");
    const char* profile = std::getenv("SC_PROFILE");
    const char* prometheus = std::getenv("SC_PROM");
    if (trace == nullptr && metrics == nullptr && profile == nullptr &&
        prometheus == nullptr) {
      return nullptr;
    }
    TelemetryConfig config;
    config.tracing = trace != nullptr || profile != nullptr;
    if (trace != nullptr) config.trace_path = trace;
    if (metrics != nullptr) config.metrics_path = metrics;
    if (profile != nullptr) config.profile_path = profile;
    if (prometheus != nullptr) config.prometheus_path = prometheus;
    if (const char* capacity = std::getenv("SC_TRACE_CAPACITY")) {
      const long parsed = std::strtol(capacity, nullptr, 10);
      if (parsed > 0) config.trace_capacity = static_cast<std::size_t>(parsed);
    }
    // Leaked deliberately: instrumented code may run inside static
    // destructors of user code; the atexit flush below writes the files.
    auto* telemetry = new Telemetry(std::move(config));
    std::atexit([] { from_env()->flush(); });
    return telemetry;
  }();
  return instance;
}

}  // namespace sc::obs
