/// \file probe.hpp
/// Stream-health probes: windowed taps on named program edges.
///
/// fault::sweep (PR 5) showed that resilience analysis hinges on internal
/// stream state — SCC drift between an engineered pair, FSM recovery
/// depth — but could only recover it by rerunning whole streams offline.
/// A probe makes the same signals observable *during* execution: it taps
/// one or two named edges, accumulates exact 2x2 overlap counts per
/// fixed-size window, and reports per-window value estimates and pairwise
/// SCC (computed with the library's own scc(OverlapCounts), including its
/// zero-variance contract).  On the chunked engine backend the tap runs
/// as the stream advances, so a live run exposes e.g. a synchronizer's
/// +1 pair decaying under injected faults window by window — the
/// fault::sweep recovery-depth story, live instead of post-hoc.
///
/// Probes are observers: they read finished (post-fault) chunks and never
/// touch execution state, so telemetry neutrality holds by construction
/// (enforced by obs_test / golden_test).  Taps are driven by the
/// backends from whichever thread advanced the edge's chunk; ProbeSet
/// serializes internally.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/correlation.hpp"

namespace sc::obs {

class Telemetry;
class Tracer;

/// A requested tap.  `edge_y` empty = single-edge probe (value estimate
/// only); otherwise the pair probe also reports windowed SCC.  Edges are
/// program value names; a spec naming values absent from the executed
/// program is skipped (same contract as fault plans — the wire does not
/// exist, so there is nothing to observe).
struct ProbeSpec {
  std::string edge_x;
  std::string edge_y;                ///< optional second edge (SCC pair)
  std::size_t window_bits = 1024;    ///< clamped to >= 64
};

/// One completed window of one probe.
struct ProbeWindow {
  std::size_t begin = 0;  ///< absolute bit offset of the window start
  std::size_t bits = 0;   ///< window size (last window may be short)
  double value_x = 0.0;   ///< windowed value estimate of edge_x
  double value_y = 0.0;   ///< edge_y (pair probes only)
  double scc = 0.0;       ///< windowed SCC (pair probes only)
  bool scc_defined = false;
};

/// Everything one probe saw over one run.
struct ProbeReport {
  std::string edge_x;
  std::string edge_y;
  std::size_t window_bits = 0;
  std::vector<ProbeWindow> windows;
  /// Running whole-stream estimate (all bits seen, not just full windows).
  double running_value_x = 0.0;
  double running_value_y = 0.0;
  double running_scc = 0.0;
  bool running_scc_defined = false;
};

/// One live probe accumulating windows.  feed() takes equal-length chunk
/// spans of both edges at the same absolute offset; the backends
/// guarantee offsets arrive in order (the chunk loop / whole-stream walk
/// is sequential per run).
class StreamProbe {
 public:
  /// `tracer` (nullable) receives live per-window counter events
  /// ("probe.<name>.scc" / ".value"), timestamped when the window closes
  /// — i.e. while the run is still executing.
  StreamProbe(const ProbeSpec& spec, bool pair, Tracer* tracer);

  /// Consumes [offset, offset + bits) of edge_x (and edge_y when the
  /// probe is a pair probe; `y` is ignored otherwise, may be nullptr).
  /// `x`/`y` hold the chunk's bits at local positions [0, bits).
  void feed(const Bitstream& x, const Bitstream* y, std::size_t offset,
            std::size_t bits);

  /// Flushes the final partial window and returns the report.
  ProbeReport finish();

 private:
  /// Joint occupancy accumulator; the full 2x2 OverlapCounts is derived
  /// as {a, ones_x - a, ones_y - a, bits - ones_x - ones_y + a}.
  struct Acc {
    std::uint64_t a = 0;       ///< X=1 and Y=1
    std::uint64_t ones_x = 0;
    std::uint64_t ones_y = 0;
    std::uint64_t bits = 0;
    [[nodiscard]] OverlapCounts counts() const;
    void reset() { *this = Acc{}; }
  };

  void close_window();
  void accumulate(const Bitstream& x, const Bitstream* y,
                  std::size_t local_begin, std::size_t count);

  ProbeSpec spec_;
  bool pair_ = false;
  Tracer* tracer_ = nullptr;
  std::string label_;
  std::mutex mutex_;
  ProbeReport report_;
  Acc window_;
  Acc total_;
  std::size_t window_begin_ = 0;
  std::size_t consumed_ = 0;
};

/// The per-run probe set a backend drives: specs resolved against one
/// program's value names.  Constructed by the backends when the run's
/// telemetry has probe specs; results land back in the Telemetry as
/// ProbeReports plus "probe.<x>[|<y>]..." gauges and trace counter
/// series (so Perfetto plots SCC drift on the same timeline as the
/// execution spans).
class ProbeSet {
 public:
  struct Bound {
    StreamProbe probe;
    std::uint32_t node_x = 0;
    std::uint32_t node_y = 0;
    bool pair = false;
    Bound(const ProbeSpec& spec, bool is_pair, std::uint32_t nx,
          std::uint32_t ny, Tracer* tracer)
        : probe(spec, is_pair, tracer), node_x(nx), node_y(ny),
          pair(is_pair) {}
  };

  void add(const ProbeSpec& spec, bool pair, std::uint32_t node_x,
           std::uint32_t node_y, Tracer* tracer) {
    bound_.push_back(
        std::make_unique<Bound>(spec, pair, node_x, node_y, tracer));
  }

  [[nodiscard]] bool empty() const { return bound_.empty(); }
  std::vector<std::unique_ptr<Bound>>& bound() { return bound_; }

  /// Publishes every probe's report into `telemetry` (appends to
  /// probe_reports, sets gauges, emits trace counters).
  void publish(Telemetry& telemetry);

 private:
  std::vector<std::unique_ptr<Bound>> bound_;  ///< probes own a mutex
};

}  // namespace sc::obs
