/// \file metrics.hpp
/// The metrics half of the telemetry subsystem (src/obs/): a registry of
/// named counters, gauges, and log2-bucket histograms with lock-free
/// hot-path updates and a consistent snapshot/export API.
///
/// Design rules:
///
///  * Instruments are created (or found) by name in the registry under a
///    mutex, ONCE per instrumentation site; the returned pointer is stable
///    for the registry's lifetime, so hot paths hold a Counter*/Gauge*/
///    Histogram* and update it with a single relaxed atomic op — no map
///    lookup, no lock, no allocation per event.
///  * Zero cost when disabled: instruments only exist inside an
///    obs::Telemetry context (telemetry.hpp).  Code paths without one
///    never touch this header's types at runtime — the disabled state is
///    the absence of the object, not a flag it checks.
///  * Snapshots are value copies: export (JSON, human table) runs on the
///    copy, never blocking writers.
///
/// Naming convention: dotted lowercase paths, subsystem first —
/// "engine.pool.queue_depth", "backend.bits_processed",
/// "fault.edge.x.corrupted_bits".  Exporters sort by name, so related
/// instruments group in every view.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitops.hpp"

namespace sc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double value plus the running maximum (high-water mark).
/// set() is wait-free; the max is maintained with a CAS loop that only
/// spins while the value is actually climbing.
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    double seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Histogram over fixed log2 buckets: bucket k holds observations v with
/// bit_width(v) == k, i.e. bucket 0 is {0} and bucket k >= 1 is
/// [2^(k-1), 2^k).  64-bit values need at most 65 buckets, so the layout
/// is a flat atomic array — no per-observation allocation, and merging or
/// snapshotting is a loop of relaxed loads.  Quantiles are resolved to the
/// midpoint of the covering bucket: exact enough to tell a 10 us wait from
/// a 10 ms stall, which is what latency histograms are for.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    buckets_[bit_width64(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(unsigned k) const noexcept {
    return buckets_[k].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ------------------------------------------------------------- snapshot

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;  ///< kBuckets entries

  [[nodiscard]] double mean() const;
  /// Value at quantile q in [0, 1]: midpoint of the covering log2 bucket
  /// (0 for an empty histogram).
  [[nodiscard]] double quantile(double q) const;
};

/// Consistent-enough point-in-time copy of a registry (each instrument is
/// read atomically; the set is read under the registry lock).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  /// name -> {value, max}
  std::map<std::string, std::pair<double, double>> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Machine-readable export: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p99}}}.
  [[nodiscard]] std::string to_json() const;
  /// Fixed-width human table, one instrument per row.
  [[nodiscard]] std::string to_table() const;
};

// ------------------------------------------------------------- registry

/// Owner of every instrument.  Lookup-or-create is mutex-guarded (cold:
/// once per instrumentation site); returned references are stable until
/// the registry dies.  A name identifies exactly one instrument kind —
/// re-requesting it as a different kind throws std::logic_error.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

}  // namespace sc::obs
