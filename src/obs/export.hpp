/// \file export.hpp
/// Metric export sinks: the scrape/aggregation surface of the telemetry
/// subsystem.
///
/// Two wire formats over the same MetricsSnapshot:
///
///  * Prometheus text exposition (prometheus_text / write_prometheus) —
///    the de-facto scrape format.  Instrument names are sanitized to the
///    Prometheus grammar ("engine.pool.queue_depth" ->
///    "sc_engine_pool_queue_depth"), counters export as counters, gauges
///    as a value gauge plus a "_max" high-water gauge, and the log2
///    histograms as native Prometheus histograms with exact inclusive
///    bucket bounds (bucket k holds values in [2^(k-1), 2^k), so its
///    upper bound is le="2^k - 1") plus _sum/_count.
///
///  * Append-only JSONL time series (JsonlSink / jsonl_records) — one
///    self-describing line per instrument per flush, wall-clock stamped:
///      {"ts_ms":...,"name":"backend.runs","kind":"counter","value":7,
///       "labels":{"tenant":"acme"}}
///    Lines only ever append, so the file is a durable time series any
///    `jq`/pandas one-liner can aggregate — the poor-man's TSDB the
///    multi-tenant server can ship per tenant before a real one exists.
///
/// Labels: every sink takes an ordered (key, value) label set stamped on
/// each sample — `tenant`, `session`, and `backend` are the conventional
/// keys the ROADMAP server will populate; nothing restricts the set.
///
/// PeriodicExporter is the always-on glue: a background thread that
/// snapshots a Telemetry every `interval` and rewrites the Prometheus
/// file / appends to the JSONL file, so an external scraper (or tail -f)
/// sees fresh numbers without the workload ever calling flush().  The
/// thread holds no locks while exporting (snapshots are value copies) and
/// shuts down promptly on stop()/destruction, flushing once more so the
/// last window is never lost.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace sc::obs {

class Telemetry;

/// Ordered label set stamped on every exported sample.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes an instrument name to the Prometheus metric-name grammar
/// ([a-zA-Z_:][a-zA-Z0-9_:]*) with the library's "sc_" prefix.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Full text exposition of a snapshot (# TYPE comments + samples).
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot,
                                          const Labels& labels = {});

/// Whole-file rewrite of the exposition (atomic enough for scrapers that
/// re-read per scrape).
void write_prometheus(const MetricsSnapshot& snapshot, const std::string& path,
                      const Labels& labels = {});

/// One JSONL line per instrument, newline-terminated, stamped `ts_ms`
/// (milliseconds since the Unix epoch; pass your own for testability).
[[nodiscard]] std::string jsonl_records(const MetricsSnapshot& snapshot,
                                        const Labels& labels,
                                        std::uint64_t ts_ms);

/// Append-only JSONL time-series sink.  Each append() stamps the current
/// wall clock and appends one line per instrument; the file is opened in
/// append mode per call so concurrent sinks interleave whole lines.
class JsonlSink {
 public:
  explicit JsonlSink(std::string path, Labels labels = {});

  /// Appends the snapshot; returns false if the file could not be opened.
  bool append(const MetricsSnapshot& snapshot);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t lines_written() const;

 private:
  std::string path_;
  Labels labels_;
  mutable std::mutex mutex_;
  std::uint64_t lines_ = 0;
};

struct ExportConfig {
  std::string prometheus_path;  ///< empty = no Prometheus file
  std::string jsonl_path;       ///< empty = no JSONL series
  Labels labels;
  std::chrono::milliseconds interval{1000};
};

/// Background flusher: exports a Telemetry's snapshot on a fixed cadence
/// until stop() (or destruction).  One exporter per (telemetry, config);
/// multiple exporters over one telemetry are fine — snapshots are value
/// copies and the sinks never share file handles.
class PeriodicExporter {
 public:
  PeriodicExporter(Telemetry& telemetry, ExportConfig config);
  ~PeriodicExporter();

  PeriodicExporter(const PeriodicExporter&) = delete;
  PeriodicExporter& operator=(const PeriodicExporter&) = delete;

  /// Synchronous export of the current snapshot (also counted).
  void flush_now();

  /// Stops the background thread after one final flush.  Idempotent.
  void stop();

  /// Completed exports (periodic + flush_now + the stop flush).
  [[nodiscard]] std::uint64_t flush_count() const {
    return flushes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ExportConfig& config() const { return config_; }

 private:
  void run();
  void export_once();

  Telemetry& telemetry_;
  ExportConfig config_;
  JsonlSink jsonl_;
  std::atomic<std::uint64_t> flushes_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace sc::obs
