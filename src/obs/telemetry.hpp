/// \file telemetry.hpp
/// The execution telemetry context: one object bundling the metrics
/// registry (metrics.hpp), the Chrome-trace tracer (trace.hpp), and the
/// stream-health probe configuration (probe.hpp).
///
/// Threading model — zero cost when disabled:
///
///  * Telemetry is OPT-IN and carried by pointer: ExecConfig::telemetry,
///    SessionConfig::telemetry, PlannerConfig::telemetry, and
///    OptConfig::telemetry all default to nullptr.  A null pointer is the
///    disabled state; instrumented code guards each site with one pointer
///    test and otherwise touches nothing — no globals mutate, no atomics
///    bump, no clock reads happen (verified by obs_test's neutrality
///    suite and the bench_obs_overhead gate).
///  * One Telemetry may be shared by any number of concurrent runs,
///    sessions, and pools: every instrument update is atomic, every
///    buffer mutex-guarded.
///
/// Env hook — observability without code changes: env_telemetry() builds
/// a process-lifetime Telemetry from the environment on first call and
/// the backends/sessions fall back to it when their config pointer is
/// null.  `SC_TRACE=<path>` enables tracing and writes the Chrome trace
/// there; `SC_METRICS=<path>` writes the metrics snapshot JSON (use "-"
/// to print the human table to stderr instead); `SC_PROFILE=<path>`
/// enables tracing and writes the collapsed-stack call-tree profile
/// (profiler.hpp; "-" = hot table to stderr); `SC_PROM=<path>` writes the
/// Prometheus text exposition of the metrics snapshot (export.hpp);
/// `SC_TRACE_CAPACITY=<n>`
/// sizes the trace ring.  All files are (re)written by every flush() and
/// once more at process exit, so `SC_TRACE=trace.json
/// ./examples/quickstart` then opening trace.json in Perfetto is the
/// whole quickstart, and `SC_PROFILE=prof.collapsed` then
/// `flamegraph.pl prof.collapsed` is the whole profiling story.  With
/// none of the variables set, env_telemetry() returns nullptr forever and
/// never allocates — the disabled path stays state-free.
///
/// Instrument families by prefix: backend.* / session.* (execution),
/// plan.* (planner), opt.* (optimizer passes), fault.* (injection), and
/// analysis.* — the static analyzer (analysis/analyzer.hpp) records an
/// "analysis.analyze" span plus analysis.runs / analysis.pairs_checked /
/// analysis.diagnostics (and errors / warnings / seed_collisions /
/// redundant_fixes) counters, so a traced run shows how much wall time
/// the ExecConfig::analyze gate spends before execution starts.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"

namespace sc::obs {

struct TelemetryConfig {
  /// Record spans/counters into a Tracer (metrics are always on — the
  /// registry is only touched by instrumented sites anyway).
  bool tracing = true;
  /// Trace ring capacity in events (trace.hpp): once full the oldest
  /// events are overwritten and counted as trace.dropped_events, so
  /// always-on tracing holds a constant memory budget.
  std::size_t trace_capacity = kDefaultTraceCapacity;
  /// flush() targets; empty = in-memory only (export via snapshot() /
  /// tracer()->chrome_trace_json()).  metrics_path "-" = human table to
  /// stderr.
  std::string trace_path;
  std::string metrics_path;
  /// Collapsed-stack call-tree profile (profiler.hpp), flamegraph-ready;
  /// "-" = the top-N hot table to stderr instead.
  std::string profile_path;
  /// Prometheus text exposition of the metrics snapshot (export.hpp).
  std::string prometheus_path;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  MetricsRegistry& metrics() { return metrics_; }
  /// nullptr when tracing is disabled — Span/counter sites pass it
  /// straight through.
  Tracer* tracer() { return tracer_.get(); }

  /// Registry snapshot plus the tracer's ring health: when tracing is on,
  /// the `trace.dropped_events` counter reports how many events the
  /// bounded ring overwrote (0 = the trace is complete).
  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot snap = metrics_.snapshot();
    if (tracer_ != nullptr) {
      snap.counters["trace.dropped_events"] = tracer_->dropped_events();
    }
    return snap;
  }

  // ---------------------------------------------------------- probes
  void add_probe(ProbeSpec spec);
  [[nodiscard]] std::vector<ProbeSpec> probe_specs() const;
  void add_probe_report(ProbeReport report);
  /// Reports of every probed run so far, in completion order.
  [[nodiscard]] std::vector<ProbeReport> probe_reports() const;

  /// Writes the configured trace/metrics files (whole-file rewrite, so
  /// it is safe to call after every run).  No-op for empty paths.
  void flush();

  const TelemetryConfig& config() const { return config_; }

  /// Process-wide context from SC_TRACE / SC_METRICS (see file comment);
  /// nullptr when neither is set.  First call wins; the instance lives
  /// until process exit and flushes in an atexit handler.
  static Telemetry* from_env();

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;
  mutable std::mutex probe_mutex_;
  std::vector<ProbeSpec> probe_specs_;
  std::vector<ProbeReport> probe_reports_;
};

/// Shorthand the instrumentation sites use: the run's own telemetry when
/// set, else the env-configured process context, else nullptr.
inline Telemetry* fallback(Telemetry* telemetry) {
  return telemetry != nullptr ? telemetry : Telemetry::from_env();
}

/// Tracer of a nullable telemetry (nullptr-safe).
inline Tracer* tracer_of(Telemetry* telemetry) {
  return telemetry == nullptr ? nullptr : telemetry->tracer();
}

}  // namespace sc::obs
