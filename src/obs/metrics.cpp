#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sc::obs {
namespace {

/// Minimal JSON string escaping (instrument names are library-chosen, but
/// probe edges carry user value names).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    cumulative += buckets[k];
    if (static_cast<double>(cumulative) >= target && buckets[k] != 0) {
      if (k == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(k) - 1);
      return lo * 1.5;  // midpoint of [2^(k-1), 2^k)
    }
  }
  return 0.0;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, vm] : gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"value\": " << format_double(vm.first)
        << ", \"max\": " << format_double(vm.second) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"mean\": " << format_double(h.mean())
        << ", \"p50\": " << format_double(h.quantile(0.5))
        << ", \"p99\": " << format_double(h.quantile(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsSnapshot::to_table() const {
  std::ostringstream out;
  char buf[256];
  if (!counters.empty()) {
    out << "counters\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << buf;
    }
  }
  if (!gauges.empty()) {
    out << "gauges" << std::string(41, ' ') << "value            max\n";
    for (const auto& [name, vm] : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12.4g %14.4g\n", name.c_str(),
                    vm.first, vm.second);
      out << buf;
    }
  }
  if (!histograms.empty()) {
    out << "histograms" << std::string(30, ' ')
        << "count         mean          p50          p99\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(buf, sizeof(buf), "  %-36s %9llu %12.4g %12.4g %12.4g\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.mean(), h.quantile(0.5), h.quantile(0.99));
      out << buf;
    }
  }
  return out.str();
}

MetricsRegistry::Slot& MetricsRegistry::slot(const std::string& name,
                                             Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot s;
    s.kind = kind;
    switch (kind) {
      case Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = slots_.emplace(name, std::move(s)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs: metric '" + name +
                           "' requested as two different kinds");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *slot(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *slot(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *slot(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, s] : slots_) {
    switch (s.kind) {
      case Kind::kCounter:
        snap.counters.emplace(name, s.counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace(name,
                            std::make_pair(s.gauge->value(), s.gauge->max()));
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.count = s.histogram->count();
        h.sum = s.histogram->sum();
        h.buckets.resize(Histogram::kBuckets);
        for (unsigned k = 0; k < Histogram::kBuckets; ++k) {
          h.buckets[k] = s.histogram->bucket(k);
        }
        snap.histograms.emplace(name, std::move(h));
        break;
      }
    }
  }
  return snap;
}

}  // namespace sc::obs
