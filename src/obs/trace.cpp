#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sc::obs {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void Span::arg(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  arg(key, std::string(buf));
}

std::uint32_t Tracer::tid() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tids_.find(self);
  if (it != tids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(self, id);
  return id;
}

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::counter(const std::string& name, double value) {
  TraceEvent event;
  event.name = name;
  event.category = "counter";
  event.phase = 'C';
  event.ts_us = now_us();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event.args.emplace_back("value", buf);
  event.tid = tid();
  record(std::move(event));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    out << "  {\"name\": \"" << escape(e.name) << "\", \"cat\": \""
        << escape(e.category) << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": "
        << us(e.ts_us);
    if (e.phase == 'X') out << ", \"dur\": " << us(e.dur_us);
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t k = 0; k < e.args.size(); ++k) {
        out << (k == 0 ? "" : ", ") << "\"" << escape(e.args[k].first)
            << "\": " << e.args[k].second;
      }
      out << "}";
    }
    out << "}" << (i + 1 < sorted.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return out.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << chrome_trace_json();
}

}  // namespace sc::obs
