#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sc::obs {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

/// Minimal scoped spinlock over the slot latch.  Contention is limited to
/// a snapshot copying the exact slot a wrapping writer claims, so the
/// spin is bounded by one event copy.
class SlotLock {
 public:
  explicit SlotLock(std::atomic_flag& latch) : latch_(latch) {
    while (latch_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SlotLock() { latch_.clear(std::memory_order_release); }
  SlotLock(const SlotLock&) = delete;
  SlotLock& operator=(const SlotLock&) = delete;

 private:
  std::atomic_flag& latch_;
};

}  // namespace

// ------------------------------------------------------------ TraceBuffer

TraceBuffer::TraceBuffer(std::size_t capacity) {
  const std::size_t n = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  mask_ = n - 1;
}

void TraceBuffer::push(TraceEvent event) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[static_cast<std::size_t>(ticket) & mask_];
  SlotLock lock(slot.latch);
  // A writer delayed a full lap behind a faster one must not clobber the
  // newer event it finds in its slot; its own (older) event is the drop.
  if (slot.ticket <= ticket) {
    slot.ticket = ticket + 1;
    slot.event = std::move(event);
  }
}

std::size_t TraceBuffer::size() const {
  const std::uint64_t pushed = head_.load(std::memory_order_relaxed);
  return pushed < slots_.size() ? static_cast<std::size_t>(pushed)
                                : slots_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t pushed = head_.load(std::memory_order_relaxed);
  return pushed > slots_.size() ? pushed - slots_.size() : 0;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<std::pair<std::uint64_t, TraceEvent>> held;
  held.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SlotLock lock(slot->latch);
    if (slot->ticket != 0) held.emplace_back(slot->ticket, slot->event);
  }
  std::sort(held.begin(), held.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceEvent> out;
  out.reserve(held.size());
  for (auto& [ticket, event] : held) out.push_back(std::move(event));
  return out;
}

// ----------------------------------------------------------------- Tracer

void Span::arg(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  arg(key, std::string(buf));
}

std::uint32_t Tracer::tid() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(tid_mutex_);
  const auto it = tids_.find(self);
  if (it != tids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(self, id);
  return id;
}

void Tracer::record(TraceEvent event) { buffer_.push(std::move(event)); }

void Tracer::counter(const std::string& name, double value) {
  TraceEvent event;
  event.name = name;
  event.category = "counter";
  event.phase = 'C';
  event.ts_us = now_us();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event.args.emplace_back("value", buf);
  event.tid = tid();
  record(std::move(event));
}

std::size_t Tracer::event_count() const { return buffer_.size(); }

std::uint64_t Tracer::dropped_events() const { return buffer_.dropped(); }

std::vector<TraceEvent> Tracer::events() const { return buffer_.snapshot(); }

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    out << "  {\"name\": \"" << escape(e.name) << "\", \"cat\": \""
        << escape(e.category) << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": "
        << us(e.ts_us);
    if (e.phase == 'X') out << ", \"dur\": " << us(e.dur_us);
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t k = 0; k < e.args.size(); ++k) {
        out << (k == 0 ? "" : ", ") << "\"" << escape(e.args[k].first)
            << "\": " << e.args[k].second;
      }
      out << "}";
    }
    out << "}" << (i + 1 < sorted.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return out.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << chrome_trace_json();
}

}  // namespace sc::obs
