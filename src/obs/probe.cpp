#include "obs/probe.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"
#include "obs/telemetry.hpp"

namespace sc::obs {

OverlapCounts StreamProbe::Acc::counts() const {
  OverlapCounts c;
  c.a = a;
  c.b = ones_x - a;
  c.c = ones_y - a;
  c.d = bits - ones_x - ones_y + a;
  return c;
}

StreamProbe::StreamProbe(const ProbeSpec& spec, bool pair, Tracer* tracer)
    : spec_(spec), pair_(pair), tracer_(tracer) {
  spec_.window_bits = std::max<std::size_t>(64, spec_.window_bits);
  label_ = spec_.edge_x;
  if (pair_) label_ += "|" + spec_.edge_y;
  report_.edge_x = spec_.edge_x;
  report_.edge_y = pair_ ? spec_.edge_y : std::string();
  report_.window_bits = spec_.window_bits;
}

void StreamProbe::accumulate(const Bitstream& x, const Bitstream* y,
                             std::size_t local_begin, std::size_t count) {
  const Bitstream::Word* wx = x.words().data();
  const Bitstream::Word* wy =
      (pair_ && y != nullptr) ? y->words().data() : nullptr;
  const std::size_t end = local_begin + count;
  for (std::size_t i = local_begin; i < end;) {
    const std::size_t word = i / Bitstream::kWordBits;
    const std::size_t shift = i % Bitstream::kWordBits;
    const std::size_t take = std::min(Bitstream::kWordBits - shift, end - i);
    const Bitstream::Word mask =
        take == Bitstream::kWordBits
            ? ~Bitstream::Word{0}
            : (((Bitstream::Word{1} << take) - 1) << shift);
    const Bitstream::Word vx = wx[word] & mask;
    const auto ox = static_cast<std::uint64_t>(popcount64(vx));
    window_.ones_x += ox;
    total_.ones_x += ox;
    if (wy != nullptr) {
      const Bitstream::Word vy = wy[word] & mask;
      const auto oy = static_cast<std::uint64_t>(popcount64(vy));
      const auto both = static_cast<std::uint64_t>(popcount64(vx & vy));
      window_.ones_y += oy;
      total_.ones_y += oy;
      window_.a += both;
      total_.a += both;
    }
    i += take;
  }
  window_.bits += count;
  total_.bits += count;
}

void StreamProbe::close_window() {
  ProbeWindow w;
  w.begin = window_begin_;
  w.bits = window_.bits;
  const OverlapCounts counts = window_.counts();
  w.value_x = window_.bits == 0
                  ? 0.0
                  : static_cast<double>(window_.ones_x) /
                        static_cast<double>(window_.bits);
  if (pair_) {
    w.value_y = window_.bits == 0
                    ? 0.0
                    : static_cast<double>(window_.ones_y) /
                          static_cast<double>(window_.bits);
    w.scc = scc(counts);
    w.scc_defined = scc_defined(counts);
  }
  report_.windows.push_back(w);
  if (tracer_ != nullptr) {
    tracer_->counter("probe." + label_ + ".value", w.value_x);
    if (pair_) tracer_->counter("probe." + label_ + ".scc", w.scc);
  }
  window_begin_ += window_.bits;
  window_.reset();
}

void StreamProbe::feed(const Bitstream& x, const Bitstream* y,
                       std::size_t offset, std::size_t bits) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The backends drive probes in stream order; a gap or replay would make
  // window offsets lie.
  assert(offset == consumed_);
  (void)offset;
  std::size_t local = 0;
  while (local < bits) {
    const std::size_t room = spec_.window_bits - window_.bits;
    const std::size_t take = std::min(room, bits - local);
    accumulate(x, y, local, take);
    consumed_ += take;
    local += take;
    if (window_.bits == spec_.window_bits) close_window();
  }
}

ProbeReport StreamProbe::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.bits != 0) close_window();
  report_.running_value_x =
      total_.bits == 0 ? 0.0
                       : static_cast<double>(total_.ones_x) /
                             static_cast<double>(total_.bits);
  if (pair_) {
    report_.running_value_y =
        total_.bits == 0 ? 0.0
                         : static_cast<double>(total_.ones_y) /
                               static_cast<double>(total_.bits);
    const OverlapCounts counts = total_.counts();
    report_.running_scc = scc(counts);
    report_.running_scc_defined = scc_defined(counts);
  }
  return report_;
}

void ProbeSet::publish(Telemetry& telemetry) {
  for (const std::unique_ptr<Bound>& entry : bound_) {
    Bound& bound = *entry;
    ProbeReport report = bound.probe.finish();
    const std::string label =
        report.edge_y.empty() ? report.edge_x
                              : report.edge_x + "|" + report.edge_y;
    MetricsRegistry& metrics = telemetry.metrics();
    metrics.counter("probe." + label + ".windows")
        .add(report.windows.size());
    metrics.gauge("probe." + label + ".value").set(report.running_value_x);
    if (!report.edge_y.empty()) {
      metrics.gauge("probe." + label + ".scc").set(report.running_scc);
      if (!report.windows.empty()) {
        metrics.gauge("probe." + label + ".scc_last")
            .set(report.windows.back().scc);
      }
    }
    telemetry.add_probe_report(std::move(report));
  }
}

}  // namespace sc::obs
