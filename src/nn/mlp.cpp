#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>
#include <memory>

#include "arith/multiply.hpp"
#include "bitstream/encoding.hpp"
#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "rng/lfsr.hpp"

namespace sc::nn {
namespace {

/// Encodes a bipolar value from a shared per-call trace.
Bitstream encode_bipolar(double v, sc::span<const std::uint32_t> trace,
                         std::uint32_t natural) {
  const std::uint32_t level = bipolar_level(v, natural);
  Bitstream out(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] < level) out.set(i, true);
  }
  return out;
}

std::vector<std::uint32_t> make_trace(rng::Lfsr& source, std::size_t n) {
  std::vector<std::uint32_t> trace(n);
  for (auto& r : trace) r = source.next();
  return trace;
}

}  // namespace

double sc_dot_bipolar(sc::span<const Bitstream> x,
                      sc::span<const Bitstream> w) {
  assert(x.size() == w.size());
  assert(!x.empty());
  // XNOR products accumulated by an APC: total ones / (k * N) is the mean
  // unipolar product value; map back to bipolar.
  std::uint64_t ones = 0;
  const std::size_t n = x.front().size();
  for (std::size_t i = 0; i < x.size(); ++i) {
    ones += arith::multiply_bipolar(x[i], w[i]).count_ones();
  }
  const double mean_unipolar =
      static_cast<double>(ones) / static_cast<double>(x.size() * n);
  return 2.0 * mean_unipolar - 1.0;
}

std::vector<double> forward_float(const Dense& layer,
                                  sc::span<const double> x) {
  assert(x.size() == layer.inputs());
  std::vector<double> out(layer.outputs());
  for (std::size_t j = 0; j < layer.outputs(); ++j) {
    double pre = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      pre += layer.weights[j][i] * x[i];
    }
    pre /= static_cast<double>(x.size());
    pre += layer.bias[j];
    out[j] = std::tanh(layer.alpha * pre);
  }
  return out;
}

std::vector<double> forward_sc(const Dense& layer, sc::span<const double> x,
                               const MlpConfig& config) {
  assert(x.size() == layer.inputs());
  const std::size_t n = config.stream_length;
  const auto natural = static_cast<std::uint32_t>(1u << config.width);

  // --- encode inputs and weights per strategy ------------------------------
  rng::Lfsr input_source(config.width, config.seed + 1);
  rng::Lfsr weight_source(config.width, config.seed + 2);
  const auto input_trace = make_trace(input_source, n);
  const auto weight_trace = config.strategy == RngStrategy::kSingleRng
                                ? input_trace
                                : make_trace(weight_source, n);

  std::vector<Bitstream> inputs;
  inputs.reserve(x.size());
  for (double v : x) inputs.push_back(encode_bipolar(v, input_trace, natural));

  std::vector<double> out(layer.outputs());
  for (std::size_t j = 0; j < layer.outputs(); ++j) {
    std::vector<Bitstream> weight_streams;
    weight_streams.reserve(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      Bitstream w =
          encode_bipolar(layer.weights[j][i], weight_trace, natural);
      if (config.strategy == RngStrategy::kDecorrelated) {
        // In-stream fix: a shuffle buffer per weight stream breaks the
        // (shared-trace) correlation with the inputs.
        core::ShuffleBuffer buffer(
            config.shuffle_depth,
            std::make_unique<rng::Lfsr>(
                config.width, config.seed + 701 +
                                  17 * static_cast<std::uint32_t>(j * 31 + i)));
        w = core::apply(buffer, w);
      }
      weight_streams.push_back(std::move(w));
    }
    const double pre =
        sc_dot_bipolar(inputs, weight_streams) + layer.bias[j];
    out[j] = std::tanh(layer.alpha * pre);
  }
  return out;
}

std::vector<double> forward_sc(sc::span<const Dense> layers,
                               sc::span<const double> x,
                               const MlpConfig& config) {
  std::vector<double> current(x.begin(), x.end());
  MlpConfig layer_config = config;
  for (const Dense& layer : layers) {
    current = forward_sc(layer, current, layer_config);
    ++layer_config.seed;  // fresh sources per layer
  }
  return current;
}

std::vector<double> forward_float(sc::span<const Dense> layers,
                                  sc::span<const double> x) {
  std::vector<double> current(x.begin(), x.end());
  for (const Dense& layer : layers) {
    current = forward_float(layer, current);
  }
  return current;
}

std::vector<Dense> xor_network() {
  // Hidden: h1 = OR-ish, h2 = AND-ish; output: h1 AND NOT h2 = XOR.
  Dense hidden;
  hidden.weights = {{0.9, 0.9}, {0.9, 0.9}};
  hidden.bias = {0.45, -0.45};  // h1 fires for any +1; h2 only for both
  hidden.alpha = 6.0;
  Dense output;
  output.weights = {{0.9, -0.9}};
  output.bias = {-0.35};
  output.alpha = 6.0;
  return {hidden, output};
}

}  // namespace sc::nn
