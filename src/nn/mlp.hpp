/// \file mlp.hpp
/// Hybrid stochastic-binary neural-network substrate, after the paper's
/// ref [9] (Lee et al., DATE 2017) and the SC-DCNN line (ref [12]).
///
/// A dense layer computes, per output neuron,
///     out_j = tanh(alpha * (mean_i(w_ji * x_i) + b_j))
/// with the multiply-accumulate done stochastically: bipolar XNOR
/// multiplies feeding an accumulative parallel counter (APC), whose binary
/// mean is exact - no MUX-adder precision loss.  The activation and bias
/// run in the binary domain (the "hybrid" part), and the result is
/// re-encoded for the next layer.
///
/// Correlation is the crux: every (w_ji, x_i) pair must be *uncorrelated*
/// for the XNOR products to be right.  Strategies evaluated here:
///   kTwoRngs       - all weights share RNG A, all inputs share RNG B.
///                    Cross pairs are uncorrelated: accurate and cheap
///                    (2 RNGs total) - the amortization the paper's §II-B
///                    describes.
///   kSingleRng     - everything from one RNG: broken (XNOR reads
///                    1 - |w - x| instead of w * x).
///   kDecorrelated  - one RNG + shuffle-buffer chains decorrelating the
///                    weight streams in-stream (paper Fig. 4 applied).

#pragma once

#include <cstdint>
#include "common/span.hpp"
#include <vector>

#include "bitstream/bitstream.hpp"

namespace sc::nn {

/// Bipolar stochastic dot product: mean_i over XNOR(x_i, w_i), read back
/// through an APC.  Returns the bipolar mean (1/k) sum_i w_i x_i, exact up
/// to stream quantization when all pairs are uncorrelated.
double sc_dot_bipolar(sc::span<const Bitstream> x,
                      sc::span<const Bitstream> w);

/// One dense layer: weights[j][i], bias[j], activation tanh(alpha * pre).
struct Dense {
  std::vector<std::vector<double>> weights;  ///< [outputs][inputs], in [-1,1]
  std::vector<double> bias;                  ///< per output, in [-1,1]
  double alpha = 4.0;                        ///< activation gain

  [[nodiscard]] std::size_t inputs() const {
    return weights.empty() ? 0 : weights.front().size();
  }
  [[nodiscard]] std::size_t outputs() const { return weights.size(); }
};

/// Floating-point reference forward pass of one layer.
std::vector<double> forward_float(const Dense& layer,
                                  sc::span<const double> x);

/// RNG provisioning strategy for the stochastic MAC (see file comment).
enum class RngStrategy { kTwoRngs, kSingleRng, kDecorrelated };

struct MlpConfig {
  std::size_t stream_length = 1024;
  unsigned width = 8;
  RngStrategy strategy = RngStrategy::kTwoRngs;
  std::size_t shuffle_depth = 8;  ///< for kDecorrelated
  std::uint32_t seed = 13;
};

/// Stochastic forward pass of one layer: encodes x and the weights,
/// multiplies/accumulates stochastically, applies bias + tanh in binary.
/// Inputs and outputs are bipolar values in [-1, 1].
std::vector<double> forward_sc(const Dense& layer, sc::span<const double> x,
                               const MlpConfig& config = {});

/// Stochastic forward pass through a stack of layers.
std::vector<double> forward_sc(sc::span<const Dense> layers,
                               sc::span<const double> x,
                               const MlpConfig& config = {});
std::vector<double> forward_float(sc::span<const Dense> layers,
                                  sc::span<const double> x);

/// A tiny reference network computing XOR on bipolar inputs (+1 = true),
/// used by tests and the bench as a end-to-end classification workload.
std::vector<Dense> xor_network();

}  // namespace sc::nn
