/// \file fastmod.hpp
/// Exact 32-bit modulo without a divide instruction (Lemire's fastmod).
///
/// The shuffle-buffer address reduction `r = rng % (depth + 1)` sits on the
/// decorrelator's per-cycle hot path; a hardware divide there costs more
/// than the whole rest of the cycle.  For a fixed divisor d, the low 64
/// bits of x * ceil(2^64 / d) carry x mod d as a 0.64 fixed-point fraction;
/// multiplying that fraction by d and keeping the high half recovers the
/// remainder exactly for every x < 2^32, 1 < d < 2^32 — bit-identical to
/// the `%` operator, which is what keeps the kernel path equivalent to the
/// bit-serial FSMs.

#pragma once

#include <cstdint>

namespace sc::kernel {

/// Callable computing x % d with precomputed magic for divisor d.
class FastMod {
 public:
  explicit FastMod(std::uint32_t divisor)
      : divisor_(divisor),
        magic_(divisor <= 1 ? 0 : ~std::uint64_t{0} / divisor + 1) {}

  std::uint32_t operator()(std::uint32_t x) const {
    if (divisor_ <= 1) return 0;
#if defined(__SIZEOF_INT128__)
    const std::uint64_t fraction = magic_ * x;
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(fraction) * divisor_) >> 64);
#else
    return x % divisor_;
#endif
  }

  [[nodiscard]] std::uint32_t divisor() const { return divisor_; }

 private:
  std::uint32_t divisor_;
  std::uint64_t magic_;
};

}  // namespace sc::kernel
