/// \file apply.hpp
/// Whole-stream helpers that route through the table-driven kernels.
///
/// Drop-in replacements for the core::apply helpers: same signature, same
/// begin_stream-then-run semantics, bit-identical output.  When the
/// transform has a kernel (make_pair_kernel / make_stream_kernel) the
/// streams advance word-parallel; otherwise these fall back to the
/// bit-serial core::apply path.

#pragma once

#include <memory>

#include "bitstream/bitstream.hpp"
#include "bitstream/synthesis.hpp"
#include "core/pair_transform.hpp"
#include "kernel/kernels.hpp"

namespace sc::kernel {

/// Runs a pair transform over two equal-length streams (see core::apply).
sc::StreamPair apply(core::PairTransform& transform, const Bitstream& x,
                     const Bitstream& y);

inline sc::StreamPair apply(core::PairTransform& transform,
                            const sc::StreamPair& in) {
  // Qualified: ADL would otherwise also find core::apply and tie.
  return sc::kernel::apply(transform, in.x, in.y);
}

/// Runs a single-stream transform over a stream (see core::apply).
Bitstream apply(core::StreamTransform& transform, const Bitstream& x);

/// Drives a PairTransform across consecutive chunks of one logical stream
/// pair without ever materializing it: begin() announces the total length
/// (exactly as the whole-stream helpers do) and, when the transform has a
/// table-driven kernel, compiles it once for the current FSM state;
/// advance() transforms each chunk pair in place, state carrying across
/// calls; finish() writes the kernel's state back into the transform.
/// Output is bit-identical to a whole-stream apply over the concatenated
/// chunks.  Shared by engine::run_chunked_pair and the graph engine
/// backend.
class ChunkedPairApplier {
 public:
  /// \param use_kernels false forces the bit-serial step() path.
  explicit ChunkedPairApplier(core::PairTransform& transform,
                              bool use_kernels = true)
      : transform_(&transform), use_kernels_(use_kernels) {}

  void begin(std::size_t total_length);
  void advance(Bitstream& x, Bitstream& y);
  void finish();

 private:
  core::PairTransform* transform_;
  bool use_kernels_;
  std::unique_ptr<PairKernel> kernel_;
};

}  // namespace sc::kernel
