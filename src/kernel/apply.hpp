/// \file apply.hpp
/// Whole-stream helpers that route through the table-driven kernels.
///
/// Drop-in replacements for the core::apply helpers: same signature, same
/// begin_stream-then-run semantics, bit-identical output.  When the
/// transform has a kernel (make_pair_kernel / make_stream_kernel) the
/// streams advance word-parallel; otherwise these fall back to the
/// bit-serial core::apply path.

#pragma once

#include "bitstream/bitstream.hpp"
#include "bitstream/synthesis.hpp"
#include "core/pair_transform.hpp"

namespace sc::kernel {

/// Runs a pair transform over two equal-length streams (see core::apply).
sc::StreamPair apply(core::PairTransform& transform, const Bitstream& x,
                     const Bitstream& y);

inline sc::StreamPair apply(core::PairTransform& transform,
                            const sc::StreamPair& in) {
  // Qualified: ADL would otherwise also find core::apply and tie.
  return sc::kernel::apply(transform, in.x, in.y);
}

/// Runs a single-stream transform over a stream (see core::apply).
Bitstream apply(core::StreamTransform& transform, const Bitstream& x);

}  // namespace sc::kernel
