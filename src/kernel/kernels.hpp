/// \file kernels.hpp
/// Table-driven multi-bit kernels for the correlation manipulating FSMs.
///
/// Every circuit in the paper is a per-cycle FSM, and the bit-serial
/// PairTransform/StreamTransform interfaces pay a virtual dispatch (plus
/// bit get/set) per cycle.  For long streams that dispatch, not memory
/// bandwidth, bounds throughput.  The kernels here advance packed words
/// directly:
///
///  * Synchronizer / Desynchronizer: state spaces are depth-bounded
///    counters, so a (state, 4 input bit-pairs) -> (state', 4 output
///    bit-pairs) table (pair_table.hpp) advances a byte of each stream
///    with two lookups.  In flush mode the force condition can only fire
///    within the final `depth` announced cycles (|saved bits| <= depth),
///    so the kernel runs the table up to that window and hands the tail to
///    the bit-serial FSM — output stays bit-identical.
///  * Decorrelator: each shuffle buffer's occupancy is a <= depth-bit
///    mask; a (mask, address, in) -> (mask', out) table advances one cycle
///    per lookup with no virtual calls, the auxiliary RNG prefilled a
///    block at a time (RandomSource::fill) and reduced with an exact
///    divide-free modulo (fastmod.hpp).  Depths above the table cap use
///    the same blocked loop with direct mask updates.
///  * TFM pair: the fixed-point estimate is the whole state; a
///    (estimate, in) -> estimate' table plus a prefilled RNG block turns
///    each cycle into one lookup and one compare.
///
/// A kernel is compiled *for the current state* of a live transform by
/// make_pair_kernel / make_stream_kernel: it reads the FSM state at
/// creation, advances it privately (drawing from the transform's own RNG
/// sources so sequence positions stay shared), and writes the final state
/// back on finish().  Between creation and finish() the wrapped transform
/// must not be stepped directly.  Transforms without a kernel return
/// nullptr and callers fall back to the bit-serial path; results are
/// bit-identical either way (enforced by tests/kernel_test.cpp).

#pragma once

#include <cstddef>
#include <memory>

#include "bitstream/bitstream.hpp"
#include "core/pair_transform.hpp"

namespace sc::kernel {

/// Word-level driver of a two-stream FSM.
class PairKernel {
 public:
  virtual ~PairKernel() = default;

  /// Transforms the next `bits` cycles in place over packed words.
  /// Bits at positions >= `bits` in the final word are preserved.
  virtual void process(Bitstream::Word* x, Bitstream::Word* y,
                       std::size_t bits) = 0;

  /// Writes the kernel's state back into the wrapped transform so
  /// bit-serial execution can continue exactly where the kernel stopped.
  virtual void finish() = 0;
};

/// Word-level driver of a single-stream FSM.
class StreamKernel {
 public:
  virtual ~StreamKernel() = default;
  virtual void process(Bitstream::Word* x, std::size_t bits) = 0;
  virtual void finish() = 0;
};

/// Compiles a kernel for the transform's exact current state, or returns
/// nullptr when the concrete type/configuration has no table-driven path.
/// Supported: core::Synchronizer, core::Desynchronizer, core::Decorrelator
/// and core::DecorrelatorChainLink (buffer depth <= 64), core::TfmPair
/// (precision <= 16).
std::unique_ptr<PairKernel> make_pair_kernel(core::PairTransform& transform);

/// Single-stream version.  Supported: core::ShuffleBuffer (depth <= 64),
/// core::TrackingForecastMemory (precision <= 16).
std::unique_ptr<StreamKernel> make_stream_kernel(
    core::StreamTransform& transform);

}  // namespace sc::kernel
