#include "kernel/apply.hpp"

#include <stdexcept>
#include <string>

#include "kernel/kernels.hpp"

namespace sc::kernel {

sc::StreamPair apply(core::PairTransform& transform, const Bitstream& x,
                     const Bitstream& y) {
  if (x.size() != y.size()) {
    // Explicit check, not an assert: under NDEBUG the kernel would write
    // x.size() bits through the shorter stream's words (heap corruption).
    throw std::invalid_argument("sc::kernel::apply: stream sizes differ (" +
                                std::to_string(x.size()) + " vs " +
                                std::to_string(y.size()) + ")");
  }
  // Mirror core::apply: announce the length first, so the kernel captures
  // the transform's state exactly as the first serial step would see it.
  transform.begin_stream(x.size());
  std::unique_ptr<PairKernel> kernel = make_pair_kernel(transform);
  if (!kernel) {
    // core::apply re-announces the length; begin_stream is idempotent.
    return core::apply(transform, x, y);
  }
  sc::StreamPair out{x, y};
  kernel->process(out.x.word_data(), out.y.word_data(), out.x.size());
  kernel->finish();
  return out;
}

void ChunkedPairApplier::begin(std::size_t total_length) {
  transform_->begin_stream(total_length);
  if (use_kernels_) kernel_ = make_pair_kernel(*transform_);
}

void ChunkedPairApplier::advance(Bitstream& x, Bitstream& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(
        "ChunkedPairApplier::advance: chunk sizes differ (" +
        std::to_string(x.size()) + " vs " + std::to_string(y.size()) + ")");
  }
  if (kernel_ != nullptr) {
    kernel_->process(x.word_data(), y.word_data(), x.size());
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const core::BitPair out = transform_->step(x.get(i), y.get(i));
    x.set(i, out.x);
    y.set(i, out.y);
  }
}

void ChunkedPairApplier::finish() {
  if (kernel_ != nullptr) {
    kernel_->finish();
    kernel_.reset();
  }
}

Bitstream apply(core::StreamTransform& transform, const Bitstream& x) {
  transform.begin_stream(x.size());
  std::unique_ptr<StreamKernel> kernel = make_stream_kernel(transform);
  if (!kernel) {
    return core::apply(transform, x);
  }
  Bitstream out = x;
  kernel->process(out.word_data(), out.size());
  kernel->finish();
  return out;
}

}  // namespace sc::kernel
