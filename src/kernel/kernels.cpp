#include "kernel/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/simd.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/shuffle_buffer.hpp"
#include "core/synchronizer.hpp"
#include "core/tfm.hpp"
#include "kernel/fastmod.hpp"
#include "kernel/pair_table.hpp"

namespace sc::kernel {
namespace {

using Word = Bitstream::Word;

/// Largest pair-FSM state count we table (nibble table is states * 1 KiB,
/// so the cap bounds a cached table at 4 MiB).
constexpr unsigned kMaxPairStates = 4096;

/// Largest shuffle depth with a mask-indexed transition table (512 KiB at
/// depth 12); deeper buffers use the direct-update path.
constexpr std::size_t kMaxShuffleTableDepth = 12;

/// Largest TFM precision we table (2 * (2^16 + 1) entries at 16).
constexpr unsigned kMaxTfmPrecision = 16;

/// RNG values prefetched per block for the RNG-coupled kernels.  A
/// multiple of 64 so block starts stay word-aligned, which is what lets
/// the word-parallel paths hand whole words to the SIMD shim.
constexpr std::size_t kRngBlock = 4096;

/// Largest TFM precision served by the word-parallel datapath: the aux
/// source width equals the precision (tfm.hpp contract), so estimates fit
/// 16-bit trace entries and aux draws fit a byte ring.  Higher precisions
/// run the per-cycle table path.
constexpr unsigned kMaxWordTfmPrecision = 8;

/// Word-parallel eligibility for a shuffle depth: the slot-class PEXT/PDEP
/// decomposition in the SIMD shim handles depths 1..63 (depth 64 would
/// need 65 slot classes and 64-bit shifts by 64).
bool shuffle_word_path(std::size_t depth) {
  return depth >= 1 && depth <= 63 && simd::word_parallel_enabled();
}

// ------------------------------------------------------------ table caches

/// Shared memoization shape of the table caches below: one lock-guarded
/// map per table family, built on first request for a key.
template <typename Key, typename Value, typename BuildFn>
std::shared_ptr<const Value> cached(
    std::mutex& mutex, std::map<Key, std::shared_ptr<const Value>>& cache,
    const Key& key, BuildFn&& build) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  std::shared_ptr<const Value> value = build();
  cache.emplace(key, value);
  return value;
}

std::shared_ptr<const PairNibbleTable> synchronizer_table(unsigned depth) {
  // State count computed in 64 bits: a wrapped count would pass the cap
  // check and build an undersized table (out-of-bounds lookups later).
  const std::uint64_t states = 2 * std::uint64_t{depth} + 1;
  if (depth < 1 || states > kMaxPairStates) return nullptr;
  static std::mutex mutex;
  static std::map<unsigned, std::shared_ptr<const PairNibbleTable>> cache;
  return cached(mutex, cache, depth, [&] {
    // State index = credit + depth.
    return std::make_shared<const PairNibbleTable>(PairNibbleTable::build(
        static_cast<unsigned>(states), [depth](unsigned s, bool x, bool y) {
          const core::Synchronizer::Transition t =
              core::Synchronizer::transition(
                  depth, static_cast<int>(s) - static_cast<int>(depth), x, y);
          return PairStep{
              static_cast<unsigned>(t.credit + static_cast<int>(depth)),
              t.out_x, t.out_y};
        }));
  });
}

std::shared_ptr<const PairNibbleTable> desynchronizer_table(unsigned depth) {
  // State index = ((saved_x * (depth + 1) + saved_y) << 1) | save_from_x.
  // Combinations with saved_x + saved_y > depth are encodable but
  // unreachable; the pure transition is total over them regardless.
  const std::uint64_t side = std::uint64_t{depth} + 1;
  const std::uint64_t states = 2 * side * side;  // 64-bit: no wrap past cap
  if (depth < 1 || states > kMaxPairStates) return nullptr;
  static std::mutex mutex;
  static std::map<unsigned, std::shared_ptr<const PairNibbleTable>> cache;
  return cached(mutex, cache, depth, [&] {
    const auto side32 = static_cast<unsigned>(side);
    return std::make_shared<const PairNibbleTable>(PairNibbleTable::build(
        static_cast<unsigned>(states),
        [depth, side32](unsigned s, bool x, bool y) {
          const unsigned pair = s >> 1;
          const core::Desynchronizer::Transition t =
              core::Desynchronizer::transition(depth, pair / side32,
                                               pair % side32, (s & 1u) != 0,
                                               x, y);
          return PairStep{((t.saved_x * side32 + t.saved_y) << 1) |
                              (t.save_from_x ? 1u : 0u),
                          t.out_x, t.out_y};
        }));
  });
}

/// Per-cycle shuffle-buffer table: entry = out | next_mask << 1, indexed by
/// (mask << mask_shift) | (address << 1) | in.
struct ShuffleTable {
  std::vector<std::uint32_t> entries;
  unsigned mask_shift = 0;
};

std::shared_ptr<const ShuffleTable> shuffle_table(std::size_t depth) {
  if (depth < 1 || depth > kMaxShuffleTableDepth) return nullptr;
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const ShuffleTable>> cache;
  return cached(mutex, cache, depth, [&] {
    auto table = std::make_shared<ShuffleTable>();
    unsigned shift = 1;
    while ((std::size_t{1} << shift) < 2 * (depth + 1)) ++shift;
    table->mask_shift = shift;
    table->entries.assign((std::size_t{1} << depth) << shift, 0);
    for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << depth); ++mask) {
      for (std::size_t r = 0; r <= depth; ++r) {
        for (unsigned in = 0; in < 2; ++in) {
          const core::ShuffleBuffer::Transition t =
              core::ShuffleBuffer::transition(mask, depth, r, in != 0);
          table->entries[(std::size_t{mask} << shift) | (r << 1) | in] =
              (t.out ? 1u : 0u) |
              (static_cast<std::uint32_t>(t.slots) << 1);
        }
      }
    }
    return std::shared_ptr<const ShuffleTable>(std::move(table));
  });
}

std::shared_ptr<const std::vector<std::int32_t>> tfm_table(unsigned precision,
                                                           unsigned shift) {
  if (precision > kMaxTfmPrecision) return nullptr;
  static std::mutex mutex;
  static std::map<std::pair<unsigned, unsigned>,
                  std::shared_ptr<const std::vector<std::int32_t>>>
      cache;
  return cached(mutex, cache, std::make_pair(precision, shift), [&] {
    const std::int32_t scale = std::int32_t{1} << precision;
    auto table = std::make_shared<std::vector<std::int32_t>>(
        2 * (static_cast<std::size_t>(scale) + 1));
    for (std::int32_t est = 0; est <= scale; ++est) {
      for (unsigned in = 0; in < 2; ++in) {
        (*table)[(static_cast<std::size_t>(est) << 1) | in] =
            core::TrackingForecastMemory::next_estimate(est, in != 0, shift,
                                                        scale);
      }
    }
    return std::shared_ptr<const std::vector<std::int32_t>>(std::move(table));
  });
}

/// Nibble-jump table for the word-parallel TFM path: entry (est, nibble)
/// packs the four successive post-update estimates reached by consuming
/// the nibble's bits (LSB first) as four little-endian uint16 lanes — the
/// exact regeneration-trace layout — so one lookup advances four cycles
/// and the top lane (entry >> 48) is the successor estimate.  Built by
/// composing the per-cycle tfm_table, so it inherits that table's exact
/// core::TrackingForecastMemory semantics.  Size (2^p + 1) * 16 * 8 bytes
/// (33 KiB at the precision-8 cap).
std::shared_ptr<const std::vector<std::uint64_t>> tfm_jump_table(
    unsigned precision, unsigned shift) {
  if (precision > kMaxWordTfmPrecision) return nullptr;
  auto steps = tfm_table(precision, shift);
  if (!steps) return nullptr;
  static std::mutex mutex;
  static std::map<std::pair<unsigned, unsigned>,
                  std::shared_ptr<const std::vector<std::uint64_t>>>
      cache;
  return cached(mutex, cache, std::make_pair(precision, shift), [&] {
    const std::int32_t scale = std::int32_t{1} << precision;
    auto table = std::make_shared<std::vector<std::uint64_t>>(
        (static_cast<std::size_t>(scale) + 1) << 4);
    for (std::int32_t est = 0; est <= scale; ++est) {
      for (unsigned nib = 0; nib < 16; ++nib) {
        std::uint64_t entry = 0;
        std::int32_t e = est;
        for (unsigned g = 0; g < 4; ++g) {
          e = (*steps)[(static_cast<std::size_t>(e) << 1) | ((nib >> g) & 1u)];
          entry |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(e))
                   << (16 * g);
        }
        (*table)[(static_cast<std::size_t>(est) << 4) | nib] = entry;
      }
    }
    return std::shared_ptr<const std::vector<std::uint64_t>>(std::move(table));
  });
}

// ----------------------------------------------------- nibble-table driver

/// Advances `bits` cycles of both streams in place through a nibble table.
/// Bits beyond `bits` in the final word are preserved (they may belong to
/// a serial tail still to be stepped).  Returns the successor state.
unsigned run_pair_table(const PairNibbleTable& table, unsigned state,
                        Word* xw, Word* yw, std::size_t bits) {
  std::size_t w = 0;
  for (; (w + 1) * 64 <= bits; ++w) {
    const Word xin = xw[w];
    const Word yin = yw[w];
    Word xout = 0;
    Word yout = 0;
    for (unsigned k = 0; k < 64; k += 4) {
      const auto xn = static_cast<unsigned>((xin >> k) & 0xF);
      const auto yn = static_cast<unsigned>((yin >> k) & 0xF);
      const PairNibbleTable::Entry e = table.lookup4(state, xn, yn);
      xout |= static_cast<Word>(e & 0xF) << k;
      yout |= static_cast<Word>((e >> 4) & 0xF) << k;
      state = e >> 8;
    }
    xw[w] = xout;
    yw[w] = yout;
  }
  const auto rem = static_cast<unsigned>(bits - w * 64);
  if (rem != 0) {
    const Word xin = xw[w];
    const Word yin = yw[w];
    Word xout = 0;
    Word yout = 0;
    unsigned b = 0;
    for (; b + 4 <= rem; b += 4) {
      const auto xn = static_cast<unsigned>((xin >> b) & 0xF);
      const auto yn = static_cast<unsigned>((yin >> b) & 0xF);
      const PairNibbleTable::Entry e = table.lookup4(state, xn, yn);
      xout |= static_cast<Word>(e & 0xF) << b;
      yout |= static_cast<Word>((e >> 4) & 0xF) << b;
      state = e >> 8;
    }
    for (; b < rem; ++b) {
      const PairNibbleTable::Entry e = table.lookup1(
          state, ((xin >> b) & 1u) != 0, ((yin >> b) & 1u) != 0);
      xout |= static_cast<Word>(e & 1u) << b;
      yout |= static_cast<Word>((e >> 4) & 1u) << b;
      state = e >> 8;
    }
    const Word keep = ~Word{0} << rem;
    xw[w] = (xin & keep) | xout;
    yw[w] = (yin & keep) | yout;
  }
  return state;
}

// -------------------------------------------- synchronizer / desynchronizer

/// Shared driver for the two table-driven flush-capable pair FSMs: table
/// path while the flush force condition cannot fire, bit-serial handoff
/// (to the real FSM) for the final `capacity` announced cycles and beyond.
class FlushingPairKernel : public PairKernel {
 public:
  void process(Word* xw, Word* yw, std::size_t bits) override {
    std::size_t done = 0;
    if (!serial_tail_) {
      std::size_t safe = bits;
      if (flush_ && length_known_) {
        // |saved bits| <= capacity, so the force condition is unreachable
        // while more than `capacity` announced cycles remain.
        safe = remaining_ > capacity_
                   ? std::min(bits, remaining_ - capacity_)
                   : 0;
      }
      if (safe != 0) {
        state_ = run_pair_table(*table_, state_, xw, yw, safe);
        remaining_ -= std::min(safe, remaining_);
        done = safe;
      }
      if (done < bits) {
        sync_state_to_fsm();
        serial_tail_ = true;
      }
    }
    for (; done < bits; ++done) {
      Word& xword = xw[done / 64];
      Word& yword = yw[done / 64];
      const auto b = static_cast<unsigned>(done % 64);
      const core::BitPair out =
          serial_step(((xword >> b) & 1u) != 0, ((yword >> b) & 1u) != 0);
      const Word m = Word{1} << b;
      xword = (xword & ~m) | (out.x ? m : Word{0});
      yword = (yword & ~m) | (out.y ? m : Word{0});
    }
  }

  void finish() override {
    if (!serial_tail_) sync_state_to_fsm();
  }

 protected:
  std::shared_ptr<const PairNibbleTable> table_;
  unsigned state_ = 0;
  unsigned capacity_ = 0;  // maximum saved bits == width of the flush window
  bool flush_ = false;
  std::size_t remaining_ = 0;
  bool length_known_ = false;
  bool serial_tail_ = false;

  /// Writes (state_, remaining_, length_known_) into the wrapped FSM.
  virtual void sync_state_to_fsm() = 0;
  /// Steps the wrapped FSM directly (used after the handoff).
  virtual core::BitPair serial_step(bool x, bool y) = 0;
};

class SynchronizerKernel final : public FlushingPairKernel {
 public:
  SynchronizerKernel(core::Synchronizer& fsm,
                     std::shared_ptr<const PairNibbleTable> table)
      : fsm_(fsm) {
    table_ = std::move(table);
    capacity_ = fsm.config().depth;
    flush_ = fsm.config().flush;
    const core::Synchronizer::State st = fsm.state();
    state_ = static_cast<unsigned>(st.credit + static_cast<int>(capacity_));
    remaining_ = st.remaining;
    length_known_ = st.length_known;
  }

 private:
  void sync_state_to_fsm() override {
    fsm_.set_state({static_cast<int>(state_) - static_cast<int>(capacity_),
                    remaining_, length_known_});
  }
  core::BitPair serial_step(bool x, bool y) override {
    return fsm_.step(x, y);
  }

  core::Synchronizer& fsm_;
};

class DesynchronizerKernel final : public FlushingPairKernel {
 public:
  DesynchronizerKernel(core::Desynchronizer& fsm,
                       std::shared_ptr<const PairNibbleTable> table)
      : fsm_(fsm) {
    table_ = std::move(table);
    capacity_ = fsm.config().depth;
    flush_ = fsm.config().flush;
    const core::Desynchronizer::State st = fsm.state();
    const unsigned side = capacity_ + 1;
    state_ = ((st.saved_x * side + st.saved_y) << 1) |
             (st.save_from_x ? 1u : 0u);
    remaining_ = st.remaining;
    length_known_ = st.length_known;
  }

 private:
  void sync_state_to_fsm() override {
    const unsigned side = capacity_ + 1;
    const unsigned pair = state_ >> 1;
    fsm_.set_state({pair / side, pair % side, (state_ & 1u) != 0, remaining_,
                    length_known_});
  }
  core::BitPair serial_step(bool x, bool y) override {
    return fsm_.step(x, y);
  }

  core::Desynchronizer& fsm_;
};

// ------------------------------------------------------------- decorrelator

/// One shuffle buffer driven a word at a time.  The address RNG is
/// prefilled a block at a time from the buffer's own source and reduced
/// with an exact divide-free modulo; slot contents live in a register
/// mask.  Depth <= kMaxShuffleTableDepth advances through the cached
/// transition table, deeper buffers through direct mask updates.
class ShuffleHalf {
 public:
  ShuffleHalf(core::ShuffleBuffer& buffer,
              std::shared_ptr<const ShuffleTable> table)
      : buffer_(buffer),
        table_(std::move(table)),
        depth_(static_cast<std::uint32_t>(buffer.depth())),
        mod_(static_cast<std::uint32_t>(buffer.depth() + 1)),
        mask_(buffer.slots_mask()) {}

  void process(Word* w, std::size_t bits, std::uint32_t* raw) {
    if (shuffle_word_path(depth_)) {
      process_words(w, bits);
      return;
    }
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      buffer_.source().fill(raw, n);
      if (table_) {
        run_table(w, pos, n, raw);
      } else {
        run_direct(w, pos, n, raw);
      }
      pos += n;
    }
  }

  void finish() { buffer_.set_slots_mask(mask_); }

 private:
  /// Word-parallel path: address draws come pre-reduced from the source's
  /// word API (identical values to mod_(fill(..)) — both are exact modulo)
  /// and whole words advance through the SIMD slot-class shuffle, with the
  /// slot mask threaded through unchanged.
  void process_words(Word* w, std::size_t bits) {
    std::uint8_t idx[kRngBlock];
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      buffer_.source().fill_indices(idx, n, depth_ + 1);
      simd::shuffle_words(w + pos / 64, idx, n, depth_, &mask_);
      pos += n;
    }
  }

 private:
  template <typename CycleFn>
  void run_blocked(Word* w, std::size_t pos, std::size_t n,
                   const std::uint32_t* raw, CycleFn&& cycle) {
    std::size_t i = 0;
    while (i < n) {
      const std::size_t bit = pos + i;
      Word& word = w[bit / 64];
      const auto off = static_cast<unsigned>(bit % 64);
      const auto take =
          static_cast<unsigned>(std::min<std::size_t>(64 - off, n - i));
      const Word in_bits = word >> off;
      Word out_bits = 0;
      for (unsigned b = 0; b < take; ++b) {
        const std::uint32_t r = mod_(raw[i + b]);
        const bool in = ((in_bits >> b) & 1u) != 0;
        out_bits |= static_cast<Word>(cycle(r, in)) << b;
      }
      const Word m = take == 64 ? ~Word{0} : (Word{1} << take) - 1;
      word = (word & ~(m << off)) | ((out_bits & m) << off);
      i += take;
    }
  }

  void run_table(Word* w, std::size_t pos, std::size_t n,
                 const std::uint32_t* raw) {
    const std::uint32_t* entries = table_->entries.data();
    const unsigned shift = table_->mask_shift;
    auto mask = static_cast<std::uint32_t>(mask_);
    run_blocked(w, pos, n, raw, [&](std::uint32_t r, bool in) -> unsigned {
      const std::uint32_t e =
          entries[(static_cast<std::size_t>(mask) << shift) | (r << 1) |
                  (in ? 1u : 0u)];
      mask = e >> 1;
      return e & 1u;
    });
    mask_ = mask;
  }

  void run_direct(Word* w, std::size_t pos, std::size_t n,
                  const std::uint32_t* raw) {
    std::uint64_t mask = mask_;
    const std::uint32_t depth = depth_;
    run_blocked(w, pos, n, raw, [&](std::uint32_t r, bool in) -> unsigned {
      if (r == depth) return in ? 1u : 0u;
      const auto out = static_cast<unsigned>((mask >> r) & 1u);
      mask = (mask & ~(std::uint64_t{1} << r)) |
             (static_cast<std::uint64_t>(in) << r);
      return out;
    });
    mask_ = mask;
  }

  core::ShuffleBuffer& buffer_;
  std::shared_ptr<const ShuffleTable> table_;
  std::uint32_t depth_;
  FastMod mod_;
  std::uint64_t mask_;
};

class DecorrelatorKernel final : public PairKernel {
 public:
  explicit DecorrelatorKernel(core::Decorrelator& dec)
      : buffer_x_(dec.buffer_x()),
        buffer_y_(dec.buffer_y()),
        table_(shuffle_table(dec.depth())),
        depth_(static_cast<std::uint32_t>(dec.depth())),
        mod_(static_cast<std::uint32_t>(dec.depth() + 1)),
        mask_x_(dec.buffer_x().slots_mask()),
        mask_y_(dec.buffer_y().slots_mask()),
        raw_x_(kRngBlock),
        raw_y_(kRngBlock) {}

  void process(Word* xw, Word* yw, std::size_t bits) override {
    if (shuffle_word_path(depth_)) {
      // Word-parallel path: the two buffers are fully independent (separate
      // sources, separate slot masks), so each advances through the SIMD
      // slot-class shuffle on whole words.  Address draws are block-filled
      // per buffer exactly as below, so the sequences are identical.
      std::uint8_t idx[kRngBlock];
      std::size_t pos = 0;
      while (pos < bits) {
        const std::size_t n = std::min(kRngBlock, bits - pos);
        buffer_x_.source().fill_indices(idx, n, depth_ + 1);
        simd::shuffle_words(xw + pos / 64, idx, n, depth_, &mask_x_);
        buffer_y_.source().fill_indices(idx, n, depth_ + 1);
        simd::shuffle_words(yw + pos / 64, idx, n, depth_, &mask_y_);
        pos += n;
      }
      return;
    }
    // Both buffers advance in one fused loop: each buffer's state chain
    // (mask -> table load -> mask) is serially dependent, so running the
    // two independent chains together overlaps their latencies and
    // roughly halves the per-bit cost versus one buffer after the other.
    // The sources are independent, so block-filling each is
    // sequence-identical to the cycle-interleaved serial path.
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      buffer_x_.source().fill(raw_x_.data(), n);
      buffer_y_.source().fill(raw_y_.data(), n);
      if (table_) {
        run_table(xw, yw, pos, n);
      } else {
        run_direct(xw, yw, pos, n);
      }
      pos += n;
    }
  }

  void finish() override {
    buffer_x_.set_slots_mask(mask_x_);
    buffer_y_.set_slots_mask(mask_y_);
  }

 private:
  /// Iterates word segments shared by both streams, calling
  /// cycle(rx, ry, in_x, in_y) -> packed (out_x | out_y << 1) per bit.
  template <typename CycleFn>
  void run_fused(Word* xw, Word* yw, std::size_t pos, std::size_t n,
                 CycleFn&& cycle) {
    std::size_t i = 0;
    while (i < n) {
      const std::size_t bit = pos + i;
      Word& xword = xw[bit / 64];
      Word& yword = yw[bit / 64];
      const auto off = static_cast<unsigned>(bit % 64);
      const auto take =
          static_cast<unsigned>(std::min<std::size_t>(64 - off, n - i));
      const Word xin = xword >> off;
      const Word yin = yword >> off;
      Word xout = 0;
      Word yout = 0;
      for (unsigned b = 0; b < take; ++b) {
        const std::uint32_t rx = mod_(raw_x_[i + b]);
        const std::uint32_t ry = mod_(raw_y_[i + b]);
        const unsigned packed = cycle(rx, ry, ((xin >> b) & 1u) != 0,
                                      ((yin >> b) & 1u) != 0);
        xout |= static_cast<Word>(packed & 1u) << b;
        yout |= static_cast<Word>((packed >> 1) & 1u) << b;
      }
      const Word m = take == 64 ? ~Word{0} : (Word{1} << take) - 1;
      xword = (xword & ~(m << off)) | ((xout & m) << off);
      yword = (yword & ~(m << off)) | ((yout & m) << off);
      i += take;
    }
  }

  void run_table(Word* xw, Word* yw, std::size_t pos, std::size_t n) {
    const std::uint32_t* entries = table_->entries.data();
    const unsigned shift = table_->mask_shift;
    auto mask_x = static_cast<std::uint32_t>(mask_x_);
    auto mask_y = static_cast<std::uint32_t>(mask_y_);
    run_fused(xw, yw, pos, n,
              [&](std::uint32_t rx, std::uint32_t ry, bool in_x,
                  bool in_y) -> unsigned {
                const std::uint32_t ex =
                    entries[(static_cast<std::size_t>(mask_x) << shift) |
                            (rx << 1) | (in_x ? 1u : 0u)];
                const std::uint32_t ey =
                    entries[(static_cast<std::size_t>(mask_y) << shift) |
                            (ry << 1) | (in_y ? 1u : 0u)];
                mask_x = ex >> 1;
                mask_y = ey >> 1;
                return (ex & 1u) | ((ey & 1u) << 1);
              });
    mask_x_ = mask_x;
    mask_y_ = mask_y;
  }

  void run_direct(Word* xw, Word* yw, std::size_t pos, std::size_t n) {
    std::uint64_t mask_x = mask_x_;
    std::uint64_t mask_y = mask_y_;
    const std::uint32_t depth = depth_;
    run_fused(xw, yw, pos, n,
              [&](std::uint32_t rx, std::uint32_t ry, bool in_x,
                  bool in_y) -> unsigned {
                unsigned out = 0;
                if (rx == depth) {
                  out |= in_x ? 1u : 0u;
                } else {
                  out |= static_cast<unsigned>((mask_x >> rx) & 1u);
                  mask_x = (mask_x & ~(std::uint64_t{1} << rx)) |
                           (static_cast<std::uint64_t>(in_x) << rx);
                }
                if (ry == depth) {
                  out |= in_y ? 2u : 0u;
                } else {
                  out |= static_cast<unsigned>((mask_y >> ry) & 1u) << 1;
                  mask_y = (mask_y & ~(std::uint64_t{1} << ry)) |
                           (static_cast<std::uint64_t>(in_y) << ry);
                }
                return out;
              });
    mask_x_ = mask_x;
    mask_y_ = mask_y;
  }

  core::ShuffleBuffer& buffer_x_;
  core::ShuffleBuffer& buffer_y_;
  std::shared_ptr<const ShuffleTable> table_;
  std::uint32_t depth_;
  FastMod mod_;
  std::uint64_t mask_x_;
  std::uint64_t mask_y_;
  std::vector<std::uint32_t> raw_x_;
  std::vector<std::uint32_t> raw_y_;
};

class ShuffleStreamKernel final : public StreamKernel {
 public:
  explicit ShuffleStreamKernel(core::ShuffleBuffer& buffer)
      : half_(buffer, shuffle_table(buffer.depth())), raw_(kRngBlock) {}

  void process(Word* x, std::size_t bits) override {
    half_.process(x, bits, raw_.data());
  }
  void finish() override { half_.finish(); }

 private:
  ShuffleHalf half_;
  std::vector<std::uint32_t> raw_;
};

// ---------------------------------------------------------------------- TFM

/// One TFM driven a word at a time: estimate table lookup plus a compare
/// against the prefilled regeneration RNG.
class TfmHalf {
 public:
  TfmHalf(core::TrackingForecastMemory& tfm,
          std::shared_ptr<const std::vector<std::int32_t>> table)
      : tfm_(tfm),
        table_(std::move(table)),
        jump_(simd::word_parallel_enabled()
                  ? tfm_jump_table(tfm.config().precision, tfm.config().shift)
                  : nullptr),
        estimate_(tfm.estimate_fixed()) {}

  void process(Word* w, std::size_t bits, std::uint32_t* raw) {
    if (jump_) {
      process_words(w, bits);
      return;
    }
    const std::int32_t* table = table_->data();
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      tfm_.aux_source().fill(raw, n);
      std::int32_t est = estimate_;
      std::size_t i = 0;
      while (i < n) {
        const std::size_t bit = pos + i;
        Word& word = w[bit / 64];
        const auto off = static_cast<unsigned>(bit % 64);
        const auto take =
            static_cast<unsigned>(std::min<std::size_t>(64 - off, n - i));
        const Word in_bits = word >> off;
        Word out_bits = 0;
        for (unsigned b = 0; b < take; ++b) {
          est = table[(static_cast<std::size_t>(est) << 1) |
                      static_cast<std::size_t>((in_bits >> b) & 1u)];
          const bool out = static_cast<std::int32_t>(raw[i + b]) < est;
          out_bits |= static_cast<Word>(out) << b;
        }
        const Word m = take == 64 ? ~Word{0} : (Word{1} << take) - 1;
        word = (word & ~(m << off)) | ((out_bits & m) << off);
        i += take;
      }
      estimate_ = est;
      pos += n;
    }
  }

  void finish() { tfm_.set_estimate_fixed(estimate_); }

 private:
  /// Word-parallel path: phase 1 walks the input a nibble-jump at a time,
  /// recording the post-update estimate trace; phase 2 regenerates the
  /// output word-at-a-time as (aux draw < trace entry) through the aux
  /// source's word API.  Both phases are exact compositions of the
  /// per-cycle rule: update the estimate first, then compare.
  void process_words(Word* w, std::size_t bits) {
    const std::uint64_t* jump = jump_->data();
    const std::int32_t* table = table_->data();
    std::uint16_t trace[kRngBlock];
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      Word* base = w + pos / 64;
      std::int32_t est = estimate_;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        const auto nib =
            static_cast<unsigned>((base[i / 64] >> (i % 64)) & 0xF);
        const std::uint64_t e = jump[(static_cast<std::size_t>(est) << 4) |
                                     nib];
        std::memcpy(trace + i, &e, sizeof(e));
        est = static_cast<std::int32_t>(e >> 48);
      }
      for (; i < n; ++i) {
        est = table[(static_cast<std::size_t>(est) << 1) |
                    static_cast<std::size_t>((base[i / 64] >> (i % 64)) & 1u)];
        trace[i] = static_cast<std::uint16_t>(est);
      }
      estimate_ = est;
      const std::size_t full = n / 64;
      for (std::size_t k = 0; k < full; ++k) base[k] = 0;
      if (n % 64 != 0) base[full] &= ~Word{0} << (n % 64);
      tfm_.aux_source().fill_compare_trace(base, trace, n);
      pos += n;
    }
  }

  core::TrackingForecastMemory& tfm_;
  std::shared_ptr<const std::vector<std::int32_t>> table_;
  std::shared_ptr<const std::vector<std::uint64_t>> jump_;
  std::int32_t estimate_;
};

class TfmPairKernel final : public PairKernel {
 public:
  TfmPairKernel(core::TfmPair& pair,
                std::shared_ptr<const std::vector<std::int32_t>> table)
      : tfm_x_(pair.tfm_x()),
        tfm_y_(pair.tfm_y()),
        table_(std::move(table)),
        jump_(simd::word_parallel_enabled()
                  ? tfm_jump_table(pair.tfm_x().config().precision,
                                   pair.tfm_x().config().shift)
                  : nullptr),
        est_x_(pair.tfm_x().estimate_fixed()),
        est_y_(pair.tfm_y().estimate_fixed()),
        raw_x_(kRngBlock),
        raw_y_(kRngBlock) {}

  void process(Word* xw, Word* yw, std::size_t bits) override {
    if (jump_) {
      process_words(xw, yw, bits);
      return;
    }
    // Fused like the decorrelator: the two estimate chains are serially
    // dependent table loads, so interleaving them overlaps the latency.
    const std::int32_t* table = table_->data();
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      tfm_x_.aux_source().fill(raw_x_.data(), n);
      tfm_y_.aux_source().fill(raw_y_.data(), n);
      std::int32_t est_x = est_x_;
      std::int32_t est_y = est_y_;
      std::size_t i = 0;
      while (i < n) {
        const std::size_t bit = pos + i;
        Word& xword = xw[bit / 64];
        Word& yword = yw[bit / 64];
        const auto off = static_cast<unsigned>(bit % 64);
        const auto take =
            static_cast<unsigned>(std::min<std::size_t>(64 - off, n - i));
        const Word xin = xword >> off;
        const Word yin = yword >> off;
        Word xout = 0;
        Word yout = 0;
        for (unsigned b = 0; b < take; ++b) {
          est_x = table[(static_cast<std::size_t>(est_x) << 1) |
                        static_cast<std::size_t>((xin >> b) & 1u)];
          est_y = table[(static_cast<std::size_t>(est_y) << 1) |
                        static_cast<std::size_t>((yin >> b) & 1u)];
          xout |= static_cast<Word>(
                      static_cast<std::int32_t>(raw_x_[i + b]) < est_x)
                  << b;
          yout |= static_cast<Word>(
                      static_cast<std::int32_t>(raw_y_[i + b]) < est_y)
                  << b;
        }
        const Word m = take == 64 ? ~Word{0} : (Word{1} << take) - 1;
        xword = (xword & ~(m << off)) | ((xout & m) << off);
        yword = (yword & ~(m << off)) | ((yout & m) << off);
        i += take;
      }
      est_x_ = est_x;
      est_y_ = est_y;
      pos += n;
    }
  }

  void finish() override {
    tfm_x_.set_estimate_fixed(est_x_);
    tfm_y_.set_estimate_fixed(est_y_);
  }

 private:
  /// Word-parallel path, fused across the pair: one pass walks both
  /// inputs through the nibble-jump table (the two estimate chains are
  /// independent, so their jump loads overlap), then each stream
  /// regenerates through its own aux source's word API.
  void process_words(Word* xw, Word* yw, std::size_t bits) {
    const std::uint64_t* jump = jump_->data();
    const std::int32_t* table = table_->data();
    std::uint16_t trace_x[kRngBlock];
    std::uint16_t trace_y[kRngBlock];
    std::size_t pos = 0;
    while (pos < bits) {
      const std::size_t n = std::min(kRngBlock, bits - pos);
      Word* xbase = xw + pos / 64;
      Word* ybase = yw + pos / 64;
      std::int32_t est_x = est_x_;
      std::int32_t est_y = est_y_;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        const auto xnib =
            static_cast<unsigned>((xbase[i / 64] >> (i % 64)) & 0xF);
        const auto ynib =
            static_cast<unsigned>((ybase[i / 64] >> (i % 64)) & 0xF);
        const std::uint64_t ex =
            jump[(static_cast<std::size_t>(est_x) << 4) | xnib];
        const std::uint64_t ey =
            jump[(static_cast<std::size_t>(est_y) << 4) | ynib];
        std::memcpy(trace_x + i, &ex, sizeof(ex));
        std::memcpy(trace_y + i, &ey, sizeof(ey));
        est_x = static_cast<std::int32_t>(ex >> 48);
        est_y = static_cast<std::int32_t>(ey >> 48);
      }
      for (; i < n; ++i) {
        est_x =
            table[(static_cast<std::size_t>(est_x) << 1) |
                  static_cast<std::size_t>((xbase[i / 64] >> (i % 64)) & 1u)];
        est_y =
            table[(static_cast<std::size_t>(est_y) << 1) |
                  static_cast<std::size_t>((ybase[i / 64] >> (i % 64)) & 1u)];
        trace_x[i] = static_cast<std::uint16_t>(est_x);
        trace_y[i] = static_cast<std::uint16_t>(est_y);
      }
      est_x_ = est_x;
      est_y_ = est_y;
      const std::size_t full = n / 64;
      for (std::size_t k = 0; k < full; ++k) xbase[k] = 0;
      for (std::size_t k = 0; k < full; ++k) ybase[k] = 0;
      if (n % 64 != 0) {
        xbase[full] &= ~Word{0} << (n % 64);
        ybase[full] &= ~Word{0} << (n % 64);
      }
      tfm_x_.aux_source().fill_compare_trace(xbase, trace_x, n);
      tfm_y_.aux_source().fill_compare_trace(ybase, trace_y, n);
      pos += n;
    }
  }

  core::TrackingForecastMemory& tfm_x_;
  core::TrackingForecastMemory& tfm_y_;
  std::shared_ptr<const std::vector<std::int32_t>> table_;
  std::shared_ptr<const std::vector<std::uint64_t>> jump_;
  std::int32_t est_x_;
  std::int32_t est_y_;
  std::vector<std::uint32_t> raw_x_;
  std::vector<std::uint32_t> raw_y_;
};

class TfmStreamKernel final : public StreamKernel {
 public:
  TfmStreamKernel(core::TrackingForecastMemory& tfm,
                  std::shared_ptr<const std::vector<std::int32_t>> table)
      : half_(tfm, std::move(table)), raw_(kRngBlock) {}

  void process(Word* x, std::size_t bits) override {
    half_.process(x, bits, raw_.data());
  }
  void finish() override { half_.finish(); }

 private:
  TfmHalf half_;
  std::vector<std::uint32_t> raw_;
};

/// Decorrelator chain link: y := shuffle(x), x untouched.  Copies x's
/// bits into y (preserving y's tail past `bits`), then runs the
/// single-stream shuffle kernel on y — bit-identical to the serial step
/// by the stream kernel's own equivalence.
class ChainLinkKernel final : public PairKernel {
 public:
  explicit ChainLinkKernel(std::unique_ptr<StreamKernel> shuffle)
      : shuffle_(std::move(shuffle)) {}

  void process(Word* xw, Word* yw, std::size_t bits) override {
    const std::size_t words = bits / 64;
    for (std::size_t w = 0; w < words; ++w) yw[w] = xw[w];
    const unsigned rem = bits % 64;
    if (rem != 0) {
      const Word mask = (Word{1} << rem) - 1;
      yw[words] = (xw[words] & mask) | (yw[words] & ~mask);
    }
    shuffle_->process(yw, bits);
  }

  void finish() override { shuffle_->finish(); }

 private:
  std::unique_ptr<StreamKernel> shuffle_;
};

}  // namespace

// ------------------------------------------------------------------ factory

std::unique_ptr<PairKernel> make_pair_kernel(core::PairTransform& transform) {
  if (auto* sync = dynamic_cast<core::Synchronizer*>(&transform)) {
    auto table = synchronizer_table(sync->config().depth);
    if (!table) return nullptr;
    return std::make_unique<SynchronizerKernel>(*sync, std::move(table));
  }
  if (auto* desync = dynamic_cast<core::Desynchronizer*>(&transform)) {
    auto table = desynchronizer_table(desync->config().depth);
    if (!table) return nullptr;
    return std::make_unique<DesynchronizerKernel>(*desync, std::move(table));
  }
  if (auto* dec = dynamic_cast<core::Decorrelator*>(&transform)) {
    if (dec->depth() < 1 || dec->depth() > 64) return nullptr;
    return std::make_unique<DecorrelatorKernel>(*dec);
  }
  if (auto* link = dynamic_cast<core::DecorrelatorChainLink*>(&transform)) {
    auto shuffle = make_stream_kernel(link->buffer());
    if (!shuffle) return nullptr;
    return std::make_unique<ChainLinkKernel>(std::move(shuffle));
  }
  if (auto* tfm = dynamic_cast<core::TfmPair*>(&transform)) {
    const auto& config = tfm->tfm_x().config();
    auto table = tfm_table(config.precision, config.shift);
    if (!table) return nullptr;
    return std::make_unique<TfmPairKernel>(*tfm, std::move(table));
  }
  return nullptr;
}

std::unique_ptr<StreamKernel> make_stream_kernel(
    core::StreamTransform& transform) {
  if (auto* buffer = dynamic_cast<core::ShuffleBuffer*>(&transform)) {
    if (buffer->depth() < 1 || buffer->depth() > 64) return nullptr;
    return std::make_unique<ShuffleStreamKernel>(*buffer);
  }
  if (auto* tfm = dynamic_cast<core::TrackingForecastMemory*>(&transform)) {
    auto table = tfm_table(tfm->config().precision, tfm->config().shift);
    if (!table) return nullptr;
    return std::make_unique<TfmStreamKernel>(*tfm, std::move(table));
  }
  return nullptr;
}

}  // namespace sc::kernel
