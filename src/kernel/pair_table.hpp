/// \file pair_table.hpp
/// Multi-bit transition tables for pair FSMs with small state spaces.
///
/// A PairNibbleTable precomputes, for every (state, 4 input bit-pairs)
/// combination, the 4 output bit-pairs and the state four cycles later, so
/// a byte of each stream advances with two table lookups instead of eight
/// virtual step() calls.  A companion one-cycle table handles lengths that
/// are not a multiple of 4.  Tables are built once per FSM configuration
/// from the pure transition functions the core layer exposes
/// (e.g. core::Synchronizer::transition) and shared through the caches in
/// kernels.cpp.
///
/// Entry layout (std::uint32_t):
///   bits 0..3   output X nibble (bit i = cycle i's X output)
///   bits 4..7   output Y nibble
///   bits 8..31  successor state index
/// The one-cycle table uses the same layout with single-bit nibbles.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sc::kernel {

/// One pure pair-FSM step, as the table builder consumes it.
struct PairStep {
  unsigned next_state;
  bool out_x;
  bool out_y;
};

/// Four-cycle (nibble) and one-cycle transition tables over S states.
class PairNibbleTable {
 public:
  using Entry = std::uint32_t;

  /// Builds the tables by enumerating `step` (a callable mapping
  /// (state, x, y) to PairStep) over all states and input combinations.
  template <typename StepFn>
  static PairNibbleTable build(unsigned states, StepFn&& step) {
    PairNibbleTable table;
    table.states_ = states;
    table.nibble_.resize(std::size_t{states} << 8);
    table.bit_.resize(std::size_t{states} << 2);
    for (unsigned s = 0; s < states; ++s) {
      for (unsigned xn = 0; xn < 16; ++xn) {
        for (unsigned yn = 0; yn < 16; ++yn) {
          unsigned cur = s;
          unsigned out_x = 0;
          unsigned out_y = 0;
          for (unsigned i = 0; i < 4; ++i) {
            const PairStep r =
                step(cur, ((xn >> i) & 1u) != 0, ((yn >> i) & 1u) != 0);
            out_x |= (r.out_x ? 1u : 0u) << i;
            out_y |= (r.out_y ? 1u : 0u) << i;
            cur = r.next_state;
          }
          table.nibble_[(std::size_t{s} << 8) | (xn << 4) | yn] =
              out_x | (out_y << 4) | (cur << 8);
        }
      }
      for (unsigned x = 0; x < 2; ++x) {
        for (unsigned y = 0; y < 2; ++y) {
          const PairStep r = step(s, x != 0, y != 0);
          table.bit_[(std::size_t{s} << 2) | (x << 1) | y] =
              (r.out_x ? 1u : 0u) | ((r.out_y ? 1u : 0u) << 4) |
              (r.next_state << 8);
        }
      }
    }
    return table;
  }

  /// Advances 4 cycles: inputs are a nibble of each stream.
  [[nodiscard]] Entry lookup4(unsigned state, unsigned x_nibble, unsigned y_nibble) const {
    return nibble_[(std::size_t{state} << 8) | (x_nibble << 4) | y_nibble];
  }

  /// Advances 1 cycle (same entry layout, single-bit nibbles).
  [[nodiscard]] Entry lookup1(unsigned state, bool x, bool y) const {
    return bit_[(std::size_t{state} << 2) | (x ? 2u : 0u) | (y ? 1u : 0u)];
  }

  [[nodiscard]] unsigned states() const { return states_; }

 private:
  unsigned states_ = 0;
  std::vector<Entry> nibble_;  // states * 256 four-cycle entries
  std::vector<Entry> bit_;     // states * 4 one-cycle entries
};

}  // namespace sc::kernel
