/// \file fault.hpp
/// Composable bit-error models for fault-injection runs.
///
/// The paper's circuits are sold on SC's error tolerance, but tolerance is
/// only an argument until it is measured: this module defines *fault plans*
/// — named error models attached to the stream edges and fix circuits of a
/// registry Program — that every ExecutorBackend honours identically
/// (ExecConfig::fault_plan).  Four edge models cover the classic soft/hard
/// error taxonomy:
///
///  * stuck-at-0 / stuck-at-1 — a hard wire fault: the whole edge reads 0/1.
///  * i.i.d. bit flip at rate p — soft errors: each bit of the edge flips
///    independently with probability p.
///  * burst — correlated soft errors: the stream is tiled into windows of
///    `burst_length` bits and each window inverts wholesale with
///    probability `rate` (models a glitch that outlasts one cycle).
///
/// plus one circuit model:
///
///  * FSM state corruption — the state of a planned in-stream fix
///    (synchronizer / desynchronizer / decorrelator / chain link) is wiped
///    to its power-on value at chosen cycles (an SEU in the state register).
///
/// Determinism contract: every random decision is a pure function of
/// (plan seed, edge name, fault salt, absolute bit index) via a counter
/// based SplitMix64 hash — random access, no carried generator state — so
/// the reference, kernel, and engine backends corrupt *the same bits* no
/// matter how the stream is chunked, and a failing fuzz case replays from
/// its logged seed.  Edges are addressed by the executed program's value
/// names (stable across backends and across optimizer rewrites that keep
/// the node); faults naming a value the optimizer removed — dead code,
/// folded constants, or a CSE-merged duplicate, whose *value* survives in
/// the survivor but whose named wire does not — vanish with the wire,
/// identically on every backend.  To fault through the optimizer, target
/// a value that survives it (the survivor of a merge keeps its own name).
///
/// This header is dependency-light on purpose (no graph types) so
/// graph/backend.hpp can forward-declare FaultPlan; resolution against a
/// Program lives in fault/inject.hpp.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/seeds.hpp"

namespace sc::fault {

/// Edge error model taxonomy (see file comment).
enum class ErrorKind : std::uint8_t {
  kStuckAt0,
  kStuckAt1,
  kBitFlip,
  kBurst,
};

std::string to_string(ErrorKind kind);

/// One error model attached to one named stream edge (a program value
/// name: input, constant, or op output).  The fault corrupts the node's
/// output bits, so it is seen by the node's own measured value and by
/// every consumer — exactly the blast radius of a fault on that wire.
struct EdgeFault {
  std::string edge;              ///< program value name the fault sits on
  ErrorKind kind = ErrorKind::kBitFlip;
  double rate = 0.01;            ///< per-bit / per-window probability
  std::size_t burst_length = 16; ///< window size of kBurst, in bits (>= 1)
  /// Distinguishes multiple faults of one kind on one edge (each salt is
  /// an independent error process).
  std::uint32_t salt = 0;
  /// Active window [begin, end) in absolute bit indices: the fault only
  /// corrupts bits inside it (default: the whole stream).  Models
  /// transient faults — a line stuck for a few thousand cycles, a glitch
  /// burst during one window — and gives directed tests exact positional
  /// control (e.g. a flip placed on a kernel chunk boundary).
  std::size_t begin = 0;
  std::size_t end = std::numeric_limits<std::size_t>::max();
};

/// FSM state corruption of a planned in-stream fix: at each matching cycle
/// the fix circuit's state resets to power-on (credit/saved counters wiped,
/// shuffle buffers emptied, aux RNGs rewound).  Regeneration fixes have no
/// per-cycle FSM and are unaffected.  When the optimizer's sharing pass
/// has marked the targeted fix as one physical circuit fanning out to
/// sibling consumers (PairFix::shared_with), the wipe hits every
/// consumer's mirror at the same cycles — one state register in hardware,
/// one blast radius in simulation.
struct FsmFault {
  std::string op;         ///< name of the op node whose planned fixes to hit
  std::size_t first = 0;  ///< first corrupted cycle (absolute bit index)
  /// Corrupt every `period` cycles from `first` on; 0 = only at `first`.
  std::size_t period = 0;
  /// Which fix of the op to corrupt, in ProgramPlan::fixes_for order;
  /// -1 corrupts every fix planned for the op.
  std::int32_t lane = -1;
};

/// A full injection campaign: any number of edge and FSM faults under one
/// master seed.  Plans are plain data — build them inline, share them
/// across runs, sweep them (fault/sweep.hpp).
struct FaultPlan {
  std::uint64_t seed = 0xFA170;  ///< master seed of every error process
  std::vector<EdgeFault> edges;
  std::vector<FsmFault> fsms;

  [[nodiscard]] bool empty() const { return edges.empty() && fsms.empty(); }
};

// ------------------------------------------------------------ fault hashes
//
// Exposed so tests can audit the error processes (rate accuracy, pairwise
// independence across edges) without running a backend.

/// FNV-1a over the edge name: the name-stable half of a fault's key.
inline std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Key of one fault's error process: distinct (seed, edge, kind, salt)
/// give independent SplitMix64 streams.
inline std::uint64_t fault_key(std::uint64_t seed, const std::string& edge,
                               ErrorKind kind, std::uint32_t salt) {
  return graph::seeds::splitmix64(
      graph::seeds::splitmix64(seed ^ fnv1a(edge)) ^
      ((static_cast<std::uint64_t>(salt) << 8) |
       static_cast<std::uint64_t>(kind)));
}

/// i-th draw of the key's error process: the canonical SplitMix64 sequence
/// seeded at `key` (state advances by the golden-ratio gamma per index, so
/// this is random access into the same stream a sequential generator would
/// emit).
inline std::uint64_t hash_at(std::uint64_t key, std::uint64_t index) {
  return graph::seeds::splitmix64(key + index * 0x9E3779B97F4A7C15ULL);
}

/// True when the i-th draw of `key` fires at probability `rate`.
inline bool draw_at(std::uint64_t key, std::uint64_t index, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // rate < 1 keeps the product below 2^64, so the cast is exact enough:
  // the threshold is within one ulp-of-double of rate * 2^64.
  const auto threshold =
      static_cast<std::uint64_t>(rate * 18446744073709551616.0);
  return hash_at(key, index) < threshold;
}

}  // namespace sc::fault
