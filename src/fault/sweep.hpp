/// \file sweep.hpp
/// Resilience analysis: how the paper's correlation circuits degrade under
/// injected bit errors.
///
/// Two experiment families over small two-input circuits:
///
///  * Error-rate sweep — i.i.d. bit flips at rate p on both input edges,
///    swept over p x circuit x correlation regime.  Reported per cell:
///    SCC drift of the input pair (flips erode engineered correlation:
///    a shared-trace +1 pair decays toward 0 as p grows) and output value
///    error, clean vs faulted.  This is the ReCo1 observation (Mitra et
///    al., 2021) made measurable: correlation-*dependent* circuits (max /
///    min riding on SCC = +1) lose both value accuracy and their
///    correlation assumption, while decorrelated pipelines only see the
///    value perturbation — independence survives i.i.d. flips.
///
///  * FSM corruption recovery — a planned fix circuit's state register is
///    wiped mid-stream (fault.hpp's SEU model) and the faulted output is
///    diffed against the clean run: how many output bits change, and how
///    long until the outputs re-agree for good (*recovery depth*).  Small
///    saved-state FSMs (synchronizer / desynchronizer) re-converge within
///    a few disagreement cycles; shuffle-buffer circuits replay a shifted
///    address schedule and can stay divergent to the end of the stream —
///    the depth column quantifies exactly that asymmetry.
///
/// The static analyzer (analysis/analyzer.hpp) prices the same asymmetry
/// at compile time: FixFragility weighs each planned circuit's saved
/// state by a persistence factor calibrated against the recovery-depth
/// split measured here (FSM fixes re-converge in a few cycles; shuffle
/// buffers replay a shifted schedule and may never).  plan_fragility()
/// is the zero-execution estimate; this sweep is its ground truth.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/backend.hpp"

namespace sc::fault {

struct SweepConfig {
  std::size_t stream_length = 4096;
  /// SNG width: period 2^13 - 1 = 8191 covers the default stream without
  /// the trace wrapping (2^12 - 1 would fall one sample short); raise it
  /// along with stream_length for longer sweeps.
  unsigned width = 13;
  std::uint32_t seed = 3;    ///< base seed of the executed programs
  std::uint64_t fault_seed = 0xFA170;
  /// Injected i.i.d. flip rates; a clean (rate 0) reference column is
  /// always measured per circuit.
  std::vector<double> rates = {0.001, 0.01, 0.05, 0.1};
  graph::BackendKind backend = graph::BackendKind::kKernel;
};

/// One (circuit, regime, rate) cell of the error-rate sweep.
struct SweepRow {
  std::string circuit;  ///< operator under test ("max", "min", "multiply"...)
  std::string regime;   ///< input correlation regime (see sweep())
  double rate = 0.0;    ///< injected i.i.d. flip rate per input edge
  double scc_clean = 0.0;   ///< input-pair SCC without faults
  double scc_faulty = 0.0;  ///< input-pair SCC under injection
  double err_clean = 0.0;   ///< |output - exact| without faults
  double err_faulty = 0.0;  ///< |output - exact| under injection
  /// Error against the *intended function of the measured input values*:
  /// |output - f(x_measured, y_measured)|.  Flips perturb every circuit's
  /// input values identically; what separates the resilience classes is
  /// whether the circuit still computes f on whatever values it receives.
  /// A correlation-dependent OR-max stops being max when flips erode
  /// SCC = +1; a decorrelated AND-multiply keeps computing the product.
  /// Unlike err_*, this isolates that breakdown from input drift and SC
  /// sampling noise, so the ReCo1 ordering is resolvable at short
  /// stream lengths too.
  double func_err_clean = 0.0;
  double func_err_faulty = 0.0;

  [[nodiscard]] double scc_drift() const { return std::abs(scc_faulty - scc_clean); }
  [[nodiscard]] double err_inflation() const { return err_faulty - err_clean; }
  [[nodiscard]] double func_err_inflation() const {
    return func_err_faulty - func_err_clean;
  }
};

/// One FSM-corruption experiment: a mid-stream state wipe of one fix.
struct RecoveryRow {
  std::string fix;      ///< corrupted circuit ("synchronizer", ...)
  std::string circuit;  ///< host operator
  std::size_t corrupt_cycle = 0;
  std::size_t disturbed_bits = 0;  ///< output bits differing from clean
  /// Cycles from the corruption to the last differing output bit (0 when
  /// the wipe was invisible); a depth of stream_length - corrupt_cycle
  /// means the very last bit still differed — the output never
  /// re-converged.
  std::size_t recovery_depth = 0;
};

struct SweepReport {
  std::vector<SweepRow> rows;
  std::vector<RecoveryRow> recovery;

  /// Mean func_err_inflation of one (circuit, regime) over rates >=
  /// `min_rate` (tiny rates are sampling noise at these stream lengths).
  [[nodiscard]] double mean_inflation(const std::string& circuit,
                                      const std::string& regime,
                        double min_rate = 0.01) const;

  /// The acceptance bar, after ReCo1: the decorrelated multiply pipeline
  /// degrades more gracefully under i.i.d. flips than the
  /// correlation-dependent max and min — strictly smaller mean
  /// function-error inflation (see SweepRow::func_err_clean).
  [[nodiscard]] bool reco1_ordering_holds() const;
};

/// Runs both experiment families on config.backend.  Circuits x regimes:
///   max / min   "correlated"     shared-trace inputs, no fix (SCC = +1)
///   multiply    "decorrelated"   shared-trace inputs + planned decorrelator
///   multiply    "independent"    independent inputs, no fix
///   max         "resynchronized" independent inputs + planned synchronizer
///   scaled-add  "agnostic"       independent inputs, requirement-free
/// Recovery experiments wipe the synchronizer, desynchronizer,
/// decorrelator, and chain-link fixes at stream_length / 2.
SweepReport sweep(const SweepConfig& config = {});

}  // namespace sc::fault
