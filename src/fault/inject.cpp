#include "fault/inject.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace sc::fault {
namespace {

/// Decorator that wipes the inner fix FSM to its power-on state at the
/// matching cycles (fault.hpp's SEU model).  Carries its own cycle counter
/// across step() calls, so chunked drivers corrupt the same absolute cycle
/// as whole-stream ones.  Deliberately offers no table-driven kernel: the
/// kernel layer's make_pair_kernel does not recognise it and every backend
/// falls back to the bit-serial path, which is what keeps the corruption
/// cycle exact everywhere.
class FsmCorruptingTransform final : public core::PairTransform {
 public:
  FsmCorruptingTransform(std::unique_ptr<core::PairTransform> inner,
                         std::vector<const FsmFault*> faults)
      : inner_(std::move(inner)), faults_(std::move(faults)) {}

  core::BitPair step(bool x, bool y) override {
    for (const FsmFault* fault : faults_) {
      if (hits(*fault, cycle_)) {
        inner_->reset();
        break;  // one wipe per cycle is as wiped as it gets
      }
    }
    ++cycle_;
    return inner_->step(x, y);
  }

  void reset() override {
    cycle_ = 0;
    inner_->reset();
  }

  [[nodiscard]] unsigned saved_ones() const override { return inner_->saved_ones(); }

  void begin_stream(std::size_t length) override {
    cycle_ = 0;
    inner_->begin_stream(length);
  }

 private:
  static bool hits(const FsmFault& fault, std::size_t cycle) {
    if (cycle < fault.first) return false;
    if (fault.period == 0) return cycle == fault.first;
    return (cycle - fault.first) % fault.period == 0;
  }

  std::unique_ptr<core::PairTransform> inner_;
  std::vector<const FsmFault*> faults_;
  std::size_t cycle_ = 0;
};

/// Applies one edge fault to the span and returns how many bits it
/// actually changed.  `count` gates the extra bookkeeping (stuck-at word
/// paths need a popcount scan to know what they changed): telemetry-free
/// plans pass false and pay nothing beyond the corruption itself.  The
/// corruption applied is identical either way.
std::uint64_t apply_one(const EdgeFault& fault, std::uint64_t key,
                        Bitstream& bits, std::size_t offset, bool count) {
  const std::size_t n = bits.size();
  if (n == 0) return 0;
  // Intersect the fault's active window [begin, end) with this span's
  // global range [offset, offset + n), in local bit indices.
  const std::size_t global_lo = std::max(fault.begin, offset);
  const std::size_t global_hi = std::min(fault.end, offset + n);
  if (global_lo >= global_hi) return 0;
  const std::size_t lo = global_lo - offset;
  const std::size_t hi = global_hi - offset;
  std::uint64_t corrupted = 0;
  switch (fault.kind) {
    case ErrorKind::kStuckAt0: {
      if (lo == 0 && hi == n) {
        if (count) corrupted = bits.count_ones();
        Bitstream::Word* words = bits.word_data();
        const std::size_t word_count = (n + 63) / 64;
        for (std::size_t w = 0; w < word_count; ++w) words[w] = 0;
      } else {
        for (std::size_t i = lo; i < hi; ++i) {
          if (bits.get(i)) {
            ++corrupted;
            bits.set(i, false);
          }
        }
      }
      return corrupted;
    }
    case ErrorKind::kStuckAt1: {
      if (lo == 0 && hi == n) {
        if (count) corrupted = n - bits.count_ones();
        Bitstream::Word* words = bits.word_data();
        const std::size_t word_count = (n + 63) / 64;
        for (std::size_t w = 0; w < word_count; ++w) {
          words[w] = ~Bitstream::Word{0};
        }
        // Keep the padding invariant: bits past size() stay 0 so
        // count_ones and word-wise consumers never see garbage tail bits.
        const unsigned tail = n % 64;
        if (tail != 0) {
          words[word_count - 1] &= (Bitstream::Word{1} << tail) - 1;
        }
      } else {
        for (std::size_t i = lo; i < hi; ++i) {
          if (!bits.get(i)) {
            ++corrupted;
            bits.set(i, true);
          }
        }
      }
      return corrupted;
    }
    case ErrorKind::kBitFlip: {
      for (std::size_t i = lo; i < hi; ++i) {
        if (draw_at(key, offset + i, fault.rate)) {
          bits.set(i, !bits.get(i));
          ++corrupted;
        }
      }
      return corrupted;
    }
    case ErrorKind::kBurst: {
      const std::size_t window = fault.burst_length == 0 ? 1
                                                        : fault.burst_length;
      std::size_t current = std::numeric_limits<std::size_t>::max();
      bool corrupt = false;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t w = (offset + i) / window;
        if (w != current) {
          current = w;
          corrupt = draw_at(key, w, fault.rate);
        }
        if (corrupt) {
          bits.set(i, !bits.get(i));
          ++corrupted;
        }
      }
      return corrupted;
    }
  }
  return corrupted;
}

}  // namespace

ResolvedFaultPlan resolve(const FaultPlan* plan, const graph::Program& program,
                          const graph::ProgramPlan* exec_plan,
                          obs::Telemetry* telemetry) {
  telemetry = obs::fallback(telemetry);
  ResolvedFaultPlan resolved;
  if (plan == nullptr || plan->empty()) return resolved;
  resolved.seed = plan->seed;
  resolved.edges.resize(program.node_count());
  resolved.fsms.resize(program.node_count());
  if (telemetry != nullptr) {
    resolved.corrupted_total =
        &telemetry->metrics().counter("fault.corrupted_bits");
  }
  for (const EdgeFault& fault : plan->edges) {
    const graph::NodeId id = program.find(fault.edge);
    if (id == graph::kInvalidNode) continue;  // wire absent: nothing to hit
    ResolvedFaultPlan::EdgeSite site;
    site.fault = &fault;
    site.key = fault_key(plan->seed, fault.edge, fault.kind, fault.salt);
    if (telemetry != nullptr) {
      site.corrupted = &telemetry->metrics().counter(
          "fault.edge." + fault.edge + ".corrupted_bits");
    }
    resolved.edges[id].push_back(site);
    resolved.any_edges = true;
  }

  // Per active fix of exec_plan: its position within fixes_for(op) — the
  // lane coordinate the backends wrap by — and its physical-circuit group
  // (the correction-sharing representative, itself when unshared).
  std::vector<std::int32_t> position;
  std::vector<std::size_t> group;
  if (exec_plan != nullptr) {
    position.assign(exec_plan->fixes.size(), -1);
    group.resize(exec_plan->fixes.size());
    std::map<graph::NodeId, std::int32_t> counters;
    for (std::size_t i = 0; i < exec_plan->fixes.size(); ++i) {
      const graph::PairFix& fix = exec_plan->fixes[i];
      if (fix.fix != graph::FixKind::kNone) {
        position[i] = counters[fix.op_node]++;
      }
      group[i] = fix.shared_with >= 0
                     ? static_cast<std::size_t>(fix.shared_with)
                     : i;
    }
  }

  for (const FsmFault& fault : plan->fsms) {
    const graph::NodeId id = program.find(fault.op);
    if (id == graph::kInvalidNode) continue;
    if (exec_plan == nullptr) {
      resolved.fsms[id].push_back({&fault, fault.lane});
      resolved.any_fsms = true;
      continue;
    }
    // The physical circuits this fault addresses through (op, lane)...
    std::set<std::size_t> circuits;
    for (std::size_t i = 0; i < exec_plan->fixes.size(); ++i) {
      const graph::PairFix& fix = exec_plan->fixes[i];
      if (fix.op_node != id || position[i] < 0) continue;
      if (fault.lane >= 0 && fault.lane != position[i]) continue;
      circuits.insert(group[i]);
    }
    // ...wipe every consumer's mirror of those circuits: a shared fix is
    // one state register in hardware, so the SEU's blast radius is every
    // sibling it fans out to (PairFix::shared_with).
    for (std::size_t i = 0; i < exec_plan->fixes.size(); ++i) {
      if (position[i] < 0 || circuits.count(group[i]) == 0) continue;
      resolved.fsms[exec_plan->fixes[i].op_node].push_back(
          {&fault, position[i]});
      resolved.any_fsms = true;
    }
  }
  return resolved;
}

void validate(const FaultPlan& plan, const graph::Program& program) {
  for (const EdgeFault& fault : plan.edges) {
    if (program.find(fault.edge) == graph::kInvalidNode) {
      throw std::invalid_argument("fault::validate: no value named '" +
                                  fault.edge + "' in the program");
    }
    if (fault.kind == ErrorKind::kBurst && fault.burst_length == 0) {
      throw std::invalid_argument(
          "fault::validate: burst_length must be >= 1 on edge '" +
          fault.edge + "'");
    }
  }
  for (const FsmFault& fault : plan.fsms) {
    const graph::NodeId id = program.find(fault.op);
    if (id == graph::kInvalidNode) {
      throw std::invalid_argument("fault::validate: no value named '" +
                                  fault.op + "' in the program");
    }
    if (program.node(id).kind != graph::ProgramNode::Kind::kOp) {
      throw std::invalid_argument("fault::validate: '" + fault.op +
                                  "' is not an op node (FSM faults corrupt "
                                  "planned fixes, which only ops have)");
    }
  }
}

void apply_edge_faults(const ResolvedFaultPlan& resolved, graph::NodeId id,
                       Bitstream& bits, std::size_t offset) {
  if (!resolved.any_edges || id >= resolved.edges.size()) return;
  for (const ResolvedFaultPlan::EdgeSite& site : resolved.edges[id]) {
    const bool count =
        site.corrupted != nullptr || resolved.corrupted_total != nullptr;
    const std::uint64_t corrupted =
        apply_one(*site.fault, site.key, bits, offset, count);
    if (corrupted != 0) {
      if (site.corrupted != nullptr) site.corrupted->add(corrupted);
      if (resolved.corrupted_total != nullptr) {
        resolved.corrupted_total->add(corrupted);
      }
    }
  }
}

std::unique_ptr<core::PairTransform> wrap_fsm_faults(
    std::unique_ptr<core::PairTransform> transform,
    const ResolvedFaultPlan& resolved, graph::NodeId id, unsigned lane) {
  if (transform == nullptr || !resolved.any_fsms ||
      id >= resolved.fsms.size()) {
    return transform;
  }
  std::vector<const FsmFault*> matching;
  for (const ResolvedFaultPlan::FsmSite& site : resolved.fsms[id]) {
    if (site.lane >= 0 && static_cast<unsigned>(site.lane) != lane) continue;
    // A fault can reach one lane through several sites (e.g. addressed
    // both directly and via a shared sibling); one wipe per cycle is all
    // a wipe can do, so dedup keeps the wrapper minimal.
    if (std::find(matching.begin(), matching.end(), site.fault) ==
        matching.end()) {
      matching.push_back(site.fault);
    }
  }
  if (matching.empty()) return transform;
  return std::make_unique<FsmCorruptingTransform>(std::move(transform),
                                                  std::move(matching));
}

}  // namespace sc::fault
