#include "fault/sweep.hpp"

#include <memory>
#include <utility>

#include "bitstream/correlation.hpp"
#include "fault/fault.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::fault {
namespace {

using graph::ExecConfig;
using graph::ExecutionResult;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PairFix;
using graph::Program;
using graph::ProgramPlan;
using graph::Value;

/// Two-input circuit: out = op(x, y) with x, y in one or two RNG groups.
Program two_input(const char* op, bool shared_group) {
  GraphBuilder b;
  const Value x = b.input("x", 0.7, 0);
  const Value y = b.input("y", 0.45, shared_group ? 0 : 1);
  b.output(b.op(op, {x, y}), "out");
  return b.build();
}

ExecConfig exec_config(const SweepConfig& config) {
  ExecConfig exec;
  exec.stream_length = config.stream_length;
  exec.width = config.width;
  exec.seed = config.seed;
  return exec;
}

/// Both input edges flipped i.i.d. at `rate`, as independent processes.
FaultPlan flip_inputs(const SweepConfig& config, double rate) {
  FaultPlan plan;
  plan.seed = config.fault_seed;
  plan.edges.push_back({"x", ErrorKind::kBitFlip, rate, 16, 0});
  plan.edges.push_back({"y", ErrorKind::kBitFlip, rate, 16, 1});
  return plan;
}

struct DiffStats {
  std::size_t disturbed = 0;
  std::size_t last_diff = 0;
  bool any = false;
};

DiffStats diff(const Bitstream& a, const Bitstream& b) {
  DiffStats stats;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.get(i) != b.get(i)) {
      ++stats.disturbed;
      stats.last_diff = i;
      stats.any = true;
    }
  }
  return stats;
}

}  // namespace

double SweepReport::mean_inflation(const std::string& circuit,
                                   const std::string& regime,
                                   double min_rate) const {
  double total = 0.0;
  std::size_t count = 0;
  for (const SweepRow& row : rows) {
    if (row.circuit != circuit || row.regime != regime) continue;
    if (row.rate < min_rate) continue;
    total += row.func_err_inflation();
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

bool SweepReport::reco1_ordering_holds() const {
  const double graceful = mean_inflation("multiply", "decorrelated");
  return graceful < mean_inflation("max", "correlated") &&
         graceful < mean_inflation("min", "correlated");
}

SweepReport sweep(const SweepConfig& config) {
  SweepReport report;
  const auto backend = graph::make_backend(config.backend);
  const ExecConfig exec = exec_config(config);

  // --- error-rate sweep ---------------------------------------------------
  struct CircuitSpec {
    const char* op;
    const char* regime;
    bool shared_group;
  };
  const CircuitSpec circuits[] = {
      {"max", "correlated", true},        // rides on SCC = +1, unprotected
      {"min", "correlated", true},
      {"multiply", "decorrelated", true}, // planner inserts a decorrelator
      {"multiply", "independent", false},
      {"max", "resynchronized", false},   // planner inserts a synchronizer
      {"scaled-add", "agnostic", false},
  };
  for (const CircuitSpec& spec : circuits) {
    const Program program = two_input(spec.op, spec.shared_group);
    const ProgramPlan plan =
        plan_program(program, graph::Strategy::kManipulation);
    const NodeId x = program.find("x");
    const NodeId y = program.find("y");
    const NodeId out = program.outputs()[0];
    // |output - f(measured inputs)| via the registry's exact semantics:
    // did the circuit still compute its function on the values it saw?
    const auto func_err = [&](const ExecutionResult& result) {
      const double operands[] = {result.streams[x].value(),
                                 result.streams[y].value()};
      return std::abs(result.values[0] -
                      program.def_of(out).exact(
                          sc::span<const double>(operands, 2)));
    };

    const ExecutionResult clean = backend->run(program, plan, exec);
    const double scc_clean = scc(clean.streams[x], clean.streams[y]);

    for (const double rate : config.rates) {
      const FaultPlan faults = flip_inputs(config, rate);
      ExecConfig faulted_exec = exec;
      faulted_exec.fault_plan = &faults;
      const ExecutionResult faulted = backend->run(program, plan, faulted_exec);
      SweepRow row;
      row.circuit = spec.op;
      row.regime = spec.regime;
      row.rate = rate;
      row.scc_clean = scc_clean;
      row.scc_faulty = scc(faulted.streams[x], faulted.streams[y]);
      row.err_clean = clean.abs_errors[0];
      row.err_faulty = faulted.abs_errors[0];
      row.func_err_clean = func_err(clean);
      row.func_err_faulty = func_err(faulted);
      report.rows.push_back(std::move(row));
    }
  }

  // --- FSM corruption recovery --------------------------------------------
  const std::size_t corrupt_cycle = config.stream_length / 2;
  struct RecoverySpec {
    const char* fix;
    const char* op;
    bool shared_group;
  };
  const RecoverySpec recoveries[] = {
      {"synchronizer", "max", false},       // kPositive over independents
      {"desynchronizer", "saturating-add", false},  // kNegative: always fixed
      {"decorrelator", "multiply", true},   // kUncorrelated over shared trace
  };
  const auto run_recovery = [&](const char* fix_name, const char* host,
                                const Program& program,
                                const ProgramPlan& plan) {
    const NodeId out = program.outputs()[0];
    FaultPlan faults;
    faults.seed = config.fault_seed;
    faults.fsms.push_back({program.node(out).name, corrupt_cycle, 0, -1});
    ExecConfig faulted_exec = exec;
    faulted_exec.fault_plan = &faults;
    const ExecutionResult clean = backend->run(program, plan, exec);
    const ExecutionResult faulted = backend->run(program, plan, faulted_exec);
    const DiffStats stats = diff(clean.streams[out], faulted.streams[out]);
    RecoveryRow row;
    row.fix = fix_name;
    row.circuit = host;
    row.corrupt_cycle = corrupt_cycle;
    row.disturbed_bits = stats.disturbed;
    row.recovery_depth = stats.any ? stats.last_diff - corrupt_cycle + 1 : 0;
    report.recovery.push_back(std::move(row));
  };
  for (const RecoverySpec& spec : recoveries) {
    const Program program = two_input(spec.op, spec.shared_group);
    run_recovery(spec.fix, spec.op, program,
                 plan_program(program, graph::Strategy::kManipulation));
  }
  {
    // The chain link is optimizer-emitted, not planner-emitted; a manual
    // one-fix plan over multiply(x, x) exercises it directly (both
    // operands carry the same stream, the link's validity condition).
    GraphBuilder b;
    const Value x = b.input("x", 0.7, 0);
    b.output(b.op("multiply", {x, x}), "out");
    const Program program = b.build();
    ProgramPlan plan;
    plan.strategy = graph::Strategy::kManipulation;
    PairFix fix;
    fix.op_node = program.outputs()[0];
    fix.operand_a = 0;
    fix.operand_b = 1;
    fix.requirement = graph::Requirement::kUncorrelated;
    fix.relation = graph::Relation::kPositive;
    fix.fix = graph::FixKind::kDecorrelatorChain;
    plan.fixes.push_back(fix);
    plan.inserted_units = 1;
    run_recovery("decorrelator-chain-link", "multiply(x,x)", program, plan);
  }

  return report;
}

}  // namespace sc::fault
