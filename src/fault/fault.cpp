#include "fault/fault.hpp"

namespace sc::fault {

std::string to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kStuckAt0:
      return "stuck-at-0";
    case ErrorKind::kStuckAt1:
      return "stuck-at-1";
    case ErrorKind::kBitFlip:
      return "bit-flip";
    case ErrorKind::kBurst:
      return "burst";
  }
  return "?";
}

}  // namespace sc::fault
