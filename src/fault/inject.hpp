/// \file inject.hpp
/// Resolution and application of FaultPlans during backend execution.
///
/// A FaultPlan names edges and ops by value name; a ResolvedFaultPlan is
/// the same plan bound to one Program's node ids, with each edge fault's
/// hash key precomputed.  The two application primitives are deliberately
/// positional:
///
///  * apply_edge_faults(resolved, node, bits, offset) corrupts a span of a
///    node's output stream given its absolute bit offset — the whole-stream
///    backends call it once per node with offset 0, the chunked engine
///    backend once per chunk with the chunk's offset, and both produce the
///    same bits because every decision hashes the absolute index.
///
///  * wrap_fsm_faults decorates a planned fix's PairTransform with the
///    op's matching FsmFaults.  The wrapper has no table-driven kernel, so
///    every backend drives it bit-serially (the kernel layer's documented
///    fallback) and the corruption lands on the same cycle everywhere,
///    chunk boundaries included.
///
/// Thread-safety: a ResolvedFaultPlan is immutable after resolve(); the
/// engine backend reads it concurrently from its pool workers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "core/pair_transform.hpp"
#include "fault/fault.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::obs {
class Counter;
class Telemetry;
}  // namespace sc::obs

namespace sc::fault {

/// A FaultPlan bound to one Program (see file comment).
struct ResolvedFaultPlan {
  struct EdgeSite {
    const EdgeFault* fault = nullptr;
    std::uint64_t key = 0;  ///< fault_key of this edge fault
    /// Telemetry counter "fault.edge.<name>.corrupted_bits" when the plan
    /// was resolved with telemetry, else nullptr (no counting work at all).
    obs::Counter* corrupted = nullptr;
  };
  struct FsmSite {
    const FsmFault* fault = nullptr;
    /// Which fix of the node this site corrupts, in fixes_for order
    /// (-1 = every fix).  Differs from fault->lane when the site was
    /// expanded across a shared circuit onto a sibling consumer.
    std::int32_t lane = -1;
  };

  /// Per node id: the edge faults on that node's output, in plan order
  /// (later faults see — and may overwrite — earlier ones' corruption).
  std::vector<std::vector<EdgeSite>> edges;
  /// Per node id: the FSM corruption sites of that op's fixes.
  std::vector<std::vector<FsmSite>> fsms;
  std::uint64_t seed = 0;
  bool any_edges = false;
  bool any_fsms = false;
  /// Plan-wide "fault.corrupted_bits" counter (nullptr when resolved
  /// without telemetry).
  obs::Counter* corrupted_total = nullptr;
};

/// Binds `plan` to `program` by value name.  nullptr / empty plans resolve
/// to an all-clear result the backends skip in O(1).  Names not present in
/// the program are skipped: the fault names a wire the executed design
/// does not have (e.g. optimized away), so there is nothing to corrupt —
/// identically on every backend.  Use validate() to reject typos up front.
///
/// When `exec_plan` is given, FSM faults expand across correction-sharing
/// groups (PairFix::shared_with): the sharing pass models sibling fixes as
/// ONE physical circuit fanning out to every consumer, so an SEU addressed
/// through any consumer's (op, lane) wipes the mirrored FSM state of every
/// consumer at the same cycles — the shared design's true blast radius.
/// Backends pass their executed plan; plan-less resolution keeps the
/// direct per-op semantics.
///
/// When `telemetry` resolves (explicitly or via the SC_METRICS/SC_TRACE
/// env fallback), every edge site gets a "fault.edge.<name>.corrupted_bits"
/// counter and the plan a "fault.corrupted_bits" total; apply_edge_faults
/// then counts the bits it actually changed.  Without telemetry the sites
/// carry null counters and application skips all counting.  Counting never
/// changes the corruption itself.
ResolvedFaultPlan resolve(const FaultPlan* plan, const graph::Program& program,
                          const graph::ProgramPlan* exec_plan = nullptr,
                          obs::Telemetry* telemetry = nullptr);

/// Throws std::invalid_argument when `plan` names an edge or op absent
/// from `program` (for call sites that want typo safety rather than the
/// optimizer-friendly skip semantics), when an FSM fault targets a
/// non-op node, or when a burst fault has burst_length == 0.
void validate(const FaultPlan& plan, const graph::Program& program);

/// Corrupts `bits` — the span of node `id`'s output starting at absolute
/// bit `offset` — in place.  No-op for nodes without edge faults.
void apply_edge_faults(const ResolvedFaultPlan& resolved, graph::NodeId id,
                       Bitstream& bits, std::size_t offset);

/// Wraps `transform` (a planned fix of op node `id`, at position `lane`
/// in its fixes_for order) with the matching FSM faults.  Returns the
/// transform unchanged when none match, so fault-free fixes keep their
/// table-driven kernels.
std::unique_ptr<core::PairTransform> wrap_fsm_faults(
    std::unique_ptr<core::PairTransform> transform,
    const ResolvedFaultPlan& resolved, graph::NodeId id, unsigned lane);

}  // namespace sc::fault
